//! Sections 4.2–4.3: technique T2 — one tree, two disjoint sweeps guided by
//! precomputed per-leaf handicaps; duplicate-free by construction.

use std::io;

use cdb_btree::{key_slack, BTree, Handicaps, SweepControl};
use cdb_storage::PageReader;

use super::{refine, DualIndex, TupleSource};
use crate::error::CdbError;
use crate::query::{tree_and_direction, QueryResult, QueryStats, Selection, Side};

impl DualIndex {
    /// Sections 4.2–4.3: one tree, two disjoint sweeps guided by handicaps.
    pub(super) fn t2(
        &self,
        pager: &dyn PageReader,
        sel: &Selection,
        lo_idx: usize,
        hi_idx: usize,
        fetch: &dyn TupleSource,
    ) -> Result<QueryResult, CdbError> {
        let before = pager.stats();
        let a = sel.halfplane.slope2d();
        let b = sel.halfplane.intercept;
        // Nearest slope in *slope* distance (the paper's |a1−a| < |a2−a|),
        // i.e. by comparison with a_mid — this must match the handicap
        // strips, which are computed over the slope intervals
        // [aᵢ, (aᵢ+aⱼ)/2]: routing by any other metric (e.g. angle) can
        // send a query to a tree whose strip does not contain its slope,
        // under-covering the reaches and missing results.
        let mid = (self.slopes().get(lo_idx) + self.slopes().get(hi_idx)) / 2.0;
        let (near, side) = if a <= mid {
            (lo_idx, Side::Next)
        } else {
            (hi_idx, Side::Prev)
        };
        let (use_up, upward) = tree_and_direction(sel.kind, sel.halfplane.op);
        let tree = self.tree(near, use_up);
        let raw =
            handicap_guided_candidates(tree, pager, b, upward, &|h| side_low(h, side), &|h| {
                side_high(h, side)
            })?;
        let mut stats = QueryStats {
            candidates: raw.len() as u64,
            ..QueryStats::default()
        };
        stats.index_io = pager.stats().since(&before);
        // The two sweeps visit disjoint leaf sets and every tuple occurs
        // once per tree: no duplicates by construction.
        debug_assert!(
            {
                let mut v = raw.clone();
                v.sort_unstable();
                v.windows(2).all(|w| w[0] != w[1])
            },
            "T2 must not produce duplicates"
        );
        let heap_before = pager.stats();
        let ids = refine(pager, sel, raw, fetch, &mut stats)?;
        stats.heap_io = pager.stats().since(&heap_before);
        Ok(QueryResult::new(ids, stats))
    }
}

fn side_low(h: &Handicaps, side: Side) -> f64 {
    match side {
        Side::Prev => h.low_prev,
        Side::Next => h.low_next,
    }
}

fn side_high(h: &Handicaps, side: Side) -> f64 {
    match side {
        Side::Prev => h.high_prev,
        Side::Next => h.high_next,
    }
}

/// The two handicap-guided sweeps of technique T2 (Section 4.2 Step 3),
/// shared by the 2-D index and the d-dimensional grid extension.
///
/// First sweep: from `b` in the query direction, collecting candidates and
/// folding the relevant handicap of every visited leaf into the bound for
/// the second, opposite sweep. The sweeps cover disjoint key ranges, so the
/// result is duplicate-free by construction.
pub(crate) fn handicap_guided_candidates(
    tree: &BTree,
    pager: &dyn PageReader,
    b: f64,
    upward: bool,
    low_of: &dyn Fn(&Handicaps) -> f64,
    high_of: &dyn Fn(&Handicaps) -> f64,
) -> io::Result<Vec<u32>> {
    let mut raw: Vec<u32> = Vec::new();
    if upward {
        // First sweep: upward from b, folding the low handicap.
        let start = b - key_slack(b);
        let mut low_q = f64::INFINITY;
        let mut visited = false;
        tree.sweep_up(pager, start, |snap| {
            visited = true;
            low_q = low_q.min(low_of(&snap.handicaps));
            raw.extend(snap.entries.iter().map(|e| e.1));
            SweepControl::Continue
        })?;
        if !visited {
            // b beyond every key: bucketed reaches clamp to the last leaf,
            // whose handicap must still be honoured.
            let h = tree.read_handicaps(pager, tree.last_leaf())?;
            low_q = low_of(&h);
        }
        // Second sweep: downward, disjoint from the first, to low(q).
        if low_q < f64::INFINITY {
            let bound = low_q - key_slack(low_q);
            let from = start.next_down();
            tree.sweep_down(pager, from, |snap| {
                for &(k, v) in &snap.entries {
                    if k < bound {
                        return SweepControl::Stop;
                    }
                    raw.push(v);
                }
                SweepControl::Continue
            })?;
        }
    } else {
        // Mirror image: downward first, folding the high handicap.
        let start = b + key_slack(b);
        let mut high_q = f64::NEG_INFINITY;
        let mut visited = false;
        tree.sweep_down(pager, start, |snap| {
            visited = true;
            high_q = high_q.max(high_of(&snap.handicaps));
            raw.extend(snap.entries.iter().map(|e| e.1));
            SweepControl::Continue
        })?;
        if !visited {
            let h = tree.read_handicaps(pager, tree.first_leaf())?;
            high_q = high_of(&h);
        }
        if high_q > f64::NEG_INFINITY {
            let bound = high_q + key_slack(high_q);
            let from = start.next_up();
            tree.sweep_up(pager, from, |snap| {
                for &(k, v) in &snap.entries {
                    if k > bound {
                        return SweepControl::Stop;
                    }
                    raw.push(v);
                }
                SweepControl::Continue
            })?;
        }
    }
    Ok(raw)
}
