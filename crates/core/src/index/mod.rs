//! The 2-D dual index: `B^up`/`B^down` forests over a slope set, with the
//! restricted (Section 3), T1 (Section 4.1) and T2 (Sections 4.2–4.3) query
//! strategies, each in its own submodule.

mod restricted;
mod t1;
mod t2;

use std::io;

pub(crate) use restricted::sweep_candidates;
pub(crate) use t2::handicap_guided_candidates;

use cdb_btree::{BTree, Handicaps};
use cdb_geometry::constraint::RelOp;
use cdb_geometry::halfplane::HalfPlane;
use cdb_geometry::tuple::GeneralizedTuple;
use cdb_geometry::{dual, predicates};
use cdb_storage::{PageReader, Pager, TrackedReader};

use crate::error::CdbError;
use crate::handicap::{assign_high, assign_low};
use crate::query::{QueryResult, QueryStats, Selection, SelectionKind, Side, Strategy};
use crate::slopes::{Bracket, SlopeSet};

/// Source of tuples for the exact refinement step.
///
/// The batch signature lets real implementations group candidate fetches by
/// heap page — one page access per *distinct* page, the way a production
/// executor refines. Any `Fn(&dyn PageReader, u32) -> GeneralizedTuple`
/// closure is also a (non-batching, infallible) source, which the tests use.
///
/// Sources are `&self` so one source can serve many concurrent queries; the
/// per-query read accounting happens in the reader, not the source.
pub trait TupleSource {
    /// Fetches the tuples for `ids` (result aligned with the input),
    /// charging page accesses to `pager`.
    ///
    /// # Errors
    /// [`CdbError::CorruptRecord`] when a stored record fails to decode.
    fn fetch_batch(
        &self,
        pager: &dyn PageReader,
        ids: &[u32],
    ) -> Result<Vec<GeneralizedTuple>, CdbError>;
}

impl<F> TupleSource for F
where
    F: Fn(&dyn PageReader, u32) -> GeneralizedTuple,
{
    fn fetch_batch(
        &self,
        pager: &dyn PageReader,
        ids: &[u32],
    ) -> Result<Vec<GeneralizedTuple>, CdbError> {
        Ok(ids.iter().map(|&id| self(pager, id)).collect())
    }
}

/// The two B⁺-trees of one slope: `B^up` keyed by `TOP_P`, `B^down` by
/// `BOT_P`.
#[derive(Clone, Debug)]
struct TreePair {
    up: BTree,
    down: BTree,
}

/// Dual-representation index over a 2-D generalized relation.
///
/// ```
/// use cdb_core::{DualIndex, Selection, SlopeSet, Strategy};
/// use cdb_geometry::parse::parse_tuple;
/// use cdb_geometry::tuple::GeneralizedTuple;
/// use cdb_geometry::HalfPlane;
/// use cdb_storage::{MemPager, PageReader};
///
/// let tuples = vec![
///     (0, parse_tuple("y >= 0 && y <= 1 && x >= 0 && x <= 1").unwrap()),
///     (1, parse_tuple("y >= x && x >= 5").unwrap()), // unbounded wedge
/// ];
/// let mut pager = MemPager::paper_1999();
/// let idx = DualIndex::build(&mut pager, SlopeSet::uniform_tan(3), &tuples).unwrap();
///
/// let lookup = tuples.clone();
/// let fetch = move |_: &dyn PageReader, id: u32| -> GeneralizedTuple {
///     lookup.iter().find(|(i, _)| *i == id).unwrap().1.clone()
/// };
/// // EXIST with an arbitrary slope runs technique T2 — from `&self` and a
/// // shared read-only pager, so many queries can run concurrently.
/// let sel = Selection::exist(HalfPlane::above(0.25, 3.0)); // y >= x/4 + 3
/// let r = idx.execute(&pager, &sel, Strategy::T2, &fetch).unwrap();
/// assert_eq!(r.ids(), &[1], "only the wedge reaches that high");
/// assert_eq!(r.stats.duplicates, 0);
/// ```
#[derive(Clone, Debug)]
pub struct DualIndex {
    slopes: SlopeSet,
    pairs: Vec<TreePair>,
    /// Where the app-query lines of T1 are anchored: the x coordinate of the
    /// point `P` on the query line (Section 4.1, "choice of b1, b2"). The
    /// centre of the data distribution minimizes expected false hits.
    anchor_x: f64,
    dirty: bool,
}

impl DualIndex {
    /// Bulk-builds the index over `(id, tuple)` pairs. All tuples must be
    /// satisfiable and 2-D.
    ///
    /// # Errors
    /// [`CdbError::Io`] when the pager fails while writing tree pages.
    pub fn build(
        pager: &mut dyn Pager,
        slopes: SlopeSet,
        tuples: &[(u32, GeneralizedTuple)],
    ) -> Result<Self, CdbError> {
        let mut pairs = Vec::with_capacity(slopes.len());
        for i in 0..slopes.len() {
            let s = slopes.get(i);
            let mut up_entries: Vec<(f64, u32)> =
                tuples.iter().map(|(id, t)| (top_at(t, s), *id)).collect();
            let mut down_entries: Vec<(f64, u32)> =
                tuples.iter().map(|(id, t)| (bot_at(t, s), *id)).collect();
            up_entries.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN key"));
            down_entries.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN key"));
            pairs.push(TreePair {
                up: BTree::bulk_load(pager, &up_entries, 1.0)?,
                down: BTree::bulk_load(pager, &down_entries, 1.0)?,
            });
        }
        let mut idx = DualIndex {
            slopes,
            pairs,
            anchor_x: 0.0,
            dirty: true,
        };
        idx.refresh_handicaps(pager, tuples)?;
        Ok(idx)
    }

    /// Re-attaches an index from persisted metadata. The trees' node pages
    /// (handicaps included — they live in the bucket leaves) are already on
    /// disk; `pairs` supplies the `(B^up, B^down)` trees per slope in slope
    /// order.
    pub(crate) fn from_parts(
        slopes: SlopeSet,
        pairs: Vec<(BTree, BTree)>,
        anchor_x: f64,
        dirty: bool,
    ) -> Self {
        assert_eq!(slopes.len(), pairs.len(), "one tree pair per slope");
        DualIndex {
            slopes,
            pairs: pairs
                .into_iter()
                .map(|(up, down)| TreePair { up, down })
                .collect(),
            anchor_x,
            dirty,
        }
    }

    /// The `(B^up, B^down)` trees per slope, in slope order — what the
    /// catalog persists.
    pub(crate) fn tree_pairs(&self) -> impl Iterator<Item = (&BTree, &BTree)> {
        self.pairs.iter().map(|p| (&p.up, &p.down))
    }

    /// The slope set `S`.
    pub fn slopes(&self) -> &SlopeSet {
        &self.slopes
    }

    /// The x coordinate of T1's app-query anchor point.
    pub fn anchor_x(&self) -> f64 {
        self.anchor_x
    }

    /// Sets the x coordinate of T1's app-query anchor point.
    pub fn set_anchor_x(&mut self, x: f64) {
        self.anchor_x = x;
    }

    /// Pages owned by the index (the space metric of Figure 10).
    pub fn page_count(&self) -> u64 {
        self.pairs
            .iter()
            .map(|p| p.up.page_count() + p.down.page_count())
            .sum()
    }

    /// Reads every page of every tree through `pager`; under a
    /// checksumming pager any torn or stale page surfaces here. Used by
    /// the open-time verification pass.
    pub fn verify(&self, pager: &dyn PageReader) -> io::Result<()> {
        for (up, down) in self.tree_pairs() {
            up.collect_pages(pager)?;
            down.collect_pages(pager)?;
        }
        Ok(())
    }

    /// Number of indexed entries per tree (should equal the relation size).
    pub fn len(&self) -> u64 {
        self.pairs.first().map(|p| p.up.len()).unwrap_or(0)
    }

    /// `true` when no tuples are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Height of the (first) `B^up` tree — every tree of the forest has the
    /// same height, so this is the per-search descent cost in pages.
    pub fn tree_height(&self) -> usize {
        self.pairs.first().map(|p| p.up.height()).unwrap_or(0)
    }

    /// `true` when updates have *loosened* the handicaps since the last
    /// rebuild. T2 queries remain correct either way (incremental
    /// maintenance is conservative); a
    /// [`refresh_handicaps`](Self::refresh_handicaps) re-tightens them and
    /// restores the best second-sweep bounds.
    pub fn needs_refresh(&self) -> bool {
        self.dirty
    }

    /// Adds one tuple to every tree and folds its reach values into the
    /// bucket leaves' handicaps — the paper's `O(k log_B n)` amortized
    /// update (Theorems 3.1/4.2). The fold is monotone (min/max), so
    /// correctness is maintained incrementally; handicaps only become
    /// *looser* over time and can be re-tightened with
    /// [`refresh_handicaps`](Self::refresh_handicaps).
    pub fn insert(
        &mut self,
        pager: &mut dyn Pager,
        id: u32,
        tuple: &GeneralizedTuple,
    ) -> Result<(), CdbError> {
        for i in 0..self.slopes.len() {
            let s = self.slopes.get(i);
            let top = top_at(tuple, s);
            let bot = bot_at(tuple, s);
            self.pairs[i].up.insert(pager, top, id)?;
            self.pairs[i].down.insert(pager, bot, id)?;
            for side in [Side::Prev, Side::Next] {
                let Some(mid) = self.slopes.mid(i, side) else {
                    continue;
                };
                // Strip extrema at the endpoints (TOP convex, BOT concave).
                let low_reach = top.max(top_at(tuple, mid));
                let high_reach = bot.min(bot_at(tuple, mid));
                for (tree, key) in [(&self.pairs[i].up, top), (&self.pairs[i].down, bot)] {
                    fold_low(pager, tree, side, low_reach, key)?;
                    fold_high(pager, tree, side, high_reach, key)?;
                }
            }
        }
        self.dirty = true; // loose, not invalid
        Ok(())
    }

    /// Removes one tuple from every tree. Handicaps are left in place
    /// (conservative: they may over-cover deleted tuples, never under-cover
    /// live ones; emptied leaves migrate their bounds inside the B⁺-tree).
    pub fn remove(
        &mut self,
        pager: &mut dyn Pager,
        id: u32,
        tuple: &GeneralizedTuple,
    ) -> Result<bool, CdbError> {
        let mut found = true;
        for i in 0..self.slopes.len() {
            let s = self.slopes.get(i);
            found &= self.pairs[i].up.delete(pager, top_at(tuple, s), id)?;
            found &= self.pairs[i].down.delete(pager, bot_at(tuple, s), id)?;
        }
        self.dirty = true; // loose, not invalid
        Ok(found)
    }

    /// Recomputes every leaf's handicap values from the current relation
    /// snapshot (Section 4.2 Steps 1–2), restoring the tightest bounds.
    ///
    /// Incremental updates keep handicaps *correct* at `O(k log_B n)` cost
    /// per update (the paper's amortized bound) but only ever loosen them:
    /// inserts fold monotonically, deletes leave bounds behind, splits copy
    /// them. After heavy update traffic this linear rebuild re-tightens the
    /// second-sweep bounds; build-then-query workloads (the paper's
    /// experiments) run it exactly once at build time.
    pub fn refresh_handicaps(
        &mut self,
        pager: &mut dyn Pager,
        tuples: &[(u32, GeneralizedTuple)],
    ) -> Result<(), CdbError> {
        for i in 0..self.slopes.len() {
            let s = self.slopes.get(i);
            // Surface values at the tree slope.
            let tops: Vec<f64> = tuples.iter().map(|(_, t)| top_at(t, s)).collect();
            let bots: Vec<f64> = tuples.iter().map(|(_, t)| bot_at(t, s)).collect();
            // Reaches per side (None at the ends of S).
            type ReachTables = Option<(Vec<(f64, f64)>, Vec<(f64, f64)>)>;
            let side_pairs = |side: Side| -> ReachTables {
                let mid = self.slopes.mid(i, side)?;
                let mut low_reach = Vec::with_capacity(tuples.len());
                let mut high_reach = Vec::with_capacity(tuples.len());
                for (j, (_, t)) in tuples.iter().enumerate() {
                    // TOP convex / BOT concave ⇒ strip extrema at endpoints.
                    low_reach.push(tops[j].max(top_at(t, mid)));
                    high_reach.push(bots[j].min(bot_at(t, mid)));
                }
                Some((
                    low_reach
                        .iter()
                        .copied()
                        .zip(tops.iter().copied())
                        .collect(),
                    high_reach
                        .iter()
                        .copied()
                        .zip(tops.iter().copied())
                        .collect(),
                ))
            };
            // For B^up the key is TOP; for B^down it is BOT. Build the four
            // (reach, key) tables per tree.
            for up_tree in [true, false] {
                let keys = if up_tree { &tops } else { &bots };
                let tree = if up_tree {
                    &self.pairs[i].up
                } else {
                    &self.pairs[i].down
                };
                let leaves = tree.leaves(&*pager)?;
                let mut low = [
                    vec![f64::INFINITY; leaves.len()],
                    vec![f64::INFINITY; leaves.len()],
                ];
                let mut high = [
                    vec![f64::NEG_INFINITY; leaves.len()],
                    vec![f64::NEG_INFINITY; leaves.len()],
                ];
                for (si, side) in [Side::Prev, Side::Next].into_iter().enumerate() {
                    let Some((low_base, high_base)) = side_pairs(side) else {
                        continue;
                    };
                    // Rekey to this tree's keys.
                    let low_pairs: Vec<(f64, f64)> = low_base
                        .iter()
                        .zip(keys)
                        .map(|(&(reach, _), &k)| (reach, k))
                        .collect();
                    let high_pairs: Vec<(f64, f64)> = high_base
                        .iter()
                        .zip(keys)
                        .map(|(&(reach, _), &k)| (reach, k))
                        .collect();
                    low[si] = assign_low(&leaves, &low_pairs);
                    high[si] = assign_high(&leaves, &high_pairs);
                }
                for (li, leaf) in leaves.iter().enumerate() {
                    tree.set_handicaps(
                        pager,
                        leaf.page,
                        Handicaps {
                            low_prev: low[0][li],
                            low_next: low[1][li],
                            high_prev: high[0][li],
                            high_next: high[1][li],
                        },
                    )?;
                }
            }
        }
        self.dirty = false;
        Ok(())
    }

    /// Executes a selection with the requested strategy.
    ///
    /// `fetch` loads a tuple for the exact refinement step, charging its
    /// page accesses to `pager`. Execution is `&self` over a read-only
    /// pager: the per-query I/O windows in the returned
    /// [`QueryStats`] come from a private [`TrackedReader`], so they stay
    /// exact even when many queries share `pager` concurrently.
    ///
    /// # Errors
    /// [`CdbError::UnsupportedQuery`] — `Restricted` with a slope outside
    /// `S`, a non-2-D query, or `Scan`/`RPlus` (handled a level up by the
    /// planner, which owns the non-dual access methods).
    pub fn execute(
        &self,
        pager: &dyn PageReader,
        sel: &Selection,
        strategy: Strategy,
        fetch: &dyn TupleSource,
    ) -> Result<QueryResult, CdbError> {
        if sel.halfplane.dim() != 2 {
            return Err(CdbError::DimensionMismatch {
                expected: 2,
                got: sel.halfplane.dim(),
            });
        }
        let tracked = TrackedReader::new(pager);
        let pager: &dyn PageReader = &tracked;
        let a = sel.halfplane.slope2d();
        let bracket = self.slopes.bracket(a);
        match (strategy, bracket) {
            (Strategy::Restricted, Bracket::Member(i)) => self.restricted(pager, sel, i, fetch),
            (Strategy::Restricted, _) => Err(CdbError::UnsupportedQuery(format!(
                "slope {a} is not in the predefined set S"
            ))),
            (Strategy::Auto, Bracket::Member(i)) => self.restricted(pager, sel, i, fetch),
            (Strategy::T1 | Strategy::T2, Bracket::Member(i)) => {
                self.restricted(pager, sel, i, fetch)
            }
            (Strategy::T1, _) => self.t1(pager, sel, fetch),
            (Strategy::T2 | Strategy::Auto, Bracket::Between(i, j)) => {
                self.t2(pager, sel, i, j, fetch)
            }
            // The paper details T2 for the main case a1 < a < a2 only; the
            // wrapped cases fall back to T1 exactly like Section 4.1.
            (Strategy::T2 | Strategy::Auto, Bracket::Wrapped(..)) => self.t1(pager, sel, fetch),
            (Strategy::Scan | Strategy::RPlus, _) => Err(CdbError::UnsupportedQuery(
                "Scan and RPlus are executed by the planner, not the dual index".into(),
            )),
        }
    }

    /// Footnote 2 of the paper: *equality* queries. Retrieves tuples whose
    /// extension intersects (`Exist`) or is contained in (`All`) the
    /// hyperplane `x_d = a·x' + c` — e.g. the query generalized tuple
    /// `y = a x + c`. A tuple meets the line iff `BOT ≤ c ≤ TOP`, so the
    /// exact `EXIST(x_d ≥ a·x' + c)` answer (`TOP ≥ c`) is a candidate
    /// superset; one extra refinement pass against the hyperplane predicate
    /// finishes the job.
    pub fn execute_hyperplane(
        &self,
        pager: &dyn PageReader,
        slope: f64,
        c: f64,
        kind: SelectionKind,
        strategy: Strategy,
        fetch: &dyn TupleSource,
    ) -> Result<QueryResult, CdbError> {
        let sup = self.execute(
            pager,
            &Selection::exist(HalfPlane::new2d(slope, c, RelOp::Ge)),
            strategy,
            fetch,
        )?;
        let mut stats = sup.stats;
        let heap_before = pager.stats();
        let candidates: Vec<u32> = sup.ids().to_vec();
        let tuples = fetch.fetch_batch(pager, &candidates)?;
        let mut ids = Vec::with_capacity(candidates.len());
        for (id, t) in candidates.into_iter().zip(&tuples) {
            let keep = match kind {
                SelectionKind::Exist => predicates::exist_hyperplane(&[slope], c, t),
                SelectionKind::All => predicates::all_hyperplane(&[slope], c, t),
            };
            if keep {
                ids.push(id);
            } else {
                stats.false_hits += 1;
            }
        }
        stats.heap_io = stats.heap_io.plus(&pager.stats().since(&heap_before));
        Ok(QueryResult::new(ids, stats))
    }

    /// Frees every page of every tree back to the pager.
    ///
    /// # Errors
    /// [`CdbError::Io`] when collecting the pages to free fails; pages
    /// already freed stay freed.
    pub fn destroy(self, pager: &mut dyn Pager) -> Result<(), CdbError> {
        for pair in self.pairs {
            pair.up.destroy(pager)?;
            pair.down.destroy(pager)?;
        }
        Ok(())
    }

    pub(super) fn tree(&self, i: usize, up: bool) -> &BTree {
        if up {
            &self.pairs[i].up
        } else {
            &self.pairs[i].down
        }
    }
}

/// `TOP_P` for index keys; panics on unsatisfiable tuples (the relation
/// layer rejects them at insert).
fn top_at(t: &GeneralizedTuple, slope: f64) -> f64 {
    dual::top(t, &[slope]).expect("indexed tuples are satisfiable")
}

/// `BOT_P` for index keys.
fn bot_at(t: &GeneralizedTuple, slope: f64) -> f64 {
    dual::bot(t, &[slope]).expect("indexed tuples are satisfiable")
}

/// Folds one `(reach, key)` pair into the low handicap of its bucket leaf:
/// the leaf holding the first entry `≥ reach` (clamped to the last leaf).
pub(crate) fn fold_low(
    pager: &mut dyn Pager,
    tree: &BTree,
    side: Side,
    reach: f64,
    key: f64,
) -> io::Result<()> {
    let page = tree
        .find_first_geq(&*pager, reach)?
        .map(|(p, _)| p)
        .unwrap_or_else(|| tree.last_leaf());
    let mut h = tree.read_handicaps(&*pager, page)?;
    let slot = match side {
        Side::Prev => &mut h.low_prev,
        Side::Next => &mut h.low_next,
    };
    if key < *slot {
        *slot = key;
        tree.set_handicaps(pager, page, h)?;
    }
    Ok(())
}

/// Folds one `(reach, key)` pair into the high handicap of its bucket leaf:
/// the leaf holding the last entry `≤ reach` (clamped to the first leaf).
pub(crate) fn fold_high(
    pager: &mut dyn Pager,
    tree: &BTree,
    side: Side,
    reach: f64,
    key: f64,
) -> io::Result<()> {
    let page = tree
        .find_last_leq(&*pager, reach)?
        .map(|(p, _)| p)
        .unwrap_or_else(|| tree.first_leaf());
    let mut h = tree.read_handicaps(&*pager, page)?;
    let slot = match side {
        Side::Prev => &mut h.high_prev,
        Side::Next => &mut h.high_next,
    };
    if key > *slot {
        *slot = key;
        tree.set_handicaps(pager, page, h)?;
    }
    Ok(())
}

/// Exact refinement: fetches the candidates (batched by the source, so the
/// cost is one page access per distinct heap page) and keeps those
/// satisfying the original selection (Proposition 2.2 evaluated by LP).
pub(crate) fn refine(
    pager: &dyn PageReader,
    sel: &Selection,
    candidates: Vec<u32>,
    fetch: &dyn TupleSource,
    stats: &mut QueryStats,
) -> Result<Vec<u32>, CdbError> {
    let tuples = fetch.fetch_batch(pager, &candidates)?;
    let mut out = Vec::with_capacity(candidates.len());
    for (id, t) in candidates.into_iter().zip(&tuples) {
        let keep = match sel.kind {
            SelectionKind::All => predicates::all(&sel.halfplane, t),
            SelectionKind::Exist => predicates::exist(&sel.halfplane, t),
        };
        if keep {
            out.push(id);
        } else {
            stats.false_hits += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_geometry::halfplane::HalfPlane;
    use cdb_geometry::predicates::oracle_select;
    use cdb_storage::MemPager;
    use cdb_workload::{DatasetSpec, ObjectSize, QueryGen, QueryKind, TupleGen};

    fn build_index(
        pager: &mut MemPager,
        tuples: &[GeneralizedTuple],
        k: usize,
    ) -> (DualIndex, Vec<(u32, GeneralizedTuple)>) {
        let pairs: Vec<(u32, GeneralizedTuple)> = tuples
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, t)| (i as u32, t))
            .collect();
        let idx = DualIndex::build(pager, SlopeSet::uniform_tan(k), &pairs).unwrap();
        (idx, pairs)
    }

    fn run(
        idx: &DualIndex,
        pager: &MemPager,
        pairs: &[(u32, GeneralizedTuple)],
        sel: &Selection,
        strategy: Strategy,
    ) -> QueryResult {
        let lookup: std::collections::HashMap<u32, GeneralizedTuple> =
            pairs.iter().cloned().collect();
        let fetch = move |_: &dyn PageReader, id: u32| lookup[&id].clone();
        idx.execute(pager, sel, strategy, &fetch).expect("query")
    }

    fn oracle(pairs: &[(u32, GeneralizedTuple)], sel: &Selection) -> Vec<u32> {
        let tuples: Vec<&GeneralizedTuple> = pairs.iter().map(|(_, t)| t).collect();
        oracle_select(&sel.halfplane, sel.kind == SelectionKind::All, tuples)
            .into_iter()
            .map(|i| pairs[i].0)
            .collect()
    }

    #[test]
    fn restricted_matches_oracle_on_member_slopes() {
        let mut pager = MemPager::paper_1999();
        let tuples = DatasetSpec::paper_1999(300, ObjectSize::Small, 1).generate();
        let (idx, pairs) = build_index(&mut pager, &tuples, 4);
        for i in 0..idx.slopes().len() {
            let s = idx.slopes().get(i);
            for b in [-30.0, 0.0, 25.0] {
                for kind in [SelectionKind::All, SelectionKind::Exist] {
                    for op in [RelOp::Ge, RelOp::Le] {
                        let sel = Selection {
                            kind,
                            halfplane: HalfPlane::new2d(s, b, op),
                        };
                        let got = run(&idx, &pager, &pairs, &sel, Strategy::Restricted);
                        assert_eq!(
                            got.ids(),
                            oracle(&pairs, &sel),
                            "{kind:?} {op:?} s={s} b={b}"
                        );
                        assert_eq!(got.stats.duplicates, 0);
                    }
                }
            }
        }
    }

    #[test]
    fn restricted_rejects_foreign_slope() {
        let mut pager = MemPager::paper_1999();
        let tuples = DatasetSpec::paper_1999(20, ObjectSize::Small, 2).generate();
        let (idx, pairs) = build_index(&mut pager, &tuples, 3);
        let sel = Selection::exist(HalfPlane::above(0.123456, 0.0));
        let lookup: std::collections::HashMap<u32, GeneralizedTuple> =
            pairs.iter().cloned().collect();
        let fetch = move |_: &dyn PageReader, id: u32| lookup[&id].clone();
        let err = idx
            .execute(&pager, &sel, Strategy::Restricted, &fetch)
            .unwrap_err();
        assert!(matches!(err, CdbError::UnsupportedQuery(_)));
    }

    #[test]
    fn t1_matches_oracle_arbitrary_slopes() {
        let mut pager = MemPager::paper_1999();
        let tuples = DatasetSpec::paper_1999(250, ObjectSize::Small, 3).generate();
        let (idx, pairs) = build_index(&mut pager, &tuples, 3);
        let mut qg = QueryGen::new(77);
        for kind in [QueryKind::All, QueryKind::Exist] {
            for sel_frac in [0.1, 0.3] {
                let q = qg.calibrated(&tuples, kind, sel_frac);
                let sel = Selection {
                    kind: if kind == QueryKind::All {
                        SelectionKind::All
                    } else {
                        SelectionKind::Exist
                    },
                    halfplane: q.halfplane,
                };
                let got = run(&idx, &pager, &pairs, &sel, Strategy::T1);
                assert_eq!(got.ids(), oracle(&pairs, &sel), "{kind:?} {sel_frac}");
            }
        }
    }

    #[test]
    fn t1_wrapped_slopes() {
        // Query slopes outside [min S, max S]: Table 1 rows 2 and 3.
        let mut pager = MemPager::paper_1999();
        let tuples = DatasetSpec::paper_1999(150, ObjectSize::Small, 4).generate();
        let pairs: Vec<(u32, GeneralizedTuple)> = tuples
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, t)| (i as u32, t))
            .collect();
        let idx = DualIndex::build(&mut pager, SlopeSet::new(vec![-0.5, 0.7]), &pairs).unwrap();
        for a in [5.0, -4.0, 1.5, -1.0] {
            for kind in [SelectionKind::All, SelectionKind::Exist] {
                for op in [RelOp::Ge, RelOp::Le] {
                    let sel = Selection {
                        kind,
                        halfplane: HalfPlane::new2d(a, 3.0, op),
                    };
                    let got = run(&idx, &pager, &pairs, &sel, Strategy::T1);
                    assert_eq!(got.ids(), oracle(&pairs, &sel), "{kind:?} {op:?} a={a}");
                }
            }
        }
    }

    #[test]
    fn t2_matches_oracle_and_produces_no_duplicates() {
        let mut pager = MemPager::paper_1999();
        let tuples = DatasetSpec::paper_1999(400, ObjectSize::Small, 5).generate();
        let (idx, pairs) = build_index(&mut pager, &tuples, 4);
        let mut qg = QueryGen::new(13);
        for kind in [QueryKind::All, QueryKind::Exist] {
            for sel_frac in [0.05, 0.15, 0.4] {
                let q = qg.calibrated(&tuples, kind, sel_frac);
                let sel = Selection {
                    kind: if kind == QueryKind::All {
                        SelectionKind::All
                    } else {
                        SelectionKind::Exist
                    },
                    halfplane: q.halfplane,
                };
                let got = run(&idx, &pager, &pairs, &sel, Strategy::T2);
                assert_eq!(got.ids(), oracle(&pairs, &sel), "{kind:?} {sel_frac}");
                // Wrapped slopes legitimately fall back to T1 (which may
                // produce duplicates); the no-duplicate guarantee applies to
                // the main case the paper details.
                if matches!(
                    idx.slopes().bracket(sel.halfplane.slope2d()),
                    Bracket::Between(..)
                ) {
                    assert_eq!(got.stats.duplicates, 0);
                }
            }
        }
    }

    #[test]
    fn t2_handles_unbounded_tuples() {
        let mut pager = MemPager::paper_1999();
        let mut g = TupleGen::new(9, cdb_geometry::Rect::paper_window(), ObjectSize::Small);
        let mut tuples: Vec<GeneralizedTuple> = (0..60).map(|_| g.bounded_tuple()).collect();
        tuples.extend((0..40).map(|_| g.unbounded_tuple()));
        let (idx, pairs) = build_index(&mut pager, &tuples, 4);
        for a in [0.3, -0.8, 2.0] {
            for kind in [SelectionKind::All, SelectionKind::Exist] {
                for op in [RelOp::Ge, RelOp::Le] {
                    let sel = Selection {
                        kind,
                        halfplane: HalfPlane::new2d(a, -5.0, op),
                    };
                    let got = run(&idx, &pager, &pairs, &sel, Strategy::T2);
                    assert_eq!(got.ids(), oracle(&pairs, &sel), "{kind:?} {op:?} a={a}");
                }
            }
        }
    }

    #[test]
    fn insert_then_query_after_refresh() {
        let mut pager = MemPager::paper_1999();
        let tuples = DatasetSpec::paper_1999(100, ObjectSize::Small, 6).generate();
        let (mut idx, mut pairs) = build_index(&mut pager, &tuples, 3);
        // Insert 50 more.
        let more = DatasetSpec::paper_1999(50, ObjectSize::Small, 60).generate();
        for (j, t) in more.into_iter().enumerate() {
            let id = 1000 + j as u32;
            idx.insert(&mut pager, id, &t).unwrap();
            pairs.push((id, t));
        }
        assert!(idx.needs_refresh());
        idx.refresh_handicaps(&mut pager, &pairs).unwrap();
        assert!(!idx.needs_refresh());
        let sel = Selection::exist(HalfPlane::above(0.37, -3.0));
        let got = run(&idx, &pager, &pairs, &sel, Strategy::T2);
        assert_eq!(got.ids(), oracle(&pairs, &sel));
    }

    #[test]
    fn remove_then_query() {
        let mut pager = MemPager::paper_1999();
        let tuples = DatasetSpec::paper_1999(120, ObjectSize::Small, 8).generate();
        let (mut idx, mut pairs) = build_index(&mut pager, &tuples, 3);
        // Remove every third tuple.
        let removed: Vec<(u32, GeneralizedTuple)> = pairs
            .iter()
            .filter(|(id, _)| id % 3 == 0)
            .cloned()
            .collect();
        for (id, t) in &removed {
            assert!(idx.remove(&mut pager, *id, t).unwrap(), "remove {id}");
        }
        pairs.retain(|(id, _)| id % 3 != 0);
        idx.refresh_handicaps(&mut pager, &pairs).unwrap();
        let sel = Selection::all(HalfPlane::below(-0.21, 40.0));
        let got = run(&idx, &pager, &pairs, &sel, Strategy::T2);
        assert_eq!(got.ids(), oracle(&pairs, &sel));
        // Removing an absent tuple reports false.
        let (id, t) = &removed[0];
        assert!(!idx.remove(&mut pager, *id, t).unwrap());
    }

    #[test]
    fn t2_is_correct_without_refresh_after_updates() {
        // Incremental maintenance: inserts and deletes keep the handicaps
        // conservative, so T2 stays exact with no rebuild at all.
        let mut pager = MemPager::paper_1999();
        let tuples = DatasetSpec::paper_1999(120, ObjectSize::Small, 10).generate();
        let (mut idx, mut pairs) = build_index(&mut pager, &tuples, 3);
        let more = DatasetSpec::paper_1999(80, ObjectSize::Medium, 11).generate();
        for (j, t) in more.into_iter().enumerate() {
            let id = 5000 + j as u32;
            idx.insert(&mut pager, id, &t).unwrap();
            pairs.push((id, t));
        }
        let removed: Vec<(u32, GeneralizedTuple)> = pairs
            .iter()
            .filter(|(id, _)| id % 4 == 1)
            .cloned()
            .collect();
        for (id, t) in &removed {
            assert!(idx.remove(&mut pager, *id, t).unwrap());
        }
        pairs.retain(|(id, _)| id % 4 != 1);
        assert!(idx.needs_refresh(), "updates loosen the handicaps");
        for (a, b) in [(0.37, 0.0), (-1.1, 12.0), (0.9, -25.0)] {
            for kind in [SelectionKind::All, SelectionKind::Exist] {
                for op in [RelOp::Ge, RelOp::Le] {
                    let sel = Selection {
                        kind,
                        halfplane: HalfPlane::new2d(a, b, op),
                    };
                    let got = run(&idx, &pager, &pairs, &sel, Strategy::T2);
                    assert_eq!(got.ids(), oracle(&pairs, &sel), "{kind:?} {op:?} a={a}");
                }
            }
        }
        // A refresh re-tightens and of course stays correct.
        idx.refresh_handicaps(&mut pager, &pairs).unwrap();
        assert!(!idx.needs_refresh());
        let sel = Selection::exist(HalfPlane::above(0.41, 3.0));
        let got = run(&idx, &pager, &pairs, &sel, Strategy::T2);
        assert_eq!(got.ids(), oracle(&pairs, &sel));
    }

    #[test]
    fn auto_uses_restricted_for_member_slopes() {
        let mut pager = MemPager::paper_1999();
        let tuples = DatasetSpec::paper_1999(80, ObjectSize::Small, 12).generate();
        let (idx, pairs) = build_index(&mut pager, &tuples, 3);
        let s = idx.slopes().get(1);
        let sel = Selection::exist(HalfPlane::above(s, 0.0));
        let got = run(&idx, &pager, &pairs, &sel, Strategy::Auto);
        assert_eq!(got.ids(), oracle(&pairs, &sel));
        // Restricted executions never fetch tuples.
        assert_eq!(got.stats.heap_io.accesses(), 0);
    }

    #[test]
    fn space_grows_linearly_in_k() {
        let mut pager2 = MemPager::paper_1999();
        let mut pager4 = MemPager::paper_1999();
        let tuples = DatasetSpec::paper_1999(500, ObjectSize::Small, 14).generate();
        let (idx2, _) = build_index(&mut pager2, &tuples, 2);
        let (idx4, _) = build_index(&mut pager4, &tuples, 4);
        let ratio = idx4.page_count() as f64 / idx2.page_count() as f64;
        assert!(
            (1.6..=2.4).contains(&ratio),
            "k=4 should use ~2x the pages of k=2, got {ratio}"
        );
    }

    #[test]
    fn hyperplane_equality_queries() {
        let mut pager = MemPager::paper_1999();
        let mut g =
            cdb_workload::TupleGen::new(3, cdb_geometry::Rect::paper_window(), ObjectSize::Small);
        let mut tuples: Vec<GeneralizedTuple> = (0..150).map(|_| g.bounded_tuple()).collect();
        tuples.extend((0..30).map(|_| g.unbounded_tuple()));
        let (idx, pairs) = build_index(&mut pager, &tuples, 4);
        let lookup: std::collections::HashMap<u32, GeneralizedTuple> =
            pairs.iter().cloned().collect();
        for (a, c) in [(0.3, 0.0), (-1.2, 15.0), (2.0, -30.0), (0.7, 44.0)] {
            for kind in [SelectionKind::Exist, SelectionKind::All] {
                let l1 = lookup.clone();
                let fetch = move |_: &dyn PageReader, id: u32| l1[&id].clone();
                let got = idx
                    .execute_hyperplane(&pager, a, c, kind, Strategy::T2, &fetch)
                    .unwrap();
                let want: Vec<u32> = pairs
                    .iter()
                    .filter(|(_, t)| match kind {
                        SelectionKind::Exist => {
                            cdb_geometry::predicates::exist_hyperplane(&[a], c, t)
                        }
                        SelectionKind::All => cdb_geometry::predicates::all_hyperplane(&[a], c, t),
                    })
                    .map(|(id, _)| *id)
                    .collect();
                assert_eq!(got.ids(), want, "{kind:?} line y = {a}x + {c}");
            }
        }
        // A degenerate tuple lying exactly on a line is ALL-selected by it.
        let segment =
            cdb_geometry::parse::parse_tuple("y = 0.5x + 2 && x >= 0 && x <= 10").unwrap();
        let mut pairs2 = pairs.clone();
        let mut idx2 = idx.clone();
        idx2.insert(&mut pager, 9000, &segment).unwrap();
        pairs2.push((9000, segment));
        let lookup2: std::collections::HashMap<u32, GeneralizedTuple> =
            pairs2.iter().cloned().collect();
        let fetch = move |_: &dyn PageReader, id: u32| lookup2[&id].clone();
        let got = idx2
            .execute_hyperplane(&pager, 0.5, 2.0, SelectionKind::All, Strategy::T2, &fetch)
            .unwrap();
        assert_eq!(got.ids(), &[9000]);
    }

    /// Regression: routing T2 by angle distance instead of slope distance
    /// sent slope −1.159 (between −2.414 and −0.414, k = 4) to the tree at
    /// −2.414, whose handicap strip [−2.414, −1.414] does not contain the
    /// query slope — and EXIST results were silently missed.
    #[test]
    fn t2_routing_matches_handicap_strips() {
        let mut pager = MemPager::paper_1999();
        let tuples = DatasetSpec::paper_1999(4000, ObjectSize::Small, 0x5E1).generate();
        let (idx, pairs) = build_index(&mut pager, &tuples, 4);
        let sel = Selection::exist(HalfPlane::below(-1.1591839945660445, -13.65694655564986));
        let got = run(&idx, &pager, &pairs, &sel, Strategy::T2);
        assert_eq!(got.ids(), oracle(&pairs, &sel));
        // And a sweep of slopes straddling both halves of every gap.
        for a in [-2.0, -1.5, -1.2, -0.9, -0.5, -0.2, 0.2, 0.9, 1.2, 2.0] {
            for op in [RelOp::Ge, RelOp::Le] {
                for kind in [SelectionKind::All, SelectionKind::Exist] {
                    let sel = Selection {
                        kind,
                        halfplane: HalfPlane::new2d(a, -10.0, op),
                    };
                    let got = run(&idx, &pager, &pairs, &sel, Strategy::T2);
                    assert_eq!(got.ids(), oracle(&pairs, &sel), "{kind:?} {op:?} a={a}");
                }
            }
        }
    }

    #[test]
    fn t1_reports_duplicates_t2_none() {
        let mut pager = MemPager::paper_1999();
        let tuples = DatasetSpec::paper_1999(300, ObjectSize::Medium, 15).generate();
        let (idx, pairs) = build_index(&mut pager, &tuples, 2);
        let sel = Selection::exist(HalfPlane::above(0.41, -10.0));
        let r1 = run(&idx, &pager, &pairs, &sel, Strategy::T1);
        let r2 = run(&idx, &pager, &pairs, &sel, Strategy::T2);
        assert_eq!(r1.ids(), r2.ids());
        assert_eq!(r2.stats.duplicates, 0);
        // Medium objects + EXIST: the two T1 legs overlap heavily.
        assert!(
            r1.stats.duplicates > 0,
            "expected duplicates from T1, stats {:?}",
            r1.stats
        );
    }
}
