//! Section 4.1: technique T1 — approximate an arbitrary-slope query with
//! two app-queries at neighbouring slopes of `S` (Table 1), then refine.

use cdb_geometry::constraint::RelOp;
use cdb_storage::PageReader;

use super::{refine, sweep_candidates, DualIndex, TupleSource};
use crate::error::CdbError;
use crate::query::{tree_and_direction, QueryResult, QueryStats, Selection, SelectionKind};
use crate::slopes::Bracket;

impl DualIndex {
    /// Section 4.1: approximate an arbitrary-slope query with two
    /// app-queries (Table 1), then refine exactly.
    pub(super) fn t1(
        &self,
        pager: &dyn PageReader,
        sel: &Selection,
        fetch: &dyn TupleSource,
    ) -> Result<QueryResult, CdbError> {
        let before = pager.stats();
        let a = sel.halfplane.slope2d();
        let b = sel.halfplane.intercept;
        let theta = sel.halfplane.op;
        let (i1, i2, th1, th2) = self.app_query_plan(a, theta);
        // Both app-query lines pass through P = (anchor_x, a·anchor_x + b).
        let py = a * self.anchor_x() + b;
        let legs = [(i1, th1), (i2, th2)];
        let mut raw: Vec<u32> = Vec::new();
        for (li, (si, th)) in legs.into_iter().enumerate() {
            let s = self.slopes().get(si);
            let bi = py - s * self.anchor_x();
            // ALL original: first leg keeps ALL, second leg must be EXIST
            // (Figure 4: two ALL app-queries are incorrect).
            let kind = match (sel.kind, li) {
                (SelectionKind::All, 0) => SelectionKind::All,
                (SelectionKind::All, _) => SelectionKind::Exist,
                (SelectionKind::Exist, _) => SelectionKind::Exist,
            };
            let (use_up, upward) = tree_and_direction(kind, th);
            let tree = self.tree(si, use_up);
            let (sure, check) = sweep_candidates(tree, pager, bi, upward)?;
            raw.extend(sure);
            raw.extend(check);
        }
        let mut stats = QueryStats {
            candidates: raw.len() as u64,
            ..QueryStats::default()
        };
        stats.index_io = pager.stats().since(&before);
        // Dedupe (T1's duplication problem), then exact refinement.
        raw.sort_unstable();
        let before_len = raw.len();
        raw.dedup();
        stats.duplicates = (before_len - raw.len()) as u64;
        let heap_before = pager.stats();
        let ids = refine(pager, sel, raw, fetch, &mut stats)?;
        stats.heap_io = pager.stats().since(&heap_before);
        Ok(QueryResult::new(ids, stats))
    }

    /// Table 1: picks the app-query slopes (clockwise/anticlockwise
    /// neighbours) and operators for an original operator `θ`.
    fn app_query_plan(&self, a: f64, theta: RelOp) -> (usize, usize, RelOp, RelOp) {
        match self.slopes().bracket(a) {
            Bracket::Member(i) => (i, i, theta, theta),
            // a1 < a < a2: both operators keep θ.
            Bracket::Between(i, j) => (i, j, theta, theta),
            Bracket::Wrapped(cw, acw) => {
                if a > self.slopes().get(cw) {
                    // a beyond max(S): a1 = max (clockwise), a2 = min; both
                    // smaller than a — Table 1 row 2: θ1 = θ, θ2 = ¬θ.
                    (cw, acw, theta, theta.negated())
                } else {
                    // a below min(S) — Table 1 row 3: θ1 = ¬θ, θ2 = θ,
                    // with a1 the clockwise (here: max) neighbour.
                    (cw, acw, theta.negated(), theta)
                }
            }
        }
    }
}
