//! Section 3: the restricted technique — exact answers for query slopes in
//! the predefined set `S` via one tree search plus a leaf sweep.

use std::io;

use cdb_btree::{key_slack, BTree, SweepControl};
use cdb_storage::PageReader;

use super::{refine, DualIndex, TupleSource};
use crate::error::CdbError;
use crate::query::{tree_and_direction, QueryResult, QueryStats, Selection};

impl DualIndex {
    /// Section 3: one tree search plus a leaf sweep. With the paper's
    /// 4-byte stored keys the entries within one `f32` quantum of the
    /// threshold cannot be decided from the page alone; only those few are
    /// verified exactly (tuple fetch), every other entry is accepted by key.
    pub(super) fn restricted(
        &self,
        pager: &dyn PageReader,
        sel: &Selection,
        slope_idx: usize,
        fetch: &dyn TupleSource,
    ) -> Result<QueryResult, CdbError> {
        let before = pager.stats();
        let b = sel.halfplane.intercept;
        let (use_up, upward) = tree_and_direction(sel.kind, sel.halfplane.op);
        let tree = self.tree(slope_idx, use_up);
        let (mut sure, check) = sweep_candidates(tree, pager, b, upward)?;
        let mut stats = QueryStats {
            candidates: (sure.len() + check.len()) as u64,
            accepted_by_key: sure.len() as u64,
            ..QueryStats::default()
        };
        stats.index_io = pager.stats().since(&before);
        let heap_before = pager.stats();
        // The boundary-band predicate at the tree's own slope equals the
        // exact selection predicate, so refine() decides it exactly.
        let kept = refine(pager, sel, check, fetch, &mut stats)?;
        stats.heap_io = pager.stats().since(&heap_before);
        sure.extend(kept);
        Ok(QueryResult::new(sure, stats))
    }
}

/// One-direction threshold sweep with `f32`-rounding bands: returns
/// `(sure, boundary)` ids — `sure` certainly satisfy the key test, the
/// boundary band is within one rounding quantum of `b`.
pub(crate) fn sweep_candidates(
    tree: &BTree,
    pager: &dyn PageReader,
    b: f64,
    upward: bool,
) -> io::Result<(Vec<u32>, Vec<u32>)> {
    let slack = key_slack(b);
    let mut sure = Vec::new();
    let mut band = Vec::new();
    if upward {
        tree.sweep_up(pager, b - slack, |snap| {
            for &(k, v) in &snap.entries {
                if k > b + slack {
                    sure.push(v);
                } else {
                    band.push(v);
                }
            }
            SweepControl::Continue
        })?;
    } else {
        tree.sweep_down(pager, b + slack, |snap| {
            for &(k, v) in &snap.entries {
                if k < b - slack {
                    sure.push(v);
                } else {
                    band.push(v);
                }
            }
            SweepControl::Continue
        })?;
    }
    Ok((sure, band))
}
