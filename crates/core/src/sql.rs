//! Constraint-SQL: a small declarative language over constraint relations.
//!
//! ```text
//! SELECT <vars|*> FROM <rel> [JOIN <rel> ...]
//!     [WHERE <linear constraints> [EXIST|ALL]] [LIMIT n]
//! ```
//!
//! The language is deliberately tiny and dependency-free: a hand-written
//! lexer and recursive-descent parser produce a typed AST ([`SqlQuery`])
//! with byte-span error reporting ([`SqlError`]). Semantics follow the
//! geometric query-language tradition (Giusti–Heintz–Kuijpers): a `JOIN`
//! is the conjunction of constraint tuples over a shared variable space,
//! and a projection (`SELECT x, z`) is existential variable elimination.
//! `EXIST` (the default) keeps rows whose region intersects the `WHERE`
//! region; `ALL` keeps rows whose region is contained in it.
//!
//! Variables are positional: `x`, `y`, `z`, `w` name coordinates 1–4, and
//! `xK` names coordinate `K` in any dimension (`x1` ≡ `x`). Constraints
//! are linear comparisons between two linear expressions; `=` expands to
//! the conjunction of `<=` and `>=`, and the strict forms `<`/`>` are
//! treated as their closed counterparts, exactly like the tuple syntax in
//! `cdb_geometry::parse`.
//!
//! This module is the *frontend* only: lowering to a logical plan lives in
//! [`crate::logical`], the Volcano operators in [`crate::physical`], and
//! the entry points on `ConstraintDb`/`Snapshot` in [`crate::db`].

use cdb_geometry::tuple::GeneralizedTuple;
use cdb_geometry::{LinearConstraint, RelOp};

use crate::query::{QueryStats, SelectionKind};

// ----------------------------------------------------------------- errors

/// Byte range of a token or clause inside the query text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// First byte of the offending text.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

/// A parse error with the byte span it refers to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SqlError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Where in the input it went wrong.
    pub span: Span,
}

impl SqlError {
    fn new(message: impl Into<String>, span: Span) -> SqlError {
        SqlError {
            message: message.into(),
            span,
        }
    }
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sql parse error at byte {}..{}: {}",
            self.span.start, self.span.end, self.message
        )
    }
}

impl std::error::Error for SqlError {}

// -------------------------------------------------------------------- AST

/// What the query projects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Projection {
    /// `SELECT *`: rows are tuple ids (no region computation).
    Star,
    /// `SELECT x, z`: project onto the named coordinates, in order.
    Vars(Vec<(usize, Span)>),
}

/// Comparison operator of one parsed constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `<=` (or strict `<`, treated as closed).
    Le,
    /// `>=` (or strict `>`, treated as closed).
    Ge,
    /// `=`, lowered to the conjunction of `<=` and `>=`.
    Eq,
}

/// One parsed linear comparison, normalized to `coeffs · x  cmp  rhs`.
///
/// `coeffs` is as long as the highest variable index mentioned; lowering
/// pads it with zeros to the relation dimension.
#[derive(Clone, Debug, PartialEq)]
pub struct AstConstraint {
    /// Per-variable coefficients (index = coordinate).
    pub coeffs: Vec<f64>,
    /// Right-hand-side constant.
    pub rhs: f64,
    /// The comparison.
    pub cmp: CmpOp,
    /// Byte span of the whole comparison, for error reporting.
    pub span: Span,
}

impl AstConstraint {
    /// Lowers to engine constraints over `dim` coordinates
    /// (`coeffs·x - rhs θ 0`), expanding `=` into its two inequalities.
    ///
    /// Fails when the constraint mentions a coordinate outside `dim`.
    pub fn lower(&self, dim: usize) -> Result<Vec<LinearConstraint>, SqlError> {
        if self.coeffs.len() > dim {
            return Err(SqlError::new(
                format!(
                    "constraint mentions coordinate {} but the query space is {}-dimensional",
                    var_name(self.coeffs.len() - 1),
                    dim
                ),
                self.span,
            ));
        }
        let mut coeffs = self.coeffs.clone();
        coeffs.resize(dim, 0.0);
        let c = -self.rhs;
        Ok(match self.cmp {
            CmpOp::Le => vec![LinearConstraint::new(coeffs, c, RelOp::Le)],
            CmpOp::Ge => vec![LinearConstraint::new(coeffs, c, RelOp::Ge)],
            CmpOp::Eq => LinearConstraint::equality_pair(coeffs, c).to_vec(),
        })
    }
}

/// A parsed constraint-SQL query.
#[derive(Clone, Debug, PartialEq)]
pub struct SqlQuery {
    /// `*` or an ordered variable list.
    pub projection: Projection,
    /// `FROM`/`JOIN` relations, in syntactic order.
    pub relations: Vec<(String, Span)>,
    /// `WHERE` conjuncts (empty when the clause is absent).
    pub constraints: Vec<AstConstraint>,
    /// `EXIST` (default) or `ALL`.
    pub kind: SelectionKind,
    /// `LIMIT n`, when present.
    pub limit: Option<u64>,
}

/// Renders coordinate index `i` as a variable name (`x`, `y`, `z`, `w`,
/// then `x5`, `x6`, …).
pub fn var_name(i: usize) -> String {
    match i {
        0 => "x".into(),
        1 => "y".into(),
        2 => "z".into(),
        3 => "w".into(),
        _ => format!("x{}", i + 1),
    }
}

// ---------------------------------------------------------------- results

/// How a SQL text should be processed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SqlMode {
    /// Parse, plan, execute; return rows.
    Execute,
    /// Parse and plan only; return the rendered operator tree.
    Explain,
    /// Execute, then return the tree annotated with per-node actuals.
    ExplainAnalyze,
}

/// One result row: the matched tuple id per `FROM` relation, plus the
/// projected region when the query projects variables.
#[derive(Clone, Debug, PartialEq)]
pub struct SqlRow {
    /// Tuple ids, one per relation in `FROM`/`JOIN` order.
    pub ids: Vec<u32>,
    /// The projected region (present iff the query is not `SELECT *`).
    pub region: Option<GeneralizedTuple>,
}

/// The result of running (or explaining) a SQL query.
#[derive(Clone, Debug, PartialEq)]
pub struct SqlOutcome {
    /// Column headers: one id column per relation, then the region column
    /// when projecting.
    pub columns: Vec<String>,
    /// Result rows (empty under `Explain`/`ExplainAnalyze`).
    pub rows: Vec<SqlRow>,
    /// Rendered operator tree (present under `Explain`/`ExplainAnalyze`).
    pub plan: Option<String>,
    /// Aggregated I/O and candidate accounting across all scan nodes.
    pub stats: QueryStats,
}

// ------------------------------------------------------------------ lexer

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Star,
    Comma,
    Plus,
    Minus,
    Le,
    Ge,
    Lt,
    Gt,
    Eq,
    AndAnd,
    Semi,
    End,
}

#[derive(Clone, Debug)]
struct Token {
    tok: Tok,
    span: Span,
}

fn lex(text: &str) -> Result<Vec<Token>, SqlError> {
    let b = text.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        let start = i;
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
                continue;
            }
            b'*' => {
                toks.push(Token {
                    tok: Tok::Star,
                    span: Span { start, end: i + 1 },
                });
                i += 1;
            }
            b',' => {
                toks.push(Token {
                    tok: Tok::Comma,
                    span: Span { start, end: i + 1 },
                });
                i += 1;
            }
            b';' => {
                toks.push(Token {
                    tok: Tok::Semi,
                    span: Span { start, end: i + 1 },
                });
                i += 1;
            }
            b'+' => {
                toks.push(Token {
                    tok: Tok::Plus,
                    span: Span { start, end: i + 1 },
                });
                i += 1;
            }
            b'-' => {
                toks.push(Token {
                    tok: Tok::Minus,
                    span: Span { start, end: i + 1 },
                });
                i += 1;
            }
            b'=' => {
                toks.push(Token {
                    tok: Tok::Eq,
                    span: Span { start, end: i + 1 },
                });
                i += 1;
            }
            b'<' | b'>' => {
                let closed = i + 1 < b.len() && b[i + 1] == b'=';
                let end = if closed { i + 2 } else { i + 1 };
                let tok = match (c, closed) {
                    (b'<', true) => Tok::Le,
                    (b'<', false) => Tok::Lt,
                    (b'>', true) => Tok::Ge,
                    _ => Tok::Gt,
                };
                toks.push(Token {
                    tok,
                    span: Span { start, end },
                });
                i = end;
            }
            b'&' => {
                if i + 1 < b.len() && b[i + 1] == b'&' {
                    toks.push(Token {
                        tok: Tok::AndAnd,
                        span: Span { start, end: i + 2 },
                    });
                    i += 2;
                } else {
                    return Err(SqlError::new(
                        "expected '&&' (single '&' is not an operator)",
                        Span { start, end: i + 1 },
                    ));
                }
            }
            b'0'..=b'9' | b'.' => {
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'.') {
                    j += 1;
                }
                // Optional exponent: e[+-]?digits.
                if j < b.len() && (b[j] == b'e' || b[j] == b'E') {
                    let mut k = j + 1;
                    if k < b.len() && (b[k] == b'+' || b[k] == b'-') {
                        k += 1;
                    }
                    if k < b.len() && b[k].is_ascii_digit() {
                        j = k;
                        while j < b.len() && b[j].is_ascii_digit() {
                            j += 1;
                        }
                    }
                }
                let span = Span { start, end: j };
                let v: f64 = text[start..j]
                    .parse()
                    .map_err(|_| SqlError::new("malformed number", span))?;
                if !v.is_finite() {
                    return Err(SqlError::new("number out of range", span));
                }
                toks.push(Token {
                    tok: Tok::Number(v),
                    span,
                });
                i = j;
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                toks.push(Token {
                    tok: Tok::Ident(text[start..j].to_string()),
                    span: Span { start, end: j },
                });
                i = j;
            }
            _ => {
                return Err(SqlError::new(
                    format!(
                        "unexpected character {:?}",
                        text[start..].chars().next().unwrap()
                    ),
                    Span { start, end: i + 1 },
                ));
            }
        }
    }
    toks.push(Token {
        tok: Tok::End,
        span: Span {
            start: b.len(),
            end: b.len(),
        },
    });
    Ok(toks)
}

// ----------------------------------------------------------------- parser

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

/// A linear expression accumulated during parsing: per-variable
/// coefficients plus a constant term.
#[derive(Clone, Debug, Default)]
struct LinExpr {
    coeffs: Vec<f64>,
    constant: f64,
}

impl LinExpr {
    fn add_var(&mut self, var: usize, coeff: f64) {
        if self.coeffs.len() <= var {
            self.coeffs.resize(var + 1, 0.0);
        }
        self.coeffs[var] += coeff;
    }
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos]
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    /// Consumes the next token if it is the given keyword
    /// (case-insensitive).
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Tok::Ident(s) = &self.peek().tok {
            if s.eq_ignore_ascii_case(kw) {
                self.bump();
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::new(
                format!("expected {}", kw.to_ascii_uppercase()),
                self.peek().span,
            ))
        }
    }

    /// `true` when the next token is one of the clause keywords that can
    /// follow the current position (so identifiers in expressions are
    /// distinguishable from keywords).
    fn at_kw(&self, kws: &[&str]) -> bool {
        if let Tok::Ident(s) = &self.peek().tok {
            return kws.iter().any(|k| s.eq_ignore_ascii_case(k));
        }
        false
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), SqlError> {
        let t = self.bump();
        match t.tok {
            Tok::Ident(s) => Ok((s, t.span)),
            _ => Err(SqlError::new(format!("expected {what}"), t.span)),
        }
    }

    /// Resolves a variable name to its 0-based coordinate index.
    fn var_index(name: &str, span: Span) -> Result<usize, SqlError> {
        match name {
            "x" => return Ok(0),
            "y" => return Ok(1),
            "z" => return Ok(2),
            "w" => return Ok(3),
            _ => {}
        }
        if let Some(num) = name.strip_prefix('x') {
            if let Ok(k) = num.parse::<usize>() {
                if (1..=64).contains(&k) {
                    return Ok(k - 1);
                }
            }
        }
        Err(SqlError::new(
            format!("unknown variable '{name}' (use x, y, z, w or xK)"),
            span,
        ))
    }

    // select := SELECT ('*' | var (',' var)*)
    fn projection(&mut self) -> Result<Projection, SqlError> {
        if matches!(self.peek().tok, Tok::Star) {
            self.bump();
            return Ok(Projection::Star);
        }
        let mut vars = Vec::new();
        loop {
            let (name, span) = self.ident("a variable or '*'")?;
            let idx = Self::var_index(&name, span)?;
            if vars.iter().any(|(v, _)| *v == idx) {
                return Err(SqlError::new(
                    format!("variable '{}' selected twice", var_name(idx)),
                    span,
                ));
            }
            vars.push((idx, span));
            if matches!(self.peek().tok, Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        Ok(Projection::Vars(vars))
    }

    // term := number ['*'? var] | var
    fn term(&mut self, expr: &mut LinExpr, sign: f64) -> Result<(), SqlError> {
        let t = self.bump();
        match t.tok {
            Tok::Number(v) => {
                // Optional multiplication: `0.3x`, `0.3*x`, `2 x2`.
                if matches!(self.peek().tok, Tok::Star) {
                    self.bump();
                    let (name, span) = self.ident("a variable after '*'")?;
                    let idx = Self::var_index(&name, span)?;
                    expr.add_var(idx, sign * v);
                } else if let Tok::Ident(name) = &self.peek().tok {
                    if !self.at_kw(&["and", "exist", "all", "limit"]) {
                        let name = name.clone();
                        let vt = self.bump();
                        let idx = Self::var_index(&name, vt.span)?;
                        expr.add_var(idx, sign * v);
                    } else {
                        expr.constant += sign * v;
                    }
                } else {
                    expr.constant += sign * v;
                }
            }
            Tok::Ident(name) => {
                let idx = Self::var_index(&name, t.span)?;
                expr.add_var(idx, sign);
            }
            _ => {
                return Err(SqlError::new("expected a number or variable", t.span));
            }
        }
        Ok(())
    }

    // linexpr := ['-'|'+'] term (('+'|'-') term)*
    fn linexpr(&mut self) -> Result<LinExpr, SqlError> {
        let mut expr = LinExpr::default();
        let mut sign = 1.0;
        if matches!(self.peek().tok, Tok::Minus) {
            self.bump();
            sign = -1.0;
        } else if matches!(self.peek().tok, Tok::Plus) {
            self.bump();
        }
        self.term(&mut expr, sign)?;
        loop {
            match self.peek().tok {
                Tok::Plus => {
                    self.bump();
                    self.term(&mut expr, 1.0)?;
                }
                Tok::Minus => {
                    self.bump();
                    self.term(&mut expr, -1.0)?;
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    // cmp := linexpr (<=|>=|<|>|=) linexpr
    fn comparison(&mut self) -> Result<AstConstraint, SqlError> {
        let start = self.peek().span.start;
        let lhs = self.linexpr()?;
        let op_tok = self.bump();
        let cmp = match op_tok.tok {
            Tok::Le | Tok::Lt => CmpOp::Le,
            Tok::Ge | Tok::Gt => CmpOp::Ge,
            Tok::Eq => CmpOp::Eq,
            _ => {
                return Err(SqlError::new(
                    "expected a comparison operator (<=, >=, =, <, >)",
                    op_tok.span,
                ));
            }
        };
        let rhs = self.linexpr()?;
        let end = self.toks[self.pos.saturating_sub(1)].span.end;
        // Normalize to (lhs - rhs) cmp 0, i.e. coeffs · x cmp constant.
        let n = lhs.coeffs.len().max(rhs.coeffs.len());
        let mut coeffs = vec![0.0; n];
        for (i, c) in lhs.coeffs.iter().enumerate() {
            coeffs[i] += c;
        }
        for (i, c) in rhs.coeffs.iter().enumerate() {
            coeffs[i] -= c;
        }
        // Trim trailing zero coefficients so the constraint's implied
        // dimension is the highest variable actually mentioned.
        while coeffs.last().is_some_and(|c| *c == 0.0) && coeffs.len() > 1 {
            coeffs.pop();
        }
        if !coeffs.iter().all(|c| c.is_finite()) {
            return Err(SqlError::new(
                "constraint coefficients overflow",
                Span { start, end },
            ));
        }
        let rhs_const = rhs.constant - lhs.constant;
        if !rhs_const.is_finite() {
            return Err(SqlError::new(
                "constraint constant overflows",
                Span { start, end },
            ));
        }
        Ok(AstConstraint {
            coeffs,
            rhs: rhs_const,
            cmp,
            span: Span { start, end },
        })
    }

    fn query(&mut self) -> Result<SqlQuery, SqlError> {
        self.expect_kw("select")?;
        let projection = self.projection()?;
        self.expect_kw("from")?;
        let mut relations = vec![self.ident("a relation name")?];
        while self.eat_kw("join") {
            relations.push(self.ident("a relation name")?);
        }
        let mut constraints = Vec::new();
        let mut kind = SelectionKind::Exist;
        if self.eat_kw("where") {
            constraints.push(self.comparison()?);
            loop {
                if matches!(self.peek().tok, Tok::AndAnd) || self.at_kw(&["and"]) {
                    self.bump();
                } else {
                    break;
                }
                constraints.push(self.comparison()?);
            }
            if self.eat_kw("all") {
                kind = SelectionKind::All;
            } else {
                self.eat_kw("exist");
            }
        }
        let limit = if self.eat_kw("limit") {
            let t = self.bump();
            match t.tok {
                Tok::Number(v) if v >= 0.0 && v.fract() == 0.0 && v <= u32::MAX as f64 => {
                    Some(v as u64)
                }
                _ => {
                    return Err(SqlError::new("LIMIT takes a non-negative integer", t.span));
                }
            }
        } else {
            None
        };
        if matches!(self.peek().tok, Tok::Semi) {
            self.bump();
        }
        let t = self.peek();
        if !matches!(t.tok, Tok::End) {
            return Err(SqlError::new("unexpected trailing input", t.span));
        }
        Ok(SqlQuery {
            projection,
            relations,
            constraints,
            kind,
            limit,
        })
    }
}

/// Parses one constraint-SQL statement.
///
/// # Errors
/// [`SqlError`] with the byte span of the offending text.
pub fn parse(text: &str) -> Result<SqlQuery, SqlError> {
    let toks = lex(text)?;
    Parser { toks, pos: 0 }.query()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_select_star() {
        let q = parse("SELECT * FROM parcels").unwrap();
        assert_eq!(q.projection, Projection::Star);
        assert_eq!(q.relations[0].0, "parcels");
        assert!(q.constraints.is_empty());
        assert_eq!(q.kind, SelectionKind::Exist);
        assert_eq!(q.limit, None);
    }

    #[test]
    fn full_query_parses() {
        let q =
            parse("select x, z from r join s where y >= 0.3x - 5 && z <= 2 all limit 10;").unwrap();
        match &q.projection {
            Projection::Vars(v) => {
                assert_eq!(v.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![0, 2]);
            }
            Projection::Star => panic!("expected projection"),
        }
        assert_eq!(q.relations.len(), 2);
        assert_eq!(q.constraints.len(), 2);
        assert_eq!(q.kind, SelectionKind::All);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn constraint_normalizes_sides() {
        // y >= 0.3x - 5  →  -0.3x + y >= -5.
        let q = parse("SELECT * FROM r WHERE y >= 0.3x - 5").unwrap();
        let c = &q.constraints[0];
        assert_eq!(c.cmp, CmpOp::Ge);
        assert!((c.coeffs[0] - -0.3).abs() < 1e-12);
        assert!((c.coeffs[1] - 1.0).abs() < 1e-12);
        assert!((c.rhs - -5.0).abs() < 1e-12);
        let lowered = c.lower(2).unwrap();
        assert_eq!(lowered.len(), 1);
        assert_eq!(lowered[0].op, RelOp::Ge);
        assert!((lowered[0].constant - 5.0).abs() < 1e-12);
    }

    #[test]
    fn equality_lowers_to_pair() {
        let q = parse("SELECT * FROM r WHERE x = 3").unwrap();
        assert_eq!(q.constraints[0].lower(2).unwrap().len(), 2);
    }

    #[test]
    fn and_keyword_and_ampersands_both_conjoin() {
        let a = parse("SELECT * FROM r WHERE x <= 1 AND y <= 2").unwrap();
        let b = parse("SELECT * FROM r WHERE x <= 1 && y <= 2").unwrap();
        assert_eq!(a.constraints.len(), 2);
        // Spans differ ("AND" is wider than "&&"); the semantics must not.
        for (ca, cb) in a.constraints.iter().zip(&b.constraints) {
            assert_eq!(ca.coeffs, cb.coeffs);
            assert_eq!(ca.rhs, cb.rhs);
            assert_eq!(ca.cmp, cb.cmp);
        }
    }

    #[test]
    fn spans_point_at_errors() {
        let e = parse("SELECT * FROM r WHERE q >= 1").unwrap_err();
        assert_eq!(
            &"SELECT * FROM r WHERE q >= 1"[e.span.start..e.span.end],
            "q"
        );
        let e = parse("SELECT * FROM").unwrap_err();
        assert_eq!(e.span.start, "SELECT * FROM".len());
        let e = parse("SELECT * FROM r LIMIT -3").unwrap_err();
        assert!(e.message.contains("LIMIT"));
    }

    #[test]
    fn rejects_out_of_range_numbers() {
        assert!(parse("SELECT * FROM r WHERE x <= 1e999").is_err());
    }

    #[test]
    fn lower_rejects_out_of_dim_vars() {
        let q = parse("SELECT * FROM r WHERE z >= 1").unwrap();
        assert!(q.constraints[0].lower(2).is_err());
        assert!(q.constraints[0].lower(3).is_ok());
    }

    #[test]
    fn keywords_are_case_insensitive_and_vars_resolve() {
        let q = parse("sElEcT x4 FrOm r WhErE x2 <= 1 eXiSt").unwrap();
        assert_eq!(
            q.projection,
            Projection::Vars(vec![(3, Span { start: 7, end: 9 })])
        );
        assert_eq!(q.constraints[0].coeffs.len(), 2);
    }
}
