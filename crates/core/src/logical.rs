//! Logical query plans: the bridge between parsed constraint-SQL
//! ([`crate::sql`]) and the Volcano operators ([`crate::physical`]).
//!
//! Lowering resolves relation names to dimensions, lifts every `WHERE`
//! conjunct into the query's combined variable space (the maximum relation
//! dimension), and builds a left-deep tree of scan / join / filter /
//! project / limit nodes. Three rewrites then run, in order:
//!
//! 1. **Constant folding** — conjuncts that mention no variable are
//!    decided now: vacuous ones are dropped, false ones collapse the whole
//!    plan to [`LogicalPlan::Empty`].
//! 2. **Unsatisfiable-constraint short-circuit** — if the `WHERE` region
//!    itself is empty (phase-1 simplex over the conjunction), the plan is
//!    [`LogicalPlan::Empty`]: under `EXIST` nothing can intersect it, and
//!    under `ALL` nothing can be contained in it because stored tuples are
//!    satisfiable by construction.
//! 3. **Predicate pushdown** — a non-vertical conjunct becomes the
//!    [`Selection`] of an [`LogicalPlan::IndexSelection`] node replacing a
//!    bare scan, so the cost-based planner picks an access method for it
//!    inside the pipeline. Under `ALL` containment distributes over
//!    conjunction, so the pushed conjunct leaves the residual filter; under
//!    `EXIST` joint satisfiability does not distribute, so the pushed
//!    conjunct is a *prefilter* and the filter keeps every conjunct —
//!    unless it was the only one, in which case the index answer is exact
//!    and the filter disappears (this is how a single-constraint SQL query
//!    becomes byte-identical to the typed query path). Joins push `EXIST`
//!    prefilters into both branches when a conjunct fits the branch's
//!    dimension; `ALL` never pushes through a join (`t∧u ⊆ q` does not
//!    bound `t` alone).

use cdb_geometry::halfplane::HalfPlane;
use cdb_geometry::tuple::GeneralizedTuple;
use cdb_geometry::LinearConstraint;

use crate::error::CdbError;
use crate::query::{Selection, SelectionKind};
use crate::sql::{Projection, SqlQuery};

/// A logical plan node. `dim` fields give the width (coordinate count) of
/// the rows the node produces.
#[derive(Clone, Debug, PartialEq)]
pub enum LogicalPlan {
    /// Statically decided to produce no rows.
    Empty {
        /// Relations the query named (for column headers).
        relations: Vec<String>,
        /// Why the plan is empty, for EXPLAIN.
        reason: String,
    },
    /// Full scan of one relation.
    Scan {
        /// Relation name.
        relation: String,
        /// Relation dimension.
        dim: usize,
    },
    /// Planned access-method selection on one relation: the cost-based
    /// planner chooses among seq-scan / dual / dual-d / R⁺ at execution.
    IndexSelection {
        /// Relation name.
        relation: String,
        /// Relation dimension.
        dim: usize,
        /// The pushed-down selection.
        selection: Selection,
        /// `true` when the selection alone answers the query (no residual
        /// filter above), `false` when it is a candidate prefilter.
        exact: bool,
    },
    /// Exact predicate filter over the full `WHERE` conjunction.
    Filter {
        /// EXIST (intersection) or ALL (containment) semantics.
        kind: SelectionKind,
        /// Conjuncts, all lifted to `dim` coordinates.
        constraints: Vec<LinearConstraint>,
        /// Row width.
        dim: usize,
        /// Input node.
        input: Box<LogicalPlan>,
    },
    /// Conjunction join: pairs whose combined constraint system is
    /// satisfiable survive.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Combined row width (max of the inputs').
        dim: usize,
    },
    /// Projection as existential variable elimination (Fourier–Motzkin).
    Project {
        /// Coordinates to keep, in output order.
        keep: Vec<usize>,
        /// Input node.
        input: Box<LogicalPlan>,
    },
    /// Stop after `n` rows.
    Limit {
        /// Row budget.
        n: u64,
        /// Input node.
        input: Box<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// The relations feeding this plan, in `FROM` order.
    pub fn relations(&self) -> Vec<String> {
        match self {
            LogicalPlan::Empty { relations, .. } => relations.clone(),
            LogicalPlan::Scan { relation, .. } | LogicalPlan::IndexSelection { relation, .. } => {
                vec![relation.clone()]
            }
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Limit { input, .. } => input.relations(),
            LogicalPlan::Join { left, right, .. } => {
                let mut r = left.relations();
                r.extend(right.relations());
                r
            }
        }
    }
}

/// Lowers a parsed query into a logical plan. `resolve` maps a relation
/// name to its dimension (and is the existence check).
///
/// # Errors
/// Propagates `resolve` failures; [`CdbError::UnsupportedQuery`] when a
/// constraint or projected variable lies outside the combined space.
pub fn lower(
    q: &SqlQuery,
    resolve: impl Fn(&str) -> Result<usize, CdbError>,
) -> Result<LogicalPlan, CdbError> {
    let mut dims = Vec::with_capacity(q.relations.len());
    for (name, _) in &q.relations {
        dims.push(resolve(name)?);
    }
    let dim = *dims.iter().max().expect("parser guarantees ≥1 relation");
    let mut constraints = Vec::new();
    for ast in &q.constraints {
        let lowered = ast
            .lower(dim)
            .map_err(|e| CdbError::UnsupportedQuery(e.to_string()))?;
        constraints.extend(lowered);
    }
    let mut plan = LogicalPlan::Scan {
        relation: q.relations[0].0.clone(),
        dim: dims[0],
    };
    for ((name, _), d) in q.relations.iter().zip(&dims).skip(1) {
        plan = LogicalPlan::Join {
            left: Box::new(plan),
            right: Box::new(LogicalPlan::Scan {
                relation: name.clone(),
                dim: *d,
            }),
            dim,
        };
    }
    if !constraints.is_empty() {
        plan = LogicalPlan::Filter {
            kind: q.kind,
            constraints,
            dim,
            input: Box::new(plan),
        };
    }
    if let Projection::Vars(vars) = &q.projection {
        for (v, _) in vars {
            if *v >= dim {
                return Err(CdbError::UnsupportedQuery(format!(
                    "cannot project {}: the query space is {dim}-dimensional",
                    crate::sql::var_name(*v)
                )));
            }
        }
        plan = LogicalPlan::Project {
            keep: vars.iter().map(|(v, _)| *v).collect(),
            input: Box::new(plan),
        };
    }
    if let Some(n) = q.limit {
        plan = LogicalPlan::Limit {
            n,
            input: Box::new(plan),
        };
    }
    Ok(plan)
}

/// Runs the rewrite pipeline: constant folding, unsatisfiable-`WHERE`
/// short-circuit, predicate pushdown.
pub fn rewrite(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter {
            kind,
            constraints,
            dim,
            input,
        } => {
            let relations = input.relations();
            // Constant folding: conjuncts with no variable are decided now.
            let zero = vec![0.0; dim];
            let mut live = Vec::with_capacity(constraints.len());
            for c in constraints {
                let constant = c.coeffs.iter().all(|a| *a == 0.0);
                if !constant {
                    live.push(c);
                } else if !c.satisfied_by(&zero) {
                    return LogicalPlan::Empty {
                        relations,
                        reason: "WHERE contains a false constant constraint".into(),
                    };
                }
            }
            if live.is_empty() {
                return rewrite(*input);
            }
            // Unsatisfiable conjunction: nothing intersects an empty
            // region, and no (satisfiable) stored tuple fits inside one.
            if !GeneralizedTuple::new(live.clone()).is_satisfiable() {
                return LogicalPlan::Empty {
                    relations,
                    reason: "WHERE region is unsatisfiable".into(),
                };
            }
            push_down(kind, live, dim, rewrite(*input))
        }
        LogicalPlan::Join { left, right, dim } => LogicalPlan::Join {
            left: Box::new(rewrite(*left)),
            right: Box::new(rewrite(*right)),
            dim,
        },
        LogicalPlan::Project { keep, input } => LogicalPlan::Project {
            keep,
            input: Box::new(rewrite(*input)),
        },
        LogicalPlan::Limit { n, input } => LogicalPlan::Limit {
            n,
            input: Box::new(rewrite(*input)),
        },
        leaf => leaf,
    }
}

/// Tries to turn the first conjunct that fits `dim` coordinates and is
/// non-vertical into a [`Selection`] of the given kind.
fn pushable(
    kind: SelectionKind,
    constraints: &[LinearConstraint],
    dim: usize,
) -> Option<(usize, Selection)> {
    for (i, c) in constraints.iter().enumerate() {
        if c.coeffs.len() > dim && c.coeffs[dim..].iter().any(|a| *a != 0.0) {
            continue;
        }
        let mut fitted = c.clone();
        fitted.coeffs.resize(dim, 0.0);
        if let Some(hp) = HalfPlane::from_constraint(&fitted) {
            return Some((
                i,
                Selection {
                    kind,
                    halfplane: hp,
                },
            ));
        }
    }
    None
}

/// Predicate pushdown over an already-rewritten input.
fn push_down(
    kind: SelectionKind,
    constraints: Vec<LinearConstraint>,
    dim: usize,
    input: LogicalPlan,
) -> LogicalPlan {
    match input {
        LogicalPlan::Scan {
            relation,
            dim: rel_dim,
        } => {
            let Some((i, selection)) = pushable(kind, &constraints, rel_dim) else {
                return LogicalPlan::Filter {
                    kind,
                    constraints,
                    dim,
                    input: Box::new(LogicalPlan::Scan {
                        relation,
                        dim: rel_dim,
                    }),
                };
            };
            // ALL distributes over conjunction: the pushed conjunct is
            // answered exactly by the access method and leaves the
            // residual. EXIST does not: the index prunes, but joint
            // satisfiability must still be checked over every conjunct —
            // unless there is only one.
            let residual: Vec<LinearConstraint> = match kind {
                SelectionKind::All => constraints
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, c)| c.clone())
                    .collect(),
                SelectionKind::Exist => {
                    if constraints.len() == 1 {
                        Vec::new()
                    } else {
                        constraints.clone()
                    }
                }
            };
            let scan = LogicalPlan::IndexSelection {
                relation,
                dim: rel_dim,
                selection,
                exact: residual.is_empty(),
            };
            if residual.is_empty() {
                scan
            } else {
                LogicalPlan::Filter {
                    kind,
                    constraints: residual,
                    dim,
                    input: Box::new(scan),
                }
            }
        }
        LogicalPlan::Join {
            left,
            right,
            dim: jdim,
        } => {
            // EXIST prefilters are sound on each branch (t∧u∧Q satisfiable
            // implies t∧q_i satisfiable); ALL containment is not.
            let (left, right) = if kind == SelectionKind::Exist {
                (
                    prefilter_branch(&constraints, *left),
                    prefilter_branch(&constraints, *right),
                )
            } else {
                (*left, *right)
            };
            LogicalPlan::Filter {
                kind,
                constraints,
                dim,
                input: Box::new(LogicalPlan::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    dim: jdim,
                }),
            }
        }
        other => LogicalPlan::Filter {
            kind,
            constraints,
            dim,
            input: Box::new(other),
        },
    }
}

/// Replaces bare scans under a join branch with EXIST prefilter
/// index-selections when some conjunct fits the branch dimension.
fn prefilter_branch(constraints: &[LinearConstraint], branch: LogicalPlan) -> LogicalPlan {
    match branch {
        LogicalPlan::Scan { relation, dim } => {
            match pushable(SelectionKind::Exist, constraints, dim) {
                Some((_, selection)) => LogicalPlan::IndexSelection {
                    relation,
                    dim,
                    selection,
                    exact: false,
                },
                None => LogicalPlan::Scan { relation, dim },
            }
        }
        LogicalPlan::Join { left, right, dim } => LogicalPlan::Join {
            left: Box::new(prefilter_branch(constraints, *left)),
            right: Box::new(prefilter_branch(constraints, *right)),
            dim,
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse;

    fn resolve2(_: &str) -> Result<usize, CdbError> {
        Ok(2)
    }

    fn lowered(text: &str) -> LogicalPlan {
        rewrite(lower(&parse(text).unwrap(), resolve2).unwrap())
    }

    #[test]
    fn single_constraint_exist_becomes_exact_index_selection() {
        let plan = lowered("SELECT * FROM r WHERE y >= 0.3x - 5 EXIST");
        match plan {
            LogicalPlan::IndexSelection {
                exact, selection, ..
            } => {
                assert!(exact);
                assert_eq!(selection.kind, SelectionKind::Exist);
            }
            other => panic!("expected IndexSelection, got {other:?}"),
        }
    }

    #[test]
    fn multi_constraint_exist_keeps_full_filter() {
        let plan = lowered("SELECT * FROM r WHERE y >= 0.3x - 5 && x <= 4 EXIST");
        match plan {
            LogicalPlan::Filter {
                constraints, input, ..
            } => {
                assert_eq!(constraints.len(), 2);
                assert!(matches!(
                    *input,
                    LogicalPlan::IndexSelection { exact: false, .. }
                ));
            }
            other => panic!("expected Filter, got {other:?}"),
        }
    }

    #[test]
    fn all_pushdown_drops_pushed_conjunct_from_residual() {
        let plan = lowered("SELECT * FROM r WHERE y <= 10 && y >= -10 ALL");
        match plan {
            LogicalPlan::Filter {
                constraints, input, ..
            } => {
                assert_eq!(constraints.len(), 1);
                assert!(matches!(*input, LogicalPlan::IndexSelection { .. }));
            }
            other => panic!("expected Filter, got {other:?}"),
        }
    }

    #[test]
    fn vertical_only_where_stays_scan_plus_filter() {
        let plan = lowered("SELECT * FROM r WHERE x <= 4 EXIST");
        match plan {
            LogicalPlan::Filter { input, .. } => {
                assert!(matches!(*input, LogicalPlan::Scan { .. }));
            }
            other => panic!("expected Filter over Scan, got {other:?}"),
        }
    }

    #[test]
    fn constant_folding_drops_vacuous_and_kills_false() {
        assert!(matches!(
            lowered("SELECT * FROM r WHERE 1 <= 2 && y >= 0"),
            LogicalPlan::IndexSelection { .. }
        ));
        assert!(matches!(
            lowered("SELECT * FROM r WHERE 2 <= 1 && y >= 0"),
            LogicalPlan::Empty { .. }
        ));
    }

    #[test]
    fn unsatisfiable_where_short_circuits() {
        assert!(matches!(
            lowered("SELECT * FROM r WHERE y <= 0 && y >= 1"),
            LogicalPlan::Empty { .. }
        ));
    }

    #[test]
    fn join_gets_exist_prefilters_but_not_all() {
        let plan = lowered("SELECT * FROM r JOIN s WHERE y >= 0 EXIST");
        match &plan {
            LogicalPlan::Filter { input, .. } => match input.as_ref() {
                LogicalPlan::Join { left, right, .. } => {
                    assert!(matches!(
                        **left,
                        LogicalPlan::IndexSelection { exact: false, .. }
                    ));
                    assert!(matches!(
                        **right,
                        LogicalPlan::IndexSelection { exact: false, .. }
                    ));
                }
                other => panic!("expected Join, got {other:?}"),
            },
            other => panic!("expected Filter, got {other:?}"),
        }
        let plan = lowered("SELECT * FROM r JOIN s WHERE y >= 0 ALL");
        match &plan {
            LogicalPlan::Filter { input, .. } => match input.as_ref() {
                LogicalPlan::Join { left, right, .. } => {
                    assert!(matches!(**left, LogicalPlan::Scan { .. }));
                    assert!(matches!(**right, LogicalPlan::Scan { .. }));
                }
                other => panic!("expected Join, got {other:?}"),
            },
            other => panic!("expected Filter, got {other:?}"),
        }
    }

    #[test]
    fn projection_validates_space() {
        let q = parse("SELECT z FROM r").unwrap();
        assert!(lower(&q, resolve2).is_err());
    }
}
