//! Error type of the engine facade.

/// Sentinel tuple id carried by [`CdbError::CorruptRecord`] when the
/// database *catalog* — not an individual stored tuple — fails validation
/// (bad magic, checksum mismatch, truncated blob, torn meta chain).
pub const CATALOG_RECORD: u32 = u32::MAX;

/// Sentinel tuple id carried by [`CdbError::CorruptRecord`] when a
/// write-ahead-log record fails validation during replay. Replay treats it
/// as the end of the usable log suffix, not as a fatal open error.
pub const WAL_RECORD: u32 = u32::MAX - 1;

/// Errors surfaced by the `cdb-core` public API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CdbError {
    /// The named relation does not exist.
    RelationNotFound(String),
    /// A relation with that name already exists.
    RelationExists(String),
    /// Tuple/query dimension differs from the relation's.
    DimensionMismatch {
        /// Dimension the relation was created with.
        expected: usize,
        /// Dimension of the offending tuple or query.
        got: usize,
    },
    /// The tuple's extension is empty; constraint relations store
    /// satisfiable generalized tuples only.
    UnsatisfiableTuple,
    /// The tuple id does not name a live tuple.
    NoSuchTuple(u32),
    /// The relation has no dual index, or its index does not support the
    /// requested operation.
    NoIndex(String),
    /// The query cannot be handled by the chosen strategy (e.g. a vertical
    /// query boundary, or a d-dimensional slope outside the hull of `S`).
    UnsupportedQuery(String),
    /// A stored heap record failed to decode back into a generalized tuple
    /// (truncated or overwritten bytes). Carries the offending tuple id,
    /// or [`CATALOG_RECORD`] when the database catalog itself is corrupt.
    CorruptRecord(u32),
    /// An operating-system I/O failure from the underlying file pager
    /// (open, read, write or sync). Carries the OS error message.
    Io(String),
    /// The relation's heap has corrupt pages; queries against it are
    /// refused until the data is restored from elsewhere. Sibling
    /// relations keep answering normally (graceful degradation).
    Quarantined(String),
    /// The database was opened read-only; mutations are refused.
    ReadOnly,
}

impl std::fmt::Display for CdbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CdbError::RelationNotFound(n) => write!(f, "relation '{n}' not found"),
            CdbError::RelationExists(n) => write!(f, "relation '{n}' already exists"),
            CdbError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "dimension mismatch: relation is {expected}-D, got {got}-D"
                )
            }
            CdbError::UnsatisfiableTuple => {
                write!(f, "tuple is unsatisfiable (empty extension)")
            }
            CdbError::NoSuchTuple(id) => write!(f, "no tuple with id {id}"),
            CdbError::NoIndex(n) => write!(f, "relation '{n}' has no dual index"),
            CdbError::UnsupportedQuery(m) => write!(f, "unsupported query: {m}"),
            CdbError::CorruptRecord(id) if *id == CATALOG_RECORD => {
                write!(f, "database catalog is corrupt (failed to decode)")
            }
            CdbError::CorruptRecord(id) if *id == WAL_RECORD => {
                write!(f, "write-ahead-log record is corrupt (failed to decode)")
            }
            CdbError::CorruptRecord(id) => {
                write!(f, "heap record of tuple {id} is corrupt (failed to decode)")
            }
            CdbError::Io(msg) => write!(f, "i/o error: {msg}"),
            CdbError::Quarantined(n) => {
                write!(f, "relation '{n}' is quarantined (corrupt heap pages)")
            }
            CdbError::ReadOnly => write!(f, "database is read-only"),
        }
    }
}

impl std::error::Error for CdbError {}

impl From<std::io::Error> for CdbError {
    /// Lifts a pager failure into the engine error space. Checksum
    /// mismatches surface as [`CdbError::Io`] too — per-relation corruption
    /// is classified once, at open time, into quarantine state; a checksum
    /// failure seen *during* a query means the device degraded underneath a
    /// live handle.
    fn from(e: std::io::Error) -> Self {
        CdbError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = CdbError::DimensionMismatch {
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("2-D"));
        assert!(e.to_string().contains("3-D"));
        assert!(CdbError::RelationNotFound("r".into())
            .to_string()
            .contains("'r'"));
    }
}
