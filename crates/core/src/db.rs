//! A small constraint-database engine facade: relations (heap files of
//! generalized tuples), dual indexes and query execution, all over one
//! instrumented pager.

use std::collections::HashMap;

use cdb_geometry::halfplane::HalfPlane;
use cdb_geometry::predicates;
use cdb_geometry::tuple::GeneralizedTuple;
use cdb_storage::{HeapFile, IoStats, MemPager, PageReader, Pager, RecordId, DEFAULT_PAGE_SIZE};

use crate::error::CdbError;
use crate::index::DualIndex;
use crate::query::{QueryResult, QueryStats, Selection, SelectionKind, Strategy};
use crate::slopes::SlopeSet;

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct DbConfig {
    /// Page size for every structure.
    pub page_size: usize,
    /// Default query strategy.
    pub strategy: Strategy,
}

impl DbConfig {
    /// The paper's setup: 1024-byte pages, automatic strategy choice
    /// (restricted for slopes in `S`, T2 otherwise).
    pub fn paper_1999() -> Self {
        DbConfig {
            page_size: DEFAULT_PAGE_SIZE,
            strategy: Strategy::Auto,
        }
    }
}

impl Default for DbConfig {
    fn default() -> Self {
        Self::paper_1999()
    }
}

/// A stored generalized relation: tuples in a heap file, plus an optional
/// dual index.
pub struct Relation {
    name: String,
    dim: usize,
    heap: HeapFile,
    slots: Vec<Option<RecordId>>, // tuple id -> heap record
    live: u64,
    index: Option<DualIndex>,
}

impl Relation {
    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dimension of the tuples.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of live tuples.
    pub fn len(&self) -> u64 {
        self.live
    }

    /// `true` when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// `true` when a dual index exists.
    pub fn is_indexed(&self) -> bool {
        self.index.is_some()
    }

    /// The dual index, if built.
    pub fn index(&self) -> Option<&DualIndex> {
        self.index.as_ref()
    }

    /// Heap + index pages currently owned.
    pub fn page_count(&self) -> u64 {
        self.heap.page_count() as u64 + self.index.as_ref().map(|i| i.page_count()).unwrap_or(0)
    }

    /// Fetches a tuple by id, charging the page read to `pager`.
    pub fn fetch(&self, pager: &dyn PageReader, id: u32) -> Result<GeneralizedTuple, CdbError> {
        let rid = self
            .slots
            .get(id as usize)
            .and_then(|r| *r)
            .ok_or(CdbError::NoSuchTuple(id))?;
        let bytes = self.heap.get(pager, rid).ok_or(CdbError::NoSuchTuple(id))?;
        Ok(GeneralizedTuple::decode(&bytes).expect("corrupt tuple record"))
    }

    /// Iterates `(id, tuple)` for all live tuples (one scan of the heap).
    pub fn scan(&self, pager: &dyn PageReader) -> Vec<(u32, GeneralizedTuple)> {
        let by_record: HashMap<RecordId, u32> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(id, r)| r.map(|r| (r, id as u32)))
            .collect();
        self.heap
            .scan(pager)
            .into_iter()
            .filter_map(|(rid, bytes)| {
                by_record.get(&rid).map(|&id| {
                    (
                        id,
                        GeneralizedTuple::decode(&bytes).expect("corrupt tuple record"),
                    )
                })
            })
            .collect()
    }
}

/// Page-batched [`crate::index::TupleSource`] over a relation's heap:
/// candidate fetches cost one page access per *distinct* heap page.
struct HeapSource<'a> {
    heap: &'a HeapFile,
    slots: &'a [Option<RecordId>],
}

impl crate::index::TupleSource for HeapSource<'_> {
    fn fetch_batch(&self, pager: &dyn PageReader, ids: &[u32]) -> Vec<GeneralizedTuple> {
        let rids: Vec<RecordId> = ids
            .iter()
            .map(|&id| self.slots[id as usize].expect("index returned a dead tuple id"))
            .collect();
        self.heap
            .get_many(pager, &rids)
            .into_iter()
            .map(|bytes| {
                GeneralizedTuple::decode(&bytes.expect("index returned a dead tuple id"))
                    .expect("corrupt tuple record")
            })
            .collect()
    }
}

/// Read-only view of the engine pager that is shareable across threads
/// (`dyn Pager` has `Send + Sync` supertraits, so the borrow is `Sync`; the
/// wrapper re-exposes just the [`PageReader`] half).
struct ReadHalf<'a>(&'a dyn Pager);

impl PageReader for ReadHalf<'_> {
    fn page_size(&self) -> usize {
        self.0.page_size()
    }

    fn read(&self, id: cdb_storage::PageId, buf: &mut [u8]) {
        self.0.read(id, buf);
    }

    fn live_pages(&self) -> usize {
        self.0.live_pages()
    }

    fn stats(&self) -> IoStats {
        self.0.stats()
    }
}

/// The engine: a pager, a catalog of relations, and query execution.
pub struct ConstraintDb {
    pager: Box<dyn Pager>,
    config: DbConfig,
    relations: HashMap<String, Relation>,
}

impl ConstraintDb {
    /// An engine over an in-memory pager (the experimental substrate).
    pub fn in_memory(config: DbConfig) -> Self {
        ConstraintDb {
            pager: Box::new(MemPager::new(config.page_size)),
            config,
            relations: HashMap::new(),
        }
    }

    /// An engine over a caller-supplied pager (e.g. a
    /// [`cdb_storage::file::FilePager`] or a buffer pool).
    pub fn with_pager(pager: Box<dyn Pager>, config: DbConfig) -> Self {
        assert_eq!(pager.page_size(), config.page_size, "page size mismatch");
        ConstraintDb {
            pager,
            config,
            relations: HashMap::new(),
        }
    }

    /// I/O accounting of the underlying pager.
    pub fn io_stats(&self) -> IoStats {
        self.pager.stats()
    }

    /// Zeroes the pager's counters.
    pub fn reset_io_stats(&mut self) {
        self.pager.reset_stats();
    }

    /// Live pages across all relations and indexes (the space metric).
    pub fn live_pages(&self) -> usize {
        self.pager.live_pages()
    }

    /// Creates an empty relation of the given dimension.
    ///
    /// # Errors
    /// [`CdbError::RelationExists`] if the name is taken.
    pub fn create_relation(&mut self, name: &str, dim: usize) -> Result<&Relation, CdbError> {
        if self.relations.contains_key(name) {
            return Err(CdbError::RelationExists(name.into()));
        }
        assert!(dim >= 1, "dimension must be positive");
        let heap = HeapFile::new(self.pager.as_mut());
        self.relations.insert(
            name.to_string(),
            Relation {
                name: name.to_string(),
                dim,
                heap,
                slots: Vec::new(),
                live: 0,
                index: None,
            },
        );
        Ok(&self.relations[name])
    }

    /// Names of all relations, sorted.
    pub fn relation_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.relations.keys().cloned().collect();
        v.sort();
        v
    }

    /// Drops a relation, freeing its heap and index pages.
    pub fn drop_relation(&mut self, name: &str) -> Result<(), CdbError> {
        let rel = self
            .relations
            .remove(name)
            .ok_or_else(|| CdbError::RelationNotFound(name.into()))?;
        let pager = self.pager.as_mut();
        rel.heap.destroy(pager);
        // Indexes own plain B+-trees; rebuilding a DualIndex exposes no
        // page list, so free through the pager's bookkeeping: the index is
        // dropped with the struct and its pages reclaimed via destroy().
        if let Some(idx) = rel.index {
            idx.destroy(pager);
        }
        Ok(())
    }

    /// The named relation.
    pub fn relation(&self, name: &str) -> Result<&Relation, CdbError> {
        self.relations
            .get(name)
            .ok_or_else(|| CdbError::RelationNotFound(name.into()))
    }

    /// The read half of the engine pager (shareable across query threads).
    fn reader(&self) -> ReadHalf<'_> {
        ReadHalf(&*self.pager)
    }

    /// Fetches one tuple by id.
    pub fn fetch_tuple(&self, name: &str, id: u32) -> Result<GeneralizedTuple, CdbError> {
        let rel = self
            .relations
            .get(name)
            .ok_or_else(|| CdbError::RelationNotFound(name.into()))?;
        rel.fetch(&self.reader(), id)
    }

    /// All live `(id, tuple)` pairs of a relation.
    pub fn scan_relation(&self, name: &str) -> Result<Vec<(u32, GeneralizedTuple)>, CdbError> {
        let rel = self
            .relations
            .get(name)
            .ok_or_else(|| CdbError::RelationNotFound(name.into()))?;
        Ok(rel.scan(&self.reader()))
    }

    /// Inserts a satisfiable tuple, returning its id. Maintains the dual
    /// index if one exists (`O(k log_B n)` tree inserts; handicaps are
    /// refreshed lazily before the next T2 query).
    pub fn insert(&mut self, name: &str, tuple: GeneralizedTuple) -> Result<u32, CdbError> {
        let rel_dim = self.relation(name)?.dim;
        if rel_dim != tuple.dim() {
            return Err(CdbError::DimensionMismatch {
                expected: rel_dim,
                got: tuple.dim(),
            });
        }
        if !tuple.is_satisfiable() {
            return Err(CdbError::UnsatisfiableTuple);
        }
        let pager = self.pager.as_mut();
        let rel = self.relations.get_mut(name).expect("checked above");
        let rid = rel.heap.insert(pager, &tuple.encode());
        let id = rel.slots.len() as u32;
        rel.slots.push(Some(rid));
        rel.live += 1;
        if let Some(idx) = rel.index.as_mut() {
            idx.insert(pager, id, &tuple);
        }
        Ok(id)
    }

    /// Deletes a tuple by id. Returns the removed tuple.
    pub fn delete(&mut self, name: &str, id: u32) -> Result<GeneralizedTuple, CdbError> {
        let pager = self.pager.as_mut();
        let rel = self
            .relations
            .get_mut(name)
            .ok_or_else(|| CdbError::RelationNotFound(name.into()))?;
        let tuple = rel.fetch(&*pager, id)?;
        let rid = rel.slots[id as usize].take().expect("checked by fetch");
        rel.heap.delete(pager, rid);
        rel.live -= 1;
        if let Some(idx) = rel.index.as_mut() {
            idx.remove(pager, id, &tuple);
        }
        Ok(tuple)
    }

    /// Builds (or rebuilds) the dual index of a 2-D relation over `slopes`.
    pub fn build_dual_index(&mut self, name: &str, slopes: SlopeSet) -> Result<(), CdbError> {
        let pager = self.pager.as_mut();
        let rel = self
            .relations
            .get_mut(name)
            .ok_or_else(|| CdbError::RelationNotFound(name.into()))?;
        if rel.dim != 2 {
            return Err(CdbError::UnsupportedQuery(
                "the 2-D dual index requires a 2-D relation (see ddim for E^d)".into(),
            ));
        }
        let tuples = rel.scan(&*pager);
        rel.index = Some(DualIndex::build(pager, slopes, &tuples));
        Ok(())
    }

    /// Re-tightens a relation's index handicaps after heavy update traffic
    /// (incremental maintenance keeps them correct but increasingly loose;
    /// see [`DualIndex::refresh_handicaps`]).
    pub fn tighten_index(&mut self, name: &str) -> Result<(), CdbError> {
        let pager = self.pager.as_mut();
        let rel = self
            .relations
            .get_mut(name)
            .ok_or_else(|| CdbError::RelationNotFound(name.into()))?;
        let tuples = rel.scan(&*pager);
        let Some(idx) = rel.index.as_mut() else {
            return Err(CdbError::NoIndex(name.into()));
        };
        idx.refresh_handicaps(pager, &tuples);
        Ok(())
    }

    /// Executes a selection with the engine's default strategy.
    pub fn query(&self, name: &str, sel: Selection) -> Result<QueryResult, CdbError> {
        self.query_with(name, sel, self.config.strategy)
    }

    /// Executes a selection with an explicit strategy. Queries run from
    /// `&self` over the read half of the pager, so any number can execute
    /// concurrently against one engine snapshot (see
    /// [`query_batch`](Self::query_batch)).
    pub fn query_with(
        &self,
        name: &str,
        sel: Selection,
        strategy: Strategy,
    ) -> Result<QueryResult, CdbError> {
        let rel_dim = self.relation(name)?.dim;
        if rel_dim != sel.halfplane.dim() {
            return Err(CdbError::DimensionMismatch {
                expected: rel_dim,
                got: sel.halfplane.dim(),
            });
        }
        if strategy == Strategy::Scan {
            return self.scan_query(name, &sel);
        }
        let rel = self
            .relations
            .get(name)
            .ok_or_else(|| CdbError::RelationNotFound(name.into()))?;
        let Some(idx) = rel.index.as_ref() else {
            return Err(CdbError::NoIndex(name.into()));
        };
        let source = HeapSource {
            heap: &rel.heap,
            slots: &rel.slots,
        };
        idx.execute(&self.reader(), &sel, strategy, &source)
    }

    /// Executes a batch of selections concurrently over the shared engine
    /// snapshot, using a [`crate::exec::QueryExecutor`] with `threads`
    /// worker threads. Results are positionally aligned with the batch.
    pub fn query_batch(
        &self,
        name: &str,
        batch: &[(Selection, Strategy)],
        threads: usize,
    ) -> Result<Vec<Result<QueryResult, CdbError>>, CdbError> {
        let rel = self.relation(name)?;
        let Some(idx) = rel.index.as_ref() else {
            return Err(CdbError::NoIndex(name.into()));
        };
        let source = HeapSource {
            heap: &rel.heap,
            slots: &rel.slots,
        };
        let reader = self.reader();
        let exec = crate::exec::QueryExecutor::new(idx, &reader, &source);
        Ok(exec.run(batch, threads))
    }

    /// Sequential-scan execution: the no-index baseline and the oracle.
    fn scan_query(&self, name: &str, sel: &Selection) -> Result<QueryResult, CdbError> {
        let before = self.pager.stats();
        let rel = self
            .relations
            .get(name)
            .ok_or_else(|| CdbError::RelationNotFound(name.into()))?;
        let tuples = rel.scan(&self.reader());
        let mut ids = Vec::new();
        for (id, t) in &tuples {
            let keep = match sel.kind {
                SelectionKind::All => predicates::all(&sel.halfplane, t),
                SelectionKind::Exist => predicates::exist(&sel.halfplane, t),
            };
            if keep {
                ids.push(*id);
            }
        }
        let mut stats = QueryStats {
            candidates: tuples.len() as u64,
            ..QueryStats::default()
        };
        stats.heap_io = self.pager.stats().since(&before);
        Ok(QueryResult::new(ids, stats))
    }

    /// Equality-query convenience (the paper's footnote 2): tuples whose
    /// extension intersects the line `y = a·x + c`.
    pub fn exist_line(&self, name: &str, a: f64, c: f64) -> Result<QueryResult, CdbError> {
        self.hyperplane_query(name, a, c, SelectionKind::Exist)
    }

    /// Tuples whose extension lies entirely on the line `y = a·x + c`
    /// (degenerate segments/lines).
    pub fn all_line(&self, name: &str, a: f64, c: f64) -> Result<QueryResult, CdbError> {
        self.hyperplane_query(name, a, c, SelectionKind::All)
    }

    fn hyperplane_query(
        &self,
        name: &str,
        a: f64,
        c: f64,
        kind: SelectionKind,
    ) -> Result<QueryResult, CdbError> {
        let strategy = self.config.strategy;
        let rel = self
            .relations
            .get(name)
            .ok_or_else(|| CdbError::RelationNotFound(name.into()))?;
        if rel.dim != 2 {
            return Err(CdbError::DimensionMismatch {
                expected: rel.dim,
                got: 2,
            });
        }
        let Some(idx) = rel.index.as_ref() else {
            return Err(CdbError::NoIndex(name.into()));
        };
        let source = HeapSource {
            heap: &rel.heap,
            slots: &rel.slots,
        };
        idx.execute_hyperplane(&self.reader(), a, c, kind, strategy, &source)
    }

    /// Convenience: EXIST selection via the default strategy.
    pub fn exist(&self, name: &str, q: HalfPlane) -> Result<QueryResult, CdbError> {
        self.query(name, Selection::exist(q))
    }

    /// Convenience: ALL selection via the default strategy.
    pub fn all(&self, name: &str, q: HalfPlane) -> Result<QueryResult, CdbError> {
        self.query(name, Selection::all(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_geometry::parse::parse_tuple;

    fn sample_db() -> ConstraintDb {
        let mut db = ConstraintDb::in_memory(DbConfig::paper_1999());
        db.create_relation("land", 2).unwrap();
        for s in [
            "y >= 0 && y <= 2 && x >= 0 && x + y <= 4",
            "y >= x && y <= x + 1 && x >= 10",
            "y >= -1 && y <= 1 && x >= -3 && x <= -1",
            "y >= 5 && y <= 7 && x >= 5 && x <= 8",
        ] {
            db.insert("land", parse_tuple(s).unwrap()).unwrap();
        }
        db
    }

    #[test]
    fn create_insert_fetch() {
        let mut db = sample_db();
        assert_eq!(db.relation("land").unwrap().len(), 4);
        let t = db.fetch_tuple("land", 0).unwrap();
        assert!(t.contains(&[1.0, 1.0]));
        assert!(db.relation("missing").is_err());
        assert!(matches!(
            db.create_relation("land", 2),
            Err(CdbError::RelationExists(_))
        ));
    }

    #[test]
    fn rejects_bad_tuples() {
        let mut db = sample_db();
        let t3 = parse_tuple("z >= 0").unwrap();
        assert!(matches!(
            db.insert("land", t3),
            Err(CdbError::DimensionMismatch {
                expected: 2,
                got: 3
            })
        ));
        let unsat = parse_tuple("x >= 1 && x <= 0 && y >= 0").unwrap();
        assert!(matches!(
            db.insert("land", unsat),
            Err(CdbError::UnsatisfiableTuple)
        ));
    }

    #[test]
    fn scan_query_works_without_index() {
        let db = sample_db();
        let r = db
            .query_with(
                "land",
                Selection::exist(HalfPlane::above(0.0, 4.5)),
                Strategy::Scan,
            )
            .unwrap();
        // Tuples 1 (unbounded strip) and 3 (high square) reach y >= 4.5.
        assert_eq!(r.ids(), &[1, 3]);
    }

    #[test]
    fn query_without_index_errors() {
        let db = sample_db();
        let err = db.exist("land", HalfPlane::above(0.3, 0.0)).unwrap_err();
        assert!(matches!(err, CdbError::NoIndex(_)));
    }

    #[test]
    fn indexed_queries_match_scan() {
        let mut db = sample_db();
        db.build_dual_index("land", SlopeSet::uniform_tan(4))
            .unwrap();
        for (a, b) in [(0.3, -5.0), (1.0, 0.0), (-0.7, 2.0), (4.0, 1.0)] {
            for sel in [
                Selection::exist(HalfPlane::above(a, b)),
                Selection::exist(HalfPlane::below(a, b)),
                Selection::all(HalfPlane::above(a, b)),
                Selection::all(HalfPlane::below(a, b)),
            ] {
                let want = db.query_with("land", sel.clone(), Strategy::Scan).unwrap();
                for st in [Strategy::T1, Strategy::T2, Strategy::Auto] {
                    let got = db.query_with("land", sel.clone(), st).unwrap();
                    assert_eq!(got.ids(), want.ids(), "{st:?} a={a} b={b}");
                }
            }
        }
    }

    #[test]
    fn insert_after_index_then_query() {
        let mut db = sample_db();
        db.build_dual_index("land", SlopeSet::uniform_tan(3))
            .unwrap();
        db.insert(
            "land",
            parse_tuple("y >= 90 && y <= 95 && x >= 0 && x <= 5").unwrap(),
        )
        .unwrap();
        let r = db.exist("land", HalfPlane::above(0.11, 80.0)).unwrap();
        // Tuple 1 is an unbounded strip with TOP = +∞, so it also qualifies.
        assert_eq!(r.ids(), &[1, 4], "the new tuple is found through the index");
    }

    #[test]
    fn delete_removes_from_results() {
        let mut db = sample_db();
        db.build_dual_index("land", SlopeSet::uniform_tan(3))
            .unwrap();
        let before = db.exist("land", HalfPlane::above(0.11, 4.0)).unwrap();
        assert!(before.ids().contains(&3));
        let removed = db.delete("land", 3).unwrap();
        assert!(removed.contains(&[6.0, 6.0]));
        let after = db.exist("land", HalfPlane::above(0.11, 4.0)).unwrap();
        assert!(!after.ids().contains(&3));
        assert!(matches!(
            db.delete("land", 3),
            Err(CdbError::NoSuchTuple(3))
        ));
    }

    #[test]
    fn io_stats_accumulate_and_reset() {
        let mut db = sample_db();
        db.build_dual_index("land", SlopeSet::uniform_tan(2))
            .unwrap();
        assert!(db.io_stats().accesses() > 0);
        db.reset_io_stats();
        assert_eq!(db.io_stats().accesses(), 0);
        let _ = db.exist("land", HalfPlane::above(0.37, 0.0)).unwrap();
        assert!(db.io_stats().reads > 0, "queries cost page reads");
        assert!(db.live_pages() > 0);
    }

    #[test]
    fn dimension_checked_on_query() {
        let mut db = sample_db();
        db.build_dual_index("land", SlopeSet::uniform_tan(2))
            .unwrap();
        let q3 = HalfPlane::new(vec![1.0, 1.0], 0.0, cdb_geometry::RelOp::Ge);
        assert!(matches!(
            db.query("land", Selection::exist(q3)),
            Err(CdbError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn line_queries_through_facade() {
        let mut db = sample_db();
        db.build_dual_index("land", SlopeSet::uniform_tan(3))
            .unwrap();
        // The unbounded strip (tuple 1) straddles y = x + 0.5 far from the
        // window; the line query must still find it.
        let r = db.exist_line("land", 1.0, 0.5).unwrap();
        assert!(r.ids().contains(&1));
        // y = 50 still hits the unbounded strip (it climbs forever).
        let r = db.exist_line("land", 0.0, 50.0).unwrap();
        assert_eq!(r.ids(), &[1]);
        // A line parallel to the strip but below it misses everything.
        let r = db.exist_line("land", 1.0, -5.0).unwrap();
        assert!(r.is_empty());
        // Nothing is contained in a line here.
        let r = db.all_line("land", 1.0, 0.5).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn unbounded_tuples_round_trip_through_storage() {
        let mut db = ConstraintDb::in_memory(DbConfig::paper_1999());
        db.create_relation("r", 2).unwrap();
        let t = parse_tuple("y >= x").unwrap();
        let id = db.insert("r", t.clone()).unwrap();
        let back = db.fetch_tuple("r", id).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn drop_relation_frees_all_pages() {
        let mut db = sample_db();
        db.build_dual_index("land", SlopeSet::uniform_tan(3))
            .unwrap();
        db.create_relation("other", 2).unwrap();
        db.insert(
            "other",
            parse_tuple("x >= 0 && x <= 1 && y >= 0 && y <= 1").unwrap(),
        )
        .unwrap();
        assert_eq!(
            db.relation_names(),
            vec!["land".to_string(), "other".to_string()]
        );
        let other_pages = db.relation("other").unwrap().page_count() as usize;
        db.drop_relation("land").unwrap();
        assert!(db.relation("land").is_err());
        assert_eq!(db.live_pages(), other_pages, "land's pages reclaimed");
        assert!(matches!(
            db.drop_relation("land"),
            Err(CdbError::RelationNotFound(_))
        ));
    }

    #[test]
    fn page_accounting_matches_pager() {
        let mut db = sample_db();
        db.build_dual_index("land", SlopeSet::uniform_tan(2))
            .unwrap();
        let rel_pages = db.relation("land").unwrap().page_count();
        assert_eq!(rel_pages as usize, db.live_pages());
    }
}
