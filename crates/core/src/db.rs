//! A small constraint-database engine facade: relations (heap files of
//! generalized tuples), access methods (dual indexes, the d-dimensional
//! extension, the R⁺-tree baseline, sequential scan) and cost-based query
//! planning, all over one instrumented pager.
//!
//! # Failure containment
//!
//! Durable state only moves at [`ConstraintDb::checkpoint`] (shadow-page
//! commit): a mutation that fails midway — a device error during an index
//! insert, say — can leave the *in-memory* engine with structures out of
//! step, but the on-disk database is untouched and reopening recovers the
//! last committed state. On open, every relation's pages are verified
//! through the checksumming pager and classified into a
//! [`RelationHealth`]: a corrupt index only *degrades* its relation
//! (queries fall back to the remaining methods and
//! [`ConstraintDb::rebuild_indexes`] repairs it from the heap), while a
//! corrupt heap *quarantines* it — its queries fail with
//! [`CdbError::Quarantined`] but sibling relations keep answering.

use std::collections::HashMap;
use std::io;

use cdb_geometry::halfplane::HalfPlane;
use cdb_geometry::tuple::GeneralizedTuple;
use cdb_geometry::Rect;
use cdb_rplustree::RPlusTree;
use cdb_storage::wal::{wal_path, Wal, WalFaultPlan};
use cdb_storage::{
    EpochStats, FilePager, HeapFile, IoStats, MemPager, PageId, PageReader, Pager, PagerRecovery,
    RecordId, SnapshotReader, DEFAULT_PAGE_SIZE,
};

use crate::ddim::{DualIndexD, SlopePoints};
use crate::error::CdbError;
use crate::index::DualIndex;
use crate::partition::PartitionSpec;
use crate::plan::{
    AccessMethod, DualDAccess, ExplainReport, MethodContext, MethodKind, PlanCatalog, QueryPlan,
    RPlusAccess, RestrictedAccess, SeqScanAccess, T1Access, T2Access,
};
use crate::query::{QueryResult, QueryStats, Selection, SelectionKind, Strategy};
use crate::slopes::SlopeSet;
use crate::wal::WalRecord;

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct DbConfig {
    /// Page size for every structure.
    pub page_size: usize,
    /// Default query strategy (`Auto` = cost-based planner choice).
    pub strategy: Strategy,
}

impl DbConfig {
    /// The paper's setup: 1024-byte pages, cost-based planner choice.
    pub fn paper_1999() -> Self {
        DbConfig {
            page_size: DEFAULT_PAGE_SIZE,
            strategy: Strategy::Auto,
        }
    }
}

impl Default for DbConfig {
    fn default() -> Self {
        Self::paper_1999()
    }
}

/// Verdict of the open-time verification pass for one relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RelationHealth {
    /// Every heap and index page read back and verified.
    Healthy,
    /// The heap is intact but the named index structures have unreadable
    /// pages. Queries keep running on the remaining access methods;
    /// [`ConstraintDb::rebuild_indexes`] re-derives the corrupt ones from
    /// the heap.
    Degraded {
        /// Which structures failed verification: `"dual"`, `"dual-d"`,
        /// `"rplus"`.
        corrupt_indexes: Vec<String>,
    },
    /// The heap itself has unreadable pages — there is no trustworthy
    /// source to rebuild from, so queries and mutations are refused with
    /// [`CdbError::Quarantined`] until the data is restored.
    Quarantined {
        /// First verification failure, for diagnostics.
        detail: String,
    },
}

impl std::fmt::Display for RelationHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelationHealth::Healthy => write!(f, "healthy"),
            RelationHealth::Degraded { corrupt_indexes } => {
                write!(f, "degraded (corrupt: {})", corrupt_indexes.join(", "))
            }
            RelationHealth::Quarantined { detail } => {
                write!(f, "quarantined ({detail})")
            }
        }
    }
}

/// What the write-ahead-log replay pass of [`ConstraintDb::open`] found
/// and did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalReplay {
    /// The LSN the log file starts at (its header promise).
    pub start_lsn: u64,
    /// Records applied over the checkpointed base state.
    pub replayed: u64,
    /// LSN of the first applied record (0 when none).
    pub first_lsn: u64,
    /// LSN of the last applied record (0 when none).
    pub last_lsn: u64,
    /// The log ended in a half-written record (bad CRC / broken LSN
    /// chain). Not an error: a torn record was never synced, so its
    /// mutation was never acknowledged.
    pub torn_tail: bool,
    /// A record that decoded but failed to re-apply, or a replay that
    /// could not be absorbed. The log is kept on disk in that case.
    pub error: Option<String>,
}

/// What [`ConstraintDb::open`] found and did: the pager's header-slot
/// recovery, the WAL replay (which runs *before* verification), and the
/// per-relation verification verdicts.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Header recovery performed by the file pager.
    pub pager: PagerRecovery,
    /// `(relation, health)` pairs, sorted by name.
    pub relations: Vec<(String, RelationHealth)>,
    /// Write-ahead-log replay, when a log file was present.
    pub wal: Option<WalReplay>,
}

impl RecoveryReport {
    /// `true` when the pager opened on its newest commit, every relation
    /// verified healthy, and WAL replay (if any) fully absorbed the log.
    /// A torn log tail is still clean — a torn record was never
    /// acknowledged, so nothing promised was lost.
    pub fn is_clean(&self) -> bool {
        self.pager == PagerRecovery::Clean
            && self
                .relations
                .iter()
                .all(|(_, h)| *h == RelationHealth::Healthy)
            && self.wal.as_ref().is_none_or(|w| w.error.is_none())
    }

    /// Names of quarantined relations.
    pub fn quarantined(&self) -> Vec<&str> {
        self.relations
            .iter()
            .filter(|(_, h)| matches!(h, RelationHealth::Quarantined { .. }))
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

fn clean_recovery() -> RecoveryReport {
    RecoveryReport {
        pager: PagerRecovery::Clean,
        relations: Vec::new(),
        wal: None,
    }
}

/// Point-in-time operational statistics for one relation, as reported by
/// [`ConstraintDb::stats_snapshot`] (and served over the wire by the STATS
/// operation).
#[derive(Clone, Debug, PartialEq)]
pub struct RelationStats {
    /// Relation name.
    pub name: String,
    /// Tuple dimension.
    pub dim: usize,
    /// Live tuple count.
    pub live: u64,
    /// Pages of the heap file alone.
    pub heap_pages: u64,
    /// Heap + index pages owned.
    pub total_pages: u64,
    /// Built access structures: any of `"dual"`, `"dual-d"`, `"rplus"`.
    pub indexes: Vec<String>,
    /// Verdict of the last verification pass.
    pub health: RelationHealth,
}

/// Point-in-time snapshot of the whole engine's operational state.
/// Taken through `&self`, so a server can serve it from a shared read
/// lock while queries are in flight.
#[derive(Clone, Debug, PartialEq)]
pub struct DbStats {
    /// Per-relation statistics, sorted by name.
    pub relations: Vec<RelationStats>,
    /// Live pages across all relations and indexes.
    pub live_pages: u64,
    /// Cumulative I/O accounting of the underlying pager.
    pub io: IoStats,
    /// Whether the handle refuses mutations.
    pub read_only: bool,
    /// Consecutive [`ConstraintDb::checkpoint`] failures since the last
    /// success (0 while checkpoints land).
    pub checkpoint_failures: u64,
    /// Write-ahead-log state, when a log is armed.
    pub wal: Option<WalStats>,
    /// MVCC epoch machinery: current publish generation, live pinned
    /// reader views, freed pages awaiting GC. All zero on pagers that have
    /// never published a view.
    pub epochs: EpochStats,
}

/// Point-in-time state of an armed write-ahead log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalStats {
    /// Every mutation with an LSN at or below this is covered by the
    /// durable catalog.
    pub durable_lsn: u64,
    /// The LSN the next mutation will be assigned.
    pub next_lsn: u64,
    /// Records appended but not yet fsynced (not yet acknowledgeable).
    pub pending: u64,
}

/// The Section 5 baseline as a relation-level index: a packed R⁺-tree over
/// the MBRs of *bounded* tuples, plus an overflow list of unbounded tuple
/// ids (no finite MBR exists for those — they are always refined) and a
/// tombstone list for deleted bounded tuples (the packed tree supports
/// inserts but not deletes; rebuild with
/// [`ConstraintDb::build_rplus_index`] to compact).
#[derive(Clone)]
pub struct RPlusIndex {
    /// The packed tree.
    pub tree: RPlusTree,
    /// Ids of unbounded tuples, kept outside the tree.
    pub unbounded: Vec<u32>,
    /// Sorted ids of deleted bounded tuples still present in the tree.
    pub dead: Vec<u32>,
    /// The fill factor the tree was packed at (persisted so a reopened
    /// database reports the same build parameters).
    pub fill: f64,
}

/// A stored generalized relation: tuples in a heap file, optional access
/// structures (2-D dual index, d-dimensional dual index, R⁺-tree), and the
/// planner's per-relation feedback catalog.
///
/// `Clone` copies the in-memory descriptors (slot table, tree roots,
/// catalog EWMAs) but not the pages themselves — a clone paired with a
/// frozen [`SnapshotReader`] view of the pager is exactly what a
/// [`Snapshot`] serves queries from.
#[derive(Clone)]
pub struct Relation {
    pub(crate) name: String,
    pub(crate) dim: usize,
    pub(crate) heap: HeapFile,
    /// Tuple id -> heap record. Persisted by the catalog; `by_record` and
    /// `live` are derived from it on open.
    pub(crate) slots: Vec<Option<RecordId>>,
    pub(crate) by_record: HashMap<RecordId, u32>, // heap record -> tuple id
    pub(crate) live: u64,
    pub(crate) index: Option<DualIndex>,
    pub(crate) index_d: Option<DualIndexD>,
    pub(crate) rplus: Option<RPlusIndex>,
    pub(crate) catalog: PlanCatalog,
    /// Verdict of the last verification pass (always `Healthy` for
    /// relations born in memory; set by `open` for file-backed ones).
    pub(crate) health: RelationHealth,
}

impl Relation {
    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dimension of the tuples.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of live tuples.
    pub fn len(&self) -> u64 {
        self.live
    }

    /// `true` when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// `true` when a 2-D dual index exists.
    pub fn is_indexed(&self) -> bool {
        self.index.is_some()
    }

    /// The 2-D dual index, if built.
    pub fn index(&self) -> Option<&DualIndex> {
        self.index.as_ref()
    }

    /// The d-dimensional dual index, if built.
    pub fn index_d(&self) -> Option<&DualIndexD> {
        self.index_d.as_ref()
    }

    /// The R⁺-tree baseline index, if built.
    pub fn rplus(&self) -> Option<&RPlusIndex> {
        self.rplus.as_ref()
    }

    /// The planner's feedback catalog for this relation.
    pub fn catalog(&self) -> &PlanCatalog {
        &self.catalog
    }

    /// Verdict of the open-time verification pass.
    pub fn health(&self) -> &RelationHealth {
        &self.health
    }

    /// Refuses quarantined relations; every query and mutation path goes
    /// through this gate.
    pub(crate) fn ensure_usable(&self) -> Result<(), CdbError> {
        if matches!(self.health, RelationHealth::Quarantined { .. }) {
            return Err(CdbError::Quarantined(self.name.clone()));
        }
        Ok(())
    }

    /// `(dual, dual-d, rplus)` corruption flags from the health verdict.
    fn corrupt_flags(&self) -> (bool, bool, bool) {
        match &self.health {
            RelationHealth::Degraded { corrupt_indexes } => (
                corrupt_indexes.iter().any(|c| c == "dual"),
                corrupt_indexes.iter().any(|c| c == "dual-d"),
                corrupt_indexes.iter().any(|c| c == "rplus"),
            ),
            _ => (false, false, false),
        }
    }

    /// Clears one structure's corruption flag after a successful rebuild;
    /// a degraded relation with nothing left corrupt becomes healthy.
    fn mark_repaired(&mut self, which: &str) {
        if let RelationHealth::Degraded { corrupt_indexes } = &mut self.health {
            corrupt_indexes.retain(|c| c != which);
            if corrupt_indexes.is_empty() {
                self.health = RelationHealth::Healthy;
            }
        }
    }

    /// Pages of the heap file alone (the planner's scan cost).
    pub fn heap_pages(&self) -> u64 {
        self.heap.page_count() as u64
    }

    /// Page ids owned by the heap file, in allocation order. Index pages
    /// are whatever else the pager has allocated — corruption tooling and
    /// tests use the difference to aim at one structure or the other.
    pub fn heap_page_ids(&self) -> &[PageId] {
        self.heap.pages()
    }

    /// Heap + index pages currently owned.
    pub fn page_count(&self) -> u64 {
        self.heap_pages()
            + self.index.as_ref().map(|i| i.page_count()).unwrap_or(0)
            + self.index_d.as_ref().map(|i| i.page_count()).unwrap_or(0)
            + self
                .rplus
                .as_ref()
                .map(|r| r.tree.page_count())
                .unwrap_or(0)
    }

    /// Fetches a tuple by id, charging the page read to `pager`.
    ///
    /// # Errors
    /// [`CdbError::NoSuchTuple`] for dead/unknown ids;
    /// [`CdbError::CorruptRecord`] when the stored bytes fail to decode;
    /// [`CdbError::Io`] when the page cannot be read.
    pub fn fetch(&self, pager: &dyn PageReader, id: u32) -> Result<GeneralizedTuple, CdbError> {
        let rid = self
            .slots
            .get(id as usize)
            .and_then(|r| *r)
            .ok_or(CdbError::NoSuchTuple(id))?;
        let bytes = self
            .heap
            .get(pager, rid)?
            .ok_or(CdbError::NoSuchTuple(id))?;
        GeneralizedTuple::decode(&bytes).ok_or(CdbError::CorruptRecord(id))
    }

    /// Iterates `(id, tuple)` for all live tuples (one scan of the heap;
    /// record ids resolve through the reverse map maintained on
    /// insert/delete, so no per-scan rebuild).
    ///
    /// # Errors
    /// [`CdbError::CorruptRecord`] when a stored record fails to decode;
    /// [`CdbError::Io`] when a heap page cannot be read.
    pub fn scan(&self, pager: &dyn PageReader) -> Result<Vec<(u32, GeneralizedTuple)>, CdbError> {
        self.heap
            .scan(pager)?
            .into_iter()
            .filter_map(|(rid, bytes)| self.by_record.get(&rid).map(|&id| (id, bytes)))
            .map(|(id, bytes)| {
                GeneralizedTuple::decode(&bytes)
                    .map(|t| (id, t))
                    .ok_or(CdbError::CorruptRecord(id))
            })
            .collect()
    }

    /// Page-batched candidate fetcher over this relation's heap, for
    /// access-method execution.
    pub(crate) fn tuple_source(&self) -> HeapSource<'_> {
        HeapSource {
            heap: &self.heap,
            slots: &self.slots,
        }
    }

    /// Every access method currently available on this relation, boxed as
    /// planner inputs. The sequential scan is always present; index-backed
    /// methods appear once their structure is built — and disappear while
    /// the structure is marked corrupt, so a degraded relation plans
    /// around the damage instead of reading bad pages.
    pub fn access_methods(&self, page_size: usize) -> Vec<Box<dyn AccessMethod + '_>> {
        let ctx = MethodContext {
            n: self.live,
            heap_pages: self.heap_pages(),
            page_size,
        };
        let (c_dual, c_duald, c_rplus) = self.corrupt_flags();
        let mut methods: Vec<Box<dyn AccessMethod + '_>> = vec![Box::new(SeqScanAccess {
            relation: self,
            ctx,
        })];
        if let Some(idx) = self.index.as_ref() {
            if !c_dual {
                methods.push(Box::new(RestrictedAccess { index: idx, ctx }));
                methods.push(Box::new(T2Access { index: idx, ctx }));
                methods.push(Box::new(T1Access { index: idx, ctx }));
            }
        }
        if let Some(idx) = self.index_d.as_ref() {
            if !c_duald {
                methods.push(Box::new(DualDAccess { index: idx, ctx }));
            }
        }
        if let Some(rp) = self.rplus.as_ref() {
            if !c_rplus {
                methods.push(Box::new(RPlusAccess {
                    tree: &rp.tree,
                    unbounded: &rp.unbounded,
                    dead: &rp.dead,
                    ctx,
                }));
            }
        }
        methods
    }
}

/// One open-time verification pass: reads every page the relation owns
/// through the checksumming pager. The heap decides quarantine — it is the
/// ground truth every index rebuild needs; unreadable index pages only
/// degrade the relation.
fn verify_relation(pager: &dyn PageReader, rel: &Relation) -> RelationHealth {
    let mut buf = vec![0u8; pager.page_size()];
    for &p in rel.heap.pages() {
        if let Err(e) = pager.read(p, &mut buf) {
            return RelationHealth::Quarantined {
                detail: format!("heap page {p}: {e}"),
            };
        }
    }
    let mut corrupt_indexes = Vec::new();
    if let Some(idx) = rel.index.as_ref() {
        if idx.verify(pager).is_err() {
            corrupt_indexes.push("dual".to_string());
        }
    }
    if let Some(idx) = rel.index_d.as_ref() {
        if idx.verify(pager).is_err() {
            corrupt_indexes.push("dual-d".to_string());
        }
    }
    if let Some(rp) = rel.rplus.as_ref() {
        if rp.tree.collect_pages(pager).is_err() {
            corrupt_indexes.push("rplus".to_string());
        }
    }
    if corrupt_indexes.is_empty() {
        RelationHealth::Healthy
    } else {
        RelationHealth::Degraded { corrupt_indexes }
    }
}

/// Page-batched [`crate::index::TupleSource`] over a relation's heap:
/// candidate fetches cost one page access per *distinct* heap page.
pub(crate) struct HeapSource<'a> {
    heap: &'a HeapFile,
    slots: &'a [Option<RecordId>],
}

impl crate::index::TupleSource for HeapSource<'_> {
    fn fetch_batch(
        &self,
        pager: &dyn PageReader,
        ids: &[u32],
    ) -> Result<Vec<GeneralizedTuple>, CdbError> {
        let mut rids = Vec::with_capacity(ids.len());
        for &id in ids {
            rids.push(
                self.slots
                    .get(id as usize)
                    .and_then(|r| *r)
                    .ok_or(CdbError::NoSuchTuple(id))?,
            );
        }
        self.heap
            .get_many(pager, &rids)?
            .into_iter()
            .zip(ids)
            .map(|(bytes, &id)| {
                let bytes = bytes.ok_or(CdbError::NoSuchTuple(id))?;
                GeneralizedTuple::decode(&bytes).ok_or(CdbError::CorruptRecord(id))
            })
            .collect()
    }
}

/// Read-only view of the engine pager that is shareable across threads
/// (`dyn Pager` has `Send + Sync` supertraits, so the borrow is `Sync`; the
/// wrapper re-exposes just the [`PageReader`] half).
struct ReadHalf<'a>(&'a dyn Pager);

impl PageReader for ReadHalf<'_> {
    fn page_size(&self) -> usize {
        self.0.page_size()
    }

    fn read(&self, id: cdb_storage::PageId, buf: &mut [u8]) -> io::Result<()> {
        self.0.read(id, buf)
    }

    fn live_pages(&self) -> usize {
        self.0.live_pages()
    }

    fn stats(&self) -> IoStats {
        self.0.stats()
    }
}

/// Maps a legacy [`Strategy`] to the planner's forced-method argument,
/// preserving the historical `NoIndex` errors for explicitly requested
/// index techniques on index-less relations. A structure marked corrupt
/// counts as absent.
pub(crate) fn forced_kind(
    strategy: Strategy,
    rel: &Relation,
) -> Result<Option<MethodKind>, CdbError> {
    let (c_dual, _, c_rplus) = rel.corrupt_flags();
    match strategy {
        Strategy::Auto => Ok(None),
        Strategy::Scan => Ok(Some(MethodKind::SeqScan)),
        Strategy::Restricted | Strategy::T1 | Strategy::T2 => {
            if rel.index.is_none() || c_dual {
                return Err(CdbError::NoIndex(rel.name.clone()));
            }
            Ok(Some(match strategy {
                Strategy::Restricted => MethodKind::Restricted,
                Strategy::T1 => MethodKind::T1,
                _ => MethodKind::T2,
            }))
        }
        Strategy::RPlus => {
            if rel.rplus.is_none() || c_rplus {
                return Err(CdbError::NoIndex(rel.name.clone()));
            }
            Ok(Some(MethodKind::RPlus))
        }
    }
}

/// The planned-execution core shared by the live engine and its snapshots:
/// the planner chooses (or validates the forced) access method, the method
/// runs against `reader`, estimate and method are stamped into the
/// result's stats, and the actuals feed the relation's catalog.
fn planned_on(
    rel: &Relation,
    reader: &dyn PageReader,
    page_size: usize,
    sel: &Selection,
    strategy: Strategy,
) -> Result<(QueryPlan, QueryResult), CdbError> {
    use crate::physical::Operator;
    let mut op =
        crate::physical::IndexScanOp::new(rel, reader, page_size, sel.clone(), strategy, false);
    op.open()?;
    let mut ids = Vec::new();
    while let Some(row) = op.next()? {
        ids.extend_from_slice(&row.ids);
    }
    op.close();
    let (plan, stats) = op.into_plan_stats();
    let plan = plan.expect("open() stamps the chosen plan");
    Ok((plan, QueryResult::new(ids, stats)))
}

/// Plan-only core of EXPLAIN (no execution, no probe ticks): the
/// pipeline's `describe` pass over a one-node plan.
fn plan_on(
    rel: &Relation,
    reader: &dyn PageReader,
    page_size: usize,
    sel: &Selection,
) -> Result<QueryPlan, CdbError> {
    use crate::physical::Operator;
    let mut op = crate::physical::IndexScanOp::new(
        rel,
        reader,
        page_size,
        sel.clone(),
        Strategy::Auto,
        false,
    );
    op.describe()?;
    let (plan, _) = op.into_plan_stats();
    Ok(plan.expect("describe() stamps the chosen plan"))
}

/// Constraint-SQL core shared by the engine and its snapshots: parse →
/// lower → rewrite → build the operator tree → execute or describe.
fn sql_on(
    relations: &HashMap<String, Relation>,
    reader: &dyn PageReader,
    page_size: usize,
    text: &str,
    mode: crate::sql::SqlMode,
) -> Result<crate::sql::SqlOutcome, CdbError> {
    use crate::sql::{Projection, SqlMode, SqlOutcome, SqlRow};
    let query = crate::sql::parse(text).map_err(|e| CdbError::UnsupportedQuery(e.to_string()))?;
    let plan = crate::logical::lower(&query, |name| {
        relations
            .get(name)
            .map(|r| r.dim())
            .ok_or_else(|| CdbError::RelationNotFound(name.to_string()))
    })?;
    let plan = crate::logical::rewrite(plan);
    let mut columns: Vec<String> = query
        .relations
        .iter()
        .map(|(n, _)| format!("id({n})"))
        .collect();
    let keep_regions = match &query.projection {
        Projection::Star => false,
        Projection::Vars(vars) => {
            let names: Vec<String> = vars.iter().map(|(v, _)| crate::sql::var_name(*v)).collect();
            columns.push(format!("region({})", names.join(", ")));
            true
        }
    };
    let ctx = crate::physical::ExecCtx {
        relations,
        reader,
        page_size,
    };
    let mut op = crate::physical::build(&plan, &ctx, keep_regions)?;
    if matches!(mode, SqlMode::Explain) {
        op.describe()?;
        return Ok(SqlOutcome {
            columns,
            rows: Vec::new(),
            plan: Some(crate::pretty::render(&op.node(false))),
            stats: QueryStats::default(),
        });
    }
    op.open()?;
    let mut rows = Vec::new();
    while let Some(row) = op.next()? {
        rows.push(SqlRow {
            ids: row.ids,
            region: if keep_regions { row.region } else { None },
        });
    }
    op.close();
    let mut stats = QueryStats::default();
    op.add_stats(&mut stats);
    if matches!(mode, SqlMode::ExplainAnalyze) {
        return Ok(SqlOutcome {
            columns,
            rows: Vec::new(),
            plan: Some(crate::pretty::render(&op.node(true))),
            stats,
        });
    }
    Ok(SqlOutcome {
        columns,
        rows,
        plan: None,
        stats,
    })
}

/// Line-query core shared by the engine and its snapshots.
fn hyperplane_on(
    rel: &Relation,
    reader: &dyn PageReader,
    a: f64,
    c: f64,
    kind: SelectionKind,
    strategy: Strategy,
) -> Result<QueryResult, CdbError> {
    rel.ensure_usable()?;
    if rel.dim != 2 {
        return Err(CdbError::DimensionMismatch {
            expected: rel.dim,
            got: 2,
        });
    }
    let (c_dual, _, _) = rel.corrupt_flags();
    let Some(idx) = rel.index.as_ref() else {
        return Err(CdbError::NoIndex(rel.name.clone()));
    };
    if c_dual {
        return Err(CdbError::NoIndex(rel.name.clone()));
    }
    let source = HeapSource {
        heap: &rel.heap,
        slots: &rel.slots,
    };
    idx.execute_hyperplane(reader, a, c, kind, strategy, &source)
}

/// The engine: a pager, a catalog of relations, and planned query
/// execution.
pub struct ConstraintDb {
    pager: Box<dyn Pager>,
    config: DbConfig,
    relations: HashMap<String, Relation>,
    /// Structural changes (DDL, inserts/deletes, index builds) since the
    /// last checkpoint. Planner-catalog movement is tracked separately via
    /// [`PlanCatalog::version`] so `&self` query feedback needs no flag.
    dirty: bool,
    /// Sum of every relation's plan-catalog version at the last
    /// checkpoint; a differing sum means the EWMAs moved and are worth
    /// re-persisting.
    committed_plan_version: u64,
    /// Opened via [`ConstraintDb::open_read_only`]: every mutating entry
    /// point refuses with [`CdbError::ReadOnly`].
    read_only: bool,
    /// What `open` found; trivially clean for in-memory engines.
    recovery: RecoveryReport,
    /// The write-ahead log, once [`ConstraintDb::begin_wal`] arms it.
    wal: Option<Wal>,
    /// Database file path for file-backed engines — where the `.wal`
    /// sidecar lives. `None` for in-memory and caller-supplied pagers,
    /// which therefore cannot arm a log.
    wal_base: Option<std::path::PathBuf>,
    /// Every mutation with an LSN at or below this is covered by the
    /// durable catalog (persisted in the catalog header; see
    /// `crate::catalog`).
    durable_lsn: u64,
    /// Consecutive checkpoint failures since the last success.
    checkpoint_failures: u64,
    /// Keep the full WAL history on disk — checkpoints skip truncation,
    /// close and replay keep the file — so a replication primary can ship
    /// any suffix a lagging follower still needs (see
    /// [`ConstraintDb::open_retaining`]).
    retain_wal: bool,
    /// When this engine is one shard of a partitioned deployment: which
    /// tuple ids it may allocate (see [`ConstraintDb::set_partition`]).
    partition: Option<PartitionSpec>,
}

impl ConstraintDb {
    /// An engine over an in-memory pager (the experimental substrate).
    pub fn in_memory(config: DbConfig) -> Self {
        Self::with_pager(Box::new(MemPager::new(config.page_size)), config)
    }

    /// An engine over a caller-supplied pager (e.g. a
    /// [`cdb_storage::file::FilePager`] or a buffer pool).
    pub fn with_pager(pager: Box<dyn Pager>, config: DbConfig) -> Self {
        assert_eq!(pager.page_size(), config.page_size, "page size mismatch");
        ConstraintDb {
            pager,
            config,
            relations: HashMap::new(),
            dirty: false,
            committed_plan_version: 0,
            read_only: false,
            recovery: clean_recovery(),
            wal: None,
            wal_base: None,
            durable_lsn: 0,
            checkpoint_failures: 0,
            retain_wal: false,
            partition: None,
        }
    }

    /// Creates a new on-disk database at `path` and commits an empty
    /// catalog immediately, so every database file carries a valid catalog
    /// from birth (a crash right after `create` reopens as an empty db,
    /// not a corrupt one).
    ///
    /// # Errors
    /// [`CdbError::Io`] when the file cannot be created or synced.
    pub fn create(path: &std::path::Path, config: DbConfig) -> Result<Self, CdbError> {
        let pager =
            FilePager::create(path, config.page_size).map_err(|e| CdbError::Io(e.to_string()))?;
        // A database that lived at this path before may have left a log
        // behind; its records belong to the overwritten file.
        let _ = std::fs::remove_file(wal_path(path));
        let mut db = Self::with_pager(Box::new(pager), config);
        db.wal_base = Some(path.to_path_buf());
        db.dirty = true;
        db.checkpoint()?;
        Ok(db)
    }

    /// Opens an existing database file in three recovery stages:
    ///
    /// 1. rebuilds every relation — heaps, slot tables, dual indexes,
    ///    R⁺-tree, planner EWMAs — from the committed catalog (the header
    ///    flip already happened inside [`FilePager::open`]);
    /// 2. replays any write-ahead-log suffix newer than the catalog's
    ///    durable-LSN watermark through the normal mutation paths, then
    ///    checkpoints and deletes the absorbed log — so an acknowledged
    ///    mutation survives a crash that outran the last checkpoint;
    /// 3. verifies every page each relation owns through the checksumming
    ///    pager and classifies the damage (see [`RecoveryReport`] /
    ///    [`ConstraintDb::recovery_report`]).
    ///
    /// A corrupt index degrades its relation; a corrupt heap quarantines
    /// it; sibling relations are unaffected either way, so `open` succeeds
    /// whenever the catalog itself is intact. A torn WAL tail (a record
    /// that never finished hitting the disk) is skipped silently — it was
    /// never acknowledged; a record that fails to *re-apply* stops replay,
    /// keeps the log on disk, and is surfaced in the report.
    ///
    /// # Errors
    /// [`CdbError::CorruptRecord`] (with id [`crate::error::CATALOG_RECORD`])
    /// when the header, meta chain or catalog blob fails validation — a
    /// torn or tampered file is reported, never served as an empty
    /// database. [`CdbError::Io`] for operating-system failures.
    pub fn open(path: &std::path::Path) -> Result<Self, CdbError> {
        let mut db = Self::decode_file(FilePager::open(path).map_err(Self::lift)?)?;
        db.wal_base = Some(path.to_path_buf());
        db.replay_wal()?;
        db.classify_relations();
        Ok(db)
    }

    /// [`open`](Self::open) for a replication primary: identical recovery,
    /// but the engine is put in *WAL-retention* mode — the absorbed log is
    /// kept on disk (instead of deleted), [`begin_wal`](Self::begin_wal)
    /// reopens it in append mode, and checkpoints stop truncating it — so
    /// the full record history from the log's birth stays shippable and a
    /// follower that went dark can still catch up from its LSN gap after a
    /// primary restart. The trade-off (the log only shrinks when retention
    /// ends) is the replication primary's to make.
    ///
    /// # Errors
    /// Exactly those of [`open`](Self::open).
    pub fn open_retaining(path: &std::path::Path) -> Result<Self, CdbError> {
        let mut db = Self::decode_file(FilePager::open(path).map_err(Self::lift)?)?;
        db.wal_base = Some(path.to_path_buf());
        db.retain_wal = true;
        db.replay_wal()?;
        db.classify_relations();
        Ok(db)
    }

    /// Switches a freshly created or in-memory engine into WAL-retention
    /// mode (see [`open_retaining`](Self::open_retaining)); must be called
    /// before [`begin_wal`](Self::begin_wal) arms the log.
    pub fn set_wal_retention(&mut self, retain: bool) {
        self.retain_wal = retain;
    }

    /// [`open`](Self::open), but the file is mapped read-only and every
    /// mutating entry point (DDL, inserts/deletes, index builds,
    /// checkpoints) refuses with [`CdbError::ReadOnly`]. Queries work as
    /// usual; planner feedback accumulates in memory only and is never
    /// persisted. A pending write-ahead-log suffix is *not* replayed (the
    /// file is someone else's to write) — it is reported in the
    /// [`RecoveryReport`] instead, and the handle serves the state as of
    /// the last checkpoint.
    pub fn open_read_only(path: &std::path::Path) -> Result<Self, CdbError> {
        let mut db = Self::decode_file(FilePager::open_read_only(path).map_err(Self::lift)?)?;
        if let Some(scan) = Wal::read(&wal_path(path)).map_err(|e| CdbError::Io(e.to_string()))? {
            let pending: Vec<u64> = scan
                .records
                .iter()
                .map(|(lsn, _)| *lsn)
                .filter(|&lsn| lsn > db.durable_lsn)
                .collect();
            db.recovery.wal = Some(WalReplay {
                start_lsn: scan.start_lsn,
                replayed: 0,
                first_lsn: pending.first().copied().unwrap_or(0),
                last_lsn: pending.last().copied().unwrap_or(0),
                torn_tail: scan.torn_tail,
                error: (!pending.is_empty()).then(|| {
                    format!(
                        "{} logged mutations not replayed (read-only handle)",
                        pending.len()
                    )
                }),
            });
        }
        db.classify_relations();
        Ok(db)
    }

    fn lift(e: std::io::Error) -> CdbError {
        // Both failed validation and hitting EOF mid-structure mean the
        // file is not a whole database.
        match e.kind() {
            std::io::ErrorKind::InvalidData | std::io::ErrorKind::UnexpectedEof => {
                CdbError::CorruptRecord(crate::error::CATALOG_RECORD)
            }
            _ => CdbError::Io(e.to_string()),
        }
    }

    /// Stage 1 of `open`: decode the committed catalog into an engine.
    /// Relations come out nominally `Healthy`; `classify_relations` runs
    /// the verification pass after any WAL replay.
    fn decode_file(pager: FilePager) -> Result<Self, CdbError> {
        let blob = pager
            .read_meta()
            .map_err(Self::lift)?
            .ok_or(CdbError::CorruptRecord(crate::error::CATALOG_RECORD))?;
        let page_size = pager.page_size();
        let cat = crate::catalog::decode(&blob, page_size)?;
        let read_only = pager.is_read_only();
        let recovery = RecoveryReport {
            pager: pager.recovery(),
            relations: Vec::new(),
            wal: None,
        };
        Ok(ConstraintDb {
            pager: Box::new(pager),
            config: DbConfig {
                page_size,
                strategy: cat.strategy,
            },
            relations: cat.relations,
            dirty: false,
            // Restored catalogs start at version 0 (see
            // `PlanCatalog::from_entries`), so the committed sum is 0.
            committed_plan_version: 0,
            read_only,
            recovery,
            wal: None,
            wal_base: None,
            durable_lsn: cat.durable_lsn,
            checkpoint_failures: 0,
            retain_wal: false,
            partition: cat.partition,
        })
    }

    /// Stage 2 of `open`: replay the write-ahead-log suffix beyond the
    /// catalog's durable-LSN watermark through the normal mutation paths
    /// (the log is not armed yet, so nothing is re-logged; tuple ids are
    /// deterministic because `insert` assigns `slots.len()`). A fully
    /// absorbed log is checkpointed and deleted; any failure keeps it on
    /// disk for the next open and is recorded in the report.
    fn replay_wal(&mut self) -> Result<(), CdbError> {
        let Some(base) = self.wal_base.clone() else {
            return Ok(());
        };
        let wpath = wal_path(&base);
        let scan = match Wal::read(&wpath).map_err(|e| CdbError::Io(e.to_string()))? {
            Some(scan) => scan,
            None => return Ok(()),
        };
        let mut replay = WalReplay {
            start_lsn: scan.start_lsn,
            replayed: 0,
            first_lsn: 0,
            last_lsn: 0,
            torn_tail: scan.torn_tail,
            error: None,
        };
        for (lsn, bytes) in &scan.records {
            if *lsn <= self.durable_lsn {
                continue; // already covered by the committed catalog
            }
            match WalRecord::decode(bytes).and_then(|rec| self.apply_wal_record(rec)) {
                Ok(()) => {
                    if replay.replayed == 0 {
                        replay.first_lsn = *lsn;
                    }
                    replay.last_lsn = *lsn;
                    replay.replayed += 1;
                    self.durable_lsn = *lsn;
                }
                Err(e) => {
                    replay.error = Some(format!("replay stopped at lsn {lsn}: {e}"));
                    break;
                }
            }
        }
        if replay.replayed > 0 && replay.error.is_none() {
            // Absorb the suffix into the shadow-paged state; only then is
            // the log redundant.
            if let Err(e) = self.checkpoint() {
                replay.error = Some(format!("replayed but not checkpointed: {e}"));
            }
        }
        if replay.error.is_none() && !self.retain_wal {
            let _ = std::fs::remove_file(&wpath);
        }
        self.recovery.wal = Some(replay);
        Ok(())
    }

    /// Re-runs one logged mutation through its public entry point.
    fn apply_wal_record(&mut self, rec: WalRecord) -> Result<(), CdbError> {
        match rec {
            WalRecord::CreateRelation { name, dim } => {
                if dim == 0 {
                    return Err(CdbError::CorruptRecord(crate::error::WAL_RECORD));
                }
                self.create_relation(&name, dim as usize).map(|_| ())
            }
            WalRecord::DropRelation { name } => self.drop_relation(&name),
            WalRecord::Insert { relation, tuple } => self.insert(&relation, tuple).map(|_| ()),
            WalRecord::Delete { relation, id } => self.delete(&relation, id).map(|_| ()),
            WalRecord::BuildDual { relation, slopes } => self.build_dual_index(&relation, slopes),
            WalRecord::BuildDualD { relation, points } => {
                self.build_dual_index_d(&relation, points)
            }
            WalRecord::BuildRPlus { relation, fill } => self.build_rplus_index(&relation, fill),
            WalRecord::TightenIndex { relation } => self.tighten_index(&relation),
            WalRecord::SetPartition {
                shards,
                shard,
                seed,
            } => self.set_partition(PartitionSpec::new(shards, shard, seed)?),
        }
    }

    /// Stage 3 of `open`: the per-page verification pass, classifying
    /// every relation's health into the recovery report.
    fn classify_relations(&mut self) {
        let mut names: Vec<String> = self.relations.keys().cloned().collect();
        names.sort();
        let mut verdicts = Vec::with_capacity(names.len());
        for name in names {
            let health = {
                // Never fails: `names` was collected from this very map.
                let rel = self.relations.get(&name).expect("name from the key set");
                verify_relation(&self.reader(), rel)
            };
            self.relations
                .get_mut(&name)
                .expect("name from the key set")
                .health = health.clone();
            verdicts.push((name, health));
        }
        self.recovery.relations = verdicts;
    }

    /// What the last `open` found and did. Trivially clean for in-memory
    /// and freshly created databases.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// `true` when the engine was opened via
    /// [`open_read_only`](Self::open_read_only).
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    fn ensure_writable(&self) -> Result<(), CdbError> {
        if self.read_only {
            return Err(CdbError::ReadOnly);
        }
        Ok(())
    }

    /// Arms the write-ahead log: checkpoints the current state (the log's
    /// base), then creates `<path>.wal` starting at the next LSN. From
    /// here on every successful mutation appends one record, and a
    /// [`wal_sync`](Self::wal_sync) makes the batch durable — the
    /// group-commit contract a server acknowledges against. Returns
    /// `Ok(false)` for engines with no backing file (in-memory or
    /// caller-supplied pagers), which have no durability to promise.
    /// Idempotent once armed.
    ///
    /// # Errors
    /// [`CdbError::ReadOnly`] on a read-only handle; [`CdbError::Io`] when
    /// the base checkpoint or the log file creation fails.
    pub fn begin_wal(&mut self) -> Result<bool, CdbError> {
        self.ensure_writable()?;
        if self.wal.is_some() {
            return Ok(true);
        }
        let Some(base) = self.wal_base.clone() else {
            return Ok(false);
        };
        self.checkpoint()?;
        let wpath = wal_path(&base);
        let wal = if self.retain_wal {
            // Retention mode appends to the existing history (torn tails
            // trimmed) so shipped LSNs stay addressable across restarts.
            Wal::open_or_create(&wpath, self.durable_lsn + 1)
        } else {
            Wal::create(&wpath, self.durable_lsn + 1)
        }
        .map_err(|e| CdbError::Io(e.to_string()))?;
        self.wal = Some(wal);
        Ok(true)
    }

    /// The group-commit barrier: flushes every record logged since the
    /// last sync with one `fsync`. After `Ok(())`, every mutation applied
    /// before this call survives any crash — acknowledge them now, not
    /// earlier. A no-op when no log is armed.
    ///
    /// # Errors
    /// [`CdbError::Io`] when the flush fails; the affected mutations must
    /// not be acknowledged (reopening the file recovers the state as of
    /// the last successful sync).
    pub fn wal_sync(&mut self) -> Result<(), CdbError> {
        match self.wal.as_mut() {
            Some(w) => w.sync().map_err(|e| CdbError::Io(e.to_string())),
            None => Ok(()),
        }
    }

    /// Applies one replicated WAL record — raw bytes shipped from a
    /// primary's log — through the same typed-decode + public-entry-point
    /// path recovery uses, so a follower's state is bit-for-bit what replay
    /// of the primary's log would build. With the follower's own log armed,
    /// the mutation is re-logged locally (one record in, one record out:
    /// LSNs stay aligned with the primary's as long as records are applied
    /// gaplessly in order, which the shipping protocol guarantees).
    ///
    /// # Errors
    /// [`CdbError::CorruptRecord`] when the bytes don't decode as a record,
    /// or whatever the underlying mutation returns — either means the
    /// stream is damaged or divergent and the subscription must restart.
    pub fn apply_replicated(&mut self, record: &[u8]) -> Result<(), CdbError> {
        let rec = WalRecord::decode(record)?;
        self.apply_wal_record(rec)
    }

    /// The LSN of the last mutation *applied* in memory (acked-but-
    /// unsynced included): what a published snapshot reflects. Falls back
    /// to the durable watermark when no log is armed.
    pub fn applied_lsn(&self) -> u64 {
        match self.wal.as_ref() {
            Some(w) => w.next_lsn().saturating_sub(1),
            None => self.durable_lsn,
        }
    }

    /// The LSN of the last mutation a successful
    /// [`wal_sync`](Self::wal_sync) made durable: what a primary may
    /// acknowledge — and ship. Falls back to the durable watermark when no
    /// log is armed.
    pub fn wal_synced_lsn(&self) -> u64 {
        match self.wal.as_ref() {
            Some(w) => w.synced_lsn(),
            None => self.durable_lsn,
        }
    }

    /// The sidecar log path, once a log is armed on a file-backed engine —
    /// where a replication shipping loop tails records from.
    pub fn wal_file_path(&self) -> Option<std::path::PathBuf> {
        match (&self.wal, &self.wal_base) {
            (Some(_), Some(base)) => Some(wal_path(base)),
            _ => None,
        }
    }

    /// Installs a fault schedule on the armed log (testing hook; no-op
    /// when no log is armed).
    pub fn set_wal_fault_plan(&mut self, plan: WalFaultPlan) {
        if let Some(w) = self.wal.as_mut() {
            w.set_fault_plan(plan);
        }
    }

    /// Appends one typed record for a mutation that just succeeded in
    /// memory. On append failure the mutation's entry point returns the
    /// error: the caller must not acknowledge, and the standard failure
    /// contract applies (durable state untouched; reopen to recover).
    fn log_mutation(&mut self, rec: WalRecord) -> Result<(), CdbError> {
        if let Some(w) = self.wal.as_mut() {
            w.append(&rec.encode())
                .map_err(|e| CdbError::Io(e.to_string()))?;
        }
        Ok(())
    }

    fn plan_version_sum(&self) -> u64 {
        self.relations.values().map(|r| r.catalog.version()).sum()
    }

    /// Serializes the catalog (relations, index metadata, planner EWMAs,
    /// WAL watermark) and commits it through the pager's shadow-page
    /// protocol. A no-op when nothing changed since the last checkpoint,
    /// and on read-only handles (whose durable state cannot move). After a
    /// crash, a reader sees either the previous catalog or this one —
    /// never a mixture.
    ///
    /// With a log armed, the committed watermark covers every mutation
    /// logged so far, and the now-redundant log is truncated afterwards
    /// (best-effort: a failed truncation downs the log — later mutations
    /// error instead of logging into a file in an unknown state — but
    /// loses nothing, because replay filters by the watermark).
    ///
    /// # Errors
    /// [`CdbError::Io`] when a page write or sync fails; the previously
    /// committed catalog stays readable, and the consecutive-failure
    /// counter surfaced by [`stats_snapshot`](Self::stats_snapshot) is
    /// bumped.
    pub fn checkpoint(&mut self) -> Result<(), CdbError> {
        if self.read_only {
            // Plan-catalog EWMAs may drift in memory, but a read-only
            // handle never persists: the file is someone else's to write.
            return Ok(());
        }
        let vsum = self.plan_version_sum();
        if !self.dirty && vsum == self.committed_plan_version {
            return Ok(());
        }
        if let Some(w) = self.wal.as_ref() {
            // Every logged mutation is part of the state being committed,
            // synced or not — the commit itself is their durability.
            self.durable_lsn = w.next_lsn() - 1;
        }
        let blob = crate::catalog::encode(
            self.config.strategy,
            self.durable_lsn,
            self.partition,
            &self.relations,
        );
        if let Err(e) = self.pager.commit_meta(&blob) {
            self.checkpoint_failures += 1;
            return Err(CdbError::Io(e.to_string()));
        }
        self.dirty = false;
        self.committed_plan_version = vsum;
        self.checkpoint_failures = 0;
        if !self.retain_wal {
            if let Some(w) = self.wal.as_mut() {
                let _ = w.truncate(self.durable_lsn + 1);
            }
        }
        Ok(())
    }

    /// Publishes the current state as a pinned, immutable [`Snapshot`].
    ///
    /// The pager freezes its page table at the current epoch — subsequent
    /// writes through this handle copy-on-write onto fresh pages, so the
    /// frozen pages stay exactly as published until the snapshot drops —
    /// and the in-memory catalog (relation descriptors, index roots,
    /// planner state) is cloned so the snapshot's query surface is fully
    /// self-contained. `&mut self` because publication advances the
    /// writer's working generation; the returned snapshot is `Send + Sync`
    /// and never blocks this handle.
    ///
    /// Publication is a visibility event, not a durability one: the
    /// snapshot sees every mutation applied so far (acked-but-uncommitted
    /// WAL state included), while crash durability still comes from
    /// [`checkpoint`](Self::checkpoint) and the log.
    ///
    /// # Errors
    /// [`CdbError::Io`] when flushing buffered pages for publication fails.
    pub fn snapshot(&mut self) -> Result<Snapshot, CdbError> {
        let reader = self
            .pager
            .publish_view()
            .map_err(|e| CdbError::Io(e.to_string()))?;
        Ok(Snapshot {
            reader,
            config: self.config,
            relations: self.relations.clone(),
        })
    }

    /// Checkpoints and consumes the engine. `commit_meta` syncs the file,
    /// so a successful `close` means everything is durable — the
    /// write-ahead log, fully absorbed by that final checkpoint, is
    /// deleted rather than left as an empty sidecar.
    ///
    /// # Errors
    /// [`CdbError::Io`] when the final checkpoint fails.
    pub fn close(mut self) -> Result<(), CdbError> {
        self.checkpoint()?;
        if self.wal.take().is_some() && !self.retain_wal {
            if let Some(base) = &self.wal_base {
                let _ = std::fs::remove_file(wal_path(base));
            }
        }
        Ok(())
    }

    /// I/O accounting of the underlying pager.
    pub fn io_stats(&self) -> IoStats {
        self.pager.stats()
    }

    /// Zeroes the pager's counters.
    pub fn reset_io_stats(&mut self) {
        self.pager.reset_stats();
    }

    /// Live pages across all relations and indexes (the space metric).
    pub fn live_pages(&self) -> usize {
        self.pager.live_pages()
    }

    /// Point-in-time operational snapshot: per-relation sizes, built
    /// indexes, health verdicts, and pager-level I/O counters. `&self`, so
    /// a server can answer STATS from a shared read lock while queries run.
    pub fn stats_snapshot(&self) -> DbStats {
        let mut relations: Vec<RelationStats> = self
            .relations
            .values()
            .map(|rel| {
                let mut indexes = Vec::new();
                if rel.index.is_some() {
                    indexes.push("dual".to_string());
                }
                if rel.index_d.is_some() {
                    indexes.push("dual-d".to_string());
                }
                if rel.rplus.is_some() {
                    indexes.push("rplus".to_string());
                }
                RelationStats {
                    name: rel.name.clone(),
                    dim: rel.dim,
                    live: rel.live,
                    heap_pages: rel.heap_pages(),
                    total_pages: rel.page_count(),
                    indexes,
                    health: rel.health.clone(),
                }
            })
            .collect();
        relations.sort_by(|a, b| a.name.cmp(&b.name));
        DbStats {
            relations,
            live_pages: self.live_pages() as u64,
            io: self.io_stats(),
            read_only: self.read_only,
            checkpoint_failures: self.checkpoint_failures,
            wal: self.wal.as_ref().map(|w| WalStats {
                durable_lsn: self.durable_lsn,
                next_lsn: w.next_lsn(),
                pending: w.pending_records(),
            }),
            epochs: self.pager.epoch_stats(),
        }
    }

    /// Re-runs the open-time page verification pass over every relation,
    /// returning a fresh report without mutating any stored health verdict
    /// (repair still goes through [`rebuild_indexes`](Self::rebuild_indexes)
    /// or [`drop_relation`](Self::drop_relation)). `&self`, so a server can
    /// serve an online FSCK from a shared read lock. The pager verdict is
    /// carried over from open — header recovery only happens there.
    pub fn verify_now(&self) -> RecoveryReport {
        let reader = self.reader();
        let mut relations: Vec<(String, RelationHealth)> = self
            .relations
            .values()
            .map(|rel| (rel.name.clone(), verify_relation(&reader, rel)))
            .collect();
        relations.sort_by(|a, b| a.0.cmp(&b.0));
        RecoveryReport {
            pager: self.recovery.pager,
            relations,
            wal: self.recovery.wal.clone(),
        }
    }

    /// Cross-checks the pager's deferred-reclaim bookkeeping: `Some(true)`
    /// when every quarantined page is genuinely non-live, `Some(false)`
    /// on a violation, `None` for engines without a durable quarantine
    /// (in-memory pagers reclaim by refcount). Part of the FSCK surface.
    pub fn quarantine_clean(&self) -> Option<bool> {
        self.pager.quarantine_clean()
    }

    /// Installs this engine's partition spec: from now on,
    /// [`insert`](Self::insert) allocates only tuple ids the spec owns
    /// (skipping foreign ids by pushing absent slots), so the id spaces
    /// of the deployment's shards are disjoint by construction and query
    /// answers merge by plain union.
    ///
    /// The spec must be installed before any tuple ids exist — already-
    /// assigned ids can't be re-homed — and can never change afterwards
    /// (re-installing the identical spec is a no-op, which makes WAL
    /// replay and replicated re-application idempotent). It is persisted
    /// in the catalog and write-ahead-logged, so allocation stays
    /// deterministic across restarts, reopens, and crash replay.
    ///
    /// # Errors
    /// [`CdbError::UnsupportedQuery`] when tuples already exist or a
    /// different spec is already installed; [`CdbError::ReadOnly`] on a
    /// read-only handle.
    pub fn set_partition(&mut self, spec: PartitionSpec) -> Result<(), CdbError> {
        self.ensure_writable()?;
        if let Some(current) = self.partition {
            if current == spec {
                return Ok(());
            }
            return Err(CdbError::UnsupportedQuery(format!(
                "partition spec is already {current} and cannot change"
            )));
        }
        if self.relations.values().any(|r| !r.slots.is_empty()) {
            return Err(CdbError::UnsupportedQuery(
                "a partition spec must be installed before any tuple ids are assigned".into(),
            ));
        }
        self.partition = Some(spec);
        self.dirty = true;
        self.log_mutation(WalRecord::SetPartition {
            shards: spec.shards,
            shard: spec.shard,
            seed: spec.seed,
        })?;
        Ok(())
    }

    /// The installed partition spec, when this engine is one shard of a
    /// partitioned deployment.
    pub fn partition(&self) -> Option<PartitionSpec> {
        self.partition
    }

    /// Creates an empty relation of the given dimension.
    ///
    /// # Errors
    /// [`CdbError::RelationExists`] if the name is taken;
    /// [`CdbError::ReadOnly`] on a read-only handle.
    pub fn create_relation(&mut self, name: &str, dim: usize) -> Result<&Relation, CdbError> {
        self.ensure_writable()?;
        if self.relations.contains_key(name) {
            return Err(CdbError::RelationExists(name.into()));
        }
        assert!(dim >= 1, "dimension must be positive");
        self.dirty = true;
        let heap = HeapFile::new(self.pager.as_mut());
        self.relations.insert(
            name.to_string(),
            Relation {
                name: name.to_string(),
                dim,
                heap,
                slots: Vec::new(),
                by_record: HashMap::new(),
                live: 0,
                index: None,
                index_d: None,
                rplus: None,
                catalog: PlanCatalog::new(),
                health: RelationHealth::Healthy,
            },
        );
        self.log_mutation(WalRecord::CreateRelation {
            name: name.to_string(),
            dim: dim as u32,
        })?;
        Ok(&self.relations[name])
    }

    /// Names of all relations, sorted.
    pub fn relation_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.relations.keys().cloned().collect();
        v.sort();
        v
    }

    /// Drops a relation, freeing its heap and index pages. Dropping an
    /// unhealthy relation is allowed — it is the way out of quarantine —
    /// but pages held by structures too corrupt to walk stay allocated
    /// until the file is rebuilt.
    pub fn drop_relation(&mut self, name: &str) -> Result<(), CdbError> {
        self.ensure_writable()?;
        let rel = self
            .relations
            .remove(name)
            .ok_or_else(|| CdbError::RelationNotFound(name.into()))?;
        self.dirty = true;
        let salvage = rel.health != RelationHealth::Healthy;
        let pager = self.pager.as_mut();
        rel.heap.destroy(pager);
        if let Some(idx) = rel.index {
            let freed = idx.destroy(pager);
            if !salvage {
                freed?;
            }
        }
        if let Some(idx) = rel.index_d {
            let freed = idx.destroy(pager);
            if !salvage {
                freed?;
            }
        }
        if let Some(rp) = rel.rplus {
            let freed = rp.tree.destroy(pager);
            if !salvage {
                freed.map_err(CdbError::from)?;
            }
        }
        self.log_mutation(WalRecord::DropRelation {
            name: name.to_string(),
        })?;
        Ok(())
    }

    /// The named relation.
    pub fn relation(&self, name: &str) -> Result<&Relation, CdbError> {
        self.relations
            .get(name)
            .ok_or_else(|| CdbError::RelationNotFound(name.into()))
    }

    /// The read half of the engine pager (shareable across query threads).
    fn reader(&self) -> ReadHalf<'_> {
        ReadHalf(&*self.pager)
    }

    /// Fetches one tuple by id.
    pub fn fetch_tuple(&self, name: &str, id: u32) -> Result<GeneralizedTuple, CdbError> {
        let rel = self.relation(name)?;
        rel.ensure_usable()?;
        rel.fetch(&self.reader(), id)
    }

    /// All live `(id, tuple)` pairs of a relation.
    pub fn scan_relation(&self, name: &str) -> Result<Vec<(u32, GeneralizedTuple)>, CdbError> {
        let rel = self.relation(name)?;
        rel.ensure_usable()?;
        rel.scan(&self.reader())
    }

    /// Inserts a satisfiable tuple, returning its id. Maintains every
    /// built access structure (`O(k log_B n)` tree inserts for the dual
    /// indexes; handicaps are refreshed lazily before the next T2 query).
    /// On a degraded relation, structures marked corrupt are skipped —
    /// they will be rebuilt wholesale from the heap.
    ///
    /// A failed insert leaves the durable state untouched (nothing commits
    /// before the next checkpoint) but may leave the in-memory structures
    /// out of step; reopen to recover the last committed state.
    pub fn insert(&mut self, name: &str, tuple: GeneralizedTuple) -> Result<u32, CdbError> {
        self.ensure_writable()?;
        let rel_dim = {
            let rel = self.relation(name)?;
            rel.ensure_usable()?;
            rel.dim
        };
        if rel_dim != tuple.dim() {
            return Err(CdbError::DimensionMismatch {
                expected: rel_dim,
                got: tuple.dim(),
            });
        }
        if !tuple.is_satisfiable() {
            return Err(CdbError::UnsatisfiableTuple);
        }
        self.dirty = true;
        let pager = self.pager.as_mut();
        let rel = self.relations.get_mut(name).expect("checked above");
        let (c_dual, c_duald, c_rplus) = rel.corrupt_flags();
        let rid = rel.heap.insert(pager, &tuple.encode())?;
        if let Some(spec) = self.partition {
            // One shard of a partitioned deployment allocates only ids it
            // owns: foreign ids are skipped with absent slots (they live
            // on their owning shard), keeping the shards' id spaces
            // disjoint. Ids stay deterministic — the next owned id is a
            // pure function of the slot count and the persisted spec.
            while !spec.owns(rel.slots.len() as u32) {
                rel.slots.push(None);
            }
        }
        let id = rel.slots.len() as u32;
        rel.slots.push(Some(rid));
        rel.by_record.insert(rid, id);
        rel.live += 1;
        if let Some(idx) = rel.index.as_mut() {
            if !c_dual {
                idx.insert(pager, id, &tuple)?;
            }
        }
        if let Some(idx) = rel.index_d.as_mut() {
            if !c_duald {
                idx.insert(pager, id, &tuple)?;
            }
        }
        if let Some(rp) = rel.rplus.as_mut() {
            if !c_rplus {
                match tuple.bounding_box() {
                    Some((lo, hi)) if rel_dim == 2 => {
                        rp.tree
                            .insert(pager, Rect::new(lo[0], lo[1], hi[0], hi[1]), id)?;
                    }
                    _ => rp.unbounded.push(id),
                }
            }
        }
        self.log_mutation(WalRecord::Insert {
            relation: name.to_string(),
            tuple,
        })?;
        Ok(id)
    }

    /// Deletes a tuple by id. Returns the removed tuple. On a degraded
    /// relation, structures marked corrupt are skipped (see
    /// [`insert`](Self::insert) for the failure contract).
    pub fn delete(&mut self, name: &str, id: u32) -> Result<GeneralizedTuple, CdbError> {
        self.ensure_writable()?;
        let pager = self.pager.as_mut();
        let rel = self
            .relations
            .get_mut(name)
            .ok_or_else(|| CdbError::RelationNotFound(name.into()))?;
        rel.ensure_usable()?;
        let (c_dual, c_duald, c_rplus) = rel.corrupt_flags();
        let tuple = rel.fetch(&*pager, id)?;
        // `fetch` succeeding proves the slot is present and live.
        let rid = rel.slots[id as usize].expect("checked by fetch");
        rel.heap.delete(pager, rid)?;
        self.dirty = true;
        rel.slots[id as usize] = None;
        rel.by_record.remove(&rid);
        rel.live -= 1;
        if let Some(idx) = rel.index.as_mut() {
            if !c_dual {
                idx.remove(pager, id, &tuple)?;
            }
        }
        if let Some(idx) = rel.index_d.as_mut() {
            if !c_duald {
                idx.remove(pager, id, &tuple)?;
            }
        }
        if let Some(rp) = rel.rplus.as_mut() {
            if !c_rplus {
                if let Some(pos) = rp.unbounded.iter().position(|&u| u == id) {
                    rp.unbounded.swap_remove(pos);
                } else if let Err(pos) = rp.dead.binary_search(&id) {
                    // The packed tree has no delete: tombstone the id instead.
                    rp.dead.insert(pos, id);
                }
            }
        }
        self.log_mutation(WalRecord::Delete {
            relation: name.to_string(),
            id,
        })?;
        Ok(tuple)
    }

    /// Builds (or rebuilds) the dual index of a 2-D relation over `slopes`.
    /// A previous index's pages are freed first (best-effort when the old
    /// index is marked corrupt — unreadable pages cannot be walked to the
    /// free list). Rebuilding clears the structure's corruption flag.
    pub fn build_dual_index(&mut self, name: &str, slopes: SlopeSet) -> Result<(), CdbError> {
        self.ensure_writable()?;
        let pager = self.pager.as_mut();
        let rel = self
            .relations
            .get_mut(name)
            .ok_or_else(|| CdbError::RelationNotFound(name.into()))?;
        rel.ensure_usable()?;
        if rel.dim != 2 {
            return Err(CdbError::UnsupportedQuery(
                "the 2-D dual index requires a 2-D relation (see build_dual_index_d for E^d)"
                    .into(),
            ));
        }
        let (c_dual, _, _) = rel.corrupt_flags();
        let tuples = rel.scan(&*pager)?;
        self.dirty = true;
        if let Some(old) = rel.index.take() {
            let freed = old.destroy(pager);
            if !c_dual {
                freed?;
            }
        }
        rel.index = Some(DualIndex::build(pager, slopes.clone(), &tuples)?);
        rel.mark_repaired("dual");
        self.log_mutation(WalRecord::BuildDual {
            relation: name.to_string(),
            slopes,
        })?;
        Ok(())
    }

    /// Builds (or rebuilds) the d-dimensional dual index (Section 4.4) over
    /// a point set in slope space `E^{d-1}`.
    pub fn build_dual_index_d(&mut self, name: &str, points: SlopePoints) -> Result<(), CdbError> {
        self.ensure_writable()?;
        let pager = self.pager.as_mut();
        let rel = self
            .relations
            .get_mut(name)
            .ok_or_else(|| CdbError::RelationNotFound(name.into()))?;
        rel.ensure_usable()?;
        if rel.dim != points.dim() {
            return Err(CdbError::DimensionMismatch {
                expected: rel.dim,
                got: points.dim(),
            });
        }
        let (_, c_duald, _) = rel.corrupt_flags();
        let tuples = rel.scan(&*pager)?;
        self.dirty = true;
        if let Some(old) = rel.index_d.take() {
            let freed = old.destroy(pager);
            if !c_duald {
                freed?;
            }
        }
        rel.index_d = Some(DualIndexD::build(pager, points.clone(), &tuples)?);
        rel.mark_repaired("dual-d");
        self.log_mutation(WalRecord::BuildDualD {
            relation: name.to_string(),
            points,
        })?;
        Ok(())
    }

    /// Builds (or rebuilds) the Section 5 R⁺-tree baseline over a 2-D
    /// relation: bounded tuples' MBRs are bulk-packed at the given fill
    /// factor; unbounded tuples go to the overflow list.
    pub fn build_rplus_index(&mut self, name: &str, fill: f64) -> Result<(), CdbError> {
        self.ensure_writable()?;
        let pager = self.pager.as_mut();
        let rel = self
            .relations
            .get_mut(name)
            .ok_or_else(|| CdbError::RelationNotFound(name.into()))?;
        rel.ensure_usable()?;
        if rel.dim != 2 {
            return Err(CdbError::UnsupportedQuery(
                "the R⁺-tree baseline requires a 2-D relation".into(),
            ));
        }
        let (_, _, c_rplus) = rel.corrupt_flags();
        let tuples = rel.scan(&*pager)?;
        self.dirty = true;
        let mut entries = Vec::new();
        let mut unbounded = Vec::new();
        for (id, t) in &tuples {
            match t.bounding_box() {
                Some((lo, hi)) => entries.push((Rect::new(lo[0], lo[1], hi[0], hi[1]), *id)),
                None => unbounded.push(*id),
            }
        }
        if let Some(old) = rel.rplus.take() {
            let freed = old.tree.destroy(pager);
            if !c_rplus {
                freed.map_err(CdbError::from)?;
            }
        }
        rel.rplus = Some(RPlusIndex {
            tree: RPlusTree::pack(pager, &entries, fill)?,
            unbounded,
            dead: Vec::new(),
            fill,
        });
        rel.mark_repaired("rplus");
        self.log_mutation(WalRecord::BuildRPlus {
            relation: name.to_string(),
            fill,
        })?;
        Ok(())
    }

    /// Re-derives every corrupt index of a degraded relation from the
    /// (verified) heap, reusing the build parameters persisted in the
    /// catalog: the dual forest rebuilds over its original slopes, the
    /// d-dimensional forest over its slope points, the R⁺-tree at its
    /// original fill factor. Returns the names of the rebuilt structures;
    /// a healthy relation is a no-op.
    ///
    /// # Errors
    /// [`CdbError::Quarantined`] when the heap itself is corrupt — there
    /// is nothing trustworthy to rebuild from;
    /// [`CdbError::ReadOnly`] on a read-only handle.
    pub fn rebuild_indexes(&mut self, name: &str) -> Result<Vec<String>, CdbError> {
        self.ensure_writable()?;
        let rel = self.relation(name)?;
        rel.ensure_usable()?;
        let (c_dual, c_duald, c_rplus) = rel.corrupt_flags();
        let mut rebuilt = Vec::new();
        if c_dual {
            // The flag is only ever set by verification of an existing
            // structure, so the index must be present.
            let slopes = rel
                .index
                .as_ref()
                .expect("corrupt flag implies the index exists")
                .slopes()
                .clone();
            self.build_dual_index(name, slopes)?;
            rebuilt.push("dual".to_string());
        }
        if c_duald {
            let points = self.relations[name]
                .index_d
                .as_ref()
                .expect("corrupt flag implies the index exists")
                .points()
                .clone();
            self.build_dual_index_d(name, points)?;
            rebuilt.push("dual-d".to_string());
        }
        if c_rplus {
            let fill = self.relations[name]
                .rplus
                .as_ref()
                .expect("corrupt flag implies the index exists")
                .fill;
            self.build_rplus_index(name, fill)?;
            rebuilt.push("rplus".to_string());
        }
        Ok(rebuilt)
    }

    /// Re-tightens a relation's index handicaps after heavy update traffic
    /// (incremental maintenance keeps them correct but increasingly loose;
    /// see [`DualIndex::refresh_handicaps`]).
    pub fn tighten_index(&mut self, name: &str) -> Result<(), CdbError> {
        self.ensure_writable()?;
        let pager = self.pager.as_mut();
        let rel = self
            .relations
            .get_mut(name)
            .ok_or_else(|| CdbError::RelationNotFound(name.into()))?;
        rel.ensure_usable()?;
        let (c_dual, _, _) = rel.corrupt_flags();
        let tuples = rel.scan(&*pager)?;
        let Some(idx) = rel.index.as_mut() else {
            return Err(CdbError::NoIndex(name.into()));
        };
        if c_dual {
            // A corrupt index cannot be tightened, only rebuilt.
            return Err(CdbError::NoIndex(name.into()));
        }
        idx.refresh_handicaps(pager, &tuples)?;
        self.dirty = true;
        self.log_mutation(WalRecord::TightenIndex {
            relation: name.to_string(),
        })?;
        Ok(())
    }

    /// Plans and executes one selection: the planner chooses (or validates
    /// the forced) access method, the method runs, estimate and method are
    /// stamped into the result's stats, and the actuals feed the
    /// relation's catalog.
    fn planned(
        &self,
        name: &str,
        sel: &Selection,
        strategy: Strategy,
    ) -> Result<(QueryPlan, QueryResult), CdbError> {
        let rel = self.relation(name)?;
        planned_on(rel, &self.reader(), self.config.page_size, sel, strategy)
    }

    /// Executes a selection with the engine's default strategy.
    pub fn query(&self, name: &str, sel: Selection) -> Result<QueryResult, CdbError> {
        self.query_with(name, sel, self.config.strategy)
    }

    /// Executes a selection with an explicit strategy; `Strategy::Auto`
    /// lets the cost-based planner choose among every built access method
    /// (including plain sequential scan — an index-less relation is
    /// queryable). Queries run from `&self` over the read half of the
    /// pager, so any number can execute concurrently against one engine
    /// snapshot (see [`query_batch`](Self::query_batch)).
    pub fn query_with(
        &self,
        name: &str,
        sel: Selection,
        strategy: Strategy,
    ) -> Result<QueryResult, CdbError> {
        self.planned(name, &sel, strategy).map(|(_, r)| r)
    }

    /// Plans a selection without executing it: which access method the
    /// planner would choose, its cost estimate, and why the others lost.
    pub fn plan_query(&self, name: &str, sel: &Selection) -> Result<QueryPlan, CdbError> {
        plan_on(
            self.relation(name)?,
            &self.reader(),
            self.config.page_size,
            sel,
        )
    }

    /// EXPLAIN ANALYZE: plans with the engine's default strategy, executes
    /// the chosen method, and returns the plan next to the actual result
    /// so estimated and measured page accesses line up.
    pub fn explain(&self, name: &str, sel: Selection) -> Result<ExplainReport, CdbError> {
        self.explain_with(name, sel, self.config.strategy)
    }

    /// [`explain`](Self::explain) with an explicit strategy.
    pub fn explain_with(
        &self,
        name: &str,
        sel: Selection,
        strategy: Strategy,
    ) -> Result<ExplainReport, CdbError> {
        let (plan, result) = self.planned(name, &sel, strategy)?;
        Ok(ExplainReport { plan, result })
    }

    /// Runs one constraint-SQL statement through the operator pipeline:
    /// `SELECT <vars|*> FROM <rel> [JOIN <rel> …] WHERE <constraints>
    /// [EXIST|ALL] [LIMIT n]`. Reads from `&self` over the read half of
    /// the pager, like every query path.
    pub fn sql(
        &self,
        text: &str,
        mode: crate::sql::SqlMode,
    ) -> Result<crate::sql::SqlOutcome, CdbError> {
        sql_on(
            &self.relations,
            &self.reader(),
            self.config.page_size,
            text,
            mode,
        )
    }

    /// Executes a batch of selections concurrently over the shared engine
    /// snapshot, using a [`crate::exec::QueryExecutor`] with `threads`
    /// worker threads. Every query goes through the planner. Results are
    /// positionally aligned with the batch.
    pub fn query_batch(
        &self,
        name: &str,
        batch: &[(Selection, Strategy)],
        threads: usize,
    ) -> Result<Vec<Result<QueryResult, CdbError>>, CdbError> {
        self.relation(name)?; // surface missing relations once, up front
        let exec = crate::exec::QueryExecutor::new(self, name);
        Ok(exec.run(batch, threads))
    }

    /// Equality-query convenience (the paper's footnote 2): tuples whose
    /// extension intersects the line `y = a·x + c`.
    pub fn exist_line(&self, name: &str, a: f64, c: f64) -> Result<QueryResult, CdbError> {
        self.hyperplane_query(name, a, c, SelectionKind::Exist)
    }

    /// Tuples whose extension lies entirely on the line `y = a·x + c`
    /// (degenerate segments/lines).
    pub fn all_line(&self, name: &str, a: f64, c: f64) -> Result<QueryResult, CdbError> {
        self.hyperplane_query(name, a, c, SelectionKind::All)
    }

    fn hyperplane_query(
        &self,
        name: &str,
        a: f64,
        c: f64,
        kind: SelectionKind,
    ) -> Result<QueryResult, CdbError> {
        hyperplane_on(
            self.relation(name)?,
            &self.reader(),
            a,
            c,
            kind,
            self.config.strategy,
        )
    }

    /// Convenience: EXIST selection via the default strategy.
    pub fn exist(&self, name: &str, q: HalfPlane) -> Result<QueryResult, CdbError> {
        self.query(name, Selection::exist(q))
    }

    /// Convenience: ALL selection via the default strategy.
    pub fn all(&self, name: &str, q: HalfPlane) -> Result<QueryResult, CdbError> {
        self.query(name, Selection::all(q))
    }
}

/// A pinned, immutable view of the database at one published epoch.
///
/// Created by [`ConstraintDb::snapshot`]. Holds a frozen page-table view
/// from the pager (the pin keeps every page the epoch references out of
/// reuse until the snapshot drops) plus a clone of the in-memory catalog,
/// so the full read-side query surface — planned selections, EXPLAIN,
/// batches, line queries, stats — runs here with no coordination with the
/// writer: the writer mutates the *next* epoch on copied pages and never
/// touches these.
///
/// `Send + Sync`: one snapshot can serve any number of reader threads
/// (see [`ConstraintDb::query_batch`] semantics via
/// [`Snapshot::query_batch`]). Planner feedback recorded during snapshot
/// queries lands in the snapshot's cloned catalog and is discarded with
/// it — observation continuity belongs to the live engine.
pub struct Snapshot {
    reader: Box<dyn SnapshotReader>,
    config: DbConfig,
    relations: HashMap<String, Relation>,
}

impl Snapshot {
    /// The named relation.
    pub fn relation(&self, name: &str) -> Result<&Relation, CdbError> {
        self.relations
            .get(name)
            .ok_or_else(|| CdbError::RelationNotFound(name.into()))
    }

    /// Names of all relations, sorted.
    pub fn relation_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.relations.keys().cloned().collect();
        v.sort();
        v
    }

    fn reader(&self) -> &dyn PageReader {
        self.reader.as_ref()
    }

    /// Fetches one tuple by id, as of this snapshot's epoch.
    pub fn fetch_tuple(&self, name: &str, id: u32) -> Result<GeneralizedTuple, CdbError> {
        let rel = self.relation(name)?;
        rel.ensure_usable()?;
        rel.fetch(self.reader(), id)
    }

    /// All live `(id, tuple)` pairs of a relation at this epoch.
    pub fn scan_relation(&self, name: &str) -> Result<Vec<(u32, GeneralizedTuple)>, CdbError> {
        let rel = self.relation(name)?;
        rel.ensure_usable()?;
        rel.scan(self.reader())
    }

    /// Executes a selection with the snapshot's default strategy.
    pub fn query(&self, name: &str, sel: Selection) -> Result<QueryResult, CdbError> {
        self.query_with(name, sel, self.config.strategy)
    }

    /// Executes a selection with an explicit strategy against the frozen
    /// epoch; semantics match [`ConstraintDb::query_with`].
    pub fn query_with(
        &self,
        name: &str,
        sel: Selection,
        strategy: Strategy,
    ) -> Result<QueryResult, CdbError> {
        let rel = self.relation(name)?;
        planned_on(rel, self.reader(), self.config.page_size, &sel, strategy).map(|(_, r)| r)
    }

    /// Plans a selection without executing it.
    pub fn plan_query(&self, name: &str, sel: &Selection) -> Result<QueryPlan, CdbError> {
        plan_on(
            self.relation(name)?,
            self.reader(),
            self.config.page_size,
            sel,
        )
    }

    /// EXPLAIN ANALYZE against the frozen epoch.
    pub fn explain(&self, name: &str, sel: Selection) -> Result<ExplainReport, CdbError> {
        self.explain_with(name, sel, self.config.strategy)
    }

    /// [`explain`](Self::explain) with an explicit strategy.
    pub fn explain_with(
        &self,
        name: &str,
        sel: Selection,
        strategy: Strategy,
    ) -> Result<ExplainReport, CdbError> {
        let rel = self.relation(name)?;
        let (plan, result) = planned_on(rel, self.reader(), self.config.page_size, &sel, strategy)?;
        Ok(ExplainReport { plan, result })
    }

    /// Runs one constraint-SQL statement against the frozen epoch;
    /// semantics match [`ConstraintDb::sql`].
    pub fn sql(
        &self,
        text: &str,
        mode: crate::sql::SqlMode,
    ) -> Result<crate::sql::SqlOutcome, CdbError> {
        sql_on(
            &self.relations,
            self.reader(),
            self.config.page_size,
            text,
            mode,
        )
    }

    /// Executes a batch of selections concurrently over this snapshot,
    /// mirroring [`ConstraintDb::query_batch`].
    pub fn query_batch(
        &self,
        name: &str,
        batch: &[(Selection, Strategy)],
        threads: usize,
    ) -> Result<Vec<Result<QueryResult, CdbError>>, CdbError> {
        self.relation(name)?; // surface missing relations once, up front
        let exec = crate::exec::QueryExecutor::new(self, name);
        Ok(exec.run(batch, threads))
    }

    /// Equality-query convenience: tuples intersecting `y = a·x + c`.
    pub fn exist_line(&self, name: &str, a: f64, c: f64) -> Result<QueryResult, CdbError> {
        hyperplane_on(
            self.relation(name)?,
            self.reader(),
            a,
            c,
            SelectionKind::Exist,
            self.config.strategy,
        )
    }

    /// Tuples lying entirely on `y = a·x + c`.
    pub fn all_line(&self, name: &str, a: f64, c: f64) -> Result<QueryResult, CdbError> {
        hyperplane_on(
            self.relation(name)?,
            self.reader(),
            a,
            c,
            SelectionKind::All,
            self.config.strategy,
        )
    }

    /// Convenience: EXIST selection via the default strategy.
    pub fn exist(&self, name: &str, q: HalfPlane) -> Result<QueryResult, CdbError> {
        self.query(name, Selection::exist(q))
    }

    /// Convenience: ALL selection via the default strategy.
    pub fn all(&self, name: &str, q: HalfPlane) -> Result<QueryResult, CdbError> {
        self.query(name, Selection::all(q))
    }

    /// Epoch bookkeeping as seen by this snapshot's pager hub: the
    /// current published generation, pinned-reader count (including this
    /// snapshot) and freed pages still quarantined for draining readers.
    pub fn epoch_stats(&self) -> EpochStats {
        self.reader.epoch_stats()
    }

    /// Operational stats of the frozen view. `read_only` is always true;
    /// WAL and checkpoint-failure fields belong to the live writer and
    /// are reported as absent/zero here.
    pub fn stats_snapshot(&self) -> DbStats {
        let mut relations: Vec<RelationStats> = self
            .relations
            .values()
            .map(|rel| {
                let mut indexes = Vec::new();
                if rel.index.is_some() {
                    indexes.push("dual".to_string());
                }
                if rel.index_d.is_some() {
                    indexes.push("dual-d".to_string());
                }
                if rel.rplus.is_some() {
                    indexes.push("rplus".to_string());
                }
                RelationStats {
                    name: rel.name.clone(),
                    dim: rel.dim,
                    live: rel.live,
                    heap_pages: rel.heap_pages(),
                    total_pages: rel.page_count(),
                    indexes,
                    health: rel.health.clone(),
                }
            })
            .collect();
        relations.sort_by(|a, b| a.name.cmp(&b.name));
        DbStats {
            relations,
            live_pages: self.reader.live_pages() as u64,
            io: self.reader.stats(),
            read_only: true,
            checkpoint_failures: 0,
            wal: None,
            epochs: self.reader.epoch_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_geometry::parse::parse_tuple;

    fn sample_db() -> ConstraintDb {
        let mut db = ConstraintDb::in_memory(DbConfig::paper_1999());
        db.create_relation("land", 2).unwrap();
        for s in [
            "y >= 0 && y <= 2 && x >= 0 && x + y <= 4",
            "y >= x && y <= x + 1 && x >= 10",
            "y >= -1 && y <= 1 && x >= -3 && x <= -1",
            "y >= 5 && y <= 7 && x >= 5 && x <= 8",
        ] {
            db.insert("land", parse_tuple(s).unwrap()).unwrap();
        }
        db
    }

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        let n = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        std::env::temp_dir().join(format!("cdb_dbtest_{tag}_{}_{n}", std::process::id()))
    }

    #[test]
    fn create_insert_fetch() {
        let mut db = sample_db();
        assert_eq!(db.relation("land").unwrap().len(), 4);
        let t = db.fetch_tuple("land", 0).unwrap();
        assert!(t.contains(&[1.0, 1.0]));
        assert!(db.relation("missing").is_err());
        assert!(matches!(
            db.create_relation("land", 2),
            Err(CdbError::RelationExists(_))
        ));
    }

    #[test]
    fn rejects_bad_tuples() {
        let mut db = sample_db();
        let t3 = parse_tuple("z >= 0").unwrap();
        assert!(matches!(
            db.insert("land", t3),
            Err(CdbError::DimensionMismatch {
                expected: 2,
                got: 3
            })
        ));
        let unsat = parse_tuple("x >= 1 && x <= 0 && y >= 0").unwrap();
        assert!(matches!(
            db.insert("land", unsat),
            Err(CdbError::UnsatisfiableTuple)
        ));
    }

    #[test]
    fn scan_query_works_without_index() {
        let db = sample_db();
        let r = db
            .query_with(
                "land",
                Selection::exist(HalfPlane::above(0.0, 4.5)),
                Strategy::Scan,
            )
            .unwrap();
        // Tuples 1 (unbounded strip) and 3 (high square) reach y >= 4.5.
        assert_eq!(r.ids(), &[1, 3]);
        assert_eq!(r.stats.method, Some(MethodKind::SeqScan));
    }

    #[test]
    fn query_without_index_plans_a_scan() {
        let db = sample_db();
        // The planner serves index-less relations through SeqScan (the old
        // engine returned NoIndex here).
        let r = db.exist("land", HalfPlane::above(0.3, 0.0)).unwrap();
        let want = db
            .query_with(
                "land",
                Selection::exist(HalfPlane::above(0.3, 0.0)),
                Strategy::Scan,
            )
            .unwrap();
        assert_eq!(r.ids(), want.ids());
        assert_eq!(r.stats.method, Some(MethodKind::SeqScan));
        // Explicitly forcing an index technique still reports NoIndex.
        let err = db
            .query_with(
                "land",
                Selection::exist(HalfPlane::above(0.3, 0.0)),
                Strategy::T2,
            )
            .unwrap_err();
        assert!(matches!(err, CdbError::NoIndex(_)));
    }

    #[test]
    fn indexed_queries_match_scan() {
        let mut db = sample_db();
        db.build_dual_index("land", SlopeSet::uniform_tan(4))
            .unwrap();
        for (a, b) in [(0.3, -5.0), (1.0, 0.0), (-0.7, 2.0), (4.0, 1.0)] {
            for sel in [
                Selection::exist(HalfPlane::above(a, b)),
                Selection::exist(HalfPlane::below(a, b)),
                Selection::all(HalfPlane::above(a, b)),
                Selection::all(HalfPlane::below(a, b)),
            ] {
                let want = db.query_with("land", sel.clone(), Strategy::Scan).unwrap();
                for st in [Strategy::T1, Strategy::T2, Strategy::Auto] {
                    let got = db.query_with("land", sel.clone(), st).unwrap();
                    assert_eq!(got.ids(), want.ids(), "{st:?} a={a} b={b}");
                }
            }
        }
    }

    #[test]
    fn insert_after_index_then_query() {
        let mut db = sample_db();
        db.build_dual_index("land", SlopeSet::uniform_tan(3))
            .unwrap();
        db.insert(
            "land",
            parse_tuple("y >= 90 && y <= 95 && x >= 0 && x <= 5").unwrap(),
        )
        .unwrap();
        let r = db
            .query_with(
                "land",
                Selection::exist(HalfPlane::above(0.11, 80.0)),
                Strategy::T2,
            )
            .unwrap();
        // Tuple 1 is an unbounded strip with TOP = +∞, so it also qualifies.
        assert_eq!(r.ids(), &[1, 4], "the new tuple is found through the index");
    }

    #[test]
    fn delete_removes_from_results() {
        let mut db = sample_db();
        db.build_dual_index("land", SlopeSet::uniform_tan(3))
            .unwrap();
        let q = || Selection::exist(HalfPlane::above(0.11, 4.0));
        let before = db.query_with("land", q(), Strategy::T2).unwrap();
        assert!(before.ids().contains(&3));
        let removed = db.delete("land", 3).unwrap();
        assert!(removed.contains(&[6.0, 6.0]));
        let after = db.query_with("land", q(), Strategy::T2).unwrap();
        assert!(!after.ids().contains(&3));
        assert!(matches!(
            db.delete("land", 3),
            Err(CdbError::NoSuchTuple(3))
        ));
    }

    #[test]
    fn io_stats_accumulate_and_reset() {
        let mut db = sample_db();
        db.build_dual_index("land", SlopeSet::uniform_tan(2))
            .unwrap();
        assert!(db.io_stats().accesses() > 0);
        db.reset_io_stats();
        assert_eq!(db.io_stats().accesses(), 0);
        let _ = db
            .query_with(
                "land",
                Selection::exist(HalfPlane::above(0.37, 0.0)),
                Strategy::T2,
            )
            .unwrap();
        assert!(db.io_stats().reads > 0, "queries cost page reads");
        assert!(db.live_pages() > 0);
    }

    #[test]
    fn dimension_checked_on_query() {
        let mut db = sample_db();
        db.build_dual_index("land", SlopeSet::uniform_tan(2))
            .unwrap();
        let q3 = HalfPlane::new(vec![1.0, 1.0], 0.0, cdb_geometry::RelOp::Ge);
        assert!(matches!(
            db.query("land", Selection::exist(q3)),
            Err(CdbError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn line_queries_through_facade() {
        let mut db = sample_db();
        db.build_dual_index("land", SlopeSet::uniform_tan(3))
            .unwrap();
        // The unbounded strip (tuple 1) straddles y = x + 0.5 far from the
        // window; the line query must still find it.
        let r = db.exist_line("land", 1.0, 0.5).unwrap();
        assert!(r.ids().contains(&1));
        // y = 50 still hits the unbounded strip (it climbs forever).
        let r = db.exist_line("land", 0.0, 50.0).unwrap();
        assert_eq!(r.ids(), &[1]);
        // A line parallel to the strip but below it misses everything.
        let r = db.exist_line("land", 1.0, -5.0).unwrap();
        assert!(r.is_empty());
        // Nothing is contained in a line here.
        let r = db.all_line("land", 1.0, 0.5).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn unbounded_tuples_round_trip_through_storage() {
        let mut db = ConstraintDb::in_memory(DbConfig::paper_1999());
        db.create_relation("r", 2).unwrap();
        let t = parse_tuple("y >= x").unwrap();
        let id = db.insert("r", t.clone()).unwrap();
        let back = db.fetch_tuple("r", id).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn drop_relation_frees_all_pages() {
        let mut db = sample_db();
        db.build_dual_index("land", SlopeSet::uniform_tan(3))
            .unwrap();
        db.build_rplus_index("land", 1.0).unwrap();
        db.create_relation("other", 2).unwrap();
        db.insert(
            "other",
            parse_tuple("x >= 0 && x <= 1 && y >= 0 && y <= 1").unwrap(),
        )
        .unwrap();
        assert_eq!(
            db.relation_names(),
            vec!["land".to_string(), "other".to_string()]
        );
        let other_pages = db.relation("other").unwrap().page_count() as usize;
        db.drop_relation("land").unwrap();
        assert!(db.relation("land").is_err());
        assert_eq!(db.live_pages(), other_pages, "land's pages reclaimed");
        assert!(matches!(
            db.drop_relation("land"),
            Err(CdbError::RelationNotFound(_))
        ));
    }

    #[test]
    fn page_accounting_matches_pager() {
        let mut db = sample_db();
        db.build_dual_index("land", SlopeSet::uniform_tan(2))
            .unwrap();
        db.build_rplus_index("land", 1.0).unwrap();
        let rel_pages = db.relation("land").unwrap().page_count();
        assert_eq!(rel_pages as usize, db.live_pages());
    }

    #[test]
    fn rebuild_dual_index_frees_old_pages() {
        let mut db = sample_db();
        db.build_dual_index("land", SlopeSet::uniform_tan(4))
            .unwrap();
        let first = db.live_pages();
        // Rebuilding must not leak the first forest's pages.
        db.build_dual_index("land", SlopeSet::uniform_tan(4))
            .unwrap();
        assert_eq!(db.live_pages(), first, "old index pages reclaimed");
    }

    #[test]
    fn corrupt_record_is_an_error_not_a_panic() {
        let mut db = sample_db();
        let rid = db.relation("land").unwrap().slots[2].unwrap();
        // Truncate record 2 in place: shrink its slot-directory length so
        // the stored bytes no longer parse as a generalized tuple.
        let mut buf = vec![0u8; db.config.page_size];
        db.pager.read(rid.page, &mut buf).unwrap();
        let len_off = 4 + rid.slot as usize * 4 + 2;
        buf[len_off..len_off + 2].copy_from_slice(&2u16.to_le_bytes());
        db.pager.write(rid.page, &buf).unwrap();

        assert_eq!(db.fetch_tuple("land", 2), Err(CdbError::CorruptRecord(2)));
        assert_eq!(
            db.scan_relation("land").unwrap_err(),
            CdbError::CorruptRecord(2)
        );
        // Planned queries surface the error instead of panicking too.
        let err = db
            .query_with(
                "land",
                Selection::exist(HalfPlane::above(0.0, -100.0)),
                Strategy::Scan,
            )
            .unwrap_err();
        assert_eq!(err, CdbError::CorruptRecord(2));
    }

    #[test]
    fn scan_is_stable_under_mixed_updates() {
        let mut db = sample_db();
        // Interleave deletes and inserts so record ids are reused and the
        // reverse map must stay exact.
        db.delete("land", 1).unwrap();
        db.delete("land", 2).unwrap();
        let id4 = db
            .insert(
                "land",
                parse_tuple("y >= 8 && y <= 9 && x >= 0 && x <= 1").unwrap(),
            )
            .unwrap();
        db.delete("land", 0).unwrap();
        let id5 = db
            .insert(
                "land",
                parse_tuple("y >= -9 && y <= -8 && x >= 0 && x <= 1").unwrap(),
            )
            .unwrap();
        let mut ids: Vec<u32> = db
            .scan_relation("land")
            .unwrap()
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![3, id4, id5]);
        let t4 = db.fetch_tuple("land", id4).unwrap();
        assert!(t4.contains(&[0.5, 8.5]), "ids resolve to the right tuples");
    }

    #[test]
    fn rplus_baseline_through_the_facade() {
        let mut db = sample_db();
        db.build_rplus_index("land", 1.0).unwrap();
        let rp = db.relation("land").unwrap().rplus().unwrap();
        assert_eq!(rp.tree.len(), 3, "three bounded tuples packed");
        assert_eq!(rp.unbounded, vec![1], "the strip is unbounded");
        for sel in [
            Selection::exist(HalfPlane::above(0.4, 1.0)),
            Selection::all(HalfPlane::above(0.4, 1.0)),
            Selection::exist(HalfPlane::below(-0.5, 3.0)),
            Selection::all(HalfPlane::below(-0.5, 3.0)),
        ] {
            let want = db.query_with("land", sel.clone(), Strategy::Scan).unwrap();
            let got = db.query_with("land", sel.clone(), Strategy::RPlus).unwrap();
            assert_eq!(got.ids(), want.ids(), "{sel:?}");
            assert_eq!(got.stats.method, Some(MethodKind::RPlus));
        }
        // Mixed updates: a delete tombstones a packed entry, an insert goes
        // straight into the tree; results stay oracle-exact.
        db.delete("land", 3).unwrap();
        let id = db
            .insert(
                "land",
                parse_tuple("y >= 5 && y <= 7 && x >= 5 && x <= 8").unwrap(),
            )
            .unwrap();
        let sel = Selection::exist(HalfPlane::above(0.0, 4.5));
        let want = db.query_with("land", sel.clone(), Strategy::Scan).unwrap();
        let got = db.query_with("land", sel.clone(), Strategy::RPlus).unwrap();
        assert_eq!(got.ids(), want.ids());
        assert!(got.ids().contains(&id) && !got.ids().contains(&3));
    }

    #[test]
    fn explain_lines_up_estimate_and_actual() {
        let mut db = sample_db();
        db.build_dual_index("land", SlopeSet::uniform_tan(4))
            .unwrap();
        let report = db
            .explain("land", Selection::exist(HalfPlane::above(0.37, 0.0)))
            .unwrap();
        let text = report.to_string();
        assert!(text.contains("method="), "{text}");
        assert!(text.contains("estimate:"), "{text}");
        assert!(text.contains("actual:"), "{text}");
        assert!(text.contains("considered:"), "{text}");
        assert_eq!(
            report.result.stats.estimate.map(|e| e.total()),
            Some(report.plan.estimate.total()),
            "the estimate is recorded in the stats next to the actuals"
        );
    }

    #[test]
    fn planner_prefers_restricted_for_member_slopes() {
        use cdb_workload::{DatasetSpec, ObjectSize};
        // Large enough that index descents beat scanning the whole heap
        // (on a page-sized relation the planner rightly picks SeqScan).
        let mut db = ConstraintDb::in_memory(DbConfig::paper_1999());
        db.create_relation("land", 2).unwrap();
        for t in DatasetSpec::paper_1999(400, ObjectSize::Small, 0xDB).generate() {
            db.insert("land", t).unwrap();
        }
        db.build_dual_index("land", SlopeSet::uniform_tan(4))
            .unwrap();
        let member = db
            .relation("land")
            .unwrap()
            .index()
            .unwrap()
            .slopes()
            .get(1);
        let plan = db
            .plan_query("land", &Selection::exist(HalfPlane::above(member, 0.0)))
            .unwrap();
        assert_eq!(plan.method, MethodKind::Restricted);
        assert!(plan.exact);
        // A non-member slope must not plan Restricted (it is infeasible).
        let plan = db
            .plan_query(
                "land",
                &Selection::exist(HalfPlane::above(member + 0.01, 0.0)),
            )
            .unwrap();
        assert_ne!(plan.method, MethodKind::Restricted);
        assert!(plan
            .rejected
            .iter()
            .any(|(m, _)| *m == MethodKind::Restricted));
    }

    #[test]
    fn read_only_serves_queries_and_refuses_mutations() {
        let path = tmp_path("ro");
        let mut db = ConstraintDb::create(&path, DbConfig::paper_1999()).unwrap();
        db.create_relation("land", 2).unwrap();
        for s in [
            "y >= 0 && y <= 2 && x >= 0 && x + y <= 4",
            "y >= 5 && y <= 7 && x >= 5 && x <= 8",
        ] {
            db.insert("land", parse_tuple(s).unwrap()).unwrap();
        }
        db.build_dual_index("land", SlopeSet::uniform_tan(3))
            .unwrap();
        db.close().unwrap();

        let ro = ConstraintDb::open_read_only(&path).unwrap();
        assert!(ro.is_read_only());
        assert!(ro.recovery_report().is_clean());
        let r = ro.exist("land", HalfPlane::above(0.0, 4.5)).unwrap();
        assert_eq!(r.ids(), &[1]);
        let mut ro = ro;
        assert!(matches!(
            ro.insert("land", parse_tuple("y >= x").unwrap()),
            Err(CdbError::ReadOnly)
        ));
        assert!(matches!(ro.delete("land", 0), Err(CdbError::ReadOnly)));
        assert!(matches!(
            ro.create_relation("more", 2),
            Err(CdbError::ReadOnly)
        ));
        assert!(matches!(ro.drop_relation("land"), Err(CdbError::ReadOnly)));
        assert!(matches!(
            ro.build_dual_index("land", SlopeSet::uniform_tan(2)),
            Err(CdbError::ReadOnly)
        ));
        assert!(matches!(
            ro.build_rplus_index("land", 1.0),
            Err(CdbError::ReadOnly)
        ));
        assert!(matches!(ro.tighten_index("land"), Err(CdbError::ReadOnly)));
        assert!(matches!(
            ro.rebuild_indexes("land"),
            Err(CdbError::ReadOnly)
        ));
        // Checkpoint and close are silent no-ops on a read-only handle.
        ro.checkpoint().unwrap();
        ro.close().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_heap_page_quarantines_only_that_relation() {
        let path = tmp_path("quar");
        let mut db = ConstraintDb::create(&path, DbConfig::paper_1999()).unwrap();
        for name in ["good", "bad"] {
            db.create_relation(name, 2).unwrap();
            for s in [
                "y >= 0 && y <= 2 && x >= 0 && x + y <= 4",
                "y >= 5 && y <= 7 && x >= 5 && x <= 8",
            ] {
                db.insert(name, parse_tuple(s).unwrap()).unwrap();
            }
        }
        let victim = db.relation("bad").unwrap().heap.pages()[0];
        db.close().unwrap();

        // Flip bytes inside the victim heap page on disk.
        let offset = {
            let fp = FilePager::open(&path).unwrap();
            fp.page_disk_offset(victim).expect("page is written")
        };
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(offset + 13)).unwrap();
            f.write_all(&[0xAB, 0xCD, 0xEF]).unwrap();
        }

        let db = ConstraintDb::open(&path).unwrap();
        assert!(!db.recovery_report().is_clean());
        assert_eq!(db.recovery_report().quarantined(), vec!["bad"]);
        assert!(matches!(
            db.relation("bad").unwrap().health(),
            RelationHealth::Quarantined { .. }
        ));
        // The sibling answers normally…
        let r = db.exist("good", HalfPlane::above(0.0, 4.5)).unwrap();
        assert_eq!(r.ids(), &[1]);
        // …while every path into the quarantined relation is refused.
        assert!(matches!(
            db.exist("bad", HalfPlane::above(0.0, 4.5)),
            Err(CdbError::Quarantined(_))
        ));
        assert!(matches!(
            db.scan_relation("bad"),
            Err(CdbError::Quarantined(_))
        ));
        assert!(matches!(
            db.fetch_tuple("bad", 0),
            Err(CdbError::Quarantined(_))
        ));
        let mut db = db;
        assert!(matches!(
            db.insert("bad", parse_tuple("y >= x").unwrap()),
            Err(CdbError::Quarantined(_))
        ));
        assert!(matches!(
            db.rebuild_indexes("bad"),
            Err(CdbError::Quarantined(_))
        ));
        // Dropping the quarantined relation is the way out.
        db.drop_relation("bad").unwrap();
        assert!(db.relation("bad").is_err());
        db.close().unwrap();
        std::fs::remove_file(&path).unwrap();
    }
}
