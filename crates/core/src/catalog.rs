//! The persistent database catalog: one versioned, checksummed blob
//! holding every relation's heap roots, slot table, index metadata and
//! planner EWMAs, committed through the pager's shadow-page meta protocol
//! (see `cdb_storage::FilePager::commit_meta`).
//!
//! Layout (all integers little-endian, written with
//! [`cdb_storage::RecordWriter`]):
//!
//! ```text
//! magic "CDBC" u32 | version u16 | durable_lsn u64 | strategy u8
//!                  | partition u8 [shards u32, shard u32, seed u64]
//!                  | relation count u32
//! per relation (sorted by name):
//!   name str | dim u32
//!   heap:   page count u32, page u32 ...
//!   slots:  len u32, { present u8, [page u32, slot u16] } ...
//!   2-D dual index:  present u8, [ k u32, slope f64 ×k, anchor_x f64,
//!                    dirty u8, (up tree, down tree) ×k ]
//!   d-dim dual index: present u8, [ point count u32, coords f64 ×(d-1)
//!                    per point, grid u8 [axis len u32 + f64s ×(d-1)],
//!                    (up tree, down tree) per point ]
//!   R⁺-tree: present u8, [ root u32, height u32, len u64, pages u64,
//!                    fill f64, unbounded u32s, dead u32s ]
//!   plan catalog: probe_clock u64, entry count u32,
//!                    { method u8, kind u8, frac f64, pages f64,
//!                      samples u64 } ...
//! ```
//!
//! B⁺-trees serialize as `root u32, height u32, len u64, first u32,
//! last u32, pages u64` — scalars only, because node contents (handicaps
//! included) live in their pages on disk.
//!
//! Integrity is layered: the pager's meta protocol CRCs the whole blob, so
//! `decode` normally sees exactly what `encode` produced. Decoding still
//! never panics on bad input — every structural invariant that a
//! constructor would `assert!` is checked first and surfaced as
//! [`CdbError::CorruptRecord`] with the [`CATALOG_RECORD`] sentinel.

use std::collections::HashMap;

use cdb_btree::BTree;
use cdb_rplustree::RPlusTree;
use cdb_storage::{CodecError, HeapFile, RecordId, RecordReader, RecordWriter};

use crate::db::{RPlusIndex, Relation, RelationHealth};
use crate::ddim::{DualIndexD, SlopePoints};
use crate::error::{CdbError, CATALOG_RECORD};
use crate::index::DualIndex;
use crate::partition::PartitionSpec;
use crate::plan::{MethodKind, Observation, PlanCatalog};
use crate::query::{SelectionKind, Strategy};
use crate::slopes::SlopeSet;

/// Catalog magic: `"CDBC"`.
const MAGIC: u32 = 0x4344_4243;
/// Current catalog format version. Version 2 added the `durable_lsn`
/// WAL watermark: every mutation with an LSN at or below it is covered by
/// this blob, so replay applies only the strictly newer log suffix.
/// Version 3 added the optional partition spec, persisted so a sharded
/// engine allocates exactly the same tuple ids after a reopen.
const VERSION: u16 = 3;

fn corrupt() -> CdbError {
    CdbError::CorruptRecord(CATALOG_RECORD)
}

impl From<CodecError> for CdbError {
    fn from(_: CodecError) -> Self {
        corrupt()
    }
}

// ------------------------------------------------------------- enum codes

fn strategy_code(s: Strategy) -> u8 {
    match s {
        Strategy::Auto => 0,
        Strategy::Restricted => 1,
        Strategy::T1 => 2,
        Strategy::T2 => 3,
        Strategy::Scan => 4,
        Strategy::RPlus => 5,
    }
}

fn strategy_from(code: u8) -> Result<Strategy, CdbError> {
    Ok(match code {
        0 => Strategy::Auto,
        1 => Strategy::Restricted,
        2 => Strategy::T1,
        3 => Strategy::T2,
        4 => Strategy::Scan,
        5 => Strategy::RPlus,
        _ => return Err(corrupt()),
    })
}

fn method_code(m: MethodKind) -> u8 {
    match m {
        MethodKind::Restricted => 0,
        MethodKind::T1 => 1,
        MethodKind::T2 => 2,
        MethodKind::DualD => 3,
        MethodKind::SeqScan => 4,
        MethodKind::RPlus => 5,
    }
}

fn method_from(code: u8) -> Result<MethodKind, CdbError> {
    Ok(match code {
        0 => MethodKind::Restricted,
        1 => MethodKind::T1,
        2 => MethodKind::T2,
        3 => MethodKind::DualD,
        4 => MethodKind::SeqScan,
        5 => MethodKind::RPlus,
        _ => return Err(corrupt()),
    })
}

fn kind_code(k: SelectionKind) -> u8 {
    match k {
        SelectionKind::Exist => 0,
        SelectionKind::All => 1,
    }
}

fn kind_from(code: u8) -> Result<SelectionKind, CdbError> {
    Ok(match code {
        0 => SelectionKind::Exist,
        1 => SelectionKind::All,
        _ => return Err(corrupt()),
    })
}

// ------------------------------------------------------------------ trees

fn put_btree(w: &mut RecordWriter, t: &BTree) {
    w.put_u32(t.root());
    w.put_u32(t.height() as u32);
    w.put_u64(t.len());
    w.put_u32(t.first_leaf());
    w.put_u32(t.last_leaf());
    w.put_u64(t.page_count());
}

fn get_btree(r: &mut RecordReader<'_>, page_size: usize) -> Result<BTree, CdbError> {
    let root = r.get_u32()?;
    let height = r.get_u32()? as usize;
    let len = r.get_u64()?;
    let first = r.get_u32()?;
    let last = r.get_u32()?;
    let pages = r.get_u64()?;
    Ok(BTree::from_parts(
        page_size, root, height, len, first, last, pages,
    ))
}

fn get_finite_f64(r: &mut RecordReader<'_>) -> Result<f64, CdbError> {
    let v = r.get_f64()?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(corrupt())
    }
}

// ----------------------------------------------------------------- encode

/// Serializes the default strategy, the WAL durability watermark, the
/// partition spec (when the engine is one shard of a deployment) and every
/// relation into one catalog blob. Relations are written in name order, so
/// identical database states produce identical bytes.
pub(crate) fn encode(
    strategy: Strategy,
    durable_lsn: u64,
    partition: Option<PartitionSpec>,
    relations: &HashMap<String, Relation>,
) -> Vec<u8> {
    let mut w = RecordWriter::new();
    w.put_u32(MAGIC);
    w.put_u16(VERSION);
    w.put_u64(durable_lsn);
    w.put_u8(strategy_code(strategy));
    match partition {
        Some(spec) => {
            w.put_u8(1);
            w.put_u32(spec.shards);
            w.put_u32(spec.shard);
            w.put_u64(spec.seed);
        }
        None => w.put_u8(0),
    }
    w.put_u32(relations.len() as u32);
    let mut names: Vec<&String> = relations.keys().collect();
    names.sort();
    for name in names {
        let rel = &relations[name];
        w.put_str(name);
        w.put_u32(rel.dim as u32);

        w.put_u32(rel.heap.pages().len() as u32);
        for &p in rel.heap.pages() {
            w.put_u32(p);
        }

        w.put_u32(rel.slots.len() as u32);
        for slot in &rel.slots {
            match slot {
                Some(rid) => {
                    w.put_u8(1);
                    w.put_u32(rid.page);
                    w.put_u16(rid.slot);
                }
                None => w.put_u8(0),
            }
        }

        match rel.index.as_ref() {
            Some(idx) => {
                w.put_u8(1);
                let slopes = idx.slopes().as_slice();
                w.put_u32(slopes.len() as u32);
                for &s in slopes {
                    w.put_f64(s);
                }
                w.put_f64(idx.anchor_x());
                w.put_u8(idx.needs_refresh() as u8);
                for (up, down) in idx.tree_pairs() {
                    put_btree(&mut w, up);
                    put_btree(&mut w, down);
                }
            }
            None => w.put_u8(0),
        }

        match rel.index_d.as_ref() {
            Some(idx) => {
                w.put_u8(1);
                let points = idx.points();
                w.put_u32(points.len() as u32);
                for p in points.as_slice() {
                    for &c in p {
                        w.put_f64(c);
                    }
                }
                match points.grid_axes() {
                    Some(axes) => {
                        w.put_u8(1);
                        for axis in axes {
                            w.put_u32(axis.len() as u32);
                            for &c in axis {
                                w.put_f64(c);
                            }
                        }
                    }
                    None => w.put_u8(0),
                }
                for (up, down) in idx.tree_pairs() {
                    put_btree(&mut w, up);
                    put_btree(&mut w, down);
                }
            }
            None => w.put_u8(0),
        }

        match rel.rplus.as_ref() {
            Some(rp) => {
                w.put_u8(1);
                w.put_u32(rp.tree.root());
                w.put_u32(rp.tree.height() as u32);
                w.put_u64(rp.tree.len());
                w.put_u64(rp.tree.page_count());
                w.put_f64(rp.fill);
                w.put_u32(rp.unbounded.len() as u32);
                for &id in &rp.unbounded {
                    w.put_u32(id);
                }
                w.put_u32(rp.dead.len() as u32);
                for &id in &rp.dead {
                    w.put_u32(id);
                }
            }
            None => w.put_u8(0),
        }

        w.put_u64(rel.catalog.probe_clock());
        let entries = rel.catalog.entries();
        w.put_u32(entries.len() as u32);
        for (m, k, o) in entries {
            w.put_u8(method_code(m));
            w.put_u8(kind_code(k));
            w.put_f64(o.candidate_frac);
            w.put_f64(o.total_pages);
            w.put_u64(o.samples);
        }
    }
    w.into_bytes()
}

// ----------------------------------------------------------------- decode

/// Rebuilds the default strategy and the full relation map from a catalog
/// blob. `by_record` and `live` are derived from the slot table, so a
/// reopened database never rescans its heap.
///
/// # Errors
/// [`CdbError::CorruptRecord`] (id [`CATALOG_RECORD`]) on any structural
/// violation: bad magic, unknown version or enum code, truncation,
/// non-finite floats where finite ones are required, or trailing garbage.
pub(crate) fn decode(blob: &[u8], page_size: usize) -> Result<DecodedCatalog, CdbError> {
    let mut r = RecordReader::new(blob);
    if r.get_u32()? != MAGIC {
        return Err(corrupt());
    }
    if r.get_u16()? != VERSION {
        return Err(corrupt());
    }
    let durable_lsn = r.get_u64()?;
    let strategy = strategy_from(r.get_u8()?)?;
    let partition = match r.get_u8()? {
        0 => None,
        1 => {
            let shards = r.get_u32()?;
            let shard = r.get_u32()?;
            let seed = r.get_u64()?;
            // PartitionSpec::new validates range; a violation here means
            // the blob is damaged, not that the caller mis-called.
            Some(PartitionSpec::new(shards, shard, seed).map_err(|_| corrupt())?)
        }
        _ => return Err(corrupt()),
    };
    let nrel = r.get_u32()?;
    let mut relations = HashMap::new();
    for _ in 0..nrel {
        let name = r.get_str()?.to_string();
        let dim = r.get_u32()? as usize;
        if dim < 1 {
            return Err(corrupt());
        }

        let npages = r.get_u32()?;
        let mut pages = Vec::new();
        for _ in 0..npages {
            pages.push(r.get_u32()?);
        }
        let heap = HeapFile::from_pages(page_size, pages);

        let nslots = r.get_u32()?;
        let mut slots = Vec::new();
        let mut by_record = HashMap::new();
        let mut live = 0u64;
        for id in 0..nslots {
            match r.get_u8()? {
                0 => slots.push(None),
                1 => {
                    let rid = RecordId {
                        page: r.get_u32()?,
                        slot: r.get_u16()?,
                    };
                    slots.push(Some(rid));
                    if by_record.insert(rid, id).is_some() {
                        return Err(corrupt()); // two tuples sharing a record
                    }
                    live += 1;
                }
                _ => return Err(corrupt()),
            }
        }

        let index = match r.get_u8()? {
            0 => None,
            1 => {
                let k = r.get_u32()? as usize;
                if k < 2 {
                    return Err(corrupt());
                }
                let mut slopes = Vec::with_capacity(k);
                for _ in 0..k {
                    let s = get_finite_f64(&mut r)?;
                    // Persisted ascending and distinct; anything else would
                    // make SlopeSet::new panic, so reject it here.
                    if slopes.last().is_some_and(|&prev| s <= prev) {
                        return Err(corrupt());
                    }
                    slopes.push(s);
                }
                let anchor_x = get_finite_f64(&mut r)?;
                let dirty = match r.get_u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(corrupt()),
                };
                let mut pairs = Vec::with_capacity(k);
                for _ in 0..k {
                    let up = get_btree(&mut r, page_size)?;
                    let down = get_btree(&mut r, page_size)?;
                    pairs.push((up, down));
                }
                Some(DualIndex::from_parts(
                    SlopeSet::new(slopes),
                    pairs,
                    anchor_x,
                    dirty,
                ))
            }
            _ => return Err(corrupt()),
        };

        let index_d = match r.get_u8()? {
            0 => None,
            1 => {
                if dim < 2 {
                    return Err(corrupt());
                }
                let k = r.get_u32()? as usize;
                if k < dim {
                    return Err(corrupt()); // SlopePoints needs a covering simplex
                }
                let mut points = Vec::with_capacity(k);
                for _ in 0..k {
                    let mut p = Vec::with_capacity(dim - 1);
                    for _ in 0..dim - 1 {
                        p.push(get_finite_f64(&mut r)?);
                    }
                    points.push(p);
                }
                let grid_axes = match r.get_u8()? {
                    0 => None,
                    1 => {
                        let mut axes = Vec::with_capacity(dim - 1);
                        for _ in 0..dim - 1 {
                            let n = r.get_u32()? as usize;
                            let mut axis = Vec::with_capacity(n.min(r.remaining() / 8));
                            for _ in 0..n {
                                axis.push(get_finite_f64(&mut r)?);
                            }
                            axes.push(axis);
                        }
                        Some(axes)
                    }
                    _ => return Err(corrupt()),
                };
                let mut trees = Vec::with_capacity(k);
                for _ in 0..k {
                    let up = get_btree(&mut r, page_size)?;
                    let down = get_btree(&mut r, page_size)?;
                    trees.push((up, down));
                }
                Some(DualIndexD::from_parts(
                    SlopePoints::from_parts(dim, points, grid_axes),
                    trees,
                ))
            }
            _ => return Err(corrupt()),
        };

        let rplus = match r.get_u8()? {
            0 => None,
            1 => {
                let root = r.get_u32()?;
                let height = r.get_u32()? as usize;
                let len = r.get_u64()?;
                let tpages = r.get_u64()?;
                let fill = get_finite_f64(&mut r)?;
                let n = r.get_u32()?;
                let mut unbounded = Vec::new();
                for _ in 0..n {
                    unbounded.push(r.get_u32()?);
                }
                let n = r.get_u32()?;
                let mut dead = Vec::new();
                for _ in 0..n {
                    dead.push(r.get_u32()?);
                }
                if dead.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(corrupt()); // tombstones are sorted + unique
                }
                Some(RPlusIndex {
                    tree: RPlusTree::from_parts(page_size, root, height, len, tpages),
                    unbounded,
                    dead,
                    fill,
                })
            }
            _ => return Err(corrupt()),
        };

        let probe_clock = r.get_u64()?;
        let nent = r.get_u32()?;
        let mut entries = Vec::new();
        for _ in 0..nent {
            let m = method_from(r.get_u8()?)?;
            let k = kind_from(r.get_u8()?)?;
            entries.push((
                m,
                k,
                Observation {
                    candidate_frac: get_finite_f64(&mut r)?,
                    total_pages: get_finite_f64(&mut r)?,
                    samples: r.get_u64()?,
                },
            ));
        }
        let catalog = PlanCatalog::from_entries(&entries, probe_clock);

        if relations
            .insert(
                name.clone(),
                Relation {
                    name,
                    dim,
                    heap,
                    slots,
                    by_record,
                    live,
                    index,
                    index_d,
                    rplus,
                    catalog,
                    // The open-time verification pass re-classifies this
                    // right after decoding (see `ConstraintDb::open`).
                    health: RelationHealth::Healthy,
                },
            )
            .is_some()
        {
            return Err(corrupt()); // duplicate relation name
        }
    }
    if r.remaining() != 0 {
        return Err(corrupt()); // trailing garbage
    }
    Ok(DecodedCatalog {
        strategy,
        durable_lsn,
        partition,
        relations,
    })
}

/// Everything [`decode`] rebuilds from one catalog blob.
pub(crate) struct DecodedCatalog {
    pub strategy: Strategy,
    pub durable_lsn: u64,
    pub partition: Option<PartitionSpec>,
    pub relations: HashMap<String, Relation>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_corrupt(r: Result<DecodedCatalog, CdbError>) -> bool {
        matches!(r, Err(CdbError::CorruptRecord(CATALOG_RECORD)))
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(is_corrupt(decode(b"not a catalog", 1024)));
        assert!(is_corrupt(decode(&[], 1024)));
        // Right magic, truncated immediately after.
        let mut w = RecordWriter::new();
        w.put_u32(MAGIC);
        assert!(is_corrupt(decode(&w.into_bytes(), 1024)));
    }

    #[test]
    fn rejects_wrong_version_and_trailing_garbage() {
        let mut w = RecordWriter::new();
        w.put_u32(MAGIC);
        w.put_u16(VERSION + 1);
        w.put_u64(0);
        w.put_u8(0);
        w.put_u8(0);
        w.put_u32(0);
        assert!(is_corrupt(decode(&w.into_bytes(), 1024)));

        let mut bytes = encode(Strategy::Auto, 0, None, &HashMap::new());
        bytes.push(0);
        assert!(is_corrupt(decode(&bytes, 1024)));
    }

    #[test]
    fn empty_catalog_round_trips() {
        let bytes = encode(Strategy::T2, 17, None, &HashMap::new());
        let cat = decode(&bytes, 1024).unwrap();
        assert_eq!(cat.strategy, Strategy::T2);
        assert_eq!(cat.durable_lsn, 17);
        assert_eq!(cat.partition, None);
        assert!(cat.relations.is_empty());
    }

    #[test]
    fn partition_spec_round_trips_byte_exact() {
        let spec = PartitionSpec::new(8, 5, 0xFEED_FACE_CAFE_BEEF).unwrap();
        let bytes = encode(Strategy::Auto, 3, Some(spec), &HashMap::new());
        let cat = decode(&bytes, 1024).unwrap();
        assert_eq!(cat.partition, Some(spec));
        // Re-encoding the decoded state reproduces the exact bytes — the
        // persisted seed/params survive any number of reopen cycles
        // unchanged.
        let again = encode(cat.strategy, cat.durable_lsn, cat.partition, &cat.relations);
        assert_eq!(again, bytes);
    }

    #[test]
    fn rejects_damaged_partition_spec() {
        // shard index out of range: structurally well-formed, semantically
        // impossible — decode must refuse rather than build a spec that
        // PartitionSpec::new would have rejected.
        let mut w = RecordWriter::new();
        w.put_u32(MAGIC);
        w.put_u16(VERSION);
        w.put_u64(0);
        w.put_u8(0);
        w.put_u8(1);
        w.put_u32(2); // shards
        w.put_u32(7); // shard — out of range
        w.put_u64(1);
        w.put_u32(0);
        assert!(is_corrupt(decode(&w.into_bytes(), 1024)));
        // Unknown presence byte.
        let mut w = RecordWriter::new();
        w.put_u32(MAGIC);
        w.put_u16(VERSION);
        w.put_u64(0);
        w.put_u8(0);
        w.put_u8(9);
        w.put_u32(0);
        assert!(is_corrupt(decode(&w.into_bytes(), 1024)));
    }

    #[test]
    fn strategy_and_enum_codes_round_trip() {
        for s in [
            Strategy::Auto,
            Strategy::Restricted,
            Strategy::T1,
            Strategy::T2,
            Strategy::Scan,
            Strategy::RPlus,
        ] {
            assert_eq!(strategy_from(strategy_code(s)).unwrap(), s);
        }
        assert_eq!(strategy_from(99), Err(corrupt()));
        for m in [
            MethodKind::Restricted,
            MethodKind::T1,
            MethodKind::T2,
            MethodKind::DualD,
            MethodKind::SeqScan,
            MethodKind::RPlus,
        ] {
            assert_eq!(method_from(method_code(m)).unwrap(), m);
        }
        for k in [SelectionKind::Exist, SelectionKind::All] {
            assert_eq!(kind_from(kind_code(k)).unwrap(), k);
        }
    }
}
