//! The paper's contribution: **dual-representation indexing for linear
//! constraint databases** (Bertino, Catania & Chidlovskii, ICDE 1999).
//!
//! A [`DualIndex`] stores, for every slope `aᵢ` of a predefined
//! [`slopes::SlopeSet`] `S`, two B⁺-trees over the relation: `Bᵢ^up` keyed by
//! `TOP_P(aᵢ)` and `Bᵢ^down` keyed by `BOT_P(aᵢ)` (Section 3). ALL and EXIST
//! half-plane selections are then:
//!
//! * **exact** — one tree search plus a leaf sweep — when the query slope is
//!   in `S` ([`query::Strategy::Restricted`]);
//! * **approximated by two app-queries** with slopes bracketing the query
//!   slope, operators per Table 1, followed by an exact refinement step
//!   ([`query::Strategy::T1`], Section 4.1) — duplicates possible;
//! * **approximated by a single handicap-guided search** in the tree of the
//!   nearest slope ([`query::Strategy::T2`], Sections 4.2–4.3) — an upward
//!   and a downward sweep over *disjoint* leaf sets, so no duplicates, with
//!   per-leaf handicap values bounding how far the second sweep must go.
//!
//! Both finite and infinite (unbounded) polyhedra are supported uniformly —
//! unbounded tuples simply contribute `±∞` keys.
//!
//! [`ddim::DualIndexD`] extends the scheme to `E^d` (Section 4.4): `S`
//! becomes a point set in slope space `E^{d-1}`, queries with slopes in `S`
//! stay exact, and arbitrary queries are covered by `d` app-queries whose
//! slopes span a containing simplex.
//!
//! [`db::ConstraintDb`] is a small engine facade tying relations (heap
//! files), indexes and queries together; see the crate-level examples of
//! `constraint-db`.
//!
//! The whole query path is `&self` over the read half of the pager
//! ([`cdb_storage::PageReader`]), so one built index can serve many queries
//! concurrently: [`exec::QueryExecutor`] fans a batch of selections out over
//! scoped threads sharing the same snapshot, with exact per-query
//! [`QueryStats`] via [`cdb_storage::TrackedReader`].
//!
//! Every query path — the three dual-index techniques, the d-dimensional
//! extension, a sequential scan, and the Section 5 R⁺-tree baseline — is
//! unified behind the [`plan::AccessMethod`] trait; [`plan::Planner`]
//! chooses among them with the paper-shaped I/O cost formulas seeded by
//! observed per-plan statistics, and
//! [`db::ConstraintDb::explain`] renders the decision next to the actuals.

pub mod catalog;
pub mod db;
pub mod ddim;
pub mod error;
pub mod exec;
pub mod handicap;
pub mod index;
pub mod logical;
pub mod partition;
pub mod physical;
pub mod plan;
pub mod pretty;
pub mod query;
pub mod slopes;
pub mod sql;
pub(crate) mod wal;

pub use db::{
    ConstraintDb, DbConfig, DbStats, RecoveryReport, Relation, RelationHealth, RelationStats,
    Snapshot, WalReplay, WalStats,
};
pub use error::{CdbError, CATALOG_RECORD, WAL_RECORD};
pub use exec::{QueryEngine, QueryExecutor};
pub use index::DualIndex;
pub use partition::{hash_owner, PartitionSpec, Partitioner};
pub use plan::{
    AccessMethod, Capability, CostEstimate, ExplainReport, MethodKind, PlanCatalog, Planner,
    QueryPlan,
};
pub use pretty::PlanNode;
pub use query::{QueryResult, QueryStats, Selection, SelectionKind, Strategy};
pub use slopes::SlopeSet;
pub use sql::{SqlError, SqlMode, SqlOutcome, SqlQuery, SqlRow};
