//! Deterministic tuple-id partitioning for sharded deployments.
//!
//! A sharded deployment runs one engine per shard; every engine holds the
//! same schema but only the tuples whose ids it *owns*. Ownership is a
//! pure function of `(seed, id)` — no directory, no coordination — so any
//! client holding the same [`PartitionSpec`] parameters routes every id
//! to the same shard, and EXIST/ALL answers over the shards are unions of
//! disjoint id sets.
//!
//! Because `ConstraintDb::insert` assigns ids as `slots.len()`, a shard
//! cannot be handed an id from outside — it *allocates* only ids it owns,
//! skipping foreign ids by pushing absent slots (see
//! [`crate::db::ConstraintDb::set_partition`]). When one router feeds the
//! deployment in insert order, the allocated ids are exactly the global
//! sequence `0, 1, 2, …` spread across shards, which is what makes a
//! sharded deployment answer queries identically to one unsharded engine
//! over the same insert stream.
//!
//! The [`Partitioner`] trait keeps the assignment strategy open: id-space
//! hashing is what [`PartitionSpec`] implements today, and a slope-space
//! range partitioner (tuples grouped by the dual-plane region they occupy)
//! can implement the same trait later without touching the routing layers.

use crate::error::CdbError;

/// Assigns every tuple id to exactly one shard.
///
/// Implementations must be pure: the same id maps to the same shard on
/// every call, in every process, on every machine — routing correctness
/// and recovery determinism both lean on it.
pub trait Partitioner {
    /// Number of shards ids are spread over (at least 1).
    fn shards(&self) -> u32;
    /// The shard owning tuple `id` (always `< self.shards()`).
    fn owner(&self, id: u32) -> u32;
}

/// The shard owning `id` under id-space hash partitioning with `seed` —
/// the routing function, usable without a full [`PartitionSpec`] (clients
/// know the deployment's `(seed, shards)` but are no shard themselves).
///
/// The mix is a splitmix64-style finalizer: full-width avalanche, so
/// consecutive ids land on unrelated shards and every shard's share of n
/// ids concentrates tightly around `n / shards`.
pub fn hash_owner(seed: u64, shards: u32, id: u32) -> u32 {
    assert!(shards >= 1, "a deployment has at least one shard");
    let mut x = seed ^ (u64::from(id)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % u64::from(shards)) as u32
}

/// One engine's place in an id-hash-partitioned deployment: the shard
/// count, this engine's shard index, and the deployment-wide hash seed.
///
/// The spec is persisted in the catalog (and write-ahead-logged when
/// installed on a live engine), so id allocation stays deterministic
/// across process restarts, catalog reopens, and WAL replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Total number of shards in the deployment.
    pub shards: u32,
    /// This engine's shard index (`< shards`).
    pub shard: u32,
    /// Deployment-wide hash seed; identical on every shard.
    pub seed: u64,
}

impl PartitionSpec {
    /// Builds a validated spec.
    ///
    /// # Errors
    /// [`CdbError::UnsupportedQuery`] when `shards` is zero or `shard` is
    /// out of range.
    pub fn new(shards: u32, shard: u32, seed: u64) -> Result<PartitionSpec, CdbError> {
        if shards == 0 {
            return Err(CdbError::UnsupportedQuery(
                "a partition spec needs at least one shard".into(),
            ));
        }
        if shard >= shards {
            return Err(CdbError::UnsupportedQuery(format!(
                "shard index {shard} out of range for {shards} shard(s)"
            )));
        }
        Ok(PartitionSpec {
            shards,
            shard,
            seed,
        })
    }

    /// Whether this engine's shard owns tuple `id`.
    pub fn owns(&self, id: u32) -> bool {
        self.owner(id) == self.shard
    }
}

impl Partitioner for PartitionSpec {
    fn shards(&self) -> u32 {
        self.shards
    }

    fn owner(&self, id: u32) -> u32 {
        hash_owner(self.seed, self.shards, id)
    }
}

impl std::fmt::Display for PartitionSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {}/{} (seed {:#x})",
            self.shard, self.shards, self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(PartitionSpec::new(0, 0, 1).is_err());
        assert!(PartitionSpec::new(2, 2, 1).is_err());
        assert!(PartitionSpec::new(2, 3, 1).is_err());
        assert!(PartitionSpec::new(1, 0, 1).is_ok());
    }

    #[test]
    fn ownership_is_deterministic_and_total() {
        // Two independently constructed specs agree on every id — the
        // property every router and every restarted engine relies on.
        let a = PartitionSpec::new(4, 0, 0xC0FFEE).unwrap();
        let b = PartitionSpec::new(4, 3, 0xC0FFEE).unwrap();
        for id in 0..10_000 {
            let owner = a.owner(id);
            assert!(owner < 4);
            assert_eq!(owner, b.owner(id));
            assert_eq!(owner, hash_owner(0xC0FFEE, 4, id));
        }
    }

    #[test]
    fn shares_are_balanced() {
        // Avalanche check: over n ids each of k shards holds n/k ± a few
        // percent, for several seeds and shard counts.
        for &seed in &[0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            for &shards in &[2u32, 3, 5, 8] {
                let n = 40_000u32;
                let mut counts = vec![0u32; shards as usize];
                for id in 0..n {
                    counts[hash_owner(seed, shards, id) as usize] += 1;
                }
                let expect = n / shards;
                for (k, &c) in counts.iter().enumerate() {
                    assert!(
                        (c as i64 - expect as i64).unsigned_abs() < u64::from(expect) / 10,
                        "seed {seed:#x}, {shards} shards: shard {k} holds {c} of {n}"
                    );
                }
            }
        }
    }

    #[test]
    fn hash_is_pinned_for_on_disk_compatibility() {
        // Golden values. Ownership is persisted implicitly in every shard
        // file (each holds exactly the ids it hashed to), so changing the
        // mix would corrupt every existing deployment on restart. If this
        // test fails, the hash changed — don't update the constants, make
        // the change a new partitioner instead.
        let got: Vec<u32> = (0..16).map(|id| hash_owner(0xC0DB, 4, id)).collect();
        assert_eq!(got, [0, 0, 1, 3, 1, 0, 1, 0, 0, 2, 3, 0, 1, 0, 3, 0]);
        let got: Vec<u32> = (0..12).map(|id| hash_owner(7, 3, id)).collect();
        assert_eq!(got, [1, 1, 0, 2, 0, 1, 0, 0, 0, 2, 0, 0]);
    }

    #[test]
    fn different_seeds_shuffle_ownership() {
        let disagreements = (0..1000)
            .filter(|&id| hash_owner(1, 4, id) != hash_owner(2, 4, id))
            .count();
        assert!(disagreements > 500, "seed barely matters: {disagreements}");
    }
}
