//! Handicap computation for technique T2 (Section 4.2, Steps 1–2).
//!
//! For a B⁺-tree at slope `aᵢ` and a neighbouring slope strip
//! `[aᵢ, a_mid]`, every tuple has a *reach*: the extremum of one of its
//! dual surfaces over the strip. Because `TOP_P` is convex and `BOT_P`
//! concave along the strip, the reach is an endpoint evaluation:
//!
//! * `low` handicaps (second sweep descends):
//!   `reach = max(TOP_P(aᵢ), TOP_P(a_mid))`, handicap = **min key** per leaf;
//! * `high` handicaps (second sweep ascends):
//!   `reach = min(BOT_P(aᵢ), BOT_P(a_mid))`, handicap = **max key** per leaf.
//!
//! Each tuple is bucketed into the leaf whose key interval its reach falls
//! in. The bucket rule must be *sweep-compatible*: any tuple with
//! `reach ≥ b` (for low) must land in a leaf the upward sweep from `b`
//! visits, i.e. the **first leaf whose max key is ≥ reach** (clamped to the
//! last non-empty leaf); symmetrically for high. The correctness proof is in
//! this module's tests (`missed_tuples_are_recoverable_*`) and exercised
//! end-to-end by the T2 oracle property tests.

use cdb_btree::LeafInfo;

/// For each leaf, the `low` handicap: the minimum key among tuples whose
/// reach buckets into that leaf (`+∞` when no tuple does).
///
/// `pairs` is `(reach, key)` per tuple; order is irrelevant.
pub fn assign_low(leaves: &[LeafInfo], pairs: &[(f64, f64)]) -> Vec<f64> {
    let mut out = vec![f64::INFINITY; leaves.len()];
    // Non-empty leaves in chain order.
    let idx: Vec<usize> = (0..leaves.len()).filter(|&i| leaves[i].count > 0).collect();
    if idx.is_empty() {
        return out;
    }
    let mut sorted: Vec<(f64, f64)> = pairs.to_vec();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN reach"));
    let mut li = 0usize; // position in idx
    for &(reach, key) in &sorted {
        // Advance to the first non-empty leaf with max_key >= reach.
        while li + 1 < idx.len() && leaves[idx[li]].max_key < reach {
            li += 1;
        }
        let leaf = idx[li];
        if out[leaf] > key {
            out[leaf] = key;
        }
    }
    out
}

/// For each leaf, the `high` handicap: the maximum key among tuples whose
/// reach buckets into that leaf (`−∞` when no tuple does). Bucket rule:
/// the **last** non-empty leaf whose min key is `≤ reach`, clamped to the
/// first non-empty leaf.
pub fn assign_high(leaves: &[LeafInfo], pairs: &[(f64, f64)]) -> Vec<f64> {
    let mut out = vec![f64::NEG_INFINITY; leaves.len()];
    let idx: Vec<usize> = (0..leaves.len()).filter(|&i| leaves[i].count > 0).collect();
    if idx.is_empty() {
        return out;
    }
    let mut sorted: Vec<(f64, f64)> = pairs.to_vec();
    sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("NaN reach"));
    let mut li = idx.len() - 1;
    for &(reach, key) in &sorted {
        while li > 0 && leaves[idx[li]].min_key > reach {
            li -= 1;
        }
        let leaf = idx[li];
        if out[leaf] < key {
            out[leaf] = key;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(page: u32, min: f64, max: f64, count: usize) -> LeafInfo {
        LeafInfo {
            page,
            min_key: min,
            max_key: max,
            count,
        }
    }

    /// Three leaves covering keys 0-9, 10-19, 20-29.
    fn chain() -> Vec<LeafInfo> {
        vec![
            leaf(1, 0.0, 9.0, 10),
            leaf(2, 10.0, 19.0, 10),
            leaf(3, 20.0, 29.0, 10),
        ]
    }

    #[test]
    fn low_buckets_by_reach() {
        // Tuple with key 2 but reach 15: buckets into the middle leaf,
        // whose low handicap becomes 2.
        let h = assign_low(&chain(), &[(15.0, 2.0), (25.0, 21.0), (5.0, 4.0)]);
        assert_eq!(h, vec![4.0, 2.0, 21.0]);
    }

    #[test]
    fn low_clamps_to_extremes() {
        // Reach beyond the last leaf clamps there; reach below the first
        // clamps to the first.
        let h = assign_low(&chain(), &[(100.0, 0.5), (-50.0, 7.0)]);
        assert_eq!(h, vec![7.0, f64::INFINITY, 0.5]);
    }

    #[test]
    fn low_takes_minimum_per_bucket() {
        let h = assign_low(&chain(), &[(12.0, 8.0), (13.0, 3.0), (14.0, 6.0)]);
        assert_eq!(h[1], 3.0);
    }

    #[test]
    fn high_buckets_by_reach() {
        // Tuple with key 27 but reach 12: buckets into the middle leaf,
        // whose high handicap becomes 27.
        let h = assign_high(&chain(), &[(12.0, 27.0), (3.0, 9.0)]);
        assert_eq!(h, vec![9.0, 27.0, f64::NEG_INFINITY]);
    }

    #[test]
    fn high_clamps_to_extremes() {
        let h = assign_high(&chain(), &[(-100.0, 5.0), (200.0, 1.0)]);
        assert_eq!(h, vec![5.0, f64::NEG_INFINITY, 1.0]);
    }

    #[test]
    fn empty_leaves_are_skipped() {
        let leaves = vec![
            leaf(1, 0.0, 9.0, 10),
            leaf(2, f64::NAN, f64::NAN, 0), // emptied by deletions
            leaf(3, 20.0, 29.0, 10),
        ];
        let h = assign_low(&leaves, &[(15.0, 2.0)]);
        // Reach 15: first non-empty leaf with max >= 15 is the third.
        assert_eq!(h, vec![f64::INFINITY, f64::INFINITY, 2.0]);
        let h2 = assign_high(&leaves, &[(15.0, 28.0)]);
        // Last non-empty leaf with min <= 15 is the first.
        assert_eq!(h2, vec![28.0, f64::NEG_INFINITY, f64::NEG_INFINITY]);
    }

    #[test]
    fn infinite_reaches() {
        let h = assign_low(&chain(), &[(f64::INFINITY, 1.0)]);
        assert_eq!(h[2], 1.0, "+inf reach clamps to the last leaf");
        let h2 = assign_high(&chain(), &[(f64::NEG_INFINITY, 22.0)]);
        assert_eq!(h2[0], 22.0, "-inf reach clamps to the first leaf");
    }

    /// The sweep-compatibility property behind T2's correctness (low side):
    /// for any threshold `b`, a tuple with `reach ≥ b` buckets into a leaf
    /// at or after the first leaf with `max_key ≥ b` — which the upward
    /// sweep from `b` visits — and the leaf's handicap is ≤ the tuple's key.
    #[test]
    fn missed_tuples_are_recoverable_low() {
        let leaves = chain();
        let pairs: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let reach = (i as f64 * 7.3) % 35.0 - 2.0;
                let key = (i as f64 * 3.1) % 30.0;
                (reach, key)
            })
            .collect();
        let h = assign_low(&leaves, &pairs);
        for b in [0.0, 5.0, 12.0, 19.5, 28.0] {
            let first_visited = (0..leaves.len())
                .find(|&i| leaves[i].max_key >= b)
                .unwrap_or(leaves.len() - 1);
            // low(q) folded over visited leaves.
            let low_q = (first_visited..leaves.len())
                .map(|i| h[i])
                .fold(f64::INFINITY, f64::min);
            for &(reach, key) in &pairs {
                if reach >= b {
                    assert!(
                        low_q <= key,
                        "tuple key {key} (reach {reach}) unreachable: low({b}) = {low_q}"
                    );
                }
            }
        }
    }

    /// Symmetric property for the high side.
    #[test]
    fn missed_tuples_are_recoverable_high() {
        let leaves = chain();
        let pairs: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let reach = (i as f64 * 5.7) % 35.0 - 2.0;
                let key = (i as f64 * 2.3) % 30.0;
                (reach, key)
            })
            .collect();
        let h = assign_high(&leaves, &pairs);
        for b in [1.0, 8.0, 14.0, 22.0, 29.0] {
            let last_visited = (0..leaves.len())
                .rev()
                .find(|&i| leaves[i].min_key <= b)
                .unwrap_or(0);
            let high_q = (0..=last_visited)
                .map(|i| h[i])
                .fold(f64::NEG_INFINITY, f64::max);
            for &(reach, key) in &pairs {
                if reach <= b {
                    assert!(
                        high_q >= key,
                        "tuple key {key} (reach {reach}) unreachable: high({b}) = {high_q}"
                    );
                }
            }
        }
    }
}
