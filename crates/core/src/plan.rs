//! Access methods and the cost-based planner.
//!
//! The paper's value proposition is a *choice* among access techniques —
//! restricted (Section 3), T1 (Section 4.1), T2 (Sections 4.2–4.3) and the
//! R⁺-tree baseline of Section 5 — with analytic costs (Theorems 3.1/4.2)
//! that predict which wins. This module makes that choice first-class:
//!
//! * [`AccessMethod`] — one uniform `&self` execution surface over a
//!   [`PageReader`], with a capability descriptor (exact vs refined vs
//!   unsupported per [`Selection`]), a cost estimator, and page/maintenance
//!   accessors. Implemented by adapters over the three [`DualIndex`]
//!   techniques, [`DualIndexD`] for `d > 2`, a first-class sequential scan
//!   over a relation, and [`RPlusAccess`] over [`cdb_rplustree::RPlusTree`].
//! * [`Planner`] — enumerates the feasible methods, scores each with the
//!   paper-shaped I/O formulas evaluated at a candidate fraction seeded from
//!   a small feedback catalog ([`PlanCatalog`]) of observed per-plan
//!   [`QueryStats`], and returns the cheapest as a [`QueryPlan`].
//! * [`QueryPlan::explain`] / [`ExplainReport`] — render chosen method,
//!   estimated vs actual page accesses, bracket case and refinement mode.
//!
//! The cost model follows the shape of the paper's theorems rather than
//! reproducing their constants: a B⁺-tree search costs one root-to-leaf
//! descent (`h` pages) plus the fraction of leaf pages the sweep touches,
//! and fetching `c` candidates from a heap of `p` pages costs the expected
//! number of *distinct* pages `p · (1 − (1 − 1/p)^c)` (candidates are
//! batched per page by [`TupleSource`] implementations). T1 pays two
//! descents and roughly twice the candidates (its duplication problem,
//! Section 4.1); T2 pays one descent, a slightly longer sweep (the handicap
//! overshoot) and duplicate-free candidates; the restricted technique
//! refines only the f32 boundary band, so its heap cost is near zero.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use cdb_btree::layout::leaf_capacity;
use cdb_geometry::predicates;
use cdb_rplustree::RPlusTree;
use cdb_storage::{PageReader, TrackedReader};

use crate::db::Relation;
use crate::ddim::DualIndexD;
use crate::error::CdbError;
use crate::index::{refine, DualIndex, TupleSource};
use crate::query::{QueryResult, QueryStats, Selection, SelectionKind, Strategy};
use crate::slopes::Bracket;

/// Candidate fraction assumed before any feedback is available (the paper's
/// experiments run at 10–15% selectivity; 1/8 sits in that band).
pub const DEFAULT_SELECTIVITY: f64 = 0.125;

/// How fast the d-dimensional T2 over-coverage grows with the slope-space
/// extent of the query's Voronoi cell. The whole-cell handicaps admit every
/// tuple whose `TOP`/`BOT` surface can cross the intercept *somewhere* in
/// the cell, a band of near-boundary tuples whose size is a fraction of the
/// whole relation — additive in `n`, independent of the query's own
/// selectivity — proportional to the sum of the cell's per-axis half-widths
/// (grids keep per-axis resolution, so the band gains an axis, not just
/// width, per dimension). Calibrated on `dimension_sweep` (uniform boxes,
/// 10–15% selectivity, d ∈ {2,3,4}); see EXPERIMENTS.md.
pub const T2_CELL_OVERSHOOT: f64 = 0.5;

/// Per-app-query surplus of the simplex covering, as a fraction of `n` per
/// unit of slope-space distance between the query slope and the simplex
/// vertex serving the leg. A leg sweeps exact keys at its *vertex* slope,
/// so its surplus is the (signed, half-cancelling) drift of the dual
/// surface between vertex and query — much smaller than T2's whole-cell
/// band. Calibrated on `dimension_sweep`; see EXPERIMENTS.md.
pub const SIMPLEX_LEG_OVERSHOOT: f64 = 0.06;

/// EWMA weight of the newest observation in the feedback catalog.
const EWMA_ALPHA: f64 = 0.3;

/// A rival access method whose estimate is within this factor of the
/// incumbent's counts as a near-tie and is eligible for an exploration
/// probe.
const NEAR_TIE_RATIO: f64 = 1.2;

/// Every `PROBE_PERIOD`-th executed query with a near-tie is served by the
/// least-sampled rival instead of the incumbent, so the rival's observed
/// candidate fraction stays calibrated instead of one method locking in
/// forever on stale feedback.
const PROBE_PERIOD: u64 = 16;

/// Identifies an access method independent of its borrowed adapter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// Section 3: exact single-tree search (query slope must be in `S`).
    Restricted,
    /// Section 4.1: two app-queries, duplicates possible, then refinement.
    T1,
    /// Sections 4.2–4.3: handicap-guided duplicate-free search.
    T2,
    /// The d-dimensional extension (Section 4.4) for `d > 2` relations.
    DualD,
    /// Sequential scan of the heap with exact predicates.
    SeqScan,
    /// The packed R⁺-tree over tuple bounding boxes (Section 5 baseline).
    RPlus,
}

impl MethodKind {
    /// The legacy [`Strategy`] this method corresponds to, if any.
    pub fn strategy(self) -> Option<Strategy> {
        match self {
            MethodKind::Restricted => Some(Strategy::Restricted),
            MethodKind::T1 => Some(Strategy::T1),
            MethodKind::T2 => Some(Strategy::T2),
            MethodKind::SeqScan => Some(Strategy::Scan),
            MethodKind::RPlus => Some(Strategy::RPlus),
            MethodKind::DualD => None,
        }
    }
}

impl fmt::Display for MethodKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MethodKind::Restricted => "Restricted",
            MethodKind::T1 => "T1",
            MethodKind::T2 => "T2",
            MethodKind::DualD => "DualD",
            MethodKind::SeqScan => "SeqScan",
            MethodKind::RPlus => "RPlus",
        };
        f.write_str(s)
    }
}

/// Whether (and how) a method can serve one particular selection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Capability {
    /// The index phase alone decides membership (up to the f32 boundary
    /// band, which is verified in place); no candidate superset.
    Exact,
    /// The index phase produces a candidate superset that an exact
    /// refinement pass (tuple fetches + LP) filters down.
    Refined,
    /// The method cannot serve this selection; the reason is shown in
    /// EXPLAIN output.
    Unsupported(String),
}

/// Predicted I/O for one (method, selection) pair, in page accesses.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostEstimate {
    /// Pages read in index structures (descents + sweeps).
    pub index_pages: f64,
    /// Distinct heap pages fetched for refinement.
    pub heap_pages: f64,
    /// Candidate tuples produced by the index phase (duplicates included).
    pub candidates: f64,
}

impl CostEstimate {
    /// Total predicted page accesses.
    pub fn total(&self) -> f64 {
        self.index_pages + self.heap_pages
    }
}

/// Human-readable execution detail for EXPLAIN output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanDetail {
    /// The bracket/routing case, e.g. `member slope 1.0` or
    /// `between slopes -0.414 and 0.414`.
    pub case: String,
    /// Refinement mode, e.g. `boundary band only` or `candidate superset`.
    pub refinement: &'static str,
}

/// Shared sizing facts the cost formulas need.
#[derive(Clone, Copy, Debug)]
pub struct MethodContext {
    /// Live tuples in the relation.
    pub n: u64,
    /// Pages of the relation's heap file.
    pub heap_pages: u64,
    /// Page size (drives per-page fan-outs).
    pub page_size: usize,
}

impl MethodContext {
    /// Leaf pages of one dual B⁺-tree over `n` entries.
    pub fn dual_leaf_pages(&self) -> f64 {
        let cap = leaf_capacity(self.page_size).max(1) as f64;
        (self.n as f64 / cap).ceil().max(1.0)
    }

    /// Expected number of *distinct* heap pages holding `c` uniformly
    /// spread candidates: `p · (1 − (1 − 1/p)^c)` (Yao's approximation) —
    /// the batch fetch of [`TupleSource`] pays one access per distinct page.
    pub fn heap_fetch_pages(&self, c: f64) -> f64 {
        let p = self.heap_pages.max(1) as f64;
        if c <= 0.0 {
            return 0.0;
        }
        p * (1.0 - (1.0 - 1.0 / p).powf(c))
    }
}

/// One query path the planner can choose: uniform `&self` execution over a
/// shared [`PageReader`], with capability, cost and maintenance metadata.
pub trait AccessMethod: Sync {
    /// Which method this is.
    fn kind(&self) -> MethodKind;

    /// Whether (and how) this method can serve `sel`.
    fn capability(&self, sel: &Selection) -> Capability;

    /// Cost estimate at the default candidate fraction.
    fn estimate(&self, sel: &Selection) -> CostEstimate {
        self.estimate_at(sel, DEFAULT_SELECTIVITY)
    }

    /// Cost estimate assuming the index phase produces `frac · n`
    /// candidates (before method-specific duplication factors).
    fn estimate_at(&self, sel: &Selection, frac: f64) -> CostEstimate;

    /// The bracket/routing case and refinement mode for EXPLAIN output.
    fn detail(&self, sel: &Selection) -> PlanDetail;

    /// Executes the selection, charging I/O to `pager` and fetching
    /// refinement tuples through `fetch`.
    fn execute(
        &self,
        pager: &dyn PageReader,
        sel: &Selection,
        fetch: &dyn TupleSource,
    ) -> Result<QueryResult, CdbError>;

    /// Pages owned by the method's backing structure (0 for scans).
    fn page_count(&self) -> u64;

    /// `true` when update traffic has loosened auxiliary structures and a
    /// maintenance pass (e.g. handicap refresh) would improve costs.
    fn needs_maintenance(&self) -> bool {
        false
    }
}

// ------------------------------------------------------- dual-index adapters

/// The restricted technique (Section 3) as an [`AccessMethod`].
pub struct RestrictedAccess<'a> {
    /// The shared dual forest.
    pub index: &'a DualIndex,
    /// Relation sizing for the cost formulas.
    pub ctx: MethodContext,
}

impl AccessMethod for RestrictedAccess<'_> {
    fn kind(&self) -> MethodKind {
        MethodKind::Restricted
    }

    fn capability(&self, sel: &Selection) -> Capability {
        if sel.halfplane.dim() != 2 {
            return Capability::Unsupported("the 2-D dual index serves 2-D queries only".into());
        }
        match self.index.slopes().bracket(sel.halfplane.slope2d()) {
            Bracket::Member(_) => Capability::Exact,
            _ => Capability::Unsupported(format!(
                "slope {} is not in the predefined set S",
                sel.halfplane.slope2d()
            )),
        }
    }

    fn estimate_at(&self, _sel: &Selection, frac: f64) -> CostEstimate {
        let h = self.index.tree_height() as f64;
        let c = frac * self.ctx.n as f64;
        CostEstimate {
            index_pages: h + frac * self.ctx.dual_leaf_pages(),
            // Only the f32 boundary band is fetched: a handful of tuples.
            heap_pages: self.ctx.heap_fetch_pages(2.0_f64.min(c)),
            candidates: c,
        }
    }

    fn detail(&self, sel: &Selection) -> PlanDetail {
        let case = match self.index.slopes().bracket(sel.halfplane.slope2d()) {
            Bracket::Member(i) => format!("member slope {}", self.index.slopes().get(i)),
            _ => "slope outside S".into(),
        };
        PlanDetail {
            case,
            refinement: "exact by key; f32 boundary band verified",
        }
    }

    fn execute(
        &self,
        pager: &dyn PageReader,
        sel: &Selection,
        fetch: &dyn TupleSource,
    ) -> Result<QueryResult, CdbError> {
        self.index.execute(pager, sel, Strategy::Restricted, fetch)
    }

    fn page_count(&self) -> u64 {
        self.index.page_count()
    }

    fn needs_maintenance(&self) -> bool {
        self.index.needs_refresh()
    }
}

/// Technique T1 (Section 4.1) as an [`AccessMethod`].
pub struct T1Access<'a> {
    /// The shared dual forest.
    pub index: &'a DualIndex,
    /// Relation sizing for the cost formulas.
    pub ctx: MethodContext,
}

impl AccessMethod for T1Access<'_> {
    fn kind(&self) -> MethodKind {
        MethodKind::T1
    }

    fn capability(&self, sel: &Selection) -> Capability {
        if sel.halfplane.dim() != 2 {
            return Capability::Unsupported("the 2-D dual index serves 2-D queries only".into());
        }
        match self.index.slopes().bracket(sel.halfplane.slope2d()) {
            Bracket::Member(_) => Capability::Exact, // delegates to restricted
            _ => Capability::Refined,
        }
    }

    fn estimate_at(&self, sel: &Selection, frac: f64) -> CostEstimate {
        let h = self.index.tree_height() as f64;
        if matches!(
            self.index.slopes().bracket(sel.halfplane.slope2d()),
            Bracket::Member(_)
        ) {
            // Member slopes execute the restricted technique.
            return RestrictedAccess {
                index: self.index,
                ctx: self.ctx,
            }
            .estimate_at(sel, frac);
        }
        // Two app-queries; the legs over-cover and overlap (duplication),
        // so candidates roughly double before refinement.
        let c = 2.0 * frac * self.ctx.n as f64;
        CostEstimate {
            index_pages: 2.0 * (h + frac * self.ctx.dual_leaf_pages()),
            heap_pages: self.ctx.heap_fetch_pages(c),
            candidates: c,
        }
    }

    fn detail(&self, sel: &Selection) -> PlanDetail {
        let slopes = self.index.slopes();
        let a = sel.halfplane.slope2d();
        let (case, refinement) = match slopes.bracket(a) {
            Bracket::Member(i) => (
                format!("member slope {} (restricted)", slopes.get(i)),
                "exact by key; f32 boundary band verified",
            ),
            Bracket::Between(i, j) => (
                format!(
                    "two app-queries at slopes {} and {}",
                    slopes.get(i),
                    slopes.get(j)
                ),
                "candidate superset; duplicates removed, then exact refinement",
            ),
            Bracket::Wrapped(cw, acw) => (
                format!(
                    "wrapped: app-queries at slopes {} and {} (Table 1)",
                    slopes.get(cw),
                    slopes.get(acw)
                ),
                "candidate superset; duplicates removed, then exact refinement",
            ),
        };
        PlanDetail { case, refinement }
    }

    fn execute(
        &self,
        pager: &dyn PageReader,
        sel: &Selection,
        fetch: &dyn TupleSource,
    ) -> Result<QueryResult, CdbError> {
        self.index.execute(pager, sel, Strategy::T1, fetch)
    }

    fn page_count(&self) -> u64 {
        self.index.page_count()
    }

    fn needs_maintenance(&self) -> bool {
        self.index.needs_refresh()
    }
}

/// Technique T2 (Sections 4.2–4.3) as an [`AccessMethod`].
pub struct T2Access<'a> {
    /// The shared dual forest.
    pub index: &'a DualIndex,
    /// Relation sizing for the cost formulas.
    pub ctx: MethodContext,
}

impl AccessMethod for T2Access<'_> {
    fn kind(&self) -> MethodKind {
        MethodKind::T2
    }

    fn capability(&self, sel: &Selection) -> Capability {
        if sel.halfplane.dim() != 2 {
            return Capability::Unsupported("the 2-D dual index serves 2-D queries only".into());
        }
        match self.index.slopes().bracket(sel.halfplane.slope2d()) {
            Bracket::Member(_) => Capability::Exact, // delegates to restricted
            _ => Capability::Refined,
        }
    }

    fn estimate_at(&self, sel: &Selection, frac: f64) -> CostEstimate {
        let h = self.index.tree_height() as f64;
        match self.index.slopes().bracket(sel.halfplane.slope2d()) {
            Bracket::Member(_) => RestrictedAccess {
                index: self.index,
                ctx: self.ctx,
            }
            .estimate_at(sel, frac),
            Bracket::Wrapped(..) => T1Access {
                index: self.index,
                ctx: self.ctx,
            }
            .estimate_at(sel, frac),
            Bracket::Between(..) => {
                // One descent; the two disjoint sweeps over-cover the exact
                // answer by the handicap overshoot (a strip, not a doubling).
                let c = 1.2 * frac * self.ctx.n as f64;
                CostEstimate {
                    index_pages: h + 1.2 * frac * self.ctx.dual_leaf_pages(),
                    heap_pages: self.ctx.heap_fetch_pages(c),
                    candidates: c,
                }
            }
        }
    }

    fn detail(&self, sel: &Selection) -> PlanDetail {
        let slopes = self.index.slopes();
        let a = sel.halfplane.slope2d();
        let (case, refinement) = match slopes.bracket(a) {
            Bracket::Member(i) => (
                format!("member slope {} (restricted)", slopes.get(i)),
                "exact by key; f32 boundary band verified",
            ),
            Bracket::Between(i, j) => {
                let mid = (slopes.get(i) + slopes.get(j)) / 2.0;
                let near = if a <= mid {
                    slopes.get(i)
                } else {
                    slopes.get(j)
                };
                (
                    format!(
                        "between slopes {} and {}: handicap-guided sweeps on the tree at {near}",
                        slopes.get(i),
                        slopes.get(j)
                    ),
                    "duplicate-free candidate superset, then exact refinement",
                )
            }
            Bracket::Wrapped(..) => (
                "wrapped slope: T1 fallback (Section 4.1)".into(),
                "candidate superset; duplicates removed, then exact refinement",
            ),
        };
        PlanDetail { case, refinement }
    }

    fn execute(
        &self,
        pager: &dyn PageReader,
        sel: &Selection,
        fetch: &dyn TupleSource,
    ) -> Result<QueryResult, CdbError> {
        self.index.execute(pager, sel, Strategy::T2, fetch)
    }

    fn page_count(&self) -> u64 {
        self.index.page_count()
    }

    fn needs_maintenance(&self) -> bool {
        self.index.needs_refresh()
    }
}

// --------------------------------------------------------- d > 2 dimensions

/// The d-dimensional dual index (Section 4.4) as an [`AccessMethod`].
pub struct DualDAccess<'a> {
    /// The d-dimensional forest.
    pub index: &'a DualIndexD,
    /// Relation sizing for the cost formulas.
    pub ctx: MethodContext,
}

impl DualDAccess<'_> {
    /// Cost of the simplex covering (generalized T1): `d` descents and `d`
    /// sweeps against `d` different trees. Each leg over-covers in
    /// proportion to how far its vertex sits from the query slope
    /// ([`SIMPLEX_LEG_OVERSHOOT`]), and the legs overlap heavily —
    /// `candidates` is the pre-dedup total the executor reports, but the
    /// heap only pays for the deduped union of the legs.
    pub fn simplex_estimate(&self, sel: &Selection, frac: f64) -> CostEstimate {
        let h = self.index.tree_height() as f64;
        let leaf = self.ctx.dual_leaf_pages();
        let d = self.index.dim() as f64;
        let n = self.ctx.n as f64;
        let slope = &sel.halfplane.slope;
        let points = self.index.points();
        let mean_dist = points
            .containing_simplex(slope)
            .map(|vs| {
                vs.iter()
                    .map(|&i| {
                        points.as_slice()[i]
                            .iter()
                            .zip(slope)
                            .map(|(a, b)| (a - b) * (a - b))
                            .sum::<f64>()
                            .sqrt()
                    })
                    .sum::<f64>()
                    / vs.len() as f64
            })
            .unwrap_or(0.0);
        let leg = (frac + SIMPLEX_LEG_OVERSHOOT * mean_dist).min(1.0);
        let union = n * (1.0 - (1.0 - leg).powf(d));
        CostEstimate {
            index_pages: d * (h + leg * leaf),
            heap_pages: self.ctx.heap_fetch_pages(union),
            candidates: d * leg * n,
        }
    }
}

impl AccessMethod for DualDAccess<'_> {
    fn kind(&self) -> MethodKind {
        MethodKind::DualD
    }

    fn capability(&self, sel: &Selection) -> Capability {
        let d = self.index.dim();
        if sel.halfplane.dim() != d {
            return Capability::Unsupported(format!("the index serves {d}-D queries only"));
        }
        let slope = &sel.halfplane.slope;
        if self.index.points().position(slope).is_some() {
            Capability::Exact
        } else if self.index.points().nearest_grid(slope).is_some()
            || self.index.points().containing_simplex(slope).is_some()
        {
            Capability::Refined
        } else {
            Capability::Unsupported(format!(
                "query slope {slope:?} lies outside the hull of the predefined set S"
            ))
        }
    }

    fn estimate_at(&self, sel: &Selection, frac: f64) -> CostEstimate {
        let h = self.index.tree_height() as f64;
        let leaf = self.ctx.dual_leaf_pages();
        let slope = &sel.halfplane.slope;
        if self.index.points().position(slope).is_some() {
            let c = frac * self.ctx.n as f64;
            CostEstimate {
                index_pages: h + frac * leaf,
                heap_pages: self.ctx.heap_fetch_pages(2.0_f64.min(c)),
                candidates: c,
            }
        } else if let Some(cell) = self.index.points().nearest_grid(slope) {
            // d-dimensional T2: one descent, two disjoint handicap-guided
            // sweeps over one tree. The whole-cell handicaps admit an extra
            // band of near-boundary tuples sized by the cell's slope-space
            // extent — additive in n, per-cell (boundary cells are clipped
            // smaller) — not the fixed 2-D strip factor.
            let band: f64 = self
                .index
                .points()
                .cell_widths(cell)
                .map(|ws| ws.iter().map(|w| w / 2.0).sum())
                .unwrap_or(0.0);
            let covered = (frac + T2_CELL_OVERSHOOT * band).min(1.0);
            let c = covered * self.ctx.n as f64;
            CostEstimate {
                index_pages: h + covered * leaf,
                heap_pages: self.ctx.heap_fetch_pages(c),
                candidates: c,
            }
        } else {
            self.simplex_estimate(sel, frac)
        }
    }

    fn detail(&self, sel: &Selection) -> PlanDetail {
        let slope = &sel.halfplane.slope;
        if self.index.points().position(slope).is_some() {
            PlanDetail {
                case: format!("member slope point {slope:?}"),
                refinement: "exact by key; f32 boundary band verified",
            }
        } else if let Some(cell) = self.index.points().nearest_grid(slope) {
            PlanDetail {
                case: format!("grid cell {cell}: d-dimensional T2 sweeps"),
                refinement: "duplicate-free candidate superset, then exact refinement",
            }
        } else {
            PlanDetail {
                case: format!("simplex covering with {} app-queries", self.index.dim()),
                refinement: "candidate superset; duplicates removed, then exact refinement",
            }
        }
    }

    fn execute(
        &self,
        pager: &dyn PageReader,
        sel: &Selection,
        fetch: &dyn TupleSource,
    ) -> Result<QueryResult, CdbError> {
        self.index.execute(pager, sel, fetch)
    }

    fn page_count(&self) -> u64 {
        self.index.page_count()
    }
}

// ------------------------------------------------------------------ seqscan

/// A first-class sequential scan over a relation's heap: the no-index
/// baseline and the correctness oracle, now planned like any other method
/// instead of being an `UnsupportedQuery` wart inside the index.
pub struct SeqScanAccess<'a> {
    /// The relation to scan.
    pub relation: &'a Relation,
    /// Relation sizing for the cost formulas.
    pub ctx: MethodContext,
}

impl AccessMethod for SeqScanAccess<'_> {
    fn kind(&self) -> MethodKind {
        MethodKind::SeqScan
    }

    fn capability(&self, sel: &Selection) -> Capability {
        if sel.halfplane.dim() != self.relation.dim() {
            return Capability::Unsupported(format!(
                "the relation is {}-D, the query {}-D",
                self.relation.dim(),
                sel.halfplane.dim()
            ));
        }
        Capability::Exact
    }

    fn estimate_at(&self, _sel: &Selection, _frac: f64) -> CostEstimate {
        CostEstimate {
            index_pages: 0.0,
            heap_pages: self.ctx.heap_pages as f64,
            candidates: self.ctx.n as f64,
        }
    }

    fn detail(&self, _sel: &Selection) -> PlanDetail {
        PlanDetail {
            case: format!("full scan of {} tuples", self.ctx.n),
            refinement: "exact predicate per tuple (no candidate superset)",
        }
    }

    fn execute(
        &self,
        pager: &dyn PageReader,
        sel: &Selection,
        _fetch: &dyn TupleSource,
    ) -> Result<QueryResult, CdbError> {
        let tracked = TrackedReader::new(pager);
        let pager: &dyn PageReader = &tracked;
        let before = pager.stats();
        let tuples = self.relation.scan(pager)?;
        let mut ids = Vec::new();
        for (id, t) in &tuples {
            let keep = match sel.kind {
                SelectionKind::All => predicates::all(&sel.halfplane, t),
                SelectionKind::Exist => predicates::exist(&sel.halfplane, t),
            };
            if keep {
                ids.push(*id);
            }
        }
        let mut stats = QueryStats {
            candidates: tuples.len() as u64,
            ..QueryStats::default()
        };
        stats.heap_io = pager.stats().since(&before);
        Ok(QueryResult::new(ids, stats))
    }

    fn page_count(&self) -> u64 {
        0
    }
}

// -------------------------------------------------------------- R⁺ baseline

/// The packed R⁺-tree baseline (Section 5) as an [`AccessMethod`], finally
/// buildable and queryable through `ConstraintDb` like any other index.
///
/// The tree stores bounding boxes of the *bounded* tuples; a selection runs
/// the EXIST half-plane search as a candidate superset (valid for ALL too,
/// since `ALL(q) ⊆ EXIST(q)` over satisfiable tuples), appends the
/// unbounded overflow list (no finite MBR exists for those), and refines
/// exactly.
pub struct RPlusAccess<'a> {
    /// The packed tree over bounded tuples' MBRs.
    pub tree: &'a RPlusTree,
    /// Ids of unbounded tuples, kept outside the tree and always refined.
    pub unbounded: &'a [u32],
    /// Sorted tombstones: deleted bounded tuples still present in the tree
    /// (the packed structure supports inserts but not deletes), filtered
    /// out of every candidate set.
    pub dead: &'a [u32],
    /// Relation sizing for the cost formulas.
    pub ctx: MethodContext,
}

impl AccessMethod for RPlusAccess<'_> {
    fn kind(&self) -> MethodKind {
        MethodKind::RPlus
    }

    fn capability(&self, sel: &Selection) -> Capability {
        if sel.halfplane.dim() != 2 {
            return Capability::Unsupported("the R⁺-tree serves 2-D queries only".into());
        }
        Capability::Refined
    }

    fn estimate_at(&self, _sel: &Selection, frac: f64) -> CostEstimate {
        let h = self.tree.height() as f64;
        let c = frac * self.ctx.n as f64 + self.unbounded.len() as f64;
        CostEstimate {
            index_pages: h + frac * self.tree.page_count() as f64,
            heap_pages: self.ctx.heap_fetch_pages(c),
            candidates: c,
        }
    }

    fn detail(&self, _sel: &Selection) -> PlanDetail {
        PlanDetail {
            case: format!(
                "MBR intersection search; {} unbounded tuples via overflow list",
                self.unbounded.len()
            ),
            refinement: "candidate superset (EXIST MBRs), then exact refinement",
        }
    }

    fn execute(
        &self,
        pager: &dyn PageReader,
        sel: &Selection,
        fetch: &dyn TupleSource,
    ) -> Result<QueryResult, CdbError> {
        if sel.halfplane.dim() != 2 {
            return Err(CdbError::DimensionMismatch {
                expected: 2,
                got: sel.halfplane.dim(),
            });
        }
        let tracked = TrackedReader::new(pager);
        let pager: &dyn PageReader = &tracked;
        let before = pager.stats();
        let (mut candidates, search) = self.tree.search_halfplane(pager, &sel.halfplane)?;
        candidates.extend_from_slice(self.unbounded);
        candidates.sort_unstable();
        candidates.dedup();
        candidates.retain(|id| self.dead.binary_search(id).is_err());
        let mut stats = QueryStats {
            candidates: search.raw_hits + self.unbounded.len() as u64,
            duplicates: search.duplicates,
            ..QueryStats::default()
        };
        stats.index_io = pager.stats().since(&before);
        let heap_before = pager.stats();
        let ids = refine(pager, sel, candidates, fetch, &mut stats)?;
        stats.heap_io = pager.stats().since(&heap_before);
        Ok(QueryResult::new(ids, stats))
    }

    fn page_count(&self) -> u64 {
        self.tree.page_count()
    }

    fn needs_maintenance(&self) -> bool {
        // Tombstones inflate candidate sets until the tree is repacked.
        !self.dead.is_empty()
    }
}

// ------------------------------------------------------------------ catalog

/// One EWMA-smoothed feedback entry of the [`PlanCatalog`].
#[derive(Clone, Copy, Debug)]
pub struct Observation {
    /// Smoothed candidates / n.
    pub candidate_frac: f64,
    /// Smoothed total page accesses.
    pub total_pages: f64,
    /// Number of executions folded in.
    pub samples: u64,
}

/// Per-(method, selection-kind) feedback from executed queries: the planner
/// seeds its cost formulas with the observed candidate fraction, so
/// estimates tighten as the engine serves traffic.
///
/// Interior-mutable (a mutex around a small map) so concurrent batch
/// workers can record through a shared `&self`.
#[derive(Debug, Default)]
pub struct PlanCatalog {
    inner: Mutex<HashMap<(MethodKind, SelectionKind), Observation>>,
    /// Bumped on every [`record`](Self::record); the database uses it to
    /// detect planner-state changes behind `&self` queries, so a catalog
    /// checkpoint is written only when something actually moved.
    version: AtomicU64,
    /// Monotone counter driving the exploration probes (persisted so a
    /// reopened database keeps its probe cadence).
    probe_clock: AtomicU64,
}

impl Clone for PlanCatalog {
    /// Deep copy of the feedback state (for database snapshots). The
    /// clone's counters continue independently; feedback recorded against
    /// a snapshot is not folded back into the live catalog.
    fn clone(&self) -> Self {
        PlanCatalog {
            inner: Mutex::new(self.inner.lock().expect("catalog poisoned").clone()),
            version: AtomicU64::new(self.version()),
            probe_clock: AtomicU64::new(self.probe_clock()),
        }
    }
}

impl PlanCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restores a catalog from persisted entries and probe clock.
    pub fn from_entries(
        entries: &[(MethodKind, SelectionKind, Observation)],
        probe_clock: u64,
    ) -> Self {
        PlanCatalog {
            inner: Mutex::new(
                entries
                    .iter()
                    .map(|&(m, k, o)| ((m, k), o))
                    .collect::<HashMap<_, _>>(),
            ),
            version: AtomicU64::new(0),
            probe_clock: AtomicU64::new(probe_clock),
        }
    }

    /// Snapshot of every entry, deterministically ordered (for
    /// serialization and reproducible diffs).
    pub fn entries(&self) -> Vec<(MethodKind, SelectionKind, Observation)> {
        fn method_rank(m: MethodKind) -> u8 {
            match m {
                MethodKind::Restricted => 0,
                MethodKind::T1 => 1,
                MethodKind::T2 => 2,
                MethodKind::DualD => 3,
                MethodKind::SeqScan => 4,
                MethodKind::RPlus => 5,
            }
        }
        fn kind_rank(k: SelectionKind) -> u8 {
            match k {
                SelectionKind::Exist => 0,
                SelectionKind::All => 1,
            }
        }
        let map = self.inner.lock().expect("catalog poisoned");
        let mut out: Vec<_> = map.iter().map(|(&(m, k), &o)| (m, k, o)).collect();
        out.sort_by_key(|&(m, k, _)| (method_rank(m), kind_rank(k)));
        out
    }

    /// Number of [`record`](Self::record) calls since construction.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }

    /// The exploration probe clock (see [`Planner::choose`]).
    pub fn probe_clock(&self) -> u64 {
        self.probe_clock.load(Ordering::Relaxed)
    }

    /// Advances the probe clock, returning the new tick value.
    fn probe_tick(&self) -> u64 {
        self.probe_clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Folds one executed query's actuals into the catalog.
    pub fn record(&self, method: MethodKind, kind: SelectionKind, stats: &QueryStats, n: u64) {
        if n == 0 {
            return;
        }
        self.version.fetch_add(1, Ordering::Relaxed);
        let frac = stats.candidates as f64 / n as f64;
        let pages = stats.total_accesses() as f64;
        let mut map = self.inner.lock().expect("catalog poisoned");
        let e = map.entry((method, kind)).or_insert(Observation {
            candidate_frac: frac,
            total_pages: pages,
            samples: 0,
        });
        e.candidate_frac = EWMA_ALPHA * frac + (1.0 - EWMA_ALPHA) * e.candidate_frac;
        e.total_pages = EWMA_ALPHA * pages + (1.0 - EWMA_ALPHA) * e.total_pages;
        e.samples += 1;
    }

    /// The candidate fraction to evaluate `method`'s cost formula at: its
    /// own observation if any, else the mean over same-selection-kind
    /// entries (one shared fraction keeps the cross-method cost *ordering*
    /// intact), else `None` (caller falls back to
    /// [`DEFAULT_SELECTIVITY`]).
    pub fn frac_for(&self, method: MethodKind, kind: SelectionKind) -> Option<f64> {
        let map = self.inner.lock().expect("catalog poisoned");
        if let Some(o) = map.get(&(method, kind)) {
            // Convert observed raw candidates back to a base selectivity:
            // the formulas re-apply each method's duplication factor.
            let divisor = match method {
                MethodKind::T1 => 2.0,
                MethodKind::T2 | MethodKind::RPlus => 1.2,
                _ => 1.0,
            };
            return Some((o.candidate_frac / divisor).clamp(0.0, 1.0));
        }
        let same_kind: Vec<f64> = map
            .iter()
            .filter(|((_, k), _)| *k == kind)
            .map(|((m, _), o)| {
                let divisor = match m {
                    MethodKind::T1 => 2.0,
                    MethodKind::T2 | MethodKind::RPlus => 1.2,
                    _ => 1.0,
                };
                o.candidate_frac / divisor
            })
            .collect();
        if same_kind.is_empty() {
            None
        } else {
            Some((same_kind.iter().sum::<f64>() / same_kind.len() as f64).clamp(0.0, 1.0))
        }
    }

    /// Number of executions recorded for one (method, kind) pair.
    pub fn samples(&self, method: MethodKind, kind: SelectionKind) -> u64 {
        self.inner
            .lock()
            .expect("catalog poisoned")
            .get(&(method, kind))
            .map(|o| o.samples)
            .unwrap_or(0)
    }
}

// ------------------------------------------------------------------ planner

/// The chosen plan for one selection, with everything EXPLAIN needs.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    /// The chosen method.
    pub method: MethodKind,
    /// `true` when the method was forced by the caller rather than chosen
    /// on cost.
    pub forced: bool,
    /// `true` when the index phase alone decides membership.
    pub exact: bool,
    /// The bracket/routing case (e.g. `between slopes -0.414 and 0.414`).
    pub case: String,
    /// Refinement mode.
    pub refinement: &'static str,
    /// Predicted I/O for the chosen method.
    pub estimate: CostEstimate,
    /// The candidate fraction the estimates were evaluated at.
    pub frac: f64,
    /// `true` when the method was picked as an exploration probe of a
    /// near-tie rival rather than as the cheapest estimate.
    pub explored: bool,
    /// Every feasible method with its estimate, cheapest first.
    pub considered: Vec<(MethodKind, CostEstimate)>,
    /// Methods that cannot serve this selection, with reasons.
    pub rejected: Vec<(MethodKind, String)>,
}

impl QueryPlan {
    /// Renders the plan: chosen method, estimated page accesses, bracket
    /// case and refinement mode.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "method={} ({})  case: {}\n",
            self.method,
            if self.forced {
                "forced"
            } else if self.explored {
                "cost-based, exploration probe"
            } else {
                "cost-based"
            },
            self.case
        ));
        out.push_str(&format!(
            "  refinement: {} [{}]\n",
            self.refinement,
            if self.exact { "exact" } else { "refined" }
        ));
        out.push_str(&format!(
            "  estimate: {:.1} index + {:.1} heap = {:.1} pages, ~{:.0} candidates (frac {:.3})\n",
            self.estimate.index_pages,
            self.estimate.heap_pages,
            self.estimate.total(),
            self.estimate.candidates,
            self.frac
        ));
        out.push_str("  considered:\n");
        for (m, e) in &self.considered {
            // Pad the rendered name: Display impls ignore width flags.
            out.push_str(&format!(
                "    {:<11}{:>8.1} pages\n",
                m.to_string(),
                e.total()
            ));
        }
        for (m, why) in &self.rejected {
            out.push_str(&format!("    {:<11}rejected: {why}\n", m.to_string()));
        }
        out
    }
}

/// Enumerates feasible [`AccessMethod`]s for a selection and picks the
/// cheapest by estimated page accesses (or the `forced` one, validated).
pub struct Planner;

impl Planner {
    /// Plans `sel` over `methods`. Returns the index of the chosen method
    /// in `methods` plus the [`QueryPlan`].
    ///
    /// With `explore` set (queries that will actually execute), every
    /// `PROBE_PERIOD`-th decision with a near-tie — a rival estimated
    /// within `NEAR_TIE_RATIO` of the incumbent — picks the rival with
    /// the fewest recorded samples instead, keeping its observed candidate
    /// fraction calibrated. Pure planning calls (EXPLAIN-style) pass
    /// `false` so they are side-effect-free and deterministic.
    ///
    /// # Errors
    /// [`CdbError::UnsupportedQuery`] when `forced` names a method that is
    /// absent or cannot serve the selection, or when no method can.
    pub fn choose(
        methods: &[&dyn AccessMethod],
        sel: &Selection,
        forced: Option<MethodKind>,
        catalog: &PlanCatalog,
        explore: bool,
    ) -> Result<(usize, QueryPlan), CdbError> {
        let mut considered: Vec<(usize, MethodKind, Capability, CostEstimate, f64)> = Vec::new();
        let mut rejected: Vec<(MethodKind, String)> = Vec::new();
        for (i, m) in methods.iter().enumerate() {
            match m.capability(sel) {
                Capability::Unsupported(why) => rejected.push((m.kind(), why)),
                cap => {
                    let frac = catalog
                        .frac_for(m.kind(), sel.kind)
                        .unwrap_or(DEFAULT_SELECTIVITY);
                    let est = m.estimate_at(sel, frac);
                    considered.push((i, m.kind(), cap, est, frac));
                }
            }
        }
        considered.sort_by(|a, b| {
            a.3.total()
                .partial_cmp(&b.3.total())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut explored = false;
        let chosen = match forced {
            Some(k) => considered.iter().position(|c| c.1 == k).ok_or_else(|| {
                if let Some((_, why)) = rejected.iter().find(|(m, _)| *m == k) {
                    CdbError::UnsupportedQuery(format!("forced method {k}: {why}"))
                } else {
                    CdbError::UnsupportedQuery(format!(
                        "forced method {k} is not available on this relation"
                    ))
                }
            })?,
            None => {
                if considered.is_empty() {
                    let reasons: Vec<String> = rejected
                        .iter()
                        .map(|(m, why)| format!("{m}: {why}"))
                        .collect();
                    return Err(CdbError::UnsupportedQuery(format!(
                        "no access method supports this selection ({})",
                        reasons.join("; ")
                    )));
                }
                let mut pick = 0;
                if explore
                    && considered.len() > 1
                    && catalog.probe_tick().is_multiple_of(PROBE_PERIOD)
                {
                    let best_total = considered[0].3.total();
                    let probe = (1..considered.len())
                        .filter(|&i| considered[i].3.total() <= NEAR_TIE_RATIO * best_total)
                        .min_by_key(|&i| catalog.samples(considered[i].1, sel.kind));
                    if let Some(i) = probe {
                        pick = i;
                        explored = true;
                    }
                }
                pick
            }
        };
        let (mi, kind, cap, est, frac) = considered[chosen].clone();
        let detail = methods[mi].detail(sel);
        let plan = QueryPlan {
            method: kind,
            forced: forced.is_some(),
            exact: cap == Capability::Exact,
            case: detail.case,
            refinement: detail.refinement,
            estimate: est,
            frac,
            explored,
            considered: considered.iter().map(|(_, m, _, e, _)| (*m, *e)).collect(),
            rejected,
        };
        Ok((mi, plan))
    }
}

/// A planned query's full story: the plan plus the executed result, with a
/// renderer that lines up estimates against actuals.
#[derive(Clone, Debug)]
pub struct ExplainReport {
    /// The plan the planner chose.
    pub plan: QueryPlan,
    /// The result of actually executing that plan.
    pub result: QueryResult,
}

impl ExplainReport {
    /// Renders plan + actual page accesses for side-by-side comparison.
    /// The observed-cost line comes from the shared pretty-printer
    /// ([`crate::pretty::actual_line`]) so typed EXPLAIN and SQL
    /// `EXPLAIN ANALYZE` agree on its shape.
    pub fn render(&self) -> String {
        let mut out = self.plan.explain();
        out.push_str("  ");
        out.push_str(&crate::pretty::actual_line(
            &self.result.stats,
            self.result.len() as u64,
        ));
        out.push('\n');
        out
    }
}

impl fmt::Display for ExplainReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_estimate_totals() {
        let e = CostEstimate {
            index_pages: 3.0,
            heap_pages: 4.5,
            candidates: 100.0,
        };
        assert!((e.total() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn heap_fetch_pages_saturates() {
        let ctx = MethodContext {
            n: 1000,
            heap_pages: 50,
            page_size: 1024,
        };
        assert_eq!(ctx.heap_fetch_pages(0.0), 0.0);
        let few = ctx.heap_fetch_pages(3.0);
        assert!(few > 2.5 && few <= 3.0, "few candidates ≈ their own pages");
        let many = ctx.heap_fetch_pages(100_000.0);
        assert!((many - 50.0).abs() < 1e-6, "saturates at the heap size");
    }

    #[test]
    fn catalog_feedback_tightens_frac() {
        let cat = PlanCatalog::new();
        assert_eq!(cat.frac_for(MethodKind::T2, SelectionKind::Exist), None);
        let stats = QueryStats {
            candidates: 120,
            ..QueryStats::default()
        };
        cat.record(MethodKind::T2, SelectionKind::Exist, &stats, 1000);
        let f = cat
            .frac_for(MethodKind::T2, SelectionKind::Exist)
            .expect("recorded");
        assert!((f - 0.1).abs() < 1e-9, "0.12 observed / 1.2 divisor, {f}");
        assert_eq!(cat.samples(MethodKind::T2, SelectionKind::Exist), 1);
        // Same-kind fallback for a method with no entry of its own.
        let g = cat
            .frac_for(MethodKind::T1, SelectionKind::Exist)
            .expect("same-kind fallback");
        assert!((g - 0.1).abs() < 1e-9);
        // Different selection kind: still no data.
        assert_eq!(cat.frac_for(MethodKind::T2, SelectionKind::All), None);
    }

    #[test]
    fn catalog_entries_round_trip() {
        let cat = PlanCatalog::new();
        let stats = QueryStats {
            candidates: 120,
            ..QueryStats::default()
        };
        cat.record(MethodKind::T2, SelectionKind::Exist, &stats, 1000);
        cat.record(MethodKind::RPlus, SelectionKind::All, &stats, 1000);
        assert_eq!(cat.version(), 2, "each record bumps the version");
        let entries = cat.entries();
        assert_eq!(entries.len(), 2);
        let restored = PlanCatalog::from_entries(&entries, cat.probe_clock());
        assert_eq!(restored.version(), 0, "a restored catalog starts clean");
        assert_eq!(restored.probe_clock(), cat.probe_clock());
        for (m, k, o) in &entries {
            assert_eq!(restored.frac_for(*m, *k), cat.frac_for(*m, *k));
            assert_eq!(restored.samples(*m, *k), o.samples);
        }
    }

    #[test]
    fn method_kind_strategy_round_trip() {
        assert_eq!(MethodKind::T2.strategy(), Some(Strategy::T2));
        assert_eq!(MethodKind::SeqScan.strategy(), Some(Strategy::Scan));
        assert_eq!(MethodKind::RPlus.strategy(), Some(Strategy::RPlus));
        assert_eq!(MethodKind::DualD.strategy(), None);
        assert_eq!(MethodKind::T2.to_string(), "T2");
    }
}
