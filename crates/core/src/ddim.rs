//! The d-dimensional extension (Section 4.4).
//!
//! In `E^d` the predefined set `S` becomes a set of *slope points* in
//! `E^{d-1}`; every point carries a `B^up`/`B^down` tree pair keyed by
//! `TOP_P`/`BOT_P` evaluated at that point. Queries whose slope is in `S`
//! are exact, exactly as in 2-D.
//!
//! For an arbitrary slope the paper notes that "d searches against d
//! different B⁺-trees are sufficient in `E^d`": this module implements that
//! generalized T1. The query slope is covered by a simplex of `d` points of
//! `S`; the `d` app-queries share the point `P = (0, …, 0, b)` on the query
//! hyperplane, so each app-query keeps the intercept `b` and the original
//! operator. Covering proof: if a point `x` fails every app-query
//! (`x_d < sʲ·x' + b` for all `j`), any convex combination with the
//! barycentric weights of the query slope gives `x_d < s·x' + b`, i.e. `x`
//! fails the original query too. ALL selections run one ALL app-query plus
//! `d−1` EXIST app-queries (the Figure 4 argument, unchanged).
//!
//! For **grid** slope sets ([`SlopePoints::grid`]) the d-dimensional
//! **technique T2** is also available and is the default: the Voronoi cell
//! of a grid point is a box, so a tuple's *reach* over the cell is the
//! maximum of `TOP_P` (resp. minimum of `BOT_P`) over the cell's `2^{d-1}`
//! corners — exact because the surfaces are convex/concave and the cell is
//! the convex hull of its corners. One low/high handicap pair per leaf then
//! drives the same two-sweep, duplicate-free search as in 2-D. (The paper
//! sketches per-Voronoi-edge handicaps, `4·d` per leaf, for arbitrary point
//! sets; whole-cell reaches are a correct, slightly looser specialization
//! that a box grid makes exact.)
//!
//! Slopes outside the convex hull of `S` are rejected — choose `S` to cover
//! the query workload's slope region. The experiments of Section 5 are all
//! 2-D; `dimension_sweep` exercises this module for the Section 6 claim.

use cdb_btree::BTree;
use cdb_geometry::tuple::GeneralizedTuple;
use cdb_geometry::{dual, scalar};
use cdb_storage::{PageReader, Pager, TrackedReader};
use std::io;

use cdb_btree::Handicaps;

use crate::error::CdbError;
use crate::handicap::{assign_high, assign_low};
use crate::index::{
    fold_high, fold_low, handicap_guided_candidates, refine, sweep_candidates, TupleSource,
};
use crate::query::{tree_and_direction, QueryResult, QueryStats, Selection, SelectionKind, Side};

/// A predefined set of slope points in `E^{d-1}`.
#[derive(Clone, Debug, PartialEq)]
pub struct SlopePoints {
    dim: usize, // ambient space dimension d
    points: Vec<Vec<f64>>,
    /// For grid-constructed sets: the sorted coordinate values per slope
    /// axis. Point `i` has multi-index `(i / per^j) % per` on axis `j`.
    grid_axes: Option<Vec<Vec<f64>>>,
}

impl SlopePoints {
    /// Builds a set of slope points for a `dim`-dimensional space; each
    /// point must have `dim − 1` coordinates.
    ///
    /// # Panics
    /// Panics on dimension mismatches or fewer than `dim` points (a
    /// covering simplex needs `d` vertices).
    pub fn new(dim: usize, points: Vec<Vec<f64>>) -> Self {
        assert!(dim >= 2, "dimension must be at least 2");
        assert!(
            points.iter().all(|p| p.len() == dim - 1),
            "slope points live in E^(d-1)"
        );
        assert!(
            points.len() >= dim,
            "need at least d = {dim} slope points for simplex covering"
        );
        SlopePoints {
            dim,
            points,
            grid_axes: None,
        }
    }

    /// A regular grid of `per_axis^(d-1)` points over `[-range, range]` in
    /// each slope coordinate.
    pub fn grid(dim: usize, per_axis: usize, range: f64) -> Self {
        assert!(per_axis >= 2);
        let d1 = dim - 1;
        let mut points = Vec::new();
        let mut idx = vec![0usize; d1];
        loop {
            points.push(
                idx.iter()
                    .map(|&i| -range + 2.0 * range * i as f64 / (per_axis - 1) as f64)
                    .collect(),
            );
            // Odometer increment.
            let mut c = 0;
            loop {
                idx[c] += 1;
                if idx[c] < per_axis {
                    break;
                }
                idx[c] = 0;
                c += 1;
                if c == d1 {
                    let axes: Vec<Vec<f64>> = (0..d1)
                        .map(|_| {
                            (0..per_axis)
                                .map(|i| -range + 2.0 * range * i as f64 / (per_axis - 1) as f64)
                                .collect()
                        })
                        .collect();
                    let mut sp = SlopePoints::new(dim, points);
                    sp.grid_axes = Some(axes);
                    return sp;
                }
            }
        }
    }

    /// Re-attaches a set from persisted parts, restoring the grid axes that
    /// [`grid`](Self::grid) would have computed.
    pub(crate) fn from_parts(
        dim: usize,
        points: Vec<Vec<f64>>,
        grid_axes: Option<Vec<Vec<f64>>>,
    ) -> Self {
        let mut sp = SlopePoints::new(dim, points);
        sp.grid_axes = grid_axes;
        sp
    }

    /// The per-axis grid coordinates, when grid-constructed.
    pub(crate) fn grid_axes(&self) -> Option<&[Vec<f64>]> {
        self.grid_axes.as_deref()
    }

    /// Ambient dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of slope points `k`.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Never true (construction requires `≥ d ≥ 2` points).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The slope points.
    pub fn as_slice(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// Index of a (numerically) matching member point.
    pub fn position(&self, slope: &[f64]) -> Option<usize> {
        self.points
            .iter()
            .position(|p| p.iter().zip(slope).all(|(a, b)| scalar::approx_eq(*a, *b)))
    }

    /// Finds `d` member points whose simplex contains `slope`, preferring
    /// nearby points. Returns the member indices.
    pub fn containing_simplex(&self, slope: &[f64]) -> Option<Vec<usize>> {
        let d = self.dim; // simplex size in E^{d-1}
        let mut order: Vec<usize> = (0..self.points.len()).collect();
        let dist = |i: usize| -> f64 {
            self.points[i]
                .iter()
                .zip(slope)
                .map(|(a, b)| (a - b) * (a - b))
                .sum()
        };
        order.sort_by(|&i, &j| dist(i).partial_cmp(&dist(j)).unwrap());
        // Try combinations of the nearest points first.
        let combos = combinations(order.len(), d);
        for combo in combos {
            let pick: Vec<usize> = combo.iter().map(|&c| order[c]).collect();
            if let Some(l) = barycentric(
                &pick
                    .iter()
                    .map(|&i| self.points[i].as_slice())
                    .collect::<Vec<_>>(),
                slope,
            ) {
                if l.iter().all(|&w| w >= -1e-9) {
                    return Some(pick);
                }
            }
        }
        None
    }
}

impl SlopePoints {
    /// `true` when the set was built by [`grid`](Self::grid), enabling the
    /// d-dimensional technique T2.
    pub fn is_grid(&self) -> bool {
        self.grid_axes.is_some()
    }

    /// `true` if `slope` lies within the hull (the grid bounding box).
    pub fn in_grid_hull(&self, slope: &[f64]) -> bool {
        let Some(axes) = &self.grid_axes else {
            return false;
        };
        axes.iter()
            .zip(slope)
            .all(|(axis, &v)| v >= axis[0] - 1e-12 && v <= axis[axis.len() - 1] + 1e-12)
    }

    /// Index of the grid point whose (box) Voronoi cell contains `slope`.
    pub fn nearest_grid(&self, slope: &[f64]) -> Option<usize> {
        let axes = self.grid_axes.as_ref()?;
        if !self.in_grid_hull(slope) {
            return None;
        }
        let mut index = 0usize;
        let mut stride = 1usize;
        for (axis, &v) in axes.iter().zip(slope) {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (i, &c) in axis.iter().enumerate() {
                let d = (c - v).abs();
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
            index += best * stride;
            stride *= axis.len();
        }
        Some(index)
    }

    /// The `2^{d-1}` corners of grid point `i`'s cell: per axis, the
    /// midpoints toward the neighbouring coordinates (clipped to the hull at
    /// the boundary).
    pub fn cell_corners(&self, i: usize) -> Option<Vec<Vec<f64>>> {
        let ranges = self.cell_ranges(i)?;
        // Odometer over the corner choices.
        let d1 = ranges.len();
        let mut corners = Vec::with_capacity(1 << d1);
        for mask in 0..(1usize << d1) {
            corners.push(
                ranges
                    .iter()
                    .enumerate()
                    .map(|(j, &(lo, hi))| if mask & (1 << j) != 0 { hi } else { lo })
                    .collect(),
            );
        }
        Some(corners)
    }

    /// Per-axis slope-space extent of grid point `i`'s Voronoi cell — the
    /// band the whole-cell handicaps over-cover by. Boundary cells are
    /// clipped to the hull, so their widths (and the planner's estimated
    /// T2 overshoot) are smaller.
    pub fn cell_widths(&self, i: usize) -> Option<Vec<f64>> {
        Some(
            self.cell_ranges(i)?
                .iter()
                .map(|(lo, hi)| hi - lo)
                .collect(),
        )
    }

    /// Per-axis `[lo, hi]` bounds of grid point `i`'s Voronoi cell: the
    /// midpoints toward the neighbouring coordinates, clipped to the hull
    /// at the boundary.
    fn cell_ranges(&self, i: usize) -> Option<Vec<(f64, f64)>> {
        let axes = self.grid_axes.as_ref()?;
        let mut ranges: Vec<(f64, f64)> = Vec::with_capacity(axes.len());
        let mut rest = i;
        for axis in axes {
            let per = axis.len();
            let mi = rest % per;
            rest /= per;
            let lo = if mi == 0 {
                axis[0]
            } else {
                (axis[mi - 1] + axis[mi]) / 2.0
            };
            let hi = if mi + 1 == per {
                axis[per - 1]
            } else {
                (axis[mi] + axis[mi + 1]) / 2.0
            };
            ranges.push((lo, hi));
        }
        Some(ranges)
    }
}

/// Barycentric coordinates of `p` w.r.t. `verts` (`n` points in `E^{n-1}`),
/// or `None` if degenerate.
#[allow(clippy::needless_range_loop)] // dense Gaussian elimination
fn barycentric(verts: &[&[f64]], p: &[f64]) -> Option<Vec<f64>> {
    let n = verts.len();
    debug_assert_eq!(p.len(), n - 1);
    // Solve [v1 … vn; 1 … 1] λ = [p; 1].
    let mut m: Vec<Vec<f64>> = Vec::with_capacity(n);
    for r in 0..(n - 1) {
        let mut row: Vec<f64> = verts.iter().map(|v| v[r]).collect();
        row.push(p[r]);
        m.push(row);
    }
    let mut last = vec![1.0; n + 1];
    last[n] = 1.0;
    m.push(last);
    // Gaussian elimination with partial pivoting.
    for col in 0..n {
        let piv = (col..n).max_by(|&i, &j| {
            m[i][col]
                .abs()
                .partial_cmp(&m[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if m[piv][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, piv);
        let p0 = m[col][col];
        for r in 0..n {
            if r != col {
                let f = m[r][col] / p0;
                if f != 0.0 {
                    for c in col..=n {
                        m[r][c] -= f * m[col][c];
                    }
                }
            }
        }
    }
    Some((0..n).map(|i| m[i][n] / m[i][i]).collect())
}

/// All `k`-subsets of `0..n`, smallest-index-first order.
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if k > n {
        return out;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.clone());
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        idx[i] += 1;
        for j in (i + 1)..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Dual-representation index over a d-dimensional generalized relation.
#[derive(Clone, Debug)]
pub struct DualIndexD {
    points: SlopePoints,
    trees: Vec<(BTree, BTree)>, // (up, down) per slope point
}

impl DualIndexD {
    /// Bulk-builds the index. For grid slope sets, the whole-cell handicap
    /// values enabling the d-dimensional technique T2 are computed too.
    pub fn build(
        pager: &mut dyn Pager,
        points: SlopePoints,
        tuples: &[(u32, GeneralizedTuple)],
    ) -> Result<Self, CdbError> {
        let mut trees = Vec::with_capacity(points.len());
        for p in points.as_slice() {
            let mut up: Vec<(f64, u32)> = tuples
                .iter()
                .map(|(id, t)| (dual::top(t, p).expect("satisfiable"), *id))
                .collect();
            let mut down: Vec<(f64, u32)> = tuples
                .iter()
                .map(|(id, t)| (dual::bot(t, p).expect("satisfiable"), *id))
                .collect();
            up.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            down.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            trees.push((
                BTree::bulk_load(pager, &up, 1.0)?,
                BTree::bulk_load(pager, &down, 1.0)?,
            ));
        }
        let mut idx = DualIndexD { points, trees };
        idx.refresh_handicaps(pager, tuples)?;
        Ok(idx)
    }

    /// Reach of a tuple over grid cell `i`: `(max TOP, min BOT)` over the
    /// cell corners (exact by convexity/concavity over the box cell).
    fn cell_reach(&self, i: usize, t: &GeneralizedTuple) -> Option<(f64, f64)> {
        let corners = self.points.cell_corners(i)?;
        let mut max_top = f64::NEG_INFINITY;
        let mut min_bot = f64::INFINITY;
        for c in &corners {
            max_top = max_top.max(dual::top(t, c).expect("satisfiable"));
            min_bot = min_bot.min(dual::bot(t, c).expect("satisfiable"));
        }
        Some((max_top, min_bot))
    }

    /// Recomputes the whole-cell handicaps (grid sets only; a no-op for
    /// arbitrary point sets, which use the simplex covering instead).
    /// Stored in the `low_prev`/`high_prev` leaf slots.
    pub fn refresh_handicaps(
        &mut self,
        pager: &mut dyn Pager,
        tuples: &[(u32, GeneralizedTuple)],
    ) -> Result<(), CdbError> {
        if !self.points.is_grid() {
            return Ok(());
        }
        for i in 0..self.points.len() {
            let p = self.points.as_slice()[i].clone();
            let reaches: Vec<(f64, f64)> = tuples
                .iter()
                .map(|(_, t)| self.cell_reach(i, t).expect("grid set"))
                .collect();
            for up_tree in [true, false] {
                let tree = if up_tree {
                    &self.trees[i].0
                } else {
                    &self.trees[i].1
                };
                let keys: Vec<f64> = tuples
                    .iter()
                    .map(|(_, t)| {
                        if up_tree {
                            dual::top(t, &p).expect("satisfiable")
                        } else {
                            dual::bot(t, &p).expect("satisfiable")
                        }
                    })
                    .collect();
                let low_pairs: Vec<(f64, f64)> = reaches
                    .iter()
                    .zip(&keys)
                    .map(|(&(mt, _), &k)| (mt, k))
                    .collect();
                let high_pairs: Vec<(f64, f64)> = reaches
                    .iter()
                    .zip(&keys)
                    .map(|(&(_, mb), &k)| (mb, k))
                    .collect();
                let leaves = tree.leaves(&*pager)?;
                let low = assign_low(&leaves, &low_pairs);
                let high = assign_high(&leaves, &high_pairs);
                for (li, leaf) in leaves.iter().enumerate() {
                    tree.set_handicaps(
                        pager,
                        leaf.page,
                        Handicaps {
                            low_prev: low[li],
                            low_next: f64::INFINITY,
                            high_prev: high[li],
                            high_next: f64::NEG_INFINITY,
                        },
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Re-attaches an index from persisted parts; the trees' node pages
    /// (whole-cell handicaps included) are already on disk.
    pub(crate) fn from_parts(points: SlopePoints, trees: Vec<(BTree, BTree)>) -> Self {
        assert_eq!(points.len(), trees.len(), "one tree pair per slope point");
        DualIndexD { points, trees }
    }

    /// The `(B^up, B^down)` trees per slope point — what the catalog
    /// persists.
    pub(crate) fn tree_pairs(&self) -> impl Iterator<Item = (&BTree, &BTree)> {
        self.trees.iter().map(|(u, d)| (u, d))
    }

    /// The slope-point set `S`.
    pub fn points(&self) -> &SlopePoints {
        &self.points
    }

    /// Ambient dimension `d`.
    pub fn dim(&self) -> usize {
        self.points.dim()
    }

    /// Pages owned by the index.
    pub fn page_count(&self) -> u64 {
        self.trees
            .iter()
            .map(|(u, d)| u.page_count() + d.page_count())
            .sum()
    }

    /// Reads every page of every tree through `pager`; under a
    /// checksumming pager any torn or stale page surfaces here. Used by
    /// the open-time verification pass.
    pub fn verify(&self, pager: &dyn PageReader) -> io::Result<()> {
        for (up, down) in self.tree_pairs() {
            up.collect_pages(pager)?;
            down.collect_pages(pager)?;
        }
        Ok(())
    }

    /// Adds a tuple to every tree, incrementally folding its cell reaches
    /// into the handicaps (grid sets).
    pub fn insert(
        &mut self,
        pager: &mut dyn Pager,
        id: u32,
        tuple: &GeneralizedTuple,
    ) -> Result<(), CdbError> {
        for i in 0..self.points.len() {
            let p = self.points.as_slice()[i].clone();
            let top = dual::top(tuple, &p).expect("satisfiable");
            let bot = dual::bot(tuple, &p).expect("satisfiable");
            self.trees[i].0.insert(pager, top, id)?;
            self.trees[i].1.insert(pager, bot, id)?;
            if let Some((max_top, min_bot)) = self.cell_reach(i, tuple) {
                for (tree, key) in [(&self.trees[i].0, top), (&self.trees[i].1, bot)] {
                    fold_low(pager, tree, Side::Prev, max_top, key)?;
                    fold_high(pager, tree, Side::Prev, min_bot, key)?;
                }
            }
        }
        Ok(())
    }

    /// Removes a tuple from every tree.
    pub fn remove(
        &mut self,
        pager: &mut dyn Pager,
        id: u32,
        tuple: &GeneralizedTuple,
    ) -> Result<bool, CdbError> {
        let mut found = true;
        for (i, p) in self.points.as_slice().iter().enumerate() {
            found &=
                self.trees[i]
                    .0
                    .delete(pager, dual::top(tuple, p).expect("satisfiable"), id)?;
            found &=
                self.trees[i]
                    .1
                    .delete(pager, dual::bot(tuple, p).expect("satisfiable"), id)?;
        }
        Ok(found)
    }

    /// Executes a selection: exact when the slope is a member of `S`,
    /// otherwise the generalized-T1 simplex covering with exact refinement.
    ///
    /// # Errors
    /// [`CdbError::UnsupportedQuery`] when the query slope lies outside the
    /// convex hull of `S` or dimensions mismatch.
    pub fn execute(
        &self,
        pager: &dyn PageReader,
        sel: &Selection,
        fetch: &dyn TupleSource,
    ) -> Result<QueryResult, CdbError> {
        if sel.halfplane.dim() != self.dim() {
            return Err(CdbError::DimensionMismatch {
                expected: self.dim(),
                got: sel.halfplane.dim(),
            });
        }
        let tracked = TrackedReader::new(pager);
        let pager: &dyn PageReader = &tracked;
        let slope = &sel.halfplane.slope;
        let b = sel.halfplane.intercept;
        let before = pager.stats();

        if let Some(i) = self.points.position(slope) {
            // Exact restricted query; boundary band verified exactly.
            let (use_up, upward) = tree_and_direction(sel.kind, sel.halfplane.op);
            let tree = if use_up {
                &self.trees[i].0
            } else {
                &self.trees[i].1
            };
            let (mut sure, check) = sweep_candidates(tree, pager, b, upward)?;
            let mut stats = QueryStats {
                candidates: (sure.len() + check.len()) as u64,
                accepted_by_key: sure.len() as u64,
                ..QueryStats::default()
            };
            stats.index_io = pager.stats().since(&before);
            let heap_before = pager.stats();
            let kept = refine(pager, sel, check, fetch, &mut stats)?;
            stats.heap_io = pager.stats().since(&heap_before);
            sure.extend(kept);
            return Ok(QueryResult::new(sure, stats));
        }

        // Grid sets: the d-dimensional technique T2 (single tree, two
        // handicap-guided sweeps, duplicate-free).
        if let Some(cell) = self.points.nearest_grid(slope) {
            let (use_up, upward) = tree_and_direction(sel.kind, sel.halfplane.op);
            let tree = if use_up {
                &self.trees[cell].0
            } else {
                &self.trees[cell].1
            };
            let raw = handicap_guided_candidates(
                tree,
                pager,
                b,
                upward,
                &|h: &Handicaps| h.low_prev,
                &|h: &Handicaps| h.high_prev,
            )?;
            let mut stats = QueryStats {
                candidates: raw.len() as u64,
                ..QueryStats::default()
            };
            stats.index_io = pager.stats().since(&before);
            let heap_before = pager.stats();
            let ids = refine(pager, sel, raw, fetch, &mut stats)?;
            stats.heap_io = pager.stats().since(&heap_before);
            return Ok(QueryResult::new(ids, stats));
        }

        self.execute_simplex_from(pager, sel, fetch, before)
    }

    /// Generalized T1 (simplex covering) — also the fallback for
    /// non-grid point sets, and directly callable for ablations.
    pub fn execute_simplex(
        &self,
        pager: &dyn PageReader,
        sel: &Selection,
        fetch: &dyn TupleSource,
    ) -> Result<QueryResult, CdbError> {
        let tracked = TrackedReader::new(pager);
        let pager: &dyn PageReader = &tracked;
        let before = pager.stats();
        self.execute_simplex_from(pager, sel, fetch, before)
    }

    fn execute_simplex_from(
        &self,
        pager: &dyn PageReader,
        sel: &Selection,
        fetch: &dyn TupleSource,
        before: cdb_storage::IoStats,
    ) -> Result<QueryResult, CdbError> {
        let slope = &sel.halfplane.slope;
        let b = sel.halfplane.intercept;
        let simplex = self.points.containing_simplex(slope).ok_or_else(|| {
            CdbError::UnsupportedQuery(format!(
                "query slope {slope:?} lies outside the hull of the predefined set S"
            ))
        })?;
        // d app-queries through P = (0,…,0,b): same intercept, same operator.
        let mut raw: Vec<u32> = Vec::new();
        for (j, &pi) in simplex.iter().enumerate() {
            let kind = match (sel.kind, j) {
                (SelectionKind::All, 0) => SelectionKind::All,
                (SelectionKind::All, _) => SelectionKind::Exist,
                (SelectionKind::Exist, _) => SelectionKind::Exist,
            };
            let (use_up, upward) = tree_and_direction(kind, sel.halfplane.op);
            let tree = if use_up {
                &self.trees[pi].0
            } else {
                &self.trees[pi].1
            };
            let (sure, check) = sweep_candidates(tree, pager, b, upward)?;
            raw.extend(sure);
            raw.extend(check);
        }
        let mut stats = QueryStats {
            candidates: raw.len() as u64,
            ..QueryStats::default()
        };
        stats.index_io = pager.stats().since(&before);
        raw.sort_unstable();
        let before_len = raw.len();
        raw.dedup();
        stats.duplicates = (before_len - raw.len()) as u64;
        let heap_before = pager.stats();
        let ids = refine(pager, sel, raw, fetch, &mut stats)?;
        stats.heap_io = pager.stats().since(&heap_before);
        Ok(QueryResult::new(ids, stats))
    }

    /// Number of indexed entries per tree (should equal the relation size).
    pub fn len(&self) -> u64 {
        self.trees.first().map(|(u, _)| u.len()).unwrap_or(0)
    }

    /// `true` when no tuples are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Height of the (first) `B^up` tree: the per-search descent cost.
    pub fn tree_height(&self) -> usize {
        self.trees.first().map(|(u, _)| u.height()).unwrap_or(0)
    }

    /// Frees every page of every tree back to the pager.
    ///
    /// # Errors
    /// [`CdbError::Io`] when collecting the pages to free fails; pages
    /// already freed stay freed.
    pub fn destroy(self, pager: &mut dyn Pager) -> Result<(), CdbError> {
        for (up, down) in self.trees {
            up.destroy(pager)?;
            down.destroy(pager)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_geometry::constraint::{LinearConstraint, RelOp};
    use cdb_geometry::halfplane::HalfPlane;
    use cdb_geometry::predicates;
    use cdb_prng::StdRng;
    use cdb_storage::MemPager;

    /// Random axis-aligned boxes in E^d (satisfiable, bounded).
    fn random_boxes(dim: usize, n: usize, seed: u64) -> Vec<(u32, GeneralizedTuple)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let mut cs = Vec::new();
                for k in 0..dim {
                    let lo: f64 = rng.gen_range(-50.0..45.0);
                    let hi = lo + rng.gen_range(0.5..5.0);
                    let mut a = vec![0.0; dim];
                    a[k] = 1.0;
                    cs.push(LinearConstraint::new(a.clone(), -lo, RelOp::Ge));
                    cs.push(LinearConstraint::new(a, -hi, RelOp::Le));
                }
                (i as u32, GeneralizedTuple::new(cs))
            })
            .collect()
    }

    fn oracle(pairs: &[(u32, GeneralizedTuple)], sel: &Selection) -> Vec<u32> {
        pairs
            .iter()
            .filter(|(_, t)| match sel.kind {
                SelectionKind::All => predicates::all(&sel.halfplane, t),
                SelectionKind::Exist => predicates::exist(&sel.halfplane, t),
            })
            .map(|(id, _)| *id)
            .collect()
    }

    fn run(
        idx: &DualIndexD,
        pager: &MemPager,
        pairs: &[(u32, GeneralizedTuple)],
        sel: &Selection,
    ) -> QueryResult {
        let lookup: std::collections::HashMap<u32, GeneralizedTuple> =
            pairs.iter().cloned().collect();
        let fetch = move |_: &dyn PageReader, id: u32| lookup[&id].clone();
        idx.execute(pager, sel, &fetch).expect("query")
    }

    #[test]
    fn grid_generation() {
        let g = SlopePoints::grid(3, 3, 1.0);
        assert_eq!(g.dim(), 3);
        assert_eq!(g.len(), 9);
        assert!(g.position(&[0.0, 0.0]).is_some());
        assert!(g.position(&[-1.0, 1.0]).is_some());
        assert!(g.position(&[0.3, 0.0]).is_none());
    }

    #[test]
    fn simplex_containment() {
        let g = SlopePoints::grid(3, 3, 1.0);
        let s = g.containing_simplex(&[0.2, -0.3]).expect("inside hull");
        assert_eq!(s.len(), 3);
        assert!(g.containing_simplex(&[5.0, 0.0]).is_none(), "outside hull");
    }

    #[test]
    fn barycentric_simple() {
        let verts: Vec<&[f64]> = vec![&[0.0, 0.0], &[1.0, 0.0], &[0.0, 1.0]];
        let l = barycentric(&verts, &[0.25, 0.25]).unwrap();
        assert!((l[0] - 0.5).abs() < 1e-9);
        assert!((l[1] - 0.25).abs() < 1e-9);
        assert!((l[2] - 0.25).abs() < 1e-9);
        // Degenerate (collinear) vertices.
        let degen: Vec<&[f64]> = vec![&[0.0, 0.0], &[1.0, 1.0], &[2.0, 2.0]];
        assert!(barycentric(&degen, &[0.5, 0.5]).is_none());
    }

    #[test]
    fn member_slope_queries_are_exact_3d() {
        let mut pager = MemPager::paper_1999();
        let pairs = random_boxes(3, 150, 5);
        let idx = DualIndexD::build(&mut pager, SlopePoints::grid(3, 3, 1.0), &pairs).unwrap();
        for slope in [vec![0.0, 0.0], vec![1.0, -1.0], vec![0.0, 1.0]] {
            for kind in [SelectionKind::All, SelectionKind::Exist] {
                for op in [RelOp::Ge, RelOp::Le] {
                    let sel = Selection {
                        kind,
                        halfplane: HalfPlane::new(slope.clone(), 3.0, op),
                    };
                    let got = run(&idx, &pager, &pairs, &sel);
                    assert_eq!(got.ids(), oracle(&pairs, &sel), "{kind:?} {op:?} {slope:?}");
                }
            }
        }
    }

    #[test]
    fn simplex_covering_matches_oracle_3d() {
        let mut pager = MemPager::paper_1999();
        let pairs = random_boxes(3, 200, 7);
        let idx = DualIndexD::build(&mut pager, SlopePoints::grid(3, 3, 1.5), &pairs).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..12 {
            let slope = vec![rng.gen_range(-1.2..1.2), rng.gen_range(-1.2..1.2)];
            let b = rng.gen_range(-40.0..40.0);
            for kind in [SelectionKind::All, SelectionKind::Exist] {
                for op in [RelOp::Ge, RelOp::Le] {
                    let sel = Selection {
                        kind,
                        halfplane: HalfPlane::new(slope.clone(), b, op),
                    };
                    let got = run(&idx, &pager, &pairs, &sel);
                    assert_eq!(
                        got.ids(),
                        oracle(&pairs, &sel),
                        "{kind:?} {op:?} {slope:?} {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn four_dimensional_queries() {
        let mut pager = MemPager::paper_1999();
        let pairs = random_boxes(4, 80, 9);
        let idx = DualIndexD::build(&mut pager, SlopePoints::grid(4, 2, 1.0), &pairs).unwrap();
        let sel = Selection::exist(HalfPlane::new(vec![0.3, -0.2, 0.5], 0.0, RelOp::Ge));
        let got = run(&idx, &pager, &pairs, &sel);
        assert_eq!(got.ids(), oracle(&pairs, &sel));
        let sel2 = Selection::all(HalfPlane::new(vec![0.0, 0.0, 0.0], 100.0, RelOp::Le));
        let got2 = run(&idx, &pager, &pairs, &sel2);
        assert_eq!(got2.len(), 80, "everything is below w = 100");
    }

    #[test]
    fn outside_hull_is_rejected() {
        let mut pager = MemPager::paper_1999();
        let pairs = random_boxes(3, 20, 13);
        let idx = DualIndexD::build(&mut pager, SlopePoints::grid(3, 2, 1.0), &pairs).unwrap();
        let sel = Selection::exist(HalfPlane::new(vec![3.0, 0.0], 0.0, RelOp::Ge));
        let lookup: std::collections::HashMap<u32, GeneralizedTuple> =
            pairs.iter().cloned().collect();
        let fetch = move |_: &dyn PageReader, id: u32| lookup[&id].clone();
        assert!(matches!(
            idx.execute(&pager, &sel, &fetch),
            Err(CdbError::UnsupportedQuery(_))
        ));
    }

    #[test]
    fn insert_remove_round_trip() {
        let mut pager = MemPager::paper_1999();
        let mut pairs = random_boxes(3, 50, 17);
        let mut idx = DualIndexD::build(&mut pager, SlopePoints::grid(3, 2, 1.0), &pairs).unwrap();
        let extra = random_boxes(3, 1, 99)[0].1.clone();
        idx.insert(&mut pager, 500, &extra).unwrap();
        pairs.push((500, extra.clone()));
        let sel = Selection::exist(HalfPlane::new(vec![0.5, 0.5], -200.0, RelOp::Ge));
        let got = run(&idx, &pager, &pairs, &sel);
        assert!(got.ids().contains(&500));
        assert!(idx.remove(&mut pager, 500, &extra).unwrap());
        pairs.pop();
        let got = run(&idx, &pager, &pairs, &sel);
        assert!(!got.ids().contains(&500));
    }

    #[test]
    fn t2d_and_simplex_agree_with_oracle() {
        let mut pager = MemPager::paper_1999();
        let pairs = random_boxes(3, 250, 31);
        let idx = DualIndexD::build(&mut pager, SlopePoints::grid(3, 3, 1.5), &pairs).unwrap();
        let lookup: std::collections::HashMap<u32, GeneralizedTuple> =
            pairs.iter().cloned().collect();
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..10 {
            let slope = vec![rng.gen_range(-1.3..1.3), rng.gen_range(-1.3..1.3)];
            let b = rng.gen_range(-45.0..45.0);
            for kind in [SelectionKind::All, SelectionKind::Exist] {
                for op in [RelOp::Ge, RelOp::Le] {
                    let sel = Selection {
                        kind,
                        halfplane: HalfPlane::new(slope.clone(), b, op),
                    };
                    let want = oracle(&pairs, &sel);
                    let l1 = lookup.clone();
                    let f1 = move |_: &dyn PageReader, id: u32| l1[&id].clone();
                    let t2 = idx.execute(&pager, &sel, &f1).unwrap();
                    let l2 = lookup.clone();
                    let f2 = move |_: &dyn PageReader, id: u32| l2[&id].clone();
                    let t1 = idx.execute_simplex(&pager, &sel, &f2).unwrap();
                    assert_eq!(t2.ids(), want.as_slice(), "T2-d {kind:?} {op:?} {slope:?}");
                    assert_eq!(
                        t1.ids(),
                        want.as_slice(),
                        "simplex {kind:?} {op:?} {slope:?}"
                    );
                    // T2-d is duplicate-free; the simplex covering may not be.
                    assert_eq!(t2.stats.duplicates, 0);
                }
            }
        }
    }

    #[test]
    fn t2d_incremental_inserts_stay_correct() {
        let mut pager = MemPager::paper_1999();
        let mut pairs = random_boxes(3, 100, 37);
        let mut idx = DualIndexD::build(&mut pager, SlopePoints::grid(3, 3, 1.0), &pairs).unwrap();
        // Insert 60 more without any handicap rebuild.
        for (j, (_, t)) in random_boxes(3, 60, 38).into_iter().enumerate() {
            let id = 2000 + j as u32;
            idx.insert(&mut pager, id, &t).unwrap();
            pairs.push((id, t));
        }
        let mut rng = StdRng::seed_from_u64(39);
        for _ in 0..6 {
            let slope = vec![rng.gen_range(-0.9..0.9), rng.gen_range(-0.9..0.9)];
            let b = rng.gen_range(-40.0..40.0);
            for kind in [SelectionKind::All, SelectionKind::Exist] {
                let sel = Selection {
                    kind,
                    halfplane: HalfPlane::new(slope.clone(), b, RelOp::Ge),
                };
                let got = run(&idx, &pager, &pairs, &sel);
                assert_eq!(got.ids(), oracle(&pairs, &sel), "{kind:?} {slope:?} {b}");
            }
        }
    }

    #[test]
    fn cell_geometry() {
        let g = SlopePoints::grid(3, 3, 1.0); // axes: [-1, 0, 1] x [-1, 0, 1]
        assert!(g.is_grid());
        // Point 4 is the centre (0,0); its cell is [-0.5,0.5]^2.
        assert_eq!(g.as_slice()[4], vec![0.0, 0.0]);
        let corners = g.cell_corners(4).unwrap();
        assert_eq!(corners.len(), 4);
        for c in &corners {
            assert!(c[0].abs() == 0.5 && c[1].abs() == 0.5, "{c:?}");
        }
        // Corner point 0 = (-1,-1): cell clipped at the hull.
        let corners0 = g.cell_corners(0).unwrap();
        for c in &corners0 {
            assert!((-1.0..=-0.5).contains(&c[0]) && (-1.0..=-0.5).contains(&c[1]));
        }
        // Nearest-cell lookup.
        assert_eq!(g.nearest_grid(&[0.2, -0.1]), Some(4));
        assert_eq!(g.nearest_grid(&[-0.9, -0.8]), Some(0));
        assert_eq!(g.nearest_grid(&[2.0, 0.0]), None, "outside hull");
        // Non-grid sets have no cells.
        let free = SlopePoints::new(3, vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert!(!free.is_grid());
        assert!(free.cell_corners(0).is_none());
        assert!(free.nearest_grid(&[0.1, 0.1]).is_none());
    }

    #[test]
    fn unbounded_tuples_in_3d() {
        let mut pager = MemPager::paper_1999();
        // A slab 0 <= z <= 1 (unbounded in x, y) plus a box.
        let slab = GeneralizedTuple::new(vec![
            LinearConstraint::new(vec![0.0, 0.0, 1.0], 0.0, RelOp::Ge),
            LinearConstraint::new(vec![0.0, 0.0, 1.0], -1.0, RelOp::Le),
        ]);
        let mut pairs = random_boxes(3, 10, 21);
        pairs.push((100, slab));
        let idx = DualIndexD::build(&mut pager, SlopePoints::grid(3, 3, 1.0), &pairs).unwrap();
        // z >= 0 contains the slab? The slab extends from z=0 to z=1: yes.
        let sel = Selection::all(HalfPlane::new(vec![0.0, 0.0], 0.0, RelOp::Ge));
        let got = run(&idx, &pager, &pairs, &sel);
        assert!(got.ids().contains(&100));
        // Any tilted half-space z >= 0.5x intersects the slab but cannot
        // contain it.
        let tilted = HalfPlane::new(vec![0.5, 0.0], 0.0, RelOp::Ge);
        let got = run(&idx, &pager, &pairs, &Selection::exist(tilted.clone()));
        assert!(got.ids().contains(&100));
        let got = run(&idx, &pager, &pairs, &Selection::all(tilted));
        assert!(!got.ids().contains(&100));
    }
}
