//! The one shared plan pretty-printer.
//!
//! Every surface that shows a plan — `EXPLAIN` over the typed API, SQL
//! `EXPLAIN [ANALYZE]` in the shell, and the wire protocol's rendered
//! plan — goes through [`render`] over a [`PlanNode`] tree, so local and
//! remote sessions print byte-identical output and there is exactly one
//! place that decides how plans look.

use crate::plan::QueryPlan;
use crate::query::QueryStats;

/// One rendered operator: a label line, indented detail lines, and child
/// operators.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PlanNode {
    /// The operator headline, e.g. `IndexScan parcels [exist y >= 0.3x - 5]`.
    pub label: String,
    /// Indented annotation lines (estimates, actuals, method choice).
    pub detail: Vec<String>,
    /// Child operators, rendered below with tree connectors.
    pub children: Vec<PlanNode>,
}

/// Renders a plan tree with box-drawing connectors:
///
/// ```text
/// NestedLoopJoin
/// ├─ IndexScan r [exist y >= 0.3x - 5]
/// │      method=T2 (cost-based)  case: …
/// └─ SeqScan s
///        est: 4 heap pages, 120 tuples
/// ```
pub fn render(root: &PlanNode) -> String {
    let mut out = String::new();
    render_into(root, "", "", &mut out);
    out
}

fn render_into(node: &PlanNode, prefix: &str, cont: &str, out: &mut String) {
    out.push_str(prefix);
    out.push_str(&node.label);
    out.push('\n');
    let bar = if node.children.is_empty() {
        "  "
    } else {
        "│ "
    };
    for d in &node.detail {
        out.push_str(cont);
        out.push_str(bar);
        out.push_str("  ");
        out.push_str(d);
        out.push('\n');
    }
    for (i, child) in node.children.iter().enumerate() {
        let last = i + 1 == node.children.len();
        let p = format!("{cont}{}", if last { "└─ " } else { "├─ " });
        let c = format!("{cont}{}", if last { "   " } else { "│  " });
        render_into(child, &p, &c, out);
    }
}

/// The planner-choice annotation lines for an access-method decision
/// (method, case, refinement, estimate, alternatives considered).
pub fn plan_detail_lines(plan: &QueryPlan) -> Vec<String> {
    plan.explain().lines().map(|l| l.to_string()).collect()
}

/// The observed-cost line appended under `ANALYZE` (and by the typed
/// `EXPLAIN`, which always executes).
pub fn actual_line(stats: &QueryStats, rows: u64) -> String {
    format!(
        "actual:   {} index + {} heap = {} pages, {} candidates ({} duplicates, {} false hits), {} rows",
        stats.index_io.accesses(),
        stats.heap_io.accesses(),
        stats.total_accesses(),
        stats.candidates,
        stats.duplicates,
        stats.false_hits,
        rows
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_tree_layout() {
        let tree = PlanNode {
            label: "Filter [exist: 2 constraints]".into(),
            detail: vec!["joint satisfiability via LP".into()],
            children: vec![PlanNode {
                label: "NestedLoopJoin".into(),
                detail: vec![],
                children: vec![
                    PlanNode {
                        label: "IndexScan r".into(),
                        detail: vec!["method=T2".into(), "estimate: 3.0 pages".into()],
                        children: vec![],
                    },
                    PlanNode {
                        label: "SeqScan s".into(),
                        detail: vec!["est: 4 heap pages".into()],
                        children: vec![],
                    },
                ],
            }],
        };
        let expected = "\
Filter [exist: 2 constraints]
│   joint satisfiability via LP
└─ NestedLoopJoin
   ├─ IndexScan r
   │      method=T2
   │      estimate: 3.0 pages
   └─ SeqScan s
          est: 4 heap pages
";
        assert_eq!(render(&tree), expected);
    }
}
