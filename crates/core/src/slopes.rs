//! The predefined slope set `S` and its neighbourhood structure.
//!
//! Slopes are angular coefficients of non-vertical lines. The natural
//! topology is the *angle* `φ = atan(a) mod π ∈ (0, π)`: rotating a line
//! continuously walks `tan φ` from `0` up through `+∞`, wraps to `−∞` and
//! returns to `0`. The paper's Table 1 cases correspond to the cyclic
//! predecessor/successor in this angle order:
//!
//! * `a₁ < a < a₂` — the query slope lies between two slopes of `S`;
//! * `a₁ < a, a₂ < a` / `a < a₁, a < a₂` — the rotation wraps through the
//!   vertical.

use crate::query::Side;

/// A predefined, sorted set of `k ≥ 2` distinct slopes.
#[derive(Clone, Debug, PartialEq)]
pub struct SlopeSet {
    /// Slope values, ascending.
    slopes: Vec<f64>,
}

/// Neighbourhood of a query slope (Table 1 of the paper).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Bracket {
    /// The slope is (numerically) a member of `S`.
    Member(usize),
    /// `slopes[i] < a < slopes[i+1]`: the main case.
    Between(usize, usize),
    /// `a` is outside `[min S, max S]`: the rotation wraps through the
    /// vertical; `(clockwise, anticlockwise)` neighbour indices.
    Wrapped(usize, usize),
}

impl SlopeSet {
    /// Builds a slope set from arbitrary values (sorted, deduplicated).
    ///
    /// # Panics
    /// Panics with fewer than 2 distinct finite slopes.
    pub fn new(mut slopes: Vec<f64>) -> Self {
        assert!(
            slopes.iter().all(|s| s.is_finite()),
            "slopes must be finite"
        );
        slopes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        slopes.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        assert!(slopes.len() >= 2, "a slope set needs at least 2 slopes");
        SlopeSet { slopes }
    }

    /// `k` slopes `tan(φ)` at angles `φ` evenly spread over `(0, π)` away
    /// from the vertical — the paper's experimental configuration for
    /// `k ∈ {2, 3, 4, 5}`.
    pub fn uniform_tan(k: usize) -> Self {
        assert!(k >= 2, "k must be at least 2");
        let slopes = (0..k)
            .map(|i| {
                let phi = std::f64::consts::PI * (i as f64 + 0.5) / k as f64;
                // Nudge angles that fall on the vertical.
                let phi = if (phi - std::f64::consts::FRAC_PI_2).abs() < 0.05 {
                    phi + 0.1
                } else {
                    phi
                };
                phi.tan()
            })
            .collect();
        SlopeSet::new(slopes)
    }

    /// Number of slopes `k`.
    pub fn len(&self) -> usize {
        self.slopes.len()
    }

    /// Never true: construction requires `k ≥ 2`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Slope value at index `i`.
    pub fn get(&self, i: usize) -> f64 {
        self.slopes[i]
    }

    /// All slopes, ascending.
    pub fn as_slice(&self) -> &[f64] {
        &self.slopes
    }

    /// Index of `a` if it is (numerically) in the set.
    ///
    /// The tolerance is relative to the *larger* magnitude of the two slopes
    /// being compared. Scaling by `|a|` alone made membership asymmetric for
    /// near-vertical slopes: a stored slope of `1e9` matched the query
    /// `1e9 + 100.0` (tolerance scaled up by the query) while the reverse
    /// comparison used a tolerance too small to match, so `bracket` routed
    /// one of the two equivalent queries to the approximate techniques.
    pub fn position(&self, a: f64) -> Option<usize> {
        self.slopes
            .iter()
            .position(|&s| (s - a).abs() <= 1e-9 * 1.0_f64.max(s.abs()).max(a.abs()))
    }

    /// Classifies a query slope per Table 1.
    pub fn bracket(&self, a: f64) -> Bracket {
        if let Some(i) = self.position(a) {
            return Bracket::Member(i);
        }
        let k = self.slopes.len();
        if a < self.slopes[0] || a > self.slopes[k - 1] {
            // Wrapped through the vertical: clockwise neighbour is the
            // largest slope, anticlockwise the smallest (in angle order the
            // extremes are cyclically adjacent through φ = 0/π).
            return Bracket::Wrapped(k - 1, 0);
        }
        let i = self.slopes.partition_point(|&s| s < a) - 1;
        Bracket::Between(i, i + 1)
    }

    /// Index of the slope nearest to `a` **in angle distance** (robust to
    /// the tan scale; ties break low).
    pub fn nearest(&self, a: f64) -> usize {
        let phi = angle_of(a);
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, &s) in self.slopes.iter().enumerate() {
            let d = angle_dist(phi, angle_of(s));
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// The strip midpoint `(sᵢ + sⱼ)/2` toward the given side of slope `i`
    /// (Section 4.2 Step 1), or `None` at the ends of the set.
    pub fn mid(&self, i: usize, side: Side) -> Option<f64> {
        match side {
            Side::Prev if i > 0 => Some((self.slopes[i - 1] + self.slopes[i]) / 2.0),
            Side::Next if i + 1 < self.slopes.len() => {
                Some((self.slopes[i] + self.slopes[i + 1]) / 2.0)
            }
            _ => None,
        }
    }
}

/// Angle `φ ∈ (0, π)` of the line with slope `a`.
pub fn angle_of(a: f64) -> f64 {
    let phi = a.atan(); // (−π/2, π/2)
    if phi < 0.0 {
        phi + std::f64::consts::PI
    } else {
        phi
    }
}

/// Cyclic distance between two line angles (period π).
pub fn angle_dist(p: f64, q: f64) -> f64 {
    let d = (p - q).abs() % std::f64::consts::PI;
    d.min(std::f64::consts::PI - d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_tan_counts_and_order() {
        for k in 2..=5 {
            let s = SlopeSet::uniform_tan(k);
            assert_eq!(s.len(), k);
            for w in s.as_slice().windows(2) {
                assert!(w[0] < w[1], "ascending");
            }
            // Mixed signs: angles spread over (0, π) on both sides of the
            // vertical (slopes are sorted, so the negative ones come first).
            assert!(
                s.get(0) < 0.0,
                "some angle beyond π/2 gives a negative slope"
            );
            assert!(
                s.get(k - 1) > 0.0,
                "some angle below π/2 gives a positive slope"
            );
        }
    }

    #[test]
    fn bracket_member() {
        let s = SlopeSet::new(vec![-1.0, 0.5, 2.0]);
        assert_eq!(s.bracket(0.5), Bracket::Member(1));
        assert_eq!(s.position(0.5 + 1e-12), Some(1));
    }

    #[test]
    fn position_tolerance_is_symmetric_for_large_slopes() {
        // Near-vertical slopes: |s| dominates |a| and vice versa. The
        // relative tolerance must scale with the larger magnitude, so the
        // same pair matches regardless of which value is stored and which
        // is queried.
        let huge = 4.0e9;
        let wiggle = 1.0; // well inside 1e-9 * 4e9 = 4.0
        let s = SlopeSet::new(vec![-huge, 0.25]);
        assert_eq!(s.position(-huge + wiggle), Some(0));
        assert_eq!(s.position(-huge - wiggle), Some(0));
        // And the mirrored configuration: query below the stored magnitude.
        let s2 = SlopeSet::new(vec![0.25, huge - wiggle]);
        assert_eq!(s2.position(huge), Some(1));
        // Far-off slopes still miss.
        assert_eq!(s.position(-huge + 100.0), None);
        assert_eq!(s.position(0.2500001), None);
    }

    #[test]
    fn bracket_between() {
        let s = SlopeSet::new(vec![-1.0, 0.5, 2.0]);
        assert_eq!(s.bracket(0.0), Bracket::Between(0, 1));
        assert_eq!(s.bracket(1.0), Bracket::Between(1, 2));
    }

    #[test]
    fn bracket_wrapped() {
        let s = SlopeSet::new(vec![-1.0, 0.5, 2.0]);
        assert_eq!(s.bracket(5.0), Bracket::Wrapped(2, 0));
        assert_eq!(s.bracket(-3.0), Bracket::Wrapped(2, 0));
    }

    #[test]
    fn nearest_uses_angle_metric() {
        let s = SlopeSet::new(vec![0.0, 10.0]);
        // Slope 100 is very close to 10 in slope distance? No: in angle
        // space, 100 (φ≈1.56) is near vertical, 10 (φ≈1.47) is much closer
        // to it than 0 (φ=0).
        assert_eq!(s.nearest(100.0), 1);
        // Slope -100 is also near the vertical: nearest is 10, through the
        // wrap (φ(-100)≈1.58, φ(10)≈1.47).
        assert_eq!(s.nearest(-100.0), 1);
        assert_eq!(s.nearest(0.1), 0);
    }

    #[test]
    fn mid_points() {
        let s = SlopeSet::new(vec![-1.0, 1.0, 3.0]);
        assert_eq!(s.mid(1, Side::Prev), Some(0.0));
        assert_eq!(s.mid(1, Side::Next), Some(2.0));
        assert_eq!(s.mid(0, Side::Prev), None);
        assert_eq!(s.mid(2, Side::Next), None);
    }

    #[test]
    fn angle_roundtrip() {
        for a in [-5.0, -1.0, -0.1, 0.0, 0.3, 2.0, 40.0] {
            let phi = angle_of(a);
            assert!((0.0..std::f64::consts::PI).contains(&phi));
            assert!((phi.tan() - a).abs() < 1e-9 * (1.0 + a.abs() * a.abs()));
        }
    }

    #[test]
    fn angle_dist_wraps() {
        // Slopes 100 and -100: angles straddle π/2, tiny cyclic distance.
        let d = angle_dist(angle_of(100.0), angle_of(-100.0));
        assert!(d < 0.03, "wrap distance {d}");
        let d2 = angle_dist(angle_of(0.0), angle_of(1.0));
        assert!((d2 - std::f64::consts::FRAC_PI_4).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn rejects_single_slope() {
        SlopeSet::new(vec![1.0, 1.0 + 1e-15]);
    }

    #[test]
    fn dedups_and_sorts() {
        let s = SlopeSet::new(vec![2.0, -1.0, 2.0, 0.0]);
        assert_eq!(s.as_slice(), &[-1.0, 0.0, 2.0]);
    }
}
