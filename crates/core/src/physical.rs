//! The Volcano execution layer: pull-based operators over constraint
//! relations.
//!
//! Every query — typed or SQL — executes as a tree of [`Operator`]s with
//! the classic `open`/`next`/`close` contract:
//!
//! * `open` acquires resources and runs any eager work (planner choice and
//!   access-method execution for [`IndexScanOp`], the heap scan for
//!   [`SeqScanOp`], buffering the inner side for [`NestedLoopJoinOp`]);
//! * `next` yields one [`Row`] at a time, or `None` when drained;
//! * `close` releases state; operators may be closed early (`LIMIT`).
//!
//! Rows carry the matched tuple id per source relation plus, when a
//! downstream operator needs geometry (filter, join, project), the row's
//! constraint region. Leaf operators only materialize regions when asked,
//! so a one-node plan built by the typed `query()` wrapper stays id-only
//! and pays no extra heap traffic.
//!
//! Each operator renders itself as a [`PlanNode`] for `EXPLAIN`
//! ([`Operator::node`]); with `analyze` set the node also reports observed
//! rows and inclusive wall-clock time.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use cdb_geometry::eliminate;
use cdb_geometry::halfplane::HalfPlane;
use cdb_geometry::predicates;
use cdb_geometry::simplex::LpResult;
use cdb_geometry::tuple::GeneralizedTuple;
use cdb_geometry::{LinearConstraint, RelOp};
use cdb_storage::{PageReader, TrackedReader};

use crate::db::Relation;
use crate::error::CdbError;
use crate::logical::LogicalPlan;
use crate::plan::{Planner, QueryPlan};
use crate::pretty::{actual_line, plan_detail_lines, PlanNode};
use crate::query::{QueryStats, Selection, SelectionKind, Strategy};
use crate::sql::var_name;

/// One intermediate result row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Matched tuple ids, one per source relation in `FROM` order.
    pub ids: Vec<u32>,
    /// The row's constraint region (combined across joins, projected by
    /// `Project`). `None` when no downstream operator asked for geometry.
    pub region: Option<GeneralizedTuple>,
}

/// The Volcano operator contract.
pub trait Operator {
    /// Prepares the operator (and its inputs) for iteration.
    fn open(&mut self) -> Result<(), CdbError>;
    /// Produces the next row, or `None` when drained.
    fn next(&mut self) -> Result<Option<Row>, CdbError>;
    /// Releases per-execution state; safe to call before drain (`LIMIT`).
    fn close(&mut self);
    /// Plans without executing, so `EXPLAIN` can render cost estimates.
    fn describe(&mut self) -> Result<(), CdbError>;
    /// Renders this operator (and subtree) for `EXPLAIN`; with `analyze`,
    /// includes observed row counts and inclusive timings.
    fn node(&self, analyze: bool) -> PlanNode;
    /// Accumulates I/O and candidate accounting from every scan in the
    /// subtree.
    fn add_stats(&self, agg: &mut QueryStats);
}

fn kind_word(kind: SelectionKind) -> &'static str {
    match kind {
        SelectionKind::All => "all",
        SelectionKind::Exist => "exist",
    }
}

fn ms(d: Duration) -> String {
    format!("time: {:.3} ms", d.as_secs_f64() * 1e3)
}

/// Lifts a constraint into `dim` coordinates by zero-padding.
fn lift(c: &LinearConstraint, dim: usize) -> LinearConstraint {
    if c.coeffs.len() == dim {
        return c.clone();
    }
    let mut coeffs = c.coeffs.clone();
    coeffs.resize(dim, 0.0);
    LinearConstraint::new(coeffs, c.constant, c.op)
}

/// Lifts a whole region into `dim` coordinates.
fn lift_region(t: &GeneralizedTuple, dim: usize) -> GeneralizedTuple {
    if t.dim() == dim {
        return t.clone();
    }
    GeneralizedTuple::new(t.constraints().iter().map(|c| lift(c, dim)).collect())
}

/// Rows produced under a filter, join or projection must carry geometry;
/// the plan builder guarantees it, and this converts a violation into an
/// error instead of a panic (the server must never panic on a query).
fn require_region(row: &Row) -> Result<&GeneralizedTuple, CdbError> {
    row.region.as_ref().ok_or_else(|| {
        CdbError::UnsupportedQuery("internal: operator input is missing its region".into())
    })
}

// --------------------------------------------------------------- EmptyOp

/// A statically-empty plan (unsatisfiable or false `WHERE`).
pub struct EmptyOp {
    reason: String,
}

impl Operator for EmptyOp {
    fn open(&mut self) -> Result<(), CdbError> {
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>, CdbError> {
        Ok(None)
    }

    fn close(&mut self) {}

    fn describe(&mut self) -> Result<(), CdbError> {
        Ok(())
    }

    fn node(&self, _analyze: bool) -> PlanNode {
        PlanNode {
            label: "Empty".into(),
            detail: vec![self.reason.clone()],
            children: vec![],
        }
    }

    fn add_stats(&self, _agg: &mut QueryStats) {}
}

// ------------------------------------------------------------ IndexScanOp

/// Planned access-method execution on one relation: the cost-based
/// planner picks among every available method (seq-scan, dual index
/// techniques, R⁺-tree) exactly as the typed query path always has —
/// now as one operator inside the pipeline.
pub struct IndexScanOp<'a> {
    rel: &'a Relation,
    reader: &'a dyn PageReader,
    page_size: usize,
    sel: Selection,
    strategy: Strategy,
    fetch_regions: bool,
    plan: Option<QueryPlan>,
    stats: QueryStats,
    queue: std::vec::IntoIter<u32>,
    rows_out: u64,
    elapsed: Duration,
}

impl<'a> IndexScanOp<'a> {
    /// Creates the operator; `fetch_regions` asks `next` to materialize
    /// each row's constraint region (needed under filters/joins).
    pub fn new(
        rel: &'a Relation,
        reader: &'a dyn PageReader,
        page_size: usize,
        sel: Selection,
        strategy: Strategy,
        fetch_regions: bool,
    ) -> IndexScanOp<'a> {
        IndexScanOp {
            rel,
            reader,
            page_size,
            sel,
            strategy,
            fetch_regions,
            plan: None,
            stats: QueryStats::default(),
            queue: Vec::new().into_iter(),
            rows_out: 0,
            elapsed: Duration::ZERO,
        }
    }

    fn check(&self) -> Result<(), CdbError> {
        self.rel.ensure_usable()?;
        if self.rel.dim() != self.sel.halfplane.dim() {
            return Err(CdbError::DimensionMismatch {
                expected: self.rel.dim(),
                got: self.sel.halfplane.dim(),
            });
        }
        Ok(())
    }

    /// The chosen plan and accumulated stats, for the typed wrappers that
    /// re-package pipeline output as a [`crate::query::QueryResult`].
    pub fn into_plan_stats(self) -> (Option<QueryPlan>, QueryStats) {
        (self.plan, self.stats)
    }
}

impl Operator for IndexScanOp<'_> {
    fn open(&mut self) -> Result<(), CdbError> {
        let t0 = Instant::now();
        self.check()?;
        let forced = crate::db::forced_kind(self.strategy, self.rel)?;
        let methods = self.rel.access_methods(self.page_size);
        let refs: Vec<&dyn crate::plan::AccessMethod> =
            methods.iter().map(|m| m.as_ref()).collect();
        let (mi, plan) = Planner::choose(&refs, &self.sel, forced, self.rel.catalog(), true)?;
        let source = self.rel.tuple_source();
        let mut result = methods[mi].execute(self.reader, &self.sel, &source)?;
        result.stats.method = Some(plan.method);
        result.stats.estimate = Some(plan.estimate);
        self.rel
            .catalog()
            .record(plan.method, self.sel.kind, &result.stats, self.rel.len());
        self.stats = result.stats;
        self.queue = result.ids().to_vec().into_iter();
        self.plan = Some(plan);
        self.elapsed += t0.elapsed();
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>, CdbError> {
        let t0 = Instant::now();
        let out = match self.queue.next() {
            None => None,
            Some(id) => {
                let region = if self.fetch_regions {
                    let tracked = TrackedReader::new(self.reader);
                    let t = self.rel.fetch(&tracked, id)?;
                    self.stats.heap_io.reads += tracked.reads();
                    Some(t)
                } else {
                    None
                };
                self.rows_out += 1;
                Some(Row {
                    ids: vec![id],
                    region,
                })
            }
        };
        self.elapsed += t0.elapsed();
        Ok(out)
    }

    fn close(&mut self) {
        self.queue = Vec::new().into_iter();
    }

    fn describe(&mut self) -> Result<(), CdbError> {
        self.check()?;
        let methods = self.rel.access_methods(self.page_size);
        let refs: Vec<&dyn crate::plan::AccessMethod> =
            methods.iter().map(|m| m.as_ref()).collect();
        // `explore = false`: EXPLAIN is deterministic and side-effect free.
        let (_, plan) = Planner::choose(&refs, &self.sel, None, self.rel.catalog(), false)?;
        self.plan = Some(plan);
        Ok(())
    }

    fn node(&self, analyze: bool) -> PlanNode {
        let mut detail = match &self.plan {
            Some(p) => plan_detail_lines(p),
            None => vec!["(not planned)".into()],
        };
        if analyze {
            detail.push(actual_line(&self.stats, self.rows_out));
            detail.push(ms(self.elapsed));
        }
        PlanNode {
            label: format!(
                "IndexScan {} [{} {}]",
                self.rel.name(),
                kind_word(self.sel.kind),
                self.sel.halfplane
            ),
            detail,
            children: vec![],
        }
    }

    fn add_stats(&self, agg: &mut QueryStats) {
        merge_stats(agg, &self.stats);
    }
}

/// Component-wise accumulation of scan-node stats into an aggregate.
fn merge_stats(agg: &mut QueryStats, s: &QueryStats) {
    agg.index_io.reads += s.index_io.reads;
    agg.index_io.writes += s.index_io.writes;
    agg.heap_io.reads += s.heap_io.reads;
    agg.heap_io.writes += s.heap_io.writes;
    agg.candidates += s.candidates;
    agg.duplicates += s.duplicates;
    agg.false_hits += s.false_hits;
    agg.accepted_by_key += s.accepted_by_key;
}

// -------------------------------------------------------------- SeqScanOp

/// Full relation scan, emitting every live tuple with its region.
pub struct SeqScanOp<'a> {
    rel: &'a Relation,
    reader: &'a dyn PageReader,
    rows: std::vec::IntoIter<(u32, GeneralizedTuple)>,
    stats: QueryStats,
    rows_out: u64,
    elapsed: Duration,
}

impl<'a> SeqScanOp<'a> {
    /// Creates a scan over `rel` through `reader`.
    pub fn new(rel: &'a Relation, reader: &'a dyn PageReader) -> SeqScanOp<'a> {
        SeqScanOp {
            rel,
            reader,
            rows: Vec::new().into_iter(),
            stats: QueryStats::default(),
            rows_out: 0,
            elapsed: Duration::ZERO,
        }
    }
}

impl Operator for SeqScanOp<'_> {
    fn open(&mut self) -> Result<(), CdbError> {
        let t0 = Instant::now();
        self.rel.ensure_usable()?;
        let tracked = TrackedReader::new(self.reader);
        let rows = self.rel.scan(&tracked)?;
        self.stats.heap_io.reads += tracked.reads();
        self.stats.candidates += rows.len() as u64;
        self.rows = rows.into_iter();
        self.elapsed += t0.elapsed();
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>, CdbError> {
        let t0 = Instant::now();
        let out = self.rows.next().map(|(id, t)| {
            self.rows_out += 1;
            Row {
                ids: vec![id],
                region: Some(t),
            }
        });
        self.elapsed += t0.elapsed();
        Ok(out)
    }

    fn close(&mut self) {
        self.rows = Vec::new().into_iter();
    }

    fn describe(&mut self) -> Result<(), CdbError> {
        self.rel.ensure_usable()
    }

    fn node(&self, analyze: bool) -> PlanNode {
        let mut detail = vec![format!(
            "estimate: {} heap pages, {} tuples",
            self.rel.heap_pages(),
            self.rel.len()
        )];
        if analyze {
            detail.push(actual_line(&self.stats, self.rows_out));
            detail.push(ms(self.elapsed));
        }
        PlanNode {
            label: format!("SeqScan {}", self.rel.name()),
            detail,
            children: vec![],
        }
    }

    fn add_stats(&self, agg: &mut QueryStats) {
        merge_stats(agg, &self.stats);
    }
}

// --------------------------------------------------------------- FilterOp

/// Exact predicate over the full `WHERE` conjunction.
///
/// * `EXIST`: the row's region conjoined with every constraint must be
///   satisfiable (one phase-1 LP) — joint satisfiability, which does not
///   decompose over conjuncts.
/// * `ALL`: containment distributes, so each conjunct is checked on its
///   own — through the paper's exact dual predicate when the constraint
///   is non-vertical, and through support-function LPs otherwise.
pub struct FilterOp<'a> {
    input: Box<dyn Operator + 'a>,
    kind: SelectionKind,
    constraints: Vec<LinearConstraint>,
    dim: usize,
    rows_in: u64,
    rows_out: u64,
    elapsed: Duration,
}

impl<'a> FilterOp<'a> {
    /// Wraps `input` with the conjunction predicate.
    pub fn new(
        input: Box<dyn Operator + 'a>,
        kind: SelectionKind,
        constraints: Vec<LinearConstraint>,
        dim: usize,
    ) -> FilterOp<'a> {
        FilterOp {
            input,
            kind,
            constraints,
            dim,
            rows_in: 0,
            rows_out: 0,
            elapsed: Duration::ZERO,
        }
    }

    fn keep(&self, region: &GeneralizedTuple) -> bool {
        match self.kind {
            SelectionKind::Exist => {
                let mut sys = lift_region(region, self.dim);
                for c in &self.constraints {
                    sys.push(lift(c, self.dim));
                }
                sys.is_satisfiable()
            }
            SelectionKind::All => {
                let lifted = lift_region(region, self.dim);
                self.constraints.iter().all(|c| contained(&lifted, c))
            }
        }
    }
}

/// `region ⊆ {x : c holds}`, exactly.
fn contained(region: &GeneralizedTuple, c: &LinearConstraint) -> bool {
    let fitted = lift(c, region.dim());
    if let Some(hp) = HalfPlane::from_constraint(&fitted) {
        return predicates::all(&hp, region);
    }
    // Vertical constraint: bound the support function by LP.
    let eps = cdb_geometry::scalar::EPS;
    match fitted.op {
        RelOp::Le => match region.maximize(&fitted.coeffs) {
            LpResult::Optimal { value, .. } => value + fitted.constant <= eps,
            LpResult::Unbounded => false,
            LpResult::Infeasible => true,
        },
        RelOp::Ge => match region.minimize(&fitted.coeffs) {
            LpResult::Optimal { value, .. } => value + fitted.constant >= -eps,
            LpResult::Unbounded => false,
            LpResult::Infeasible => true,
        },
    }
}

impl Operator for FilterOp<'_> {
    fn open(&mut self) -> Result<(), CdbError> {
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Row>, CdbError> {
        loop {
            let Some(row) = self.input.next()? else {
                return Ok(None);
            };
            let t0 = Instant::now();
            self.rows_in += 1;
            let keep = self.keep(require_region(&row)?);
            self.elapsed += t0.elapsed();
            if keep {
                self.rows_out += 1;
                return Ok(Some(row));
            }
        }
    }

    fn close(&mut self) {
        self.input.close();
    }

    fn describe(&mut self) -> Result<(), CdbError> {
        self.input.describe()
    }

    fn node(&self, analyze: bool) -> PlanNode {
        let pred = self
            .constraints
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(" && ");
        let mut detail = vec![match self.kind {
            SelectionKind::Exist => "joint satisfiability (phase-1 LP) over region ∧ WHERE".into(),
            SelectionKind::All => {
                "per-conjunct containment (dual predicate / support LP)".to_string()
            }
        }];
        if analyze {
            detail.push(format!("rows: {} in, {} out", self.rows_in, self.rows_out));
            detail.push(ms(self.elapsed));
        }
        PlanNode {
            label: format!("Filter [{}: {pred}]", kind_word(self.kind)),
            detail,
            children: vec![self.input.node(analyze)],
        }
    }

    fn add_stats(&self, agg: &mut QueryStats) {
        self.input.add_stats(agg);
    }
}

// ------------------------------------------------------- NestedLoopJoinOp

/// Conjunction join: every satisfiable pairing of a left and a right
/// region survives, carrying the combined constraint system. The inner
/// (right) side is buffered at `open`.
pub struct NestedLoopJoinOp<'a> {
    left: Box<dyn Operator + 'a>,
    right: Box<dyn Operator + 'a>,
    dim: usize,
    inner: Vec<Row>,
    cur: Option<Row>,
    ri: usize,
    rows_out: u64,
    pairs: u64,
    elapsed: Duration,
}

impl<'a> NestedLoopJoinOp<'a> {
    /// Builds the join over already-constructed inputs.
    pub fn new(
        left: Box<dyn Operator + 'a>,
        right: Box<dyn Operator + 'a>,
        dim: usize,
    ) -> NestedLoopJoinOp<'a> {
        NestedLoopJoinOp {
            left,
            right,
            dim,
            inner: Vec::new(),
            cur: None,
            ri: 0,
            rows_out: 0,
            pairs: 0,
            elapsed: Duration::ZERO,
        }
    }
}

impl Operator for NestedLoopJoinOp<'_> {
    fn open(&mut self) -> Result<(), CdbError> {
        self.left.open()?;
        self.right.open()?;
        let t0 = Instant::now();
        while let Some(row) = self.right.next()? {
            require_region(&row)?;
            self.inner.push(row);
        }
        self.right.close();
        self.elapsed += t0.elapsed();
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>, CdbError> {
        loop {
            if self.cur.is_none() {
                let Some(row) = self.left.next()? else {
                    return Ok(None);
                };
                require_region(&row)?;
                self.cur = Some(row);
                self.ri = 0;
            }
            let t0 = Instant::now();
            let left = self.cur.as_ref().expect("set above");
            let lregion = left.region.as_ref().expect("checked above");
            while self.ri < self.inner.len() {
                let right = &self.inner[self.ri];
                self.ri += 1;
                self.pairs += 1;
                let mut sys: Vec<LinearConstraint> = lregion
                    .constraints()
                    .iter()
                    .map(|c| lift(c, self.dim))
                    .collect();
                let rregion = right.region.as_ref().expect("buffered with region");
                sys.extend(rregion.constraints().iter().map(|c| lift(c, self.dim)));
                let combined = GeneralizedTuple::new(sys);
                if combined.is_satisfiable() {
                    let mut ids = left.ids.clone();
                    ids.extend_from_slice(&right.ids);
                    self.rows_out += 1;
                    self.elapsed += t0.elapsed();
                    return Ok(Some(Row {
                        ids,
                        region: Some(combined),
                    }));
                }
            }
            self.cur = None;
            self.elapsed += t0.elapsed();
        }
    }

    fn close(&mut self) {
        self.left.close();
        self.right.close();
        self.inner.clear();
    }

    fn describe(&mut self) -> Result<(), CdbError> {
        self.left.describe()?;
        self.right.describe()
    }

    fn node(&self, analyze: bool) -> PlanNode {
        let mut detail = vec!["conjunction of regions; satisfiable pairs survive".to_string()];
        if analyze {
            detail.push(format!(
                "pairs tested: {}, rows out: {}",
                self.pairs, self.rows_out
            ));
            detail.push(ms(self.elapsed));
        }
        PlanNode {
            label: "NestedLoopJoin".into(),
            detail,
            children: vec![self.left.node(analyze), self.right.node(analyze)],
        }
    }

    fn add_stats(&self, agg: &mut QueryStats) {
        self.left.add_stats(agg);
        self.right.add_stats(agg);
    }
}

// -------------------------------------------------------------- ProjectOp

/// Projection as existential variable elimination (Fourier–Motzkin).
pub struct ProjectOp<'a> {
    input: Box<dyn Operator + 'a>,
    keep: Vec<usize>,
    dim: usize,
    rows_out: u64,
    elapsed: Duration,
}

impl<'a> ProjectOp<'a> {
    /// Projects rows of width `dim` onto `keep` (in output order).
    pub fn new(input: Box<dyn Operator + 'a>, keep: Vec<usize>, dim: usize) -> ProjectOp<'a> {
        ProjectOp {
            input,
            keep,
            dim,
            rows_out: 0,
            elapsed: Duration::ZERO,
        }
    }
}

impl Operator for ProjectOp<'_> {
    fn open(&mut self) -> Result<(), CdbError> {
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Row>, CdbError> {
        let Some(row) = self.input.next()? else {
            return Ok(None);
        };
        let t0 = Instant::now();
        let region = lift_region(require_region(&row)?, self.dim);
        let projected = eliminate::project(&region, &self.keep);
        self.rows_out += 1;
        self.elapsed += t0.elapsed();
        Ok(Some(Row {
            ids: row.ids,
            region: Some(projected),
        }))
    }

    fn close(&mut self) {
        self.input.close();
    }

    fn describe(&mut self) -> Result<(), CdbError> {
        self.input.describe()
    }

    fn node(&self, analyze: bool) -> PlanNode {
        let vars = self
            .keep
            .iter()
            .map(|v| var_name(*v))
            .collect::<Vec<_>>()
            .join(", ");
        let dropped = (0..self.dim)
            .filter(|v| !self.keep.contains(v))
            .map(var_name)
            .collect::<Vec<_>>()
            .join(", ");
        let mut detail = vec![if dropped.is_empty() {
            "no variables eliminated (reorder only)".to_string()
        } else {
            format!("Fourier–Motzkin elimination of {dropped}")
        }];
        if analyze {
            detail.push(format!("rows: {}", self.rows_out));
            detail.push(ms(self.elapsed));
        }
        PlanNode {
            label: format!("Project [{vars}]"),
            detail,
            children: vec![self.input.node(analyze)],
        }
    }

    fn add_stats(&self, agg: &mut QueryStats) {
        self.input.add_stats(agg);
    }
}

// ---------------------------------------------------------------- LimitOp

/// Stops pulling after `n` rows (and closes its input early).
pub struct LimitOp<'a> {
    input: Box<dyn Operator + 'a>,
    n: u64,
    produced: u64,
}

impl<'a> LimitOp<'a> {
    /// Caps `input` at `n` rows.
    pub fn new(input: Box<dyn Operator + 'a>, n: u64) -> LimitOp<'a> {
        LimitOp {
            input,
            n,
            produced: 0,
        }
    }
}

impl Operator for LimitOp<'_> {
    fn open(&mut self) -> Result<(), CdbError> {
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Row>, CdbError> {
        if self.produced >= self.n {
            return Ok(None);
        }
        match self.input.next()? {
            Some(row) => {
                self.produced += 1;
                Ok(Some(row))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self) {
        self.input.close();
    }

    fn describe(&mut self) -> Result<(), CdbError> {
        self.input.describe()
    }

    fn node(&self, analyze: bool) -> PlanNode {
        let mut detail = Vec::new();
        if analyze {
            detail.push(format!("rows: {}", self.produced));
        }
        PlanNode {
            label: format!("Limit {}", self.n),
            detail,
            children: vec![self.input.node(analyze)],
        }
    }

    fn add_stats(&self, agg: &mut QueryStats) {
        self.input.add_stats(agg);
    }
}

// ---------------------------------------------------------------- builder

/// Everything the plan builder needs from the engine (or a snapshot).
pub struct ExecCtx<'a> {
    /// The relation catalog.
    pub relations: &'a HashMap<String, Relation>,
    /// The read half of the pager.
    pub reader: &'a dyn PageReader,
    /// Page size, for the cost formulas.
    pub page_size: usize,
}

/// Builds the physical operator tree for a rewritten logical plan.
///
/// `need_regions` says whether the *parent* needs this subtree's rows to
/// carry geometry; filters, joins and projections always demand it of
/// their inputs.
pub fn build<'a>(
    plan: &LogicalPlan,
    ctx: &ExecCtx<'a>,
    need_regions: bool,
) -> Result<Box<dyn Operator + 'a>, CdbError> {
    let rel = |name: &str| -> Result<&'a Relation, CdbError> {
        ctx.relations
            .get(name)
            .ok_or_else(|| CdbError::RelationNotFound(name.to_string()))
    };
    Ok(match plan {
        LogicalPlan::Empty { reason, .. } => Box::new(EmptyOp {
            reason: reason.clone(),
        }),
        LogicalPlan::Scan { relation, .. } => Box::new(SeqScanOp::new(rel(relation)?, ctx.reader)),
        LogicalPlan::IndexSelection {
            relation,
            selection,
            ..
        } => Box::new(IndexScanOp::new(
            rel(relation)?,
            ctx.reader,
            ctx.page_size,
            selection.clone(),
            Strategy::Auto,
            need_regions,
        )),
        LogicalPlan::Filter {
            kind,
            constraints,
            dim,
            input,
        } => Box::new(FilterOp::new(
            build(input, ctx, true)?,
            *kind,
            constraints.clone(),
            *dim,
        )),
        LogicalPlan::Join { left, right, dim } => Box::new(NestedLoopJoinOp::new(
            build(left, ctx, true)?,
            build(right, ctx, true)?,
            *dim,
        )),
        LogicalPlan::Project { keep, input } => {
            let dim = logical_dim(input);
            Box::new(ProjectOp::new(build(input, ctx, true)?, keep.clone(), dim))
        }
        LogicalPlan::Limit { n, input } => {
            Box::new(LimitOp::new(build(input, ctx, need_regions)?, *n))
        }
    })
}

/// Row width a logical node produces (max across join branches).
fn logical_dim(plan: &LogicalPlan) -> usize {
    match plan {
        LogicalPlan::Empty { .. } => 0,
        LogicalPlan::Scan { dim, .. }
        | LogicalPlan::IndexSelection { dim, .. }
        | LogicalPlan::Filter { dim, .. }
        | LogicalPlan::Join { dim, .. } => *dim,
        LogicalPlan::Project { keep, .. } => keep.len(),
        LogicalPlan::Limit { input, .. } => logical_dim(input),
    }
}
