//! Concurrent batch execution over a shared index snapshot.
//!
//! The read path of the whole stack is `&self` over a [`PageReader`]:
//! [`DualIndex::execute`] never mutates the index, the pager, or the tuple
//! source. A [`QueryExecutor`] exploits that by fanning a batch of
//! selections out over `std::thread::scope` workers that all borrow the
//! same index, the same reader, and the same source — no cloning, no
//! locking on the read path itself. Per-query [`crate::QueryStats`] stay
//! exact because each execution wraps the shared reader in its own
//! [`cdb_storage::TrackedReader`].
//!
//! The paper's experiments (Section 5) are sequential by construction —
//! page accesses are the metric, and those are identical here whether a
//! batch runs on one worker or eight. The executor changes only wall-clock
//! throughput, which the `throughput` binary of `cdb-bench` measures.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use cdb_storage::PageReader;

use crate::error::CdbError;
use crate::index::{DualIndex, TupleSource};
use crate::query::{QueryResult, Selection, Strategy};

/// Runs batches of selections across OS threads sharing one immutable
/// index snapshot.
///
/// ```
/// use cdb_core::exec::QueryExecutor;
/// use cdb_core::{DualIndex, Selection, SlopeSet, Strategy};
/// use cdb_geometry::parse::parse_tuple;
/// use cdb_geometry::HalfPlane;
/// use cdb_storage::{MemPager, PageReader};
///
/// let tuples = vec![
///     (0, parse_tuple("y >= 0 && y <= 1 && x >= 0 && x <= 1").unwrap()),
///     (1, parse_tuple("y >= x && x >= 5").unwrap()),
/// ];
/// let mut pager = MemPager::paper_1999();
/// let idx = DualIndex::build(&mut pager, SlopeSet::uniform_tan(3), &tuples);
/// let lookup = tuples.clone();
/// let fetch = move |_: &dyn PageReader, id: u32| {
///     lookup.iter().find(|(i, _)| *i == id).unwrap().1.clone()
/// };
/// let batch = vec![
///     (Selection::exist(HalfPlane::above(0.25, 3.0)), Strategy::T2),
///     (Selection::all(HalfPlane::below(0.0, 2.0)), Strategy::T1),
/// ];
/// let exec = QueryExecutor::new(&idx, &pager, &fetch);
/// let results = exec.run(&batch, 2);
/// assert_eq!(results[0].as_ref().unwrap().ids(), &[1]);
/// assert_eq!(results[1].as_ref().unwrap().ids(), &[0]);
/// ```
pub struct QueryExecutor<'a> {
    index: &'a DualIndex,
    reader: &'a (dyn PageReader + Sync),
    source: &'a (dyn TupleSource + Sync),
}

impl<'a> QueryExecutor<'a> {
    /// An executor over a built index, the read half of its pager, and a
    /// tuple source for refinement.
    pub fn new(
        index: &'a DualIndex,
        reader: &'a (dyn PageReader + Sync),
        source: &'a (dyn TupleSource + Sync),
    ) -> Self {
        QueryExecutor {
            index,
            reader,
            source,
        }
    }

    /// Executes the batch on `threads` workers, returning per-query results
    /// positionally aligned with the input. `threads == 1` degenerates to
    /// sequential execution on the calling thread's scope.
    ///
    /// Workers claim queries from a shared cursor, so an expensive query
    /// never stalls the rest of the batch behind a fixed partition.
    pub fn run(
        &self,
        batch: &[(Selection, Strategy)],
        threads: usize,
    ) -> Vec<Result<QueryResult, CdbError>> {
        assert!(threads >= 1, "need at least one worker");
        let workers = threads.min(batch.len().max(1));
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<QueryResult, CdbError>>>> =
            batch.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= batch.len() {
                        break;
                    }
                    let (sel, strategy) = &batch[i];
                    let r = self.index.execute(self.reader, sel, *strategy, self.source);
                    *slots[i].lock().expect("worker panicked") = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("worker panicked")
                    .expect("every query claimed exactly once")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SlopeSet;
    use cdb_geometry::tuple::GeneralizedTuple;
    use cdb_geometry::HalfPlane;
    use cdb_storage::MemPager;
    use cdb_workload::{DatasetSpec, ObjectSize, QueryGen, QueryKind};

    fn testbed(n: usize, seed: u64) -> (MemPager, DualIndex, Vec<(u32, GeneralizedTuple)>) {
        let mut pager = MemPager::paper_1999();
        let pairs: Vec<(u32, GeneralizedTuple)> =
            DatasetSpec::paper_1999(n, ObjectSize::Small, seed)
                .generate()
                .into_iter()
                .enumerate()
                .map(|(i, t)| (i as u32, t))
                .collect();
        let idx = DualIndex::build(&mut pager, SlopeSet::uniform_tan(4), &pairs);
        (pager, idx, pairs)
    }

    fn mixed_batch(pairs: &[(u32, GeneralizedTuple)], n: usize) -> Vec<(Selection, Strategy)> {
        let tuples: Vec<GeneralizedTuple> = pairs.iter().map(|(_, t)| t.clone()).collect();
        let mut qg = QueryGen::new(0xBA7C4);
        (0..n)
            .map(|i| {
                let kind = if i % 2 == 0 {
                    QueryKind::Exist
                } else {
                    QueryKind::All
                };
                let q = qg.calibrated(&tuples, kind, 0.05 + 0.3 * (i % 3) as f64 / 2.0);
                let sel = match kind {
                    QueryKind::Exist => Selection::exist(q.halfplane),
                    QueryKind::All => Selection::all(q.halfplane),
                };
                let strategy = match i % 3 {
                    0 => Strategy::T1,
                    1 => Strategy::T2,
                    _ => Strategy::Auto,
                };
                (sel, strategy)
            })
            .collect()
    }

    #[test]
    fn batch_equals_sequential_at_every_thread_count() {
        let (pager, idx, pairs) = testbed(600, 41);
        let lookup: std::collections::HashMap<u32, GeneralizedTuple> =
            pairs.iter().cloned().collect();
        let fetch = move |_: &dyn PageReader, id: u32| lookup[&id].clone();
        let batch = mixed_batch(&pairs, 24);
        let exec = QueryExecutor::new(&idx, &pager, &fetch);
        let sequential: Vec<Vec<u32>> = batch
            .iter()
            .map(|(sel, st)| {
                idx.execute(&pager, sel, *st, &fetch)
                    .unwrap()
                    .ids()
                    .to_vec()
            })
            .collect();
        for threads in [1, 2, 4, 8] {
            let got = exec.run(&batch, threads);
            for (i, (g, want)) in got.iter().zip(&sequential).enumerate() {
                let g = g.as_ref().unwrap();
                assert_eq!(g.ids(), want.as_slice(), "query {i} at {threads} threads");
            }
        }
    }

    #[test]
    fn per_query_stats_are_isolated_under_concurrency() {
        let (pager, idx, pairs) = testbed(400, 43);
        let lookup: std::collections::HashMap<u32, GeneralizedTuple> =
            pairs.iter().cloned().collect();
        let fetch = move |_: &dyn PageReader, id: u32| lookup[&id].clone();
        let batch = mixed_batch(&pairs, 16);
        let exec = QueryExecutor::new(&idx, &pager, &fetch);
        // Sequential stats are the per-query truth; concurrent windows must
        // match exactly (TrackedReader isolates them from the other workers).
        let sequential: Vec<u64> = batch
            .iter()
            .map(|(sel, st)| {
                idx.execute(&pager, sel, *st, &fetch)
                    .unwrap()
                    .stats
                    .index_io
                    .reads
            })
            .collect();
        let got = exec.run(&batch, 8);
        for (i, (g, want)) in got.iter().zip(&sequential).enumerate() {
            let g = g.as_ref().unwrap();
            assert_eq!(g.stats.index_io.reads, *want, "index reads of query {i}");
            assert!(g.stats.index_io.reads > 0, "query {i} read no pages?");
        }
    }

    #[test]
    fn errors_are_reported_in_place() {
        let (pager, idx, pairs) = testbed(60, 47);
        let lookup: std::collections::HashMap<u32, GeneralizedTuple> =
            pairs.iter().cloned().collect();
        let fetch = move |_: &dyn PageReader, id: u32| lookup[&id].clone();
        let good = Selection::exist(HalfPlane::above(0.3, 0.0));
        let bad = Selection::exist(HalfPlane::above(0.123456, 0.0));
        let batch = vec![
            (good.clone(), Strategy::T2),
            (bad, Strategy::Restricted), // foreign slope: UnsupportedQuery
            (good, Strategy::T2),
        ];
        let exec = QueryExecutor::new(&idx, &pager, &fetch);
        let got = exec.run(&batch, 2);
        assert!(got[0].is_ok());
        assert!(matches!(got[1], Err(CdbError::UnsupportedQuery(_))));
        assert!(got[2].is_ok());
        assert_eq!(
            got[0].as_ref().unwrap().ids(),
            got[2].as_ref().unwrap().ids()
        );
    }

    #[test]
    fn empty_batch_and_excess_threads() {
        let (pager, idx, pairs) = testbed(30, 53);
        let lookup: std::collections::HashMap<u32, GeneralizedTuple> =
            pairs.iter().cloned().collect();
        let fetch = move |_: &dyn PageReader, id: u32| lookup[&id].clone();
        let exec = QueryExecutor::new(&idx, &pager, &fetch);
        assert!(exec.run(&[], 4).is_empty());
        let one = vec![(Selection::exist(HalfPlane::above(0.5, 1.0)), Strategy::Auto)];
        let got = exec.run(&one, 64); // workers clamp to batch size
        assert_eq!(got.len(), 1);
        assert!(got[0].is_ok());
    }
}
