//! Concurrent batch execution over a shared engine snapshot.
//!
//! The read path of the whole stack is `&self` over a
//! [`cdb_storage::PageReader`]: no access method mutates its structure, the
//! pager, or the tuple source during a query, and the planner's feedback
//! catalog is interior-mutable. A [`QueryExecutor`] exploits that by
//! fanning a batch of selections out over `std::thread::scope` workers
//! that all borrow the same [`ConstraintDb`] — no cloning, no locking on
//! the read path itself. Every query goes through the cost-based planner
//! ([`crate::plan::Planner`]) exactly as a standalone
//! [`ConstraintDb::query_with`] would, so per-query
//! [`crate::QueryStats`] carry the chosen method and its cost estimate,
//! and stay exact because each execution wraps the shared reader in its
//! own [`cdb_storage::TrackedReader`].
//!
//! The paper's experiments (Section 5) are sequential by construction —
//! page accesses are the metric, and those are identical here whether a
//! batch runs on one worker or eight. The executor changes only wall-clock
//! throughput, which the `throughput` binary of `cdb-bench` measures.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::db::{ConstraintDb, Snapshot};
use crate::error::CdbError;
use crate::query::{QueryResult, Selection, Strategy};

/// A read surface the executor can fan out over: anything that plans and
/// executes one selection from `&self`. Implemented by the live engine
/// (queries see its current state) and by [`Snapshot`] (queries see one
/// pinned epoch). `Sync` because workers share one engine across threads.
pub trait QueryEngine: Sync {
    /// Plans and executes one selection; semantics of
    /// [`ConstraintDb::query_with`].
    ///
    /// # Errors
    /// Whatever planning or execution surfaces — unknown relation,
    /// dimension mismatch, missing forced index, I/O.
    fn query_with(
        &self,
        relation: &str,
        sel: Selection,
        strategy: Strategy,
    ) -> Result<QueryResult, CdbError>;
}

impl QueryEngine for ConstraintDb {
    fn query_with(
        &self,
        relation: &str,
        sel: Selection,
        strategy: Strategy,
    ) -> Result<QueryResult, CdbError> {
        ConstraintDb::query_with(self, relation, sel, strategy)
    }
}

impl QueryEngine for Snapshot {
    fn query_with(
        &self,
        relation: &str,
        sel: Selection,
        strategy: Strategy,
    ) -> Result<QueryResult, CdbError> {
        Snapshot::query_with(self, relation, sel, strategy)
    }
}

/// Runs batches of selections across OS threads sharing one immutable
/// engine snapshot, each query individually planned.
///
/// ```
/// use cdb_core::exec::QueryExecutor;
/// use cdb_core::{ConstraintDb, DbConfig, Selection, SlopeSet, Strategy};
/// use cdb_geometry::parse::parse_tuple;
/// use cdb_geometry::HalfPlane;
///
/// let mut db = ConstraintDb::in_memory(DbConfig::paper_1999());
/// db.create_relation("r", 2).unwrap();
/// db.insert("r", parse_tuple("y >= 0 && y <= 1 && x >= 0 && x <= 1").unwrap()).unwrap();
/// db.insert("r", parse_tuple("y >= x && x >= 5").unwrap()).unwrap();
/// db.build_dual_index("r", SlopeSet::uniform_tan(3)).unwrap();
/// let batch = vec![
///     (Selection::exist(HalfPlane::above(0.25, 3.0)), Strategy::T2),
///     (Selection::all(HalfPlane::below(0.0, 2.0)), Strategy::Auto),
/// ];
/// let exec = QueryExecutor::new(&db, "r");
/// let results = exec.run(&batch, 2);
/// assert_eq!(results[0].as_ref().unwrap().ids(), &[1]);
/// assert_eq!(results[1].as_ref().unwrap().ids(), &[0]);
/// ```
pub struct QueryExecutor<'a> {
    db: &'a dyn QueryEngine,
    relation: &'a str,
}

impl<'a> QueryExecutor<'a> {
    /// An executor over one relation of an engine snapshot (the live
    /// [`ConstraintDb`] or a pinned [`Snapshot`]).
    pub fn new<D: QueryEngine>(db: &'a D, relation: &'a str) -> Self {
        QueryExecutor { db, relation }
    }

    /// Executes the batch on `threads` workers, returning per-query results
    /// positionally aligned with the input. `threads == 1` degenerates to
    /// sequential execution on the calling thread's scope.
    ///
    /// Workers claim queries from a shared cursor, so an expensive query
    /// never stalls the rest of the batch behind a fixed partition.
    pub fn run(
        &self,
        batch: &[(Selection, Strategy)],
        threads: usize,
    ) -> Vec<Result<QueryResult, CdbError>> {
        assert!(threads >= 1, "need at least one worker");
        let workers = threads.min(batch.len().max(1));
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<QueryResult, CdbError>>>> =
            batch.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= batch.len() {
                        break;
                    }
                    let (sel, strategy) = &batch[i];
                    let r = self.db.query_with(self.relation, sel.clone(), *strategy);
                    *slots[i].lock().expect("worker panicked") = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("worker panicked")
                    .expect("every query claimed exactly once")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DbConfig;
    use crate::plan::MethodKind;
    use crate::SlopeSet;
    use cdb_geometry::tuple::GeneralizedTuple;
    use cdb_geometry::HalfPlane;
    use cdb_workload::{DatasetSpec, ObjectSize, QueryGen, QueryKind};

    fn testbed(n: usize, seed: u64) -> (ConstraintDb, Vec<GeneralizedTuple>) {
        let mut db = ConstraintDb::in_memory(DbConfig::paper_1999());
        db.create_relation("r", 2).unwrap();
        let tuples = DatasetSpec::paper_1999(n, ObjectSize::Small, seed).generate();
        for t in &tuples {
            db.insert("r", t.clone()).unwrap();
        }
        db.build_dual_index("r", SlopeSet::uniform_tan(4)).unwrap();
        (db, tuples)
    }

    fn mixed_batch(tuples: &[GeneralizedTuple], n: usize) -> Vec<(Selection, Strategy)> {
        let mut qg = QueryGen::new(0xBA7C4);
        (0..n)
            .map(|i| {
                let kind = if i % 2 == 0 {
                    QueryKind::Exist
                } else {
                    QueryKind::All
                };
                let q = qg.calibrated(tuples, kind, 0.05 + 0.3 * (i % 3) as f64 / 2.0);
                let sel = match kind {
                    QueryKind::Exist => Selection::exist(q.halfplane),
                    QueryKind::All => Selection::all(q.halfplane),
                };
                let strategy = match i % 3 {
                    0 => Strategy::T1,
                    1 => Strategy::T2,
                    _ => Strategy::Auto,
                };
                (sel, strategy)
            })
            .collect()
    }

    #[test]
    fn batch_equals_sequential_at_every_thread_count() {
        let (db, tuples) = testbed(600, 41);
        let batch = mixed_batch(&tuples, 24);
        let exec = QueryExecutor::new(&db, "r");
        let sequential: Vec<Vec<u32>> = batch
            .iter()
            .map(|(sel, st)| db.query_with("r", sel.clone(), *st).unwrap().ids().to_vec())
            .collect();
        for threads in [1, 2, 4, 8] {
            let got = exec.run(&batch, threads);
            for (i, (g, want)) in got.iter().zip(&sequential).enumerate() {
                let g = g.as_ref().unwrap();
                assert_eq!(g.ids(), want.as_slice(), "query {i} at {threads} threads");
            }
        }
    }

    #[test]
    fn per_query_stats_are_isolated_under_concurrency() {
        let (db, tuples) = testbed(400, 43);
        // Forced strategies keep the plans deterministic regardless of what
        // the feedback catalog learns across executions.
        let batch: Vec<(Selection, Strategy)> = mixed_batch(&tuples, 16)
            .into_iter()
            .map(|(sel, _)| (sel, Strategy::T2))
            .collect();
        let exec = QueryExecutor::new(&db, "r");
        // Sequential stats are the per-query truth; concurrent windows must
        // match exactly (TrackedReader isolates them from the other workers).
        let sequential: Vec<u64> = batch
            .iter()
            .map(|(sel, st)| {
                db.query_with("r", sel.clone(), *st)
                    .unwrap()
                    .stats
                    .index_io
                    .reads
            })
            .collect();
        let got = exec.run(&batch, 8);
        for (i, (g, want)) in got.iter().zip(&sequential).enumerate() {
            let g = g.as_ref().unwrap();
            assert_eq!(g.stats.index_io.reads, *want, "index reads of query {i}");
            assert!(g.stats.index_io.reads > 0, "query {i} read no pages?");
            assert_eq!(g.stats.method, Some(MethodKind::T2), "planned method");
            assert!(g.stats.estimate.is_some(), "estimate recorded");
        }
    }

    #[test]
    fn errors_are_reported_in_place() {
        let (db, _tuples) = testbed(60, 47);
        let good = Selection::exist(HalfPlane::above(0.3, 0.0));
        let bad = Selection::exist(HalfPlane::above(0.123456, 0.0));
        let batch = vec![
            (good.clone(), Strategy::T2),
            (bad, Strategy::Restricted), // foreign slope: UnsupportedQuery
            (good, Strategy::T2),
        ];
        let exec = QueryExecutor::new(&db, "r");
        let got = exec.run(&batch, 2);
        assert!(got[0].is_ok());
        assert!(matches!(got[1], Err(CdbError::UnsupportedQuery(_))));
        assert!(got[2].is_ok());
        assert_eq!(
            got[0].as_ref().unwrap().ids(),
            got[2].as_ref().unwrap().ids()
        );
    }

    #[test]
    fn empty_batch_and_excess_threads() {
        let (db, _tuples) = testbed(30, 53);
        let exec = QueryExecutor::new(&db, "r");
        assert!(exec.run(&[], 4).is_empty());
        let one = vec![(Selection::exist(HalfPlane::above(0.5, 1.0)), Strategy::Auto)];
        let got = exec.run(&one, 64); // workers clamp to batch size
        assert_eq!(got.len(), 1);
        assert!(got[0].is_ok());
    }
}
