//! Typed write-ahead-log mutation records.
//!
//! Every mutating entry point of [`crate::db::ConstraintDb`] — DDL,
//! inserts/deletes, index builds — logs one [`WalRecord`] carrying exactly
//! the parameters needed to re-run the call. Replaying the same record
//! sequence over the same checkpointed base state reproduces the same
//! engine state bit-for-bit: in particular, tuple ids are deterministic
//! because `insert` assigns `slots.len()` and the slot table only grows.
//!
//! The encoding reuses the little-endian [`RecordWriter`]/[`RecordReader`]
//! pair behind the catalog: a tag byte, then the variant's fields. The
//! framing, CRC and LSN stamping live one layer down in
//! [`cdb_storage::wal`] — this module only sees payload bytes. Decoding
//! never panics: every invariant a constructor would `assert!` (slope
//! ordering, simplex coverage, finite floats) is checked first and
//! surfaced as [`CdbError::CorruptRecord`] with the [`WAL_RECORD`]
//! sentinel, which replay treats as the end of the usable log.

use cdb_geometry::tuple::GeneralizedTuple;
use cdb_storage::{RecordReader, RecordWriter};

use crate::ddim::SlopePoints;
use crate::error::{CdbError, WAL_RECORD};
use crate::slopes::SlopeSet;

fn corrupt() -> CdbError {
    CdbError::CorruptRecord(WAL_RECORD)
}

const TAG_CREATE_RELATION: u8 = 1;
const TAG_DROP_RELATION: u8 = 2;
const TAG_INSERT: u8 = 3;
const TAG_DELETE: u8 = 4;
const TAG_BUILD_DUAL: u8 = 5;
const TAG_BUILD_DUAL_D: u8 = 6;
const TAG_BUILD_RPLUS: u8 = 7;
const TAG_TIGHTEN_INDEX: u8 = 8;
const TAG_SET_PARTITION: u8 = 9;

/// One logged mutation, carrying the parameters of the engine call that
/// produced it.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum WalRecord {
    /// `create_relation(name, dim)`.
    CreateRelation { name: String, dim: u32 },
    /// `drop_relation(name)`.
    DropRelation { name: String },
    /// `insert(relation, tuple)`.
    Insert {
        relation: String,
        tuple: GeneralizedTuple,
    },
    /// `delete(relation, id)`.
    Delete { relation: String, id: u32 },
    /// `build_dual_index(relation, slopes)`.
    BuildDual { relation: String, slopes: SlopeSet },
    /// `build_dual_index_d(relation, points)`.
    BuildDualD {
        relation: String,
        points: SlopePoints,
    },
    /// `build_rplus_index(relation, fill)`.
    BuildRPlus { relation: String, fill: f64 },
    /// `tighten_index(relation)`.
    TightenIndex { relation: String },
    /// `set_partition(PartitionSpec { shards, shard, seed })` — logged so
    /// crash replay (and a follower applying the shipped stream) installs
    /// the spec before re-running any insert, keeping id allocation
    /// deterministic.
    SetPartition { shards: u32, shard: u32, seed: u64 },
}

impl WalRecord {
    /// Serializes the record for the log.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut w = RecordWriter::new();
        match self {
            WalRecord::CreateRelation { name, dim } => {
                w.put_u8(TAG_CREATE_RELATION);
                w.put_str(name);
                w.put_u32(*dim);
            }
            WalRecord::DropRelation { name } => {
                w.put_u8(TAG_DROP_RELATION);
                w.put_str(name);
            }
            WalRecord::Insert { relation, tuple } => {
                w.put_u8(TAG_INSERT);
                w.put_str(relation);
                w.put_bytes(&tuple.encode());
            }
            WalRecord::Delete { relation, id } => {
                w.put_u8(TAG_DELETE);
                w.put_str(relation);
                w.put_u32(*id);
            }
            WalRecord::BuildDual { relation, slopes } => {
                w.put_u8(TAG_BUILD_DUAL);
                w.put_str(relation);
                let s = slopes.as_slice();
                w.put_u32(s.len() as u32);
                for &v in s {
                    w.put_f64(v);
                }
            }
            WalRecord::BuildDualD { relation, points } => {
                w.put_u8(TAG_BUILD_DUAL_D);
                w.put_str(relation);
                w.put_u32(points.dim() as u32);
                w.put_u32(points.len() as u32);
                for p in points.as_slice() {
                    for &c in p {
                        w.put_f64(c);
                    }
                }
                match points.grid_axes() {
                    Some(axes) => {
                        w.put_u8(1);
                        for axis in axes {
                            w.put_u32(axis.len() as u32);
                            for &c in axis {
                                w.put_f64(c);
                            }
                        }
                    }
                    None => w.put_u8(0),
                }
            }
            WalRecord::BuildRPlus { relation, fill } => {
                w.put_u8(TAG_BUILD_RPLUS);
                w.put_str(relation);
                w.put_f64(*fill);
            }
            WalRecord::TightenIndex { relation } => {
                w.put_u8(TAG_TIGHTEN_INDEX);
                w.put_str(relation);
            }
            WalRecord::SetPartition {
                shards,
                shard,
                seed,
            } => {
                w.put_u8(TAG_SET_PARTITION);
                w.put_u32(*shards);
                w.put_u32(*shard);
                w.put_u64(*seed);
            }
        }
        w.into_bytes()
    }

    /// Deserializes a logged record, validating every constructor
    /// invariant so replay can never panic on bad bytes.
    ///
    /// # Errors
    /// [`CdbError::CorruptRecord`] (id [`WAL_RECORD`]) on an unknown tag,
    /// truncation, trailing garbage, or values a constructor would refuse.
    pub(crate) fn decode(bytes: &[u8]) -> Result<WalRecord, CdbError> {
        let mut r = RecordReader::new(bytes);
        let on_err = |_| corrupt();
        let rec = match r.get_u8().map_err(on_err)? {
            TAG_CREATE_RELATION => WalRecord::CreateRelation {
                name: r.get_str().map_err(on_err)?.to_string(),
                dim: r.get_u32().map_err(on_err)?,
            },
            TAG_DROP_RELATION => WalRecord::DropRelation {
                name: r.get_str().map_err(on_err)?.to_string(),
            },
            TAG_INSERT => {
                let relation = r.get_str().map_err(on_err)?.to_string();
                let tuple =
                    GeneralizedTuple::decode(r.get_bytes().map_err(on_err)?).ok_or(corrupt())?;
                WalRecord::Insert { relation, tuple }
            }
            TAG_DELETE => WalRecord::Delete {
                relation: r.get_str().map_err(on_err)?.to_string(),
                id: r.get_u32().map_err(on_err)?,
            },
            TAG_BUILD_DUAL => {
                let relation = r.get_str().map_err(on_err)?.to_string();
                let k = r.get_u32().map_err(on_err)? as usize;
                if k < 2 {
                    return Err(corrupt());
                }
                let mut slopes = Vec::with_capacity(k.min(r.remaining() / 8));
                for _ in 0..k {
                    let s = r.get_f64().map_err(on_err)?;
                    // Ascending, distinct and finite, or SlopeSet::new
                    // would panic.
                    if !s.is_finite() || slopes.last().is_some_and(|&prev| s <= prev) {
                        return Err(corrupt());
                    }
                    slopes.push(s);
                }
                WalRecord::BuildDual {
                    relation,
                    slopes: SlopeSet::new(slopes),
                }
            }
            TAG_BUILD_DUAL_D => {
                let relation = r.get_str().map_err(on_err)?.to_string();
                let dim = r.get_u32().map_err(on_err)? as usize;
                if dim < 2 {
                    return Err(corrupt());
                }
                let k = r.get_u32().map_err(on_err)? as usize;
                if k < dim {
                    return Err(corrupt()); // SlopePoints needs a covering simplex
                }
                let mut points = Vec::with_capacity(k.min(r.remaining() / 8));
                for _ in 0..k {
                    let mut p = Vec::with_capacity(dim - 1);
                    for _ in 0..dim - 1 {
                        let c = r.get_f64().map_err(on_err)?;
                        if !c.is_finite() {
                            return Err(corrupt());
                        }
                        p.push(c);
                    }
                    points.push(p);
                }
                let grid_axes = match r.get_u8().map_err(on_err)? {
                    0 => None,
                    1 => {
                        let mut axes = Vec::with_capacity(dim - 1);
                        for _ in 0..dim - 1 {
                            let n = r.get_u32().map_err(on_err)? as usize;
                            let mut axis = Vec::with_capacity(n.min(r.remaining() / 8));
                            for _ in 0..n {
                                let c = r.get_f64().map_err(on_err)?;
                                if !c.is_finite() {
                                    return Err(corrupt());
                                }
                                axis.push(c);
                            }
                            axes.push(axis);
                        }
                        Some(axes)
                    }
                    _ => return Err(corrupt()),
                };
                WalRecord::BuildDualD {
                    relation,
                    points: SlopePoints::from_parts(dim, points, grid_axes),
                }
            }
            TAG_BUILD_RPLUS => {
                let relation = r.get_str().map_err(on_err)?.to_string();
                let fill = r.get_f64().map_err(on_err)?;
                if !fill.is_finite() {
                    return Err(corrupt());
                }
                WalRecord::BuildRPlus { relation, fill }
            }
            TAG_TIGHTEN_INDEX => WalRecord::TightenIndex {
                relation: r.get_str().map_err(on_err)?.to_string(),
            },
            TAG_SET_PARTITION => {
                let shards = r.get_u32().map_err(on_err)?;
                let shard = r.get_u32().map_err(on_err)?;
                let seed = r.get_u64().map_err(on_err)?;
                // PartitionSpec::new would refuse these; reject them here.
                if shards == 0 || shard >= shards {
                    return Err(corrupt());
                }
                WalRecord::SetPartition {
                    shards,
                    shard,
                    seed,
                }
            }
            _ => return Err(corrupt()),
        };
        if r.remaining() != 0 {
            return Err(corrupt()); // trailing garbage
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_geometry::{LinearConstraint, RelOp};

    fn box_tuple() -> GeneralizedTuple {
        GeneralizedTuple::new(vec![
            LinearConstraint::new(vec![1.0, 0.0], 0.0, RelOp::Ge),
            LinearConstraint::new(vec![1.0, 0.0], -2.0, RelOp::Le),
            LinearConstraint::new(vec![0.0, 1.0], 0.0, RelOp::Ge),
            LinearConstraint::new(vec![0.0, 1.0], -2.0, RelOp::Le),
        ])
    }

    #[test]
    fn every_variant_round_trips() {
        let records = vec![
            WalRecord::CreateRelation {
                name: "r".into(),
                dim: 2,
            },
            WalRecord::DropRelation { name: "r".into() },
            WalRecord::Insert {
                relation: "r".into(),
                tuple: box_tuple(),
            },
            WalRecord::Delete {
                relation: "r".into(),
                id: 7,
            },
            WalRecord::BuildDual {
                relation: "r".into(),
                slopes: SlopeSet::uniform_tan(6),
            },
            WalRecord::BuildDualD {
                relation: "r".into(),
                points: SlopePoints::grid(3, 2, 1.0),
            },
            WalRecord::BuildDualD {
                relation: "r".into(),
                points: SlopePoints::new(3, vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]]),
            },
            WalRecord::BuildRPlus {
                relation: "r".into(),
                fill: 0.8,
            },
            WalRecord::TightenIndex {
                relation: "r".into(),
            },
            WalRecord::SetPartition {
                shards: 4,
                shard: 2,
                seed: 0xC0FFEE,
            },
        ];
        for rec in records {
            let bytes = rec.encode();
            assert_eq!(WalRecord::decode(&bytes).unwrap(), rec, "{rec:?}");
        }
    }

    #[test]
    fn decode_rejects_garbage_without_panicking() {
        let is_corrupt = |b: &[u8]| {
            matches!(
                WalRecord::decode(b),
                Err(CdbError::CorruptRecord(WAL_RECORD))
            )
        };
        assert!(is_corrupt(&[]));
        assert!(is_corrupt(&[0xFF]));
        assert!(is_corrupt(b"\x01truncated"));
        // Trailing garbage after a valid record.
        let mut bytes = WalRecord::DropRelation { name: "r".into() }.encode();
        bytes.push(0);
        assert!(is_corrupt(&bytes));
        // Non-ascending slopes would make SlopeSet::new panic.
        let mut w = RecordWriter::new();
        w.put_u8(TAG_BUILD_DUAL);
        w.put_str("r");
        w.put_u32(2);
        w.put_f64(1.0);
        w.put_f64(0.5);
        assert!(is_corrupt(&w.into_bytes()));
        // Too few points for a covering simplex.
        let mut w = RecordWriter::new();
        w.put_u8(TAG_BUILD_DUAL_D);
        w.put_str("r");
        w.put_u32(3);
        w.put_u32(2);
        assert!(is_corrupt(&w.into_bytes()));
        // Non-finite fill factor.
        let mut w = RecordWriter::new();
        w.put_u8(TAG_BUILD_RPLUS);
        w.put_str("r");
        w.put_f64(f64::NAN);
        assert!(is_corrupt(&w.into_bytes()));
        // Out-of-range shard index (would make PartitionSpec::new refuse).
        let mut w = RecordWriter::new();
        w.put_u8(TAG_SET_PARTITION);
        w.put_u32(2);
        w.put_u32(2);
        w.put_u64(1);
        assert!(is_corrupt(&w.into_bytes()));
    }
}
