//! Query model: selections, strategies, results and cost accounting.

use cdb_geometry::constraint::RelOp;
use cdb_geometry::halfplane::HalfPlane;
use cdb_storage::IoStats;

/// ALL (containment) or EXIST (intersection) selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SelectionKind {
    /// Retrieve tuples whose extension is contained in the query half-plane.
    All,
    /// Retrieve tuples whose extension intersects the query half-plane.
    Exist,
}

/// A half-plane selection.
#[derive(Clone, Debug, PartialEq)]
pub struct Selection {
    /// Selection type.
    pub kind: SelectionKind,
    /// The query half-plane.
    pub halfplane: HalfPlane,
}

impl Selection {
    /// `ALL(q)` — containment selection.
    pub fn all(halfplane: HalfPlane) -> Self {
        Selection {
            kind: SelectionKind::All,
            halfplane,
        }
    }

    /// `EXIST(q)` — intersection selection.
    pub fn exist(halfplane: HalfPlane) -> Self {
        Selection {
            kind: SelectionKind::Exist,
            halfplane,
        }
    }
}

/// Which query technique of the paper to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Section 3: exact single-tree search; the query slope must belong to
    /// `S` (errors otherwise).
    Restricted,
    /// Section 4.1: two app-queries with slopes in `S`; duplicates possible,
    /// false hits removed by refinement.
    T1,
    /// Sections 4.2–4.3: single handicap-guided search, duplicate-free;
    /// falls back to T1 in the wrapped-slope cases, which the paper leaves
    /// to "similar handling".
    T2,
    /// Restricted when the slope is in `S`, otherwise T2 (the paper's
    /// intended deployment).
    Auto,
    /// Sequential scan with exact predicates (the no-index baseline and
    /// correctness oracle).
    Scan,
    /// The packed R⁺-tree over tuple bounding boxes (Section 5's baseline
    /// structure), served through the planner's `RPlusAccess` adapter.
    RPlus,
}

/// Which neighbour of a slope a strip extends toward.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// Toward the previous (smaller) slope in `S`.
    Prev,
    /// Toward the next (larger) slope in `S`.
    Next,
}

/// Sweep/tree selection shared by all techniques (the table of Section 3).
///
/// Returns `(use_up_tree, sweep_upward)`:
/// * `ALL(q(≥))`   → `B^down`, upward;
/// * `ALL(q(≤))`   → `B^up`, downward;
/// * `EXIST(q(≥))` → `B^up`, upward;
/// * `EXIST(q(≤))` → `B^down`, downward.
pub fn tree_and_direction(kind: SelectionKind, op: RelOp) -> (bool, bool) {
    match (kind, op) {
        (SelectionKind::All, RelOp::Ge) => (false, true),
        (SelectionKind::All, RelOp::Le) => (true, false),
        (SelectionKind::Exist, RelOp::Ge) => (true, true),
        (SelectionKind::Exist, RelOp::Le) => (false, false),
    }
}

/// Cost and quality accounting for one query execution.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QueryStats {
    /// Page accesses in index structures (tree descents + leaf sweeps).
    pub index_io: IoStats,
    /// Page accesses fetching candidate tuples for refinement.
    pub heap_io: IoStats,
    /// Candidate tuples produced by the index phase (before refinement),
    /// duplicates included.
    pub candidates: u64,
    /// Candidates that appeared more than once (T1's duplication problem;
    /// always 0 for T2 and Restricted).
    pub duplicates: u64,
    /// Candidates discarded by the exact refinement step.
    pub false_hits: u64,
    /// Candidates accepted without fetching the tuple (exact-by-key in the
    /// restricted technique).
    pub accepted_by_key: u64,
    /// The access method that actually executed the query, when the
    /// planner chose it (`None` on the legacy direct-execution paths).
    pub method: Option<crate::plan::MethodKind>,
    /// The planner's pre-execution cost estimate, recorded next to the
    /// actuals above so estimate-vs-actual accuracy is always observable.
    pub estimate: Option<crate::plan::CostEstimate>,
}

impl QueryStats {
    /// Total page accesses charged to the query.
    pub fn total_accesses(&self) -> u64 {
        self.index_io.accesses() + self.heap_io.accesses()
    }
}

/// The outcome of a query: matching tuple ids plus cost accounting.
#[derive(Clone, Debug, Default)]
pub struct QueryResult {
    ids: Vec<u32>,
    /// Execution statistics.
    pub stats: QueryStats,
}

impl QueryResult {
    /// Builds a result, sorting and asserting uniqueness of ids.
    pub fn new(mut ids: Vec<u32>, stats: QueryStats) -> Self {
        ids.sort_unstable();
        debug_assert!(ids.windows(2).all(|w| w[0] != w[1]), "duplicate result id");
        QueryResult { ids, stats }
    }

    /// Matching tuple ids, ascending.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Number of matches.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when nothing matched.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_direction_table() {
        use RelOp::*;
        use SelectionKind::*;
        assert_eq!(tree_and_direction(All, Ge), (false, true));
        assert_eq!(tree_and_direction(All, Le), (true, false));
        assert_eq!(tree_and_direction(Exist, Ge), (true, true));
        assert_eq!(tree_and_direction(Exist, Le), (false, false));
    }

    #[test]
    fn result_sorts_ids() {
        let r = QueryResult::new(vec![5, 1, 3], QueryStats::default());
        assert_eq!(r.ids(), &[1, 3, 5]);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn stats_total() {
        let mut s = QueryStats::default();
        s.index_io.reads = 7;
        s.heap_io.reads = 3;
        s.heap_io.writes = 1;
        assert_eq!(s.total_accesses(), 11);
    }

    #[test]
    fn selection_constructors() {
        let q = HalfPlane::above(1.0, 0.0);
        assert_eq!(Selection::all(q.clone()).kind, SelectionKind::All);
        assert_eq!(Selection::exist(q).kind, SelectionKind::Exist);
    }
}
