//! Deterministic pseudo-random numbers for workload generation and
//! randomized tests.
//!
//! The workspace builds hermetically — no external crates — so this module
//! provides the small slice of a PRNG API the generators need: a seedable
//! generator ([`StdRng`]), uniform ranges ([`StdRng::gen_range`]), Bernoulli
//! draws ([`StdRng::gen_bool`]) and raw words ([`StdRng::gen`]).
//!
//! The generator is **xoshiro256\*\*** (Blackman & Vigna), seeded through
//! splitmix64 so that small consecutive seeds yield uncorrelated streams.
//! It is deliberately *not* cryptographic; it is fast, has a 2²⁵⁶−1 period
//! and passes BigCrush, which is more than enough for seeded experiment
//! reproducibility.
//!
//! Streams are stable across platforms and releases: tests may bake in
//! seed-dependent expectations (though asserting stream-independent
//! properties is preferred).

use std::ops::{Range, RangeInclusive};

/// Seedable deterministic generator (xoshiro256**).
///
/// The name matches the `rand` crate type the workload generators were
/// originally written against, keeping call sites unchanged.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Creates a generator from a 64-bit seed via splitmix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniformly random value of `T` (whole domain).
    pub fn gen<T: Fill>(&mut self) -> T {
        T::fill(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.next_f64() < p
    }

    /// Uniform draw from a (half-open or inclusive) range.
    ///
    /// # Panics
    /// Panics on an empty range.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..=i);
            xs.swap(i, j);
        }
    }
}

/// Types drawable uniformly over their whole domain via [`StdRng::gen`].
pub trait Fill {
    /// Draws one value.
    fn fill(rng: &mut StdRng) -> Self;
}

impl Fill for u64 {
    fn fill(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Fill for u32 {
    fn fill(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Fill for bool {
    fn fill(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Fill for f64 {
    fn fill(rng: &mut StdRng) -> Self {
        rng.next_f64()
    }
}

/// Ranges samplable via [`StdRng::gen_range`].
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draws one value from the range.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range {self:?}");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        // Uniform on [lo, hi]; hi itself is hit only up to rounding, which
        // matches the continuous-distribution semantics closely enough.
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range {self:?}");
                let span = (self.end - self.start) as u64;
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range {lo}..={hi}");
                if lo == hi {
                    return lo;
                }
                let span = (hi - lo) as u64 + 1;
                lo + (reject_sample(rng, span) as $t)
            }
        }
    )*};
}

int_ranges!(usize, u64, u32, i64);

/// Uniform draw in `[0, span)` by rejection, avoiding modulo bias.
fn reject_sample(rng: &mut StdRng, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} outside [0,1)");
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(-3.0..5.0f64);
            assert!((-3.0..5.0).contains(&x));
            let y = r.gen_range(0.1..=0.2f64);
            assert!((0.1..=0.2).contains(&y));
            let n = r.gen_range(3..=6usize);
            assert!((3..=6).contains(&n));
            let m = r.gen_range(0..10u64);
            assert!(m < 10);
        }
        assert_eq!(r.gen_range(5..=5usize), 5, "degenerate inclusive range");
    }

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..4 drawn in 1000 tries");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "observed {frac}");
    }

    #[test]
    fn mean_of_uniform_is_centered() {
        let mut r = StdRng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(9);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "shuffled order differs");
    }
}
