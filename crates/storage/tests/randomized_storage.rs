//! Randomized tests of the storage substrate: heap files against a
//! `HashMap` oracle, and the buffer pool's transparency over a raw pager.
//!
//! Deterministic drop-in for the former proptest suite: each property runs
//! over a sweep of fixed seeds, so failures reproduce exactly.

use std::collections::HashMap;

use cdb_prng::StdRng;
use cdb_storage::{BufferPool, HeapFile, MemPager, PageReader, Pager, RecordId};

#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<u8>),
    Delete(usize),
    Get(usize),
}

fn random_ops(rng: &mut StdRng, count: usize) -> Vec<Op> {
    (0..count)
        .map(|_| match rng.gen_range(0..6u32) {
            0..=2 => {
                let len = rng.gen_range(1..60usize);
                Op::Insert((0..len).map(|_| rng.gen::<u32>() as u8).collect())
            }
            3 => Op::Delete(rng.gen::<u64>() as usize),
            _ => Op::Get(rng.gen::<u64>() as usize),
        })
        .collect()
}

#[test]
fn heap_matches_hashmap() {
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_ops = rng.gen_range(1..200usize);
        let ops = random_ops(&mut rng, n_ops);
        let mut pager = MemPager::new(128);
        let mut heap = HeapFile::new(&mut pager);
        let mut ids: Vec<RecordId> = Vec::new();
        let mut oracle: HashMap<RecordId, Option<Vec<u8>>> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(data) => {
                    let id = heap.insert(&mut pager, &data).unwrap();
                    ids.push(id);
                    oracle.insert(id, Some(data));
                }
                Op::Delete(i) if !ids.is_empty() => {
                    let id = ids[i % ids.len()];
                    let was_live = oracle[&id].is_some();
                    assert_eq!(
                        heap.delete(&mut pager, id).unwrap(),
                        was_live,
                        "seed {seed}"
                    );
                    oracle.insert(id, None);
                }
                Op::Get(i) if !ids.is_empty() => {
                    let id = ids[i % ids.len()];
                    assert_eq!(&heap.get(&pager, id).unwrap(), &oracle[&id], "seed {seed}");
                }
                _ => {}
            }
        }
        // Scan returns exactly the live set.
        let mut live: Vec<(RecordId, Vec<u8>)> = oracle
            .iter()
            .filter_map(|(id, v)| v.clone().map(|v| (*id, v)))
            .collect();
        live.sort_by_key(|(id, _)| *id);
        let mut scanned = heap.scan(&pager).unwrap();
        scanned.sort_by_key(|(id, _)| *id);
        assert_eq!(scanned, live, "seed {seed}");
        // Batched get agrees with singles.
        let batch = heap.get_many(&pager, &ids).unwrap();
        for (id, got) in ids.iter().zip(batch) {
            assert_eq!(&got, &oracle[id], "seed {seed}");
        }
    }
}

/// A buffer pool of any capacity is observably identical to the raw pager
/// (contents), while never increasing physical I/O.
#[test]
fn buffer_pool_is_transparent() {
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let capacity = rng.gen_range(1..16usize);
        let n_pages = 12;
        let n_writes = rng.gen_range(1..120usize);
        let writes: Vec<(usize, u8)> = (0..n_writes)
            .map(|_| (rng.gen_range(0..n_pages), rng.gen::<u32>() as u8))
            .collect();
        let mut raw = MemPager::new(64);
        let mut pooled = BufferPool::new(MemPager::new(64), capacity);
        let raw_ids: Vec<_> = (0..n_pages).map(|_| raw.allocate().unwrap()).collect();
        let pool_ids: Vec<_> = (0..n_pages).map(|_| pooled.allocate().unwrap()).collect();
        assert_eq!(&raw_ids, &pool_ids);
        for &(page, byte) in &writes {
            let data = vec![byte; 64];
            raw.write(raw_ids[page], &data).unwrap();
            pooled.write(pool_ids[page], &data).unwrap();
        }
        pooled.flush().unwrap();
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        for page in 0..n_pages {
            raw.read(raw_ids[page], &mut a).unwrap();
            pooled.read(pool_ids[page], &mut b).unwrap();
            assert_eq!(&a, &b, "page {page} differs (seed {seed})");
        }
        // Physical reads through the pool never exceed logical reads.
        assert!(pooled.physical_stats().reads <= pooled.stats().reads);
    }
}

/// FilePager and MemPager behave identically for the same op sequence.
#[test]
fn file_pager_matches_mem_pager() {
    for seed in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let n_writes = rng.gen_range(1..60usize);
        let writes: Vec<(usize, u8)> = (0..n_writes)
            .map(|_| (rng.gen_range(0..8usize), rng.gen::<u32>() as u8))
            .collect();
        let path = std::env::temp_dir().join(format!("cdb_rand_{}_{seed}", std::process::id()));
        {
            let mut fp = cdb_storage::file::FilePager::create(&path, 64).unwrap();
            let mut mp = MemPager::new(64);
            let fids: Vec<_> = (0..8).map(|_| fp.allocate().unwrap()).collect();
            let mids: Vec<_> = (0..8).map(|_| mp.allocate().unwrap()).collect();
            for &(page, byte) in &writes {
                fp.write(fids[page], &[byte; 64]).unwrap();
                mp.write(mids[page], &[byte; 64]).unwrap();
            }
            let mut a = vec![0u8; 64];
            let mut b = vec![0u8; 64];
            for i in 0..8 {
                fp.read(fids[i], &mut a).unwrap();
                mp.read(mids[i], &mut b).unwrap();
                assert_eq!(&a, &b, "seed {seed}");
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}
