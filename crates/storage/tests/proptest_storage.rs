//! Property tests of the storage substrate: heap files against a `HashMap`
//! oracle, and the buffer pool's transparency over a raw pager.

use proptest::prelude::*;
use std::collections::HashMap;

use cdb_storage::{BufferPool, HeapFile, MemPager, Pager, RecordId};

#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<u8>),
    Delete(usize),
    Get(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => prop::collection::vec(any::<u8>(), 1..60).prop_map(Op::Insert),
        1 => any::<usize>().prop_map(Op::Delete),
        2 => any::<usize>().prop_map(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn heap_matches_hashmap(ops in prop::collection::vec(arb_op(), 1..200)) {
        let mut pager = MemPager::new(128);
        let mut heap = HeapFile::new(&mut pager);
        let mut ids: Vec<RecordId> = Vec::new();
        let mut oracle: HashMap<RecordId, Option<Vec<u8>>> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(data) => {
                    let id = heap.insert(&mut pager, &data);
                    ids.push(id);
                    oracle.insert(id, Some(data));
                }
                Op::Delete(i) if !ids.is_empty() => {
                    let id = ids[i % ids.len()];
                    let was_live = oracle[&id].is_some();
                    prop_assert_eq!(heap.delete(&mut pager, id), was_live);
                    oracle.insert(id, None);
                }
                Op::Get(i) if !ids.is_empty() => {
                    let id = ids[i % ids.len()];
                    prop_assert_eq!(&heap.get(&mut pager, id), &oracle[&id]);
                }
                _ => {}
            }
        }
        // Scan returns exactly the live set.
        let mut live: Vec<(RecordId, Vec<u8>)> = oracle
            .iter()
            .filter_map(|(id, v)| v.clone().map(|v| (*id, v)))
            .collect();
        live.sort_by_key(|(id, _)| *id);
        let mut scanned = heap.scan(&mut pager);
        scanned.sort_by_key(|(id, _)| *id);
        prop_assert_eq!(scanned, live);
        // Batched get agrees with singles.
        let batch = heap.get_many(&mut pager, &ids);
        for (id, got) in ids.iter().zip(batch) {
            prop_assert_eq!(&got, &oracle[id]);
        }
    }

    /// A buffer pool of any capacity is observably identical to the raw
    /// pager (contents), while never increasing physical I/O.
    #[test]
    fn buffer_pool_is_transparent(
        writes in prop::collection::vec((0usize..12, any::<u8>()), 1..120),
        capacity in 1usize..16,
    ) {
        let mut raw = MemPager::new(64);
        let mut pooled = BufferPool::new(MemPager::new(64), capacity);
        let n_pages = 12;
        let raw_ids: Vec<_> = (0..n_pages).map(|_| raw.allocate()).collect();
        let pool_ids: Vec<_> = (0..n_pages).map(|_| pooled.allocate()).collect();
        prop_assert_eq!(&raw_ids, &pool_ids);
        for &(page, byte) in &writes {
            let data = vec![byte; 64];
            raw.write(raw_ids[page], &data);
            pooled.write(pool_ids[page], &data);
        }
        pooled.flush();
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        for page in 0..n_pages {
            raw.read(raw_ids[page], &mut a);
            pooled.read(pool_ids[page], &mut b);
            prop_assert_eq!(&a, &b, "page {} differs", page);
        }
        // Physical reads through the pool never exceed logical reads.
        prop_assert!(pooled.physical_stats().reads <= pooled.stats().reads);
    }

    /// FilePager and MemPager behave identically for the same op sequence.
    #[test]
    fn file_pager_matches_mem_pager(
        writes in prop::collection::vec((0usize..8, any::<u8>()), 1..60),
    ) {
        let path = std::env::temp_dir().join(format!(
            "cdb_prop_{}_{}",
            std::process::id(),
            writes.len() * 31 + writes.first().map(|w| w.0).unwrap_or(0)
        ));
        {
            let mut fp = cdb_storage::file::FilePager::create(&path, 64).unwrap();
            let mut mp = MemPager::new(64);
            let fids: Vec<_> = (0..8).map(|_| fp.allocate()).collect();
            let mids: Vec<_> = (0..8).map(|_| mp.allocate()).collect();
            for &(page, byte) in &writes {
                fp.write(fids[page], &[byte; 64]);
                mp.write(mids[page], &[byte; 64]);
            }
            let mut a = vec![0u8; 64];
            let mut b = vec![0u8; 64];
            for i in 0..8 {
                fp.read(fids[i], &mut a);
                mp.read(mids[i], &mut b);
                prop_assert_eq!(&a, &b);
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}
