//! Fuzz-style seeded regression suite for the streaming frame codec.
//!
//! The wire path feeds `read_frame` bytes straight off a socket, so a
//! malicious or truncated peer must never be able to provoke a panic or an
//! unbounded allocation — every mangled input has to come back as a
//! `FrameError`. Deterministic seeds stand in for a fuzzer: each failure
//! reproduces exactly.

use std::io::Cursor;

use cdb_prng::StdRng;
use cdb_storage::{read_frame, write_frame, CodecError, FrameError, DEFAULT_MAX_FRAME};

const FUZZ_MAX_FRAME: usize = 1 << 20;

fn random_payload(rng: &mut StdRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len);
    (0..len).map(|_| rng.gen::<u32>() as u8).collect()
}

#[test]
fn random_frame_streams_round_trip() {
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let frames: Vec<Vec<u8>> = (0..rng.gen_range(1..8usize))
            .map(|_| random_payload(&mut rng, 8_000))
            .collect();
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut r = Cursor::new(wire);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(
                &read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap(),
                f,
                "seed {seed} frame {i}"
            );
        }
        assert!(
            matches!(
                read_frame(&mut r, DEFAULT_MAX_FRAME),
                Err(FrameError::Closed)
            ),
            "seed {seed}: stream end must report Closed"
        );
    }
}

#[test]
fn mangled_streams_never_panic_or_overallocate() {
    for seed in 0..96u64 {
        let mut rng = StdRng::seed_from_u64(0xC0DEC ^ seed);
        let mut wire = Vec::new();
        for f in (0..rng.gen_range(1..4usize)).map(|_| random_payload(&mut rng, 2_000)) {
            write_frame(&mut wire, &f).unwrap();
        }
        // Mangle: truncate, bit-flip, or splice random garbage (which can
        // forge a huge length prefix).
        match rng.gen_range(0..3u32) {
            0 => {
                let cut = rng.gen_range(0..wire.len());
                wire.truncate(cut);
            }
            1 => {
                let pos = rng.gen_range(0..wire.len());
                wire[pos] ^= 1 << rng.gen_range(0..8u32);
            }
            _ => {
                let pos = rng.gen_range(0..wire.len());
                let junk: Vec<u8> = (0..rng.gen_range(1..64usize))
                    .map(|_| rng.gen::<u32>() as u8)
                    .collect();
                wire.splice(pos..pos, junk);
            }
        }
        // Drain the stream: every frame must either decode or fail cleanly,
        // and the reader must terminate (Closed / Corrupt), never hang on a
        // forged length it cannot satisfy.
        let mut r = Cursor::new(&wire);
        loop {
            match read_frame(&mut r, FUZZ_MAX_FRAME) {
                Ok(payload) => assert!(payload.len() < FUZZ_MAX_FRAME, "seed {seed}"),
                Err(FrameError::Closed) => break,
                Err(FrameError::Corrupt(_)) => break,
                Err(FrameError::Io(e)) => panic!("seed {seed}: unexpected io error {e}"),
            }
        }
    }
}

#[test]
fn forged_length_prefix_cannot_allocate_past_limit() {
    // Adversarial prefixes: u32::MAX, just over the limit, exactly at the
    // limit but with no payload behind it.
    for forged in [u32::MAX, (FUZZ_MAX_FRAME as u32) + 1, FUZZ_MAX_FRAME as u32] {
        let mut wire = Vec::new();
        wire.extend_from_slice(&forged.to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        let mut r = Cursor::new(&wire);
        match read_frame(&mut r, FUZZ_MAX_FRAME) {
            Err(FrameError::Corrupt(CodecError::Invalid(_)))
            | Err(FrameError::Corrupt(CodecError::Truncated)) => {}
            other => panic!("forged len {forged}: unexpected {other:?}"),
        }
    }
}
