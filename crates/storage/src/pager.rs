//! The pager abstraction and the in-memory implementation.
//!
//! The interface is split into a read half ([`PageReader`]) and a write half
//! ([`Pager`]). Reads take `&self` — I/O accounting uses interior mutability
//! — so an immutable index can be shared across query threads; structure
//! *modification* still requires `&mut` exclusivity through [`Pager`].
//!
//! # Errors vs. invariants
//!
//! Every operation that can touch a device returns [`std::io::Result`]: a
//! failed read, a failed write, a checksum mismatch on a durable pager, or
//! an injected fault from [`FaultPager`](crate::fault::FaultPager) all
//! surface as errors the caller must handle. *Contract violations* — a
//! wrong-sized buffer, an access to a page id that was never allocated —
//! remain panics: they are bugs in the calling structure, not conditions a
//! production system can encounter on a healthy code path, and turning them
//! into errors would only teach callers to ignore them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::epoch::{EpochHub, EpochStats, PinGuard, SnapshotReader};
use crate::stats::IoStats;

/// Page identifier. `u32` keeps on-page child pointers at 4 bytes, matching
/// the paper's "each stored value takes 4 bytes".
pub type PageId = u32;

/// The paper's page size: 1024 bytes.
pub const DEFAULT_PAGE_SIZE: usize = 1024;

/// The read half of a fixed-page storage device, with access accounting.
///
/// Every `read` counts one page access in [`IoStats`]; the index structures
/// funnel all node visits through this interface so that the experiment
/// harness can report I/O exactly. Reading takes `&self`, so a `PageReader`
/// can serve many concurrent queries over one shared structure snapshot.
pub trait PageReader {
    /// Size in bytes of every page.
    fn page_size(&self) -> usize;

    /// Reads page `id` into `buf` (`buf.len() == page_size()`).
    ///
    /// # Errors
    /// Device failures and integrity failures (a page whose checksum does
    /// not verify reads as [`std::io::ErrorKind::InvalidData`]).
    ///
    /// # Panics
    /// Panics if `id` is not an allocated page or `buf` has the wrong size
    /// — both are caller bugs, not runtime conditions.
    fn read(&self, id: PageId, buf: &mut [u8]) -> std::io::Result<()>;

    /// Number of live (allocated, not freed) pages — the space metric.
    fn live_pages(&self) -> usize;

    /// Access counters since creation or the last
    /// [`reset_stats`](Pager::reset_stats).
    fn stats(&self) -> IoStats;
}

/// The write half: allocation, mutation and accounting control.
///
/// `Send + Sync` are supertraits so a `Box<dyn Pager>` (and the structures
/// built over it) can be handed to `std::thread::scope` workers as a shared
/// read-only snapshot between write phases.
pub trait Pager: PageReader + Send + Sync {
    /// Allocates a zeroed page and returns its id.
    fn allocate(&mut self) -> std::io::Result<PageId>;

    /// Writes `data` (`data.len() == page_size()`) to page `id`.
    ///
    /// # Panics
    /// Panics if `id` is not an allocated page or `data` has the wrong size.
    fn write(&mut self, id: PageId, data: &[u8]) -> std::io::Result<()>;

    /// Frees page `id`, making it available for reallocation.
    ///
    /// Freeing is pure bookkeeping in every implementation — no device
    /// access — so it is infallible.
    ///
    /// # Panics
    /// Panics on a double free or an id that was never allocated.
    fn free(&mut self, id: PageId);

    /// Zeroes the access counters (not the space usage).
    fn reset_stats(&mut self);

    /// Flushes buffered page data to stable storage without publishing a
    /// new metadata blob. The default is a no-op for volatile pagers.
    fn sync(&mut self) -> std::io::Result<()> {
        Ok(())
    }

    /// Durably installs `meta` as the pager's metadata blob.
    ///
    /// The blob is the database catalog: it must become the value returned
    /// by [`read_meta`](Self::read_meta) atomically — after a crash, a
    /// reader sees either the previous committed blob or this one, never a
    /// mixture. Durable implementations sync page data before publishing
    /// the new blob, so a successful return means both the blob *and* all
    /// preceding page writes are on stable storage.
    fn commit_meta(&mut self, meta: &[u8]) -> std::io::Result<()>;

    /// Freezes the current page table into an immutable
    /// [`SnapshotReader`] usable from any thread, and starts a new
    /// generation: later writes never disturb a page the view maps, and
    /// pages freed afterwards are quarantined until the view (and every
    /// older one) is dropped.
    ///
    /// Buffered decorators flush before delegating, so the view observes
    /// everything written so far.
    fn publish_view(&mut self) -> std::io::Result<Box<dyn SnapshotReader>>;

    /// Live epoch counters: current generation, pinned views, quarantined
    /// pages. All zero for pagers that never published a view.
    fn epoch_stats(&self) -> EpochStats {
        EpochStats::default()
    }

    /// Cross-checks the deferred-reclaim bookkeeping: `Some(true)` when
    /// every quarantined physical page is genuinely non-live (referenced
    /// by no page-table entry and no committed chain), `Some(false)` when
    /// the invariant is violated, `None` for pagers without a durable
    /// quarantine (in-memory pagers reclaim by refcount).
    fn quarantine_clean(&self) -> Option<bool> {
        None
    }

    /// Returns the most recently committed metadata blob, if any.
    ///
    /// A checksum or structural failure while reading the current blob is
    /// reported as [`std::io::ErrorKind::InvalidData`] — corruption is an
    /// error, never an empty database.
    fn read_meta(&self) -> std::io::Result<Option<Vec<u8>>>;
}

/// Interior-mutable [`IoStats`]: reads bump a counter behind `&self`.
#[derive(Debug, Default)]
pub(crate) struct AtomicStats {
    reads: AtomicU64,
    writes: AtomicU64,
    allocations: AtomicU64,
    frees: AtomicU64,
}

impl AtomicStats {
    pub(crate) fn bump_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_allocation(&self) {
        self.allocations.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_free(&self) {
        self.frees.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> IoStats {
        IoStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.allocations.store(0, Ordering::Relaxed);
        self.frees.store(0, Ordering::Relaxed);
    }
}

/// In-memory pager: the experiment substrate.
///
/// Memory cannot fail, so every operation returns `Ok`; the fallible
/// signatures exist so the same structures run unchanged over
/// [`FilePager`](crate::FilePager) and under
/// [`FaultPager`](crate::fault::FaultPager) fault injection.
///
/// Pages are reference-counted so [`publish_view`](Pager::publish_view)
/// is a shallow clone: a published view shares the page images, and a
/// later write to a shared page copies it first (`Arc::make_mut`), leaving
/// every view's image untouched. GC is automatic — a page's memory is
/// released when the last view sharing it drops — so the quarantine
/// machinery reports no backlog for this pager.
#[derive(Debug)]
pub struct MemPager {
    page_size: usize,
    pages: Vec<Option<Arc<Vec<u8>>>>,
    free_list: Vec<PageId>,
    meta: Option<Vec<u8>>,
    hub: EpochHub,
    stats: AtomicStats,
}

impl MemPager {
    /// Creates a pager with the given page size.
    ///
    /// # Panics
    /// Panics if `page_size < 64` (too small for any node header).
    pub fn new(page_size: usize) -> Self {
        assert!(page_size >= 64, "page size {page_size} too small");
        MemPager {
            page_size,
            pages: Vec::new(),
            free_list: Vec::new(),
            meta: None,
            hub: EpochHub::new(),
            stats: AtomicStats::default(),
        }
    }

    /// Creates a pager with the paper's 1024-byte pages.
    pub fn paper_1999() -> Self {
        Self::new(DEFAULT_PAGE_SIZE)
    }
}

impl Default for MemPager {
    fn default() -> Self {
        Self::paper_1999()
    }
}

impl PageReader for MemPager {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn read(&self, id: PageId, buf: &mut [u8]) -> std::io::Result<()> {
        // Invariant, not I/O: a mis-sized buffer or an unallocated id is a
        // bug in the calling structure and must fail loudly in every build.
        assert_eq!(buf.len(), self.page_size, "read buffer size mismatch");
        let page = self
            .pages
            .get(id as usize)
            .and_then(|p| p.as_ref())
            .unwrap_or_else(|| panic!("read of unallocated page {id}"));
        buf.copy_from_slice(page);
        self.stats.bump_read();
        Ok(())
    }

    fn live_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }
}

impl Pager for MemPager {
    fn allocate(&mut self) -> std::io::Result<PageId> {
        self.stats.bump_allocation();
        if let Some(id) = self.free_list.pop() {
            self.pages[id as usize] = Some(Arc::new(vec![0u8; self.page_size]));
            return Ok(id);
        }
        let id = self.pages.len() as PageId;
        self.pages.push(Some(Arc::new(vec![0u8; self.page_size])));
        Ok(id)
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> std::io::Result<()> {
        // Invariant, not I/O: see `read`.
        assert_eq!(data.len(), self.page_size, "write size mismatch");
        let page = self
            .pages
            .get_mut(id as usize)
            .and_then(|p| p.as_mut())
            .unwrap_or_else(|| panic!("write of unallocated page {id}"));
        // Copy-on-write: a page shared with a published view is replaced,
        // not mutated, so the view keeps its frozen image.
        Arc::make_mut(page).copy_from_slice(data);
        self.stats.bump_write();
        Ok(())
    }

    fn free(&mut self, id: PageId) {
        let slot = self
            .pages
            .get_mut(id as usize)
            .unwrap_or_else(|| panic!("free of unknown page {id}"));
        assert!(slot.is_some(), "double free of page {id}");
        *slot = None;
        self.free_list.push(id);
        self.stats.bump_free();
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn commit_meta(&mut self, meta: &[u8]) -> std::io::Result<()> {
        self.meta = Some(meta.to_vec());
        Ok(())
    }

    fn read_meta(&self) -> std::io::Result<Option<Vec<u8>>> {
        Ok(self.meta.clone())
    }

    fn publish_view(&mut self) -> std::io::Result<Box<dyn SnapshotReader>> {
        // Reference counting is the GC: nothing to sweep, but the
        // generation bump and pin keep the epoch counters honest.
        let _ = self.hub.sweep();
        self.hub.publish();
        Ok(Box::new(MemView {
            page_size: self.page_size,
            pages: self.pages.clone(),
            hub: self.hub.clone(),
            _pin: self.hub.pin(),
            stats: AtomicStats::default(),
        }))
    }

    fn epoch_stats(&self) -> EpochStats {
        self.hub.stats()
    }
}

/// A frozen [`MemPager`] view: shares the page images it was published
/// with; the writer's later copy-on-write updates never touch them.
#[derive(Debug)]
struct MemView {
    page_size: usize,
    pages: Vec<Option<Arc<Vec<u8>>>>,
    hub: EpochHub,
    _pin: PinGuard,
    stats: AtomicStats,
}

impl PageReader for MemView {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn read(&self, id: PageId, buf: &mut [u8]) -> std::io::Result<()> {
        assert_eq!(buf.len(), self.page_size, "read buffer size mismatch");
        let page = self
            .pages
            .get(id as usize)
            .and_then(|p| p.as_ref())
            .unwrap_or_else(|| panic!("read of page {id} not in this view"));
        buf.copy_from_slice(page);
        self.stats.bump_read();
        Ok(())
    }

    fn live_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }
}

impl SnapshotReader for MemView {
    fn epoch_stats(&self) -> EpochStats {
        self.hub.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_round_trip() {
        let mut p = MemPager::new(128);
        let a = p.allocate().unwrap();
        let mut data = vec![0u8; 128];
        data[0] = 42;
        data[127] = 7;
        p.write(a, &data).unwrap();
        let mut buf = vec![0u8; 128];
        p.read(a, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(p.stats().reads, 1);
        assert_eq!(p.stats().writes, 1);
        assert_eq!(p.stats().allocations, 1);
    }

    #[test]
    fn fresh_pages_are_zeroed() {
        let mut p = MemPager::new(64);
        let a = p.allocate().unwrap();
        let mut buf = vec![1u8; 64];
        p.read(a, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn free_and_reuse() {
        let mut p = MemPager::new(64);
        let a = p.allocate().unwrap();
        let _b = p.allocate().unwrap();
        assert_eq!(p.live_pages(), 2);
        // Dirty the page, free, reallocate: must come back zeroed.
        p.write(a, &[9u8; 64]).unwrap();
        p.free(a);
        assert_eq!(p.live_pages(), 1);
        let c = p.allocate().unwrap();
        assert_eq!(c, a, "free list reuses page ids");
        let mut buf = vec![1u8; 64];
        p.read(c, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0), "recycled page must be zeroed");
    }

    #[test]
    fn stats_reset() {
        let mut p = MemPager::new(64);
        let a = p.allocate().unwrap();
        let mut buf = vec![0u8; 64];
        p.read(a, &mut buf).unwrap();
        p.reset_stats();
        assert_eq!(p.stats(), IoStats::default());
        assert_eq!(p.live_pages(), 1, "reset does not touch space usage");
    }

    #[test]
    fn concurrent_shared_reads() {
        let mut p = MemPager::new(64);
        let a = p.allocate().unwrap();
        p.write(a, &[3u8; 64]).unwrap();
        let reader: &(dyn PageReader + Sync) = &p;
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(move || {
                    let mut buf = vec![0u8; 64];
                    for _ in 0..25 {
                        reader.read(a, &mut buf).unwrap();
                        assert_eq!(buf[0], 3);
                    }
                });
            }
        });
        assert_eq!(p.stats().reads, 100, "every thread's reads accounted");
    }

    #[test]
    fn meta_round_trips() {
        let mut p = MemPager::new(64);
        assert_eq!(p.read_meta().unwrap(), None);
        p.commit_meta(b"catalog v1").unwrap();
        assert_eq!(p.read_meta().unwrap().as_deref(), Some(&b"catalog v1"[..]));
        p.commit_meta(b"catalog v2").unwrap();
        assert_eq!(p.read_meta().unwrap().as_deref(), Some(&b"catalog v2"[..]));
    }

    #[test]
    #[should_panic]
    fn read_unallocated_panics() {
        let mut p = MemPager::new(64);
        let a = p.allocate().unwrap();
        p.free(a);
        let mut buf = vec![0u8; 64];
        let _ = p.read(5, &mut buf);
    }

    #[test]
    #[should_panic]
    fn double_free_panics() {
        let mut p = MemPager::new(64);
        let a = p.allocate().unwrap();
        p.free(a);
        p.free(a);
    }

    #[test]
    #[should_panic]
    fn wrong_buffer_size_panics() {
        let mut p = MemPager::new(64);
        let a = p.allocate().unwrap();
        let mut buf = vec![0u8; 32];
        let _ = p.read(a, &mut buf);
    }

    #[test]
    fn published_view_is_isolated_from_later_writes() {
        let mut p = MemPager::new(64);
        let a = p.allocate().unwrap();
        p.write(a, &[1u8; 64]).unwrap();
        let view = p.publish_view().unwrap();
        p.write(a, &[2u8; 64]).unwrap();
        let mut buf = vec![0u8; 64];
        view.read(a, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 1), "view keeps its frozen image");
        p.read(a, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 2), "writer sees the new bytes");
        assert_eq!(p.epoch_stats().pinned_epochs, 1);
        drop(view);
        assert_eq!(p.epoch_stats().pinned_epochs, 0);
    }

    #[test]
    fn view_keeps_freed_pages_readable() {
        let mut p = MemPager::new(64);
        let a = p.allocate().unwrap();
        p.write(a, &[7u8; 64]).unwrap();
        let view = p.publish_view().unwrap();
        p.free(a);
        let mut buf = vec![0u8; 64];
        view.read(a, &mut buf).unwrap();
        assert!(
            buf.iter().all(|&x| x == 7),
            "freed page must stay readable through the pinned view"
        );
    }

    #[test]
    fn concurrent_view_reads_during_writes() {
        let mut p = MemPager::new(64);
        let a = p.allocate().unwrap();
        p.write(a, &[1u8; 64]).unwrap();
        let view = p.publish_view().unwrap();
        std::thread::scope(|s| {
            let view = &view;
            for _ in 0..4 {
                s.spawn(move || {
                    let mut buf = vec![0u8; 64];
                    for _ in 0..50 {
                        view.read(a, &mut buf).unwrap();
                        assert_eq!(buf[0], 1);
                    }
                });
            }
            for round in 2..50u8 {
                p.write(a, &[round; 64]).unwrap();
            }
        });
    }
}
