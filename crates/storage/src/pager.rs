//! The pager abstraction and the in-memory implementation.

use crate::stats::IoStats;

/// Page identifier. `u32` keeps on-page child pointers at 4 bytes, matching
/// the paper's "each stored value takes 4 bytes".
pub type PageId = u32;

/// The paper's page size: 1024 bytes.
pub const DEFAULT_PAGE_SIZE: usize = 1024;

/// A fixed-page storage device with access accounting.
///
/// Every `read`/`write` counts one page access in [`IoStats`]; the index
/// structures funnel all node visits through this interface so that the
/// experiment harness can report I/O exactly.
pub trait Pager {
    /// Size in bytes of every page.
    fn page_size(&self) -> usize;

    /// Allocates a zeroed page and returns its id.
    fn allocate(&mut self) -> PageId;

    /// Reads page `id` into `buf` (`buf.len() == page_size()`).
    ///
    /// # Panics
    /// Panics if `id` is not an allocated page or `buf` has the wrong size.
    fn read(&mut self, id: PageId, buf: &mut [u8]);

    /// Writes `data` (`data.len() == page_size()`) to page `id`.
    ///
    /// # Panics
    /// Panics if `id` is not an allocated page or `data` has the wrong size.
    fn write(&mut self, id: PageId, data: &[u8]);

    /// Frees page `id`, making it available for reallocation.
    fn free(&mut self, id: PageId);

    /// Number of live (allocated, not freed) pages — the space metric.
    fn live_pages(&self) -> usize;

    /// Access counters since creation or the last [`reset_stats`](Pager::reset_stats).
    fn stats(&self) -> IoStats;

    /// Zeroes the access counters (not the space usage).
    fn reset_stats(&mut self);
}

/// In-memory pager: the experiment substrate.
#[derive(Debug)]
pub struct MemPager {
    page_size: usize,
    pages: Vec<Option<Box<[u8]>>>,
    free_list: Vec<PageId>,
    stats: IoStats,
}

impl MemPager {
    /// Creates a pager with the given page size.
    ///
    /// # Panics
    /// Panics if `page_size < 64` (too small for any node header).
    pub fn new(page_size: usize) -> Self {
        assert!(page_size >= 64, "page size {page_size} too small");
        MemPager {
            page_size,
            pages: Vec::new(),
            free_list: Vec::new(),
            stats: IoStats::default(),
        }
    }

    /// Creates a pager with the paper's 1024-byte pages.
    pub fn paper_1999() -> Self {
        Self::new(DEFAULT_PAGE_SIZE)
    }
}

impl Default for MemPager {
    fn default() -> Self {
        Self::paper_1999()
    }
}

impl Pager for MemPager {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocate(&mut self) -> PageId {
        self.stats.allocations += 1;
        if let Some(id) = self.free_list.pop() {
            self.pages[id as usize] = Some(vec![0u8; self.page_size].into_boxed_slice());
            return id;
        }
        let id = self.pages.len() as PageId;
        self.pages
            .push(Some(vec![0u8; self.page_size].into_boxed_slice()));
        id
    }

    fn read(&mut self, id: PageId, buf: &mut [u8]) {
        assert_eq!(buf.len(), self.page_size, "read buffer size mismatch");
        let page = self
            .pages
            .get(id as usize)
            .and_then(|p| p.as_ref())
            .unwrap_or_else(|| panic!("read of unallocated page {id}"));
        buf.copy_from_slice(page);
        self.stats.reads += 1;
    }

    fn write(&mut self, id: PageId, data: &[u8]) {
        assert_eq!(data.len(), self.page_size, "write size mismatch");
        let page = self
            .pages
            .get_mut(id as usize)
            .and_then(|p| p.as_mut())
            .unwrap_or_else(|| panic!("write of unallocated page {id}"));
        page.copy_from_slice(data);
        self.stats.writes += 1;
    }

    fn free(&mut self, id: PageId) {
        let slot = self
            .pages
            .get_mut(id as usize)
            .unwrap_or_else(|| panic!("free of unknown page {id}"));
        assert!(slot.is_some(), "double free of page {id}");
        *slot = None;
        self.free_list.push(id);
        self.stats.frees += 1;
    }

    fn live_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    fn stats(&self) -> IoStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_round_trip() {
        let mut p = MemPager::new(128);
        let a = p.allocate();
        let mut data = vec![0u8; 128];
        data[0] = 42;
        data[127] = 7;
        p.write(a, &data);
        let mut buf = vec![0u8; 128];
        p.read(a, &mut buf);
        assert_eq!(buf, data);
        assert_eq!(p.stats().reads, 1);
        assert_eq!(p.stats().writes, 1);
        assert_eq!(p.stats().allocations, 1);
    }

    #[test]
    fn fresh_pages_are_zeroed() {
        let mut p = MemPager::new(64);
        let a = p.allocate();
        let mut buf = vec![1u8; 64];
        p.read(a, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn free_and_reuse() {
        let mut p = MemPager::new(64);
        let a = p.allocate();
        let _b = p.allocate();
        assert_eq!(p.live_pages(), 2);
        // Dirty the page, free, reallocate: must come back zeroed.
        p.write(a, &[9u8; 64]);
        p.free(a);
        assert_eq!(p.live_pages(), 1);
        let c = p.allocate();
        assert_eq!(c, a, "free list reuses page ids");
        let mut buf = vec![1u8; 64];
        p.read(c, &mut buf);
        assert!(buf.iter().all(|&b| b == 0), "recycled page must be zeroed");
    }

    #[test]
    fn stats_reset() {
        let mut p = MemPager::new(64);
        let a = p.allocate();
        let mut buf = vec![0u8; 64];
        p.read(a, &mut buf);
        p.reset_stats();
        assert_eq!(p.stats(), IoStats::default());
        assert_eq!(p.live_pages(), 1, "reset does not touch space usage");
    }

    #[test]
    #[should_panic]
    fn read_unallocated_panics() {
        let mut p = MemPager::new(64);
        let mut buf = vec![0u8; 64];
        p.read(5, &mut buf);
    }

    #[test]
    #[should_panic]
    fn double_free_panics() {
        let mut p = MemPager::new(64);
        let a = p.allocate();
        p.free(a);
        p.free(a);
    }

    #[test]
    #[should_panic]
    fn wrong_buffer_size_panics() {
        let mut p = MemPager::new(64);
        let a = p.allocate();
        let mut buf = vec![0u8; 32];
        p.read(a, &mut buf);
    }
}
