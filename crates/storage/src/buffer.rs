//! An LRU buffer pool decorating any pager.
//!
//! The pool's own [`IoStats`] count *logical* accesses (what the structure
//! requested); the inner pager keeps counting *physical* accesses (what
//! reached the device). The experiment harness reports logical accesses by
//! default — the paper's setup has no large buffer cache — but the pool lets
//! the ablation benches show how the comparison shifts with caching.

use std::collections::HashMap;

use crate::pager::{PageId, Pager};
use crate::stats::IoStats;

struct Frame {
    data: Box<[u8]>,
    dirty: bool,
    stamp: u64,
}

/// Write-back LRU cache over an inner pager.
pub struct BufferPool<P: Pager> {
    inner: P,
    capacity: usize,
    frames: HashMap<PageId, Frame>,
    clock: u64,
    stats: IoStats,
}

impl<P: Pager> BufferPool<P> {
    /// Wraps `inner` with a pool of `capacity` page frames.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(inner: P, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            inner,
            capacity,
            frames: HashMap::with_capacity(capacity),
            clock: 0,
            stats: IoStats::default(),
        }
    }

    /// Physical I/O performed by the wrapped pager.
    pub fn physical_stats(&self) -> IoStats {
        self.inner.stats()
    }

    /// Flushes all dirty frames to the inner pager.
    pub fn flush(&mut self) {
        let mut dirty: Vec<(PageId, Box<[u8]>)> = self
            .frames
            .iter_mut()
            .filter(|(_, f)| f.dirty)
            .map(|(&id, f)| {
                f.dirty = false;
                (id, f.data.clone())
            })
            .collect();
        dirty.sort_by_key(|(id, _)| *id);
        for (id, data) in dirty {
            self.inner.write(id, &data);
        }
    }

    /// Flushes and returns the inner pager.
    pub fn into_inner(mut self) -> P {
        self.flush();
        self.inner
    }

    fn touch(&mut self, id: PageId) {
        self.clock += 1;
        if let Some(f) = self.frames.get_mut(&id) {
            f.stamp = self.clock;
        }
    }

    fn evict_if_full(&mut self) {
        if self.frames.len() < self.capacity {
            return;
        }
        let victim = self
            .frames
            .iter()
            .min_by_key(|(_, f)| f.stamp)
            .map(|(&id, _)| id)
            .expect("non-empty pool");
        let frame = self.frames.remove(&victim).expect("victim exists");
        if frame.dirty {
            self.inner.write(victim, &frame.data);
        }
    }

    fn load(&mut self, id: PageId) {
        if self.frames.contains_key(&id) {
            return;
        }
        self.evict_if_full();
        let mut buf = vec![0u8; self.inner.page_size()];
        self.inner.read(id, &mut buf);
        self.clock += 1;
        self.frames.insert(
            id,
            Frame {
                data: buf.into_boxed_slice(),
                dirty: false,
                stamp: self.clock,
            },
        );
    }
}

impl<P: Pager> Pager for BufferPool<P> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn allocate(&mut self) -> PageId {
        self.stats.allocations += 1;
        self.inner.allocate()
    }

    fn read(&mut self, id: PageId, buf: &mut [u8]) {
        assert_eq!(buf.len(), self.page_size());
        self.load(id);
        self.touch(id);
        buf.copy_from_slice(&self.frames[&id].data);
        self.stats.reads += 1;
    }

    fn write(&mut self, id: PageId, data: &[u8]) {
        assert_eq!(data.len(), self.page_size());
        self.evict_if_full();
        self.clock += 1;
        let stamp = self.clock;
        let frame = self.frames.entry(id).or_insert_with(|| Frame {
            data: vec![0u8; data.len()].into_boxed_slice(),
            dirty: false,
            stamp,
        });
        frame.data.copy_from_slice(data);
        frame.dirty = true;
        frame.stamp = stamp;
        self.stats.writes += 1;
    }

    fn free(&mut self, id: PageId) {
        self.frames.remove(&id);
        self.inner.free(id);
        self.stats.frees += 1;
    }

    fn live_pages(&self) -> usize {
        self.inner.live_pages()
    }

    fn stats(&self) -> IoStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    #[test]
    fn cached_reads_avoid_physical_io() {
        let mut pool = BufferPool::new(MemPager::new(64), 4);
        let a = pool.allocate();
        pool.write(a, &[1u8; 64]);
        let mut buf = vec![0u8; 64];
        for _ in 0..10 {
            pool.read(a, &mut buf);
        }
        assert_eq!(pool.stats().reads, 10, "logical reads counted");
        assert_eq!(pool.physical_stats().reads, 0, "all served from cache");
        assert_eq!(buf[0], 1);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let mut pool = BufferPool::new(MemPager::new(64), 2);
        let ids: Vec<_> = (0..4).map(|_| pool.allocate()).collect();
        for (i, &id) in ids.iter().enumerate() {
            pool.write(id, &[i as u8 + 1; 64]);
        }
        // Capacity 2: first pages must have been evicted + written back.
        assert!(pool.physical_stats().writes >= 2);
        let mut buf = vec![0u8; 64];
        pool.read(ids[0], &mut buf);
        assert_eq!(buf[0], 1, "evicted page content survived");
    }

    #[test]
    fn lru_keeps_hot_page() {
        let mut pool = BufferPool::new(MemPager::new(64), 2);
        let a = pool.allocate();
        let b = pool.allocate();
        let c = pool.allocate();
        pool.write(a, &[1u8; 64]);
        pool.write(b, &[2u8; 64]);
        let mut buf = vec![0u8; 64];
        pool.read(a, &mut buf); // refresh a; b becomes LRU
        pool.write(c, &[3u8; 64]); // evicts b
        let before = pool.physical_stats().reads;
        pool.read(a, &mut buf); // still cached
        assert_eq!(pool.physical_stats().reads, before);
        pool.read(b, &mut buf); // miss
        assert_eq!(pool.physical_stats().reads, before + 1);
        assert_eq!(buf[0], 2);
    }

    #[test]
    fn flush_persists_everything() {
        let mut pool = BufferPool::new(MemPager::new(64), 8);
        let a = pool.allocate();
        pool.write(a, &[9u8; 64]);
        let mut inner = pool.into_inner();
        let mut buf = vec![0u8; 64];
        inner.read(a, &mut buf);
        assert_eq!(buf[0], 9);
    }

    #[test]
    fn free_drops_frame() {
        let mut pool = BufferPool::new(MemPager::new(64), 2);
        let a = pool.allocate();
        pool.write(a, &[1u8; 64]);
        pool.free(a);
        assert_eq!(pool.live_pages(), 0);
    }
}
