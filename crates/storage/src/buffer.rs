//! An LRU buffer pool decorating any pager.
//!
//! The pool's own [`IoStats`] count *logical* accesses (what the structure
//! requested); the inner pager keeps counting *physical* accesses (what
//! reached the device). The experiment harness reports logical accesses by
//! default — the paper's setup has no large buffer cache — but the pool lets
//! the ablation benches show how the comparison shifts with caching.
//!
//! Cache state lives behind a `Mutex` so that [`PageReader::read`] works
//! from `&self` (a miss may still evict and write back a dirty victim);
//! write-half operations go through `&mut self` and use the lock-free
//! `get_mut` path.
//!
//! # Failure policy
//!
//! A failed write-back during eviction **keeps the frame dirty and
//! resident** and surfaces the error: the page's only up-to-date copy lives
//! in that frame, so dropping it would silently lose committed-to-cache
//! data. The next eviction or flush retries. Likewise [`flush`] stops at
//! the first failing page, leaving it (and everything after it) dirty.
//!
//! [`flush`]: BufferPool::flush

use std::collections::HashMap;
use std::sync::Mutex;

use crate::epoch::{EpochStats, SnapshotReader};
use crate::pager::{PageId, PageReader, Pager};
use crate::stats::IoStats;

struct Frame {
    data: Box<[u8]>,
    dirty: bool,
    stamp: u64,
}

struct PoolState<P> {
    inner: P,
    frames: HashMap<PageId, Frame>,
    clock: u64,
    stats: IoStats,
}

impl<P: Pager> PoolState<P> {
    fn evict_if_full(&mut self, capacity: usize) -> std::io::Result<()> {
        if self.frames.len() < capacity {
            return Ok(());
        }
        let victim = self
            .frames
            .iter()
            .min_by_key(|(_, f)| f.stamp)
            .map(|(&id, _)| id)
            .expect("non-empty pool");
        // Write back BEFORE removing: if the device rejects the page, the
        // frame must stay dirty and resident — it holds the only current
        // copy of the data.
        let frame = self.frames.get(&victim).expect("victim exists");
        if frame.dirty {
            self.inner.write(victim, &frame.data)?;
        }
        self.frames.remove(&victim);
        Ok(())
    }

    /// Ensures `id` is resident, evicting (with write-back) on a miss.
    fn load(&mut self, id: PageId, capacity: usize) -> std::io::Result<()> {
        if self.frames.contains_key(&id) {
            return Ok(());
        }
        self.evict_if_full(capacity)?;
        let mut buf = vec![0u8; self.inner.page_size()];
        self.inner.read(id, &mut buf)?;
        self.clock += 1;
        self.frames.insert(
            id,
            Frame {
                data: buf.into_boxed_slice(),
                dirty: false,
                stamp: self.clock,
            },
        );
        Ok(())
    }

    /// Writes every dirty frame back, in page order, borrowing the frame
    /// data in place (no per-page clone). Stops at the first failure; the
    /// failing frame stays dirty.
    fn flush(&mut self) -> std::io::Result<()> {
        let mut dirty: Vec<PageId> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(&id, _)| id)
            .collect();
        dirty.sort_unstable();
        let PoolState { inner, frames, .. } = self;
        for id in dirty {
            let f = frames.get_mut(&id).expect("dirty frame is resident");
            inner.write(id, &f.data)?;
            f.dirty = false;
        }
        Ok(())
    }
}

/// Write-back LRU cache over an inner pager.
pub struct BufferPool<P: Pager> {
    page_size: usize,
    capacity: usize,
    state: Mutex<PoolState<P>>,
}

impl<P: Pager> BufferPool<P> {
    /// Wraps `inner` with a pool of `capacity` page frames.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(inner: P, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            page_size: inner.page_size(),
            capacity,
            state: Mutex::new(PoolState {
                inner,
                frames: HashMap::with_capacity(capacity),
                clock: 0,
                stats: IoStats::default(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolState<P>> {
        self.state.lock().expect("buffer pool poisoned")
    }

    fn state_mut(&mut self) -> &mut PoolState<P> {
        self.state.get_mut().expect("buffer pool poisoned")
    }

    /// Physical I/O performed by the wrapped pager.
    pub fn physical_stats(&self) -> IoStats {
        self.lock().inner.stats()
    }

    /// Flushes all dirty frames to the inner pager.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.state_mut().flush()
    }

    /// Number of resident frames whose content has not reached the inner
    /// pager yet.
    pub fn dirty_frames(&self) -> usize {
        self.lock().frames.values().filter(|f| f.dirty).count()
    }

    /// Whether page `id` currently occupies a frame.
    pub fn is_resident(&self, id: PageId) -> bool {
        self.lock().frames.contains_key(&id)
    }

    /// Flushes and returns the inner pager.
    ///
    /// # Errors
    /// If the final flush fails, the pool is returned intact inside `Err`
    /// so no dirty frame is lost; retry or inspect via the pool.
    pub fn into_inner(mut self) -> Result<P, (Self, std::io::Error)> {
        match self.flush() {
            Ok(()) => Ok(self.state.into_inner().expect("buffer pool poisoned").inner),
            Err(e) => Err((self, e)),
        }
    }
}

impl<P: Pager> PageReader for BufferPool<P> {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn read(&self, id: PageId, buf: &mut [u8]) -> std::io::Result<()> {
        // Invariant, not I/O: wrong-size buffers are caller bugs.
        assert_eq!(buf.len(), self.page_size);
        let mut st = self.lock();
        st.load(id, self.capacity)?;
        st.clock += 1;
        let stamp = st.clock;
        let frame = st.frames.get_mut(&id).expect("loaded");
        frame.stamp = stamp;
        buf.copy_from_slice(&frame.data);
        st.stats.reads += 1;
        Ok(())
    }

    fn live_pages(&self) -> usize {
        self.lock().inner.live_pages()
    }

    fn stats(&self) -> IoStats {
        self.lock().stats
    }
}

impl<P: Pager> Pager for BufferPool<P> {
    fn allocate(&mut self) -> std::io::Result<PageId> {
        let st = self.state_mut();
        let id = st.inner.allocate()?;
        st.stats.allocations += 1;
        Ok(id)
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> std::io::Result<()> {
        // Invariant, not I/O: see `read`.
        assert_eq!(data.len(), self.page_size);
        let capacity = self.capacity;
        let st = self.state_mut();
        st.clock += 1;
        let stamp = st.clock;
        // Residency check FIRST: a hit-write must touch the frame in place.
        // Evicting up front would — at capacity — push out a victim the
        // write doesn't need, possibly the very page being written.
        if let Some(frame) = st.frames.get_mut(&id) {
            frame.data.copy_from_slice(data);
            frame.dirty = true;
            frame.stamp = stamp;
        } else {
            st.evict_if_full(capacity)?;
            st.frames.insert(
                id,
                Frame {
                    data: data.to_vec().into_boxed_slice(),
                    dirty: true,
                    stamp,
                },
            );
        }
        st.stats.writes += 1;
        Ok(())
    }

    fn free(&mut self, id: PageId) {
        let st = self.state_mut();
        st.frames.remove(&id);
        st.inner.free(id);
        st.stats.frees += 1;
    }

    fn reset_stats(&mut self) {
        self.state_mut().stats = IoStats::default();
    }

    fn sync(&mut self) -> std::io::Result<()> {
        let st = self.state_mut();
        st.flush()?;
        st.inner.sync()
    }

    fn commit_meta(&mut self, meta: &[u8]) -> std::io::Result<()> {
        // The inner pager's protocol promises that all page data precedes
        // the published blob on stable storage, so dirty frames must reach
        // the device first.
        let st = self.state_mut();
        st.flush()?;
        st.inner.commit_meta(meta)
    }

    fn read_meta(&self) -> std::io::Result<Option<Vec<u8>>> {
        self.lock().inner.read_meta()
    }

    fn publish_view(&mut self) -> std::io::Result<Box<dyn SnapshotReader>> {
        // A view reads the inner pager directly, so every buffered write
        // must reach it first — otherwise the view would miss data that
        // exists only in dirty frames.
        let st = self.state_mut();
        st.flush()?;
        st.inner.publish_view()
    }

    fn epoch_stats(&self) -> EpochStats {
        self.lock().inner.epoch_stats()
    }

    fn quarantine_clean(&self) -> Option<bool> {
        self.lock().inner.quarantine_clean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPager, FaultPlan};
    use crate::pager::MemPager;

    #[test]
    fn cached_reads_avoid_physical_io() {
        let mut pool = BufferPool::new(MemPager::new(64), 4);
        let a = pool.allocate().unwrap();
        pool.write(a, &[1u8; 64]).unwrap();
        let mut buf = vec![0u8; 64];
        for _ in 0..10 {
            pool.read(a, &mut buf).unwrap();
        }
        assert_eq!(pool.stats().reads, 10, "logical reads counted");
        assert_eq!(pool.physical_stats().reads, 0, "all served from cache");
        assert_eq!(buf[0], 1);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let mut pool = BufferPool::new(MemPager::new(64), 2);
        let ids: Vec<_> = (0..4).map(|_| pool.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            pool.write(id, &[i as u8 + 1; 64]).unwrap();
        }
        // Capacity 2: first pages must have been evicted + written back.
        assert!(pool.physical_stats().writes >= 2);
        let mut buf = vec![0u8; 64];
        pool.read(ids[0], &mut buf).unwrap();
        assert_eq!(buf[0], 1, "evicted page content survived");
    }

    #[test]
    fn failed_eviction_write_back_keeps_frame_dirty_and_resident() {
        // Regression: a write error during eviction used to drop the frame
        // after the page content had already been removed from the pool —
        // losing the only current copy. The frame must stay dirty and
        // resident so a later flush can retry.
        let inner = FaultPager::new(MemPager::new(64), FaultPlan::new().fail_write(1));
        let mut pool = BufferPool::new(inner, 2);
        let a = pool.allocate().unwrap();
        let b = pool.allocate().unwrap();
        let c = pool.allocate().unwrap();
        pool.write(a, &[1u8; 64]).unwrap();
        pool.write(b, &[2u8; 64]).unwrap(); // pool full, both dirty
                                            // Writing c forces an eviction of `a`; its physical write is the
                                            // 1st inner write op and fails by plan.
        let err = pool.write(c, &[3u8; 64]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::Other);
        assert!(pool.is_resident(a), "victim must stay resident");
        assert_eq!(pool.dirty_frames(), 2, "victim must stay dirty");
        let mut buf = vec![0u8; 64];
        pool.read(a, &mut buf).unwrap();
        assert_eq!(buf[0], 1, "content preserved in the frame");
        // The injected fault was one-shot: the retry drains cleanly.
        pool.write(c, &[3u8; 64]).unwrap();
        pool.flush().unwrap();
        assert_eq!(pool.dirty_frames(), 0);
        let inner = pool.into_inner().unwrap_or_else(|_| panic!("flush clean"));
        let mem = inner.into_inner();
        let mut buf = vec![0u8; 64];
        mem.read(a, &mut buf).unwrap();
        assert_eq!(buf[0], 1, "page reached the device after retry");
    }

    #[test]
    fn failed_flush_leaves_remaining_frames_dirty() {
        let inner = FaultPager::new(MemPager::new(64), FaultPlan::new().fail_write(1));
        let mut pool = BufferPool::new(inner, 8);
        let ids: Vec<_> = (0..3).map(|_| pool.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            pool.write(id, &[i as u8 + 1; 64]).unwrap();
        }
        let err = pool.flush().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::Other);
        assert!(
            pool.dirty_frames() == 3,
            "first write failed: nothing may be marked clean out of order"
        );
        pool.flush().unwrap();
        assert_eq!(pool.dirty_frames(), 0);
    }

    #[test]
    fn lru_keeps_hot_page() {
        let mut pool = BufferPool::new(MemPager::new(64), 2);
        let a = pool.allocate().unwrap();
        let b = pool.allocate().unwrap();
        let c = pool.allocate().unwrap();
        pool.write(a, &[1u8; 64]).unwrap();
        pool.write(b, &[2u8; 64]).unwrap();
        let mut buf = vec![0u8; 64];
        pool.read(a, &mut buf).unwrap(); // refresh a; b becomes LRU
        pool.write(c, &[3u8; 64]).unwrap(); // evicts b
        let before = pool.physical_stats().reads;
        pool.read(a, &mut buf).unwrap(); // still cached
        assert_eq!(pool.physical_stats().reads, before);
        pool.read(b, &mut buf).unwrap(); // miss
        assert_eq!(pool.physical_stats().reads, before + 1);
        assert_eq!(buf[0], 2);
    }

    #[test]
    fn hit_write_at_capacity_is_free_of_physical_io() {
        // Regression: `write` used to call `evict_if_full` before checking
        // residency, so a cache-hit write to a full pool evicted a victim it
        // didn't need — potentially the very page being written.
        let mut pool = BufferPool::new(MemPager::new(64), 2);
        let a = pool.allocate().unwrap();
        let b = pool.allocate().unwrap();
        pool.write(a, &[1u8; 64]).unwrap();
        pool.write(b, &[2u8; 64]).unwrap(); // pool now full, both frames dirty
        let before = pool.physical_stats();
        pool.write(a, &[9u8; 64]).unwrap(); // hit-write at capacity
        pool.write(b, &[8u8; 64]).unwrap();
        assert_eq!(
            pool.physical_stats(),
            before,
            "hit-writes must cause no eviction and no physical I/O"
        );
        // Both pages still resident: reads hit the cache too.
        let mut buf = vec![0u8; 64];
        pool.read(a, &mut buf).unwrap();
        assert_eq!(buf[0], 9);
        pool.read(b, &mut buf).unwrap();
        assert_eq!(buf[0], 8);
        assert_eq!(pool.physical_stats().reads, before.reads, "still cached");
    }

    #[test]
    fn flush_writes_each_dirty_page_once() {
        let mut pool = BufferPool::new(MemPager::new(64), 8);
        let ids: Vec<_> = (0..3).map(|_| pool.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            pool.write(id, &[i as u8 + 1; 64]).unwrap();
        }
        pool.flush().unwrap();
        assert_eq!(pool.physical_stats().writes, 3);
        pool.flush().unwrap();
        assert_eq!(
            pool.physical_stats().writes,
            3,
            "clean frames not rewritten"
        );
    }

    #[test]
    fn flush_persists_everything() {
        let mut pool = BufferPool::new(MemPager::new(64), 8);
        let a = pool.allocate().unwrap();
        pool.write(a, &[9u8; 64]).unwrap();
        let inner = pool.into_inner().unwrap_or_else(|_| panic!("flush clean"));
        let mut buf = vec![0u8; 64];
        inner.read(a, &mut buf).unwrap();
        assert_eq!(buf[0], 9);
    }

    #[test]
    fn commit_meta_flushes_dirty_frames_first() {
        let mut pool = BufferPool::new(MemPager::new(64), 8);
        let a = pool.allocate().unwrap();
        pool.write(a, &[4u8; 64]).unwrap();
        assert_eq!(pool.physical_stats().writes, 0, "write still buffered");
        pool.commit_meta(b"snapshot").unwrap();
        assert_eq!(pool.physical_stats().writes, 1, "commit flushed the frame");
        assert_eq!(pool.read_meta().unwrap().as_deref(), Some(&b"snapshot"[..]));
    }

    #[test]
    fn free_drops_frame() {
        let mut pool = BufferPool::new(MemPager::new(64), 2);
        let a = pool.allocate().unwrap();
        pool.write(a, &[1u8; 64]).unwrap();
        pool.free(a);
        assert_eq!(pool.live_pages(), 0);
    }

    #[test]
    fn concurrent_readers_share_the_pool() {
        let mut pool = BufferPool::new(MemPager::new(64), 2);
        let ids: Vec<_> = (0..4).map(|_| pool.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            pool.write(id, &[i as u8 + 1; 64]).unwrap();
        }
        let pool = &pool;
        std::thread::scope(|s| {
            for t in 0..4 {
                let ids = ids.clone();
                s.spawn(move || {
                    let mut buf = vec![0u8; 64];
                    for round in 0..20 {
                        let i = (t + round) % ids.len();
                        pool.read(ids[i], &mut buf).unwrap();
                        assert_eq!(buf[0], i as u8 + 1);
                    }
                });
            }
        });
        assert_eq!(pool.stats().reads, 80, "all logical reads accounted");
    }
}
