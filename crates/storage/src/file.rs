//! File-backed pager.
//!
//! Same contract as [`MemPager`](crate::MemPager) but persisted to a real
//! file, one page per `page_size` slice. The free list lives in page 0
//! (the header page), so a file can be closed and reopened.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::os::unix::fs::FileExt;
use std::path::Path;

use crate::codec::{get_u32, put_u32};
use crate::pager::{AtomicStats, PageId, PageReader, Pager};
use crate::stats::IoStats;

const MAGIC: u32 = 0x43_44_42_31; // "CDB1"

/// A pager persisting pages to a file.
///
/// Page 0 is a header (`magic, page_size, page_count, free_count, free[..]`);
/// user pages are numbered from 1. The header is rewritten on drop.
pub struct FilePager {
    file: File,
    page_size: usize,
    page_count: u32,
    free_list: Vec<PageId>,
    allocated: Vec<bool>, // index 0 unused (header)
    stats: AtomicStats,
}

impl FilePager {
    /// Creates a new paged file, truncating any existing content.
    ///
    /// # Panics
    /// Panics if `page_size < 64` or the free list cannot fit the header
    /// page as the file grows (more than `page_size/4 − 4` free pages).
    pub fn create(path: &Path, page_size: usize) -> std::io::Result<Self> {
        assert!(page_size >= 64, "page size too small");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut p = FilePager {
            file,
            page_size,
            page_count: 1,
            free_list: Vec::new(),
            allocated: vec![false],
            stats: AtomicStats::default(),
        };
        p.write_header()?;
        Ok(p)
    }

    /// Opens an existing paged file created by [`create`](Self::create).
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut head = vec![0u8; 16];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut head)?;
        if get_u32(&head, 0) != MAGIC {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "not a cdb paged file",
            ));
        }
        let page_size = get_u32(&head, 4) as usize;
        let page_count = get_u32(&head, 8);
        let free_count = get_u32(&head, 12) as usize;
        let mut rest = vec![0u8; page_size - 16];
        file.read_exact(&mut rest)?;
        let mut free_list = Vec::with_capacity(free_count);
        for i in 0..free_count {
            free_list.push(get_u32(&rest, i * 4));
        }
        let mut allocated = vec![true; page_count as usize];
        allocated[0] = false;
        for &f in &free_list {
            allocated[f as usize] = false;
        }
        Ok(FilePager {
            file,
            page_size,
            page_count,
            free_list,
            allocated,
            stats: AtomicStats::default(),
        })
    }

    fn write_header(&mut self) -> std::io::Result<()> {
        let mut head = vec![0u8; self.page_size];
        put_u32(&mut head, 0, MAGIC);
        put_u32(&mut head, 4, self.page_size as u32);
        put_u32(&mut head, 8, self.page_count);
        put_u32(&mut head, 12, self.free_list.len() as u32);
        assert!(
            16 + self.free_list.len() * 4 <= self.page_size,
            "free list overflows the header page"
        );
        for (i, &f) in self.free_list.iter().enumerate() {
            put_u32(&mut head, 16 + i * 4, f);
        }
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&head)?;
        Ok(())
    }

    /// Flushes the header and file contents.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.write_header()?;
        self.file.sync_all()
    }

    fn offset(&self, id: PageId) -> u64 {
        id as u64 * self.page_size as u64
    }
}

impl Drop for FilePager {
    fn drop(&mut self) {
        let _ = self.write_header();
    }
}

impl PageReader for FilePager {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn read(&self, id: PageId, buf: &mut [u8]) {
        assert_eq!(buf.len(), self.page_size);
        assert!(
            (id as usize) < self.allocated.len() && self.allocated[id as usize],
            "read of unallocated page {id}"
        );
        // Positioned read: no shared cursor, so concurrent query threads can
        // read through `&self` without racing on the file offset.
        self.file
            .read_exact_at(buf, self.offset(id))
            .expect("file pager read");
        self.stats.bump_read();
    }

    fn live_pages(&self) -> usize {
        self.allocated.iter().filter(|&&a| a).count()
    }

    fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }
}

impl Pager for FilePager {
    fn allocate(&mut self) -> PageId {
        self.stats.bump_allocation();
        let id = if let Some(id) = self.free_list.pop() {
            id
        } else {
            let id = self.page_count;
            self.page_count += 1;
            self.allocated.push(false);
            id
        };
        self.allocated[id as usize] = true;
        // Zero the page on disk.
        let zero = vec![0u8; self.page_size];
        self.file
            .seek(SeekFrom::Start(self.offset(id)))
            .and_then(|_| self.file.write_all(&zero))
            .expect("file pager write");
        id
    }

    fn write(&mut self, id: PageId, data: &[u8]) {
        assert_eq!(data.len(), self.page_size);
        assert!(
            (id as usize) < self.allocated.len() && self.allocated[id as usize],
            "write of unallocated page {id}"
        );
        self.file
            .seek(SeekFrom::Start(self.offset(id)))
            .and_then(|_| self.file.write_all(data))
            .expect("file pager write");
        self.stats.bump_write();
    }

    fn free(&mut self, id: PageId) {
        assert!(
            (id as usize) < self.allocated.len() && self.allocated[id as usize],
            "free of unallocated page {id}"
        );
        self.allocated[id as usize] = false;
        self.free_list.push(id);
        self.stats.bump_free();
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cdb_filepager_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn round_trip() {
        let path = tmp("rt");
        let mut p = FilePager::create(&path, 128).unwrap();
        let a = p.allocate();
        let mut data = vec![0u8; 128];
        data[3] = 99;
        p.write(a, &data);
        let mut buf = vec![0u8; 128];
        p.read(a, &mut buf);
        assert_eq!(buf, data);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn persistence_across_reopen() {
        let path = tmp("persist");
        let (a, b);
        {
            let mut p = FilePager::create(&path, 128).unwrap();
            a = p.allocate();
            b = p.allocate();
            p.write(a, &[7u8; 128]);
            p.free(b);
            p.sync().unwrap();
        }
        {
            let mut p = FilePager::open(&path).unwrap();
            assert_eq!(p.page_size(), 128);
            assert_eq!(p.live_pages(), 1);
            let mut buf = vec![0u8; 128];
            p.read(a, &mut buf);
            assert!(buf.iter().all(|&x| x == 7));
            // The freed page is reused.
            let c = p.allocate();
            assert_eq!(c, b);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, vec![1u8; 256]).unwrap();
        assert!(FilePager::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recycled_page_is_zeroed() {
        let path = tmp("zero");
        let mut p = FilePager::create(&path, 128).unwrap();
        let a = p.allocate();
        p.write(a, &[5u8; 128]);
        p.free(a);
        let b = p.allocate();
        assert_eq!(a, b);
        let mut buf = vec![9u8; 128];
        p.read(b, &mut buf);
        assert!(buf.iter().all(|&x| x == 0));
        drop(p);
        std::fs::remove_file(&path).unwrap();
    }
}
