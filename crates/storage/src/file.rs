//! File-backed pager with shadow paging and torn-page detection.
//!
//! Same page contract as [`MemPager`](crate::MemPager) but persisted to a
//! real file — and, unlike the in-memory pager, built to survive crashes
//! and detect media corruption:
//!
//! * **Every page is sealed.** A physical page on disk is the logical page
//!   plus an 8-byte [`codec`](crate::codec) trailer `[epoch][crc32]`. A
//!   torn write, a bit flip, or a stale page replayed from an older epoch
//!   fails verification and reads as
//!   [`std::io::ErrorKind::InvalidData`] — never as silently wrong data.
//!   The trailer is out of band (physical pages are `page_size + 8` bytes),
//!   so logical page size, node fan-out, and the experiments' I/O counts
//!   are unchanged by checksumming.
//! * **Writes are copy-on-write.** A logical→physical map indirects every
//!   page. Writing a page whose current image belongs to the committed
//!   epoch allocates a *fresh* physical page; the committed image is only
//!   recycled after the next commit is durable. A crash at any moment —
//!   even between the catalog commit and the data sync — therefore leaves
//!   the previous commit's pages byte-identical on disk: old and new trees
//!   can never mix.
//! * **Commits alternate between two fixed header slots.** The file starts
//!   with two 512-byte header slots at byte offsets 0 and 512; data pages
//!   follow from byte 1024. A commit serializes the page map and the user
//!   metadata blob into a chain of sealed pages, syncs, then overwrites the
//!   *older* header slot with the new epoch and syncs again. Opening picks
//!   the highest-epoch slot that fully verifies (header CRC, chain seals,
//!   blob CRC); if the newest commit is damaged, open falls back to the
//!   previous one and reports it in [`PagerRecovery`].
//!
//! Dropping the pager without [`close`](FilePager::close) persists nothing
//! beyond the last commit — deliberately: an unclean drop is
//! indistinguishable from a crash, and both roll back to the last durable
//! epoch.

use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions};
use std::io::Read;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::Arc;

use crate::codec::{
    check_page, crc32, get_u32, put_u32, seal_page, RecordReader, RecordWriter, PAGE_TRAILER,
};
use crate::epoch::{EpochHub, EpochStats, PinGuard, SnapshotReader};
use crate::pager::{AtomicStats, PageId, PageReader, Pager};
use crate::stats::IoStats;

const MAGIC: u32 = 0x4344_4233; // "CDB3"

/// Fixed size of each header slot; slot 0 at byte 0, slot 1 at byte 512.
const HEADER_SLOT: usize = 512;
/// Byte offset where physical data pages begin.
const HEADER_AREA: u64 = 2 * HEADER_SLOT as u64;
/// Bytes of the header slot covered by its CRC.
const HEADER_LEN: usize = 24;

/// Map sentinel: the logical page is allocated but was never written, so it
/// has no physical image and reads as zeros.
const PHYS_NONE: u32 = u32::MAX;

fn invalid_data(msg: &'static str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

fn read_only_err() -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::PermissionDenied,
        "pager opened read-only",
    )
}

/// What [`FilePager::open`] had to do to reach a consistent state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PagerRecovery {
    /// The newest commit verified end to end.
    Clean,
    /// The newest commit's header or chain was damaged; the pager fell back
    /// to the previous durable commit. Everything after `recovered_epoch`
    /// is lost (it was either never fully durable or has since rotted).
    FellBack {
        /// Epoch the database actually opened at.
        recovered_epoch: u32,
        /// Epoch of the damaged commit that could not be used.
        lost_epoch: u32,
    },
}

/// A committed map entry: where the logical page lives and which epoch
/// sealed its current image.
#[derive(Clone, Copy, Debug)]
struct Entry {
    phys: u32,
    epoch: u32,
    /// Publish generation the image was written under (not persisted; 0
    /// after open). An image from an older generation may be mapped by a
    /// published view, so overwriting it in place is forbidden — the
    /// in-place fast path requires `seq` to match the pager's current
    /// generation on top of the durable `epoch` check.
    seq: u64,
}

/// One parsed header slot.
#[derive(Clone, Copy, Debug)]
struct Slot {
    page_size: usize,
    epoch: u32,
    chain_first: u32,
    chain_len: u32,
    blob_crc: u32,
}

/// Everything a verified commit describes.
struct Loaded {
    map: BTreeMap<PageId, Entry>,
    logical_high: u32,
    user_meta: Option<Vec<u8>>,
    chain: Vec<u32>,
    /// Freed physical pages the committing process still had in reader
    /// quarantine: valid images of superseded epochs, referenced by no
    /// live page, excluded from the free pool until swept.
    quarantine: Vec<u32>,
}

/// A pager persisting pages to a file, with shadow-paged commits and
/// per-page integrity seals.
///
/// The `Debug` form is a summary (sizes and epochs), not a page dump.
pub struct FilePager {
    /// Shared with published epoch views, which read pages positionally
    /// through their own frozen maps.
    file: Arc<File>,
    page_size: usize,
    /// Last durably committed epoch; in-flight writes are sealed at
    /// `epoch + 1`.
    epoch: u32,
    /// Header slot (0/1) holding the committed epoch.
    slot: usize,
    map: BTreeMap<PageId, Entry>,
    logical_high: u32,
    free_logical: Vec<PageId>,
    phys_high: u32,
    /// Physical pages referenced by no commit: reusable immediately.
    free_phys: Vec<u32>,
    /// Physical pages holding the *committed* images of pages since
    /// rewritten or freed. They become reusable only once the next commit
    /// is durable — until then a crash rolls back to content that still
    /// lives in them. Once that commit lands they move to the reader
    /// quarantine (see [`EpochHub`]) and return to `free_phys` after every
    /// older pinned view drains.
    deferred_phys: Vec<u32>,
    /// Chain pages backing each header slot's commit; protected from
    /// reallocation while the slot may still be a fallback target.
    chains: [Vec<u32>; 2],
    user_meta: Option<Vec<u8>>,
    recovery: PagerRecovery,
    read_only: bool,
    /// Epoch bookkeeping shared with published views: pins, quarantine,
    /// reclaimable pool.
    hub: EpochHub,
    /// Current publish generation (mirror of the hub's counter, owned by
    /// the writer so the hot write path avoids the hub lock).
    seq: u64,
    stats: AtomicStats,
}

impl std::fmt::Debug for FilePager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FilePager")
            .field("page_size", &self.page_size)
            .field("epoch", &self.epoch)
            .field("pages", &self.map.len())
            .field("read_only", &self.read_only)
            .finish_non_exhaustive()
    }
}

impl FilePager {
    /// Creates a new paged file, truncating any existing content, and
    /// durably commits an empty epoch so the file opens cleanly from the
    /// first byte on.
    ///
    /// # Panics
    /// Panics if `page_size < 64`.
    pub fn create(path: &Path, page_size: usize) -> std::io::Result<Self> {
        assert!(page_size >= 64, "page size too small");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut p = FilePager {
            file: Arc::new(file),
            page_size,
            epoch: 0,
            slot: 0,
            map: BTreeMap::new(),
            logical_high: 1,
            free_logical: Vec::new(),
            phys_high: 1,
            free_phys: Vec::new(),
            deferred_phys: Vec::new(),
            chains: [Vec::new(), Vec::new()],
            user_meta: None,
            recovery: PagerRecovery::Clean,
            read_only: false,
            hub: EpochHub::new(),
            seq: 0,
            stats: AtomicStats::default(),
        };
        p.commit_state()?;
        Ok(p)
    }

    /// Opens an existing paged file created by [`create`](Self::create).
    ///
    /// The newest fully verifiable commit wins; a damaged newest commit
    /// falls back to the previous one (see [`recovery`](Self::recovery)).
    /// A file with no verifiable commit at all surfaces as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn open(path: &Path) -> std::io::Result<Self> {
        Self::open_impl(path, false)
    }

    /// Opens the file for reading only: every mutating operation fails with
    /// [`std::io::ErrorKind::PermissionDenied`] instead of touching disk.
    pub fn open_read_only(path: &Path) -> std::io::Result<Self> {
        Self::open_impl(path, true)
    }

    fn open_impl(path: &Path, read_only: bool) -> std::io::Result<Self> {
        let mut file = OpenOptions::new().read(true).write(!read_only).open(path)?;
        let mut head = vec![0u8; 2 * HEADER_SLOT];
        let got = {
            // Short files still may hold one valid slot; read what exists.
            let mut filled = 0;
            loop {
                match file.read(&mut head[filled..]) {
                    Ok(0) => break,
                    Ok(n) => filled += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
            filled
        };
        let file_len = file.metadata()?.len();
        // Classify each slot: parsed, never used (all zeros — normal for a
        // young database), or damaged (nonzero bytes that do not verify —
        // evidence of a torn or rotted commit).
        let mut slots: [Option<Slot>; 2] = [None, None];
        let mut damaged = [false, false];
        for i in 0..2 {
            let lo = i * HEADER_SLOT;
            let hi = (lo + HEADER_SLOT).min(got);
            let bytes = if lo < got { &head[lo..hi] } else { &[][..] };
            if bytes.len() >= HEADER_LEN + 4 {
                slots[i] = Self::parse_slot(bytes);
            }
            if slots[i].is_none() && bytes.iter().any(|&b| b != 0) {
                damaged[i] = true;
            }
        }
        // Try candidates from the highest epoch down.
        let mut order: Vec<usize> = (0..2).filter(|&i| slots[i].is_some()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(slots[i].map(|s| s.epoch).unwrap_or(0)));
        if order.is_empty() {
            return Err(invalid_data("no valid database header"));
        }
        let mut chosen: Option<(usize, Loaded)> = None;
        for &i in &order {
            let slot = slots[i].expect("candidate parsed");
            if let Ok(state) = Self::load_commit(&file, file_len, &slot) {
                chosen = Some((i, state));
                break;
            }
        }
        let Some((idx, state)) = chosen else {
            return Err(invalid_data("no verifiable commit in either header"));
        };
        let slot = slots[idx].expect("chosen slot parsed");
        let newest = slots[order[0]].expect("ordered slot parsed").epoch;
        let recovery = if slot.epoch < newest {
            // The newest header parsed but its chain did not verify.
            PagerRecovery::FellBack {
                recovered_epoch: slot.epoch,
                lost_epoch: newest,
            }
        } else if damaged[1 - idx] {
            // The other header holds garbage: a commit was torn mid-header
            // (or the slot rotted). Its epoch is unknowable.
            PagerRecovery::FellBack {
                recovered_epoch: slot.epoch,
                lost_epoch: 0,
            }
        } else {
            PagerRecovery::Clean
        };

        // Protect the other slot's chain too if it verifies — it is the
        // fallback commit. A broken other-chain belongs to an interrupted
        // or superseded commit and its pages are junk, hence reusable.
        let other = 1 - idx;
        let other_chain = slots[other]
            .filter(|s| s.epoch < slot.epoch && s.page_size == slot.page_size)
            .and_then(|s| Self::load_commit(&file, file_len, &s).ok())
            .map(|st| st.chain)
            .unwrap_or_default();

        let page_size = slot.page_size;
        let phys_size = (page_size + PAGE_TRAILER) as u64;
        let phys_high = 1 + ((file_len.saturating_sub(HEADER_AREA)) / phys_size) as u32;
        let mut used: BTreeSet<u32> = state.map.values().map(|e| e.phys).collect();
        used.remove(&PHYS_NONE);
        used.extend(state.chain.iter().copied());
        used.extend(other_chain.iter().copied());
        // Quarantined pages re-enter circulation through the hub's sweep,
        // not the free pool — double-listing them would hand one physical
        // page out twice.
        used.extend(state.quarantine.iter().copied());
        let mut free_phys: Vec<u32> = (1..phys_high).filter(|p| !used.contains(p)).collect();
        free_phys.sort_unstable_by_key(|&p| std::cmp::Reverse(p)); // pop() yields lowest
        let in_map: BTreeSet<PageId> = state.map.keys().copied().collect();
        let mut free_logical: Vec<PageId> = (1..state.logical_high)
            .filter(|l| !in_map.contains(l))
            .collect();
        free_logical.sort_unstable_by_key(|&l| std::cmp::Reverse(l));

        let mut chains = [Vec::new(), Vec::new()];
        chains[idx] = state.chain;
        chains[other] = other_chain;

        // No reader from the committing process survives a reopen, so the
        // persisted quarantine is immediately sweepable — it stays visible
        // as backlog until the writer's next sweep point.
        let hub = EpochHub::new();
        hub.load_quarantine(state.quarantine);

        Ok(FilePager {
            file: Arc::new(file),
            page_size,
            epoch: slot.epoch,
            slot: idx,
            map: state.map,
            logical_high: state.logical_high,
            free_logical,
            phys_high,
            free_phys,
            deferred_phys: Vec::new(),
            chains,
            user_meta: state.user_meta,
            recovery,
            read_only,
            hub,
            seq: 0,
            stats: AtomicStats::default(),
        })
    }

    fn parse_slot(buf: &[u8]) -> Option<Slot> {
        if get_u32(buf, 0) != MAGIC {
            return None;
        }
        if crc32(&buf[..HEADER_LEN]) != get_u32(buf, HEADER_LEN) {
            return None;
        }
        let page_size = get_u32(buf, 4) as usize;
        if !(64..=1 << 24).contains(&page_size) {
            return None;
        }
        let epoch = get_u32(buf, 8);
        if epoch == 0 {
            return None;
        }
        Some(Slot {
            page_size,
            epoch,
            chain_first: get_u32(buf, 12),
            chain_len: get_u32(buf, 16),
            blob_crc: get_u32(buf, 20),
        })
    }

    /// Walks and fully verifies one commit: every chain page's seal, the
    /// blob checksum, and every structural invariant of the page map.
    fn load_commit(file: &File, file_len: u64, slot: &Slot) -> std::io::Result<Loaded> {
        let phys_size = slot.page_size + PAGE_TRAILER;
        let per = phys_size - 4 - PAGE_TRAILER;
        let n = (slot.chain_len as usize).div_ceil(per);
        let mut chain = Vec::with_capacity(n);
        let mut blob = Vec::with_capacity(slot.chain_len as usize);
        let mut cur = slot.chain_first;
        let mut page = vec![0u8; phys_size];
        for _ in 0..n {
            let off = Self::phys_offset(slot.page_size, cur);
            if cur == 0 || off + phys_size as u64 > file_len || chain.contains(&cur) {
                return Err(invalid_data("metadata chain out of bounds"));
            }
            file.read_exact_at(&mut page, off)?;
            let sealed = check_page(&page).map_err(|_| invalid_data("metadata chain seal"))?;
            if sealed != slot.epoch {
                return Err(invalid_data("metadata chain from a different epoch"));
            }
            chain.push(cur);
            let take = per.min(slot.chain_len as usize - blob.len());
            blob.extend_from_slice(&page[4..4 + take]);
            cur = get_u32(&page, 0);
        }
        if cur != 0 || blob.len() != slot.chain_len as usize || crc32(&blob) != slot.blob_crc {
            return Err(invalid_data("metadata blob checksum mismatch"));
        }

        let mut r = RecordReader::new(&blob);
        let fail = |_| invalid_data("metadata blob truncated");
        let logical_high = r.get_u32().map_err(fail)?;
        let user_meta = if r.get_u8().map_err(fail)? != 0 {
            Some(r.get_bytes().map_err(fail)?.to_vec())
        } else {
            None
        };
        let count = r.get_u32().map_err(fail)?;
        let phys_high = 1 + ((file_len.saturating_sub(HEADER_AREA)) / phys_size as u64) as u32;
        let mut map = BTreeMap::new();
        let mut phys_seen = BTreeSet::new();
        let mut last_logical = 0u32;
        for _ in 0..count {
            let logical = r.get_u32().map_err(fail)?;
            let phys = r.get_u32().map_err(fail)?;
            let epoch = r.get_u32().map_err(fail)?;
            if logical == 0 || logical >= logical_high || logical <= last_logical {
                return Err(invalid_data("page map entry out of order"));
            }
            last_logical = logical;
            if phys != PHYS_NONE {
                if phys == 0 || phys >= phys_high || chain.contains(&phys) {
                    return Err(invalid_data("page map physical id out of range"));
                }
                if !phys_seen.insert(phys) {
                    return Err(invalid_data("page map physical id duplicated"));
                }
                if epoch == 0 || epoch > slot.epoch {
                    return Err(invalid_data("page map epoch out of range"));
                }
            }
            map.insert(
                logical,
                Entry {
                    phys,
                    epoch,
                    seq: 0,
                },
            );
        }
        // Quarantine section (absent in blobs from before the epoch-view
        // format): freed pages the committing process still held for
        // pinned readers. They must reference no live page.
        let quarantine = if r.remaining() != 0 {
            let count = r.get_u32().map_err(fail)?;
            let mut q = Vec::with_capacity(count as usize);
            let mut seen = BTreeSet::new();
            for _ in 0..count {
                let p = r.get_u32().map_err(fail)?;
                if p == 0 || p == PHYS_NONE || p >= phys_high {
                    return Err(invalid_data("quarantined page out of range"));
                }
                if phys_seen.contains(&p) || chain.contains(&p) {
                    return Err(invalid_data("quarantined page is live"));
                }
                if !seen.insert(p) {
                    return Err(invalid_data("quarantined page duplicated"));
                }
                q.push(p);
            }
            q
        } else {
            Vec::new()
        };
        if r.remaining() != 0 {
            return Err(invalid_data("metadata blob has trailing bytes"));
        }
        Ok(Loaded {
            map,
            logical_high,
            user_meta,
            chain,
            quarantine,
        })
    }

    /// How [`open`](Self::open) reached the current state.
    pub fn recovery(&self) -> PagerRecovery {
        self.recovery
    }

    /// Whether the pager rejects mutations.
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// The committed epoch (bumped by every successful commit).
    pub fn committed_epoch(&self) -> u32 {
        self.epoch
    }

    /// Physical size of an on-disk page image (logical size + seal trailer).
    pub fn disk_page_len(&self) -> usize {
        self.page_size + PAGE_TRAILER
    }

    /// Byte offset in the file of the physical image currently backing
    /// logical page `id`, or `None` if the page was never written (it reads
    /// as zeros and has no on-disk image). Exposed so corruption-injection
    /// tests and `fsck` can aim at exact on-disk bytes.
    pub fn page_disk_offset(&self, id: PageId) -> Option<u64> {
        let e = self.map.get(&id)?;
        (e.phys != PHYS_NONE).then(|| Self::phys_offset(self.page_size, e.phys))
    }

    /// Byte offsets of the chain pages holding the current commit's
    /// metadata, in blob order. For corruption-injection tests.
    pub fn meta_chain_offsets(&self) -> Vec<u64> {
        self.chains[self.slot]
            .iter()
            .map(|&p| Self::phys_offset(self.page_size, p))
            .collect()
    }

    /// Logical page ids currently allocated, in ascending order.
    pub fn allocated_pages(&self) -> Vec<PageId> {
        self.map.keys().copied().collect()
    }

    /// Physical pages currently in reader quarantine: freed or superseded
    /// images kept readable for pinned views. `fsck` cross-checks that none
    /// of them backs a live logical page (the load path enforces the same
    /// invariant for the persisted list).
    pub fn quarantined_phys(&self) -> Vec<u32> {
        self.hub.quarantined()
    }

    /// Whether physical page `phys` currently backs a live logical page or
    /// a commit-metadata chain page.
    pub fn phys_is_live(&self, phys: u32) -> bool {
        self.map.values().any(|e| e.phys == phys) || self.chains.iter().any(|c| c.contains(&phys))
    }

    fn phys_offset(page_size: usize, phys: u32) -> u64 {
        debug_assert!(phys != 0 && phys != PHYS_NONE);
        HEADER_AREA + (phys as u64 - 1) * (page_size + PAGE_TRAILER) as u64
    }

    /// Allocation without a quarantine sweep: used while a commit is being
    /// serialized, when the quarantine list captured in the blob must not
    /// change underneath it.
    fn alloc_phys_raw(&mut self) -> u32 {
        self.free_phys.pop().unwrap_or_else(|| {
            let p = self.phys_high;
            self.phys_high += 1;
            p
        })
    }

    fn alloc_phys(&mut self) -> u32 {
        if self.free_phys.is_empty() {
            // Writer-side GC: pages whose pinned readers have drained
            // rejoin the pool before the file grows.
            self.free_phys.extend(self.hub.sweep());
        }
        self.alloc_phys_raw()
    }

    /// Seals `data` at `epoch` and writes the physical image.
    fn write_phys(&self, phys: u32, data: &[u8], epoch: u32) -> std::io::Result<()> {
        let mut page = vec![0u8; self.disk_page_len()];
        page[..data.len()].copy_from_slice(data);
        seal_page(&mut page, epoch);
        self.file
            .write_all_at(&page, Self::phys_offset(self.page_size, phys))
    }

    /// Serializes the page map + user metadata and durably commits it as a
    /// new epoch via the alternating-header protocol.
    fn commit_state(&mut self) -> std::io::Result<()> {
        if self.read_only {
            return Err(read_only_err());
        }
        // Sweep before serializing: the quarantine list captured below
        // must stay exactly as written until the header flips (chain
        // allocation goes through the non-sweeping path for the same
        // reason).
        let swept = self.hub.sweep();
        self.free_phys.extend(swept);
        let new_epoch = self.epoch + 1;
        let target = if self.epoch == 0 { 0 } else { 1 - self.slot };
        // The target slot's old chain is two commits stale once we succeed,
        // and worthless if we crash (the slot is being overwritten either
        // way) — recycle it for the new chain.
        let stale = std::mem::take(&mut self.chains[target]);
        self.free_phys.extend(stale);

        let mut w = RecordWriter::new();
        w.put_u32(self.logical_high);
        match &self.user_meta {
            Some(m) => {
                w.put_u8(1);
                w.put_bytes(m);
            }
            None => w.put_u8(0),
        }
        w.put_u32(self.map.len() as u32);
        for (&logical, e) in &self.map {
            w.put_u32(logical);
            w.put_u32(e.phys);
            w.put_u32(e.epoch);
        }
        // Persist the reader quarantine across the flip: the still-pinned
        // backlog plus the committed images this commit supersedes (which
        // join the quarantine the moment the flip lands). A reopen must
        // not treat them as free until its own sweep reclaims them.
        let mut quarantined = self.hub.quarantined();
        quarantined.extend(self.deferred_phys.iter().copied());
        w.put_u32(quarantined.len() as u32);
        for p in &quarantined {
            w.put_u32(*p);
        }
        let blob = w.into_bytes();

        let per = self.page_size - 4;
        let n = blob.len().div_ceil(per);
        let pages: Vec<u32> = (0..n).map(|_| self.alloc_phys_raw()).collect();
        let phys_size = self.disk_page_len();
        let result = (|| {
            for (i, chunk) in blob.chunks(per).enumerate() {
                let mut page = vec![0u8; phys_size - PAGE_TRAILER];
                put_u32(&mut page, 0, pages.get(i + 1).copied().unwrap_or(0));
                page[4..4 + chunk.len()].copy_from_slice(chunk);
                self.write_phys(pages[i], &page, new_epoch)?;
            }
            // Data pages and the new chain must be durable before any
            // header can name them.
            self.file.sync_all()?;
            let mut slot_buf = vec![0u8; HEADER_SLOT];
            put_u32(&mut slot_buf, 0, MAGIC);
            put_u32(&mut slot_buf, 4, self.page_size as u32);
            put_u32(&mut slot_buf, 8, new_epoch);
            put_u32(&mut slot_buf, 12, pages.first().copied().unwrap_or(0));
            put_u32(&mut slot_buf, 16, blob.len() as u32);
            put_u32(&mut slot_buf, 20, crc32(&blob));
            let hcrc = crc32(&slot_buf[..HEADER_LEN]);
            put_u32(&mut slot_buf, HEADER_LEN, hcrc);
            self.file
                .write_all_at(&slot_buf, (target * HEADER_SLOT) as u64)?;
            self.file.sync_all()
        })();
        match result {
            Ok(()) => {
                self.epoch = new_epoch;
                self.slot = target;
                self.chains[target] = pages;
                // Superseded images from the previous epoch are no longer
                // a rollback target — but a pinned reader may still map
                // them, so they pass through the quarantine instead of
                // returning to the free pool directly.
                let deferred = std::mem::take(&mut self.deferred_phys);
                self.hub.quarantine(deferred);
                Ok(())
            }
            Err(e) => {
                // The failed commit's chain pages reference nothing durable.
                self.free_phys.extend(pages);
                Err(e)
            }
        }
    }

    /// Flushes everything and closes the file, reporting any I/O error that
    /// a silent `Drop` would have swallowed. (Dropping without closing is
    /// equivalent to a crash: the file reverts to the last commit.)
    pub fn close(mut self) -> std::io::Result<()> {
        if !self.read_only {
            self.commit_state()?;
        }
        Ok(())
    }
}

impl PageReader for FilePager {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn read(&self, id: PageId, buf: &mut [u8]) -> std::io::Result<()> {
        // Invariants (caller bugs), not I/O errors: structures own their
        // page ids and never present a foreign id or a mis-sized buffer.
        assert_eq!(buf.len(), self.page_size);
        let e = self
            .map
            .get(&id)
            .unwrap_or_else(|| panic!("read of unallocated page {id}"));
        if e.phys == PHYS_NONE {
            buf.fill(0);
            self.stats.bump_read();
            return Ok(());
        }
        let mut page = vec![0u8; self.disk_page_len()];
        // Positioned read: no shared cursor, so concurrent query threads
        // can read through `&self` without racing on the file offset.
        self.file
            .read_exact_at(&mut page, Self::phys_offset(self.page_size, e.phys))?;
        match check_page(&page) {
            Ok(epoch) if epoch == e.epoch => {
                buf.copy_from_slice(&page[..self.page_size]);
                self.stats.bump_read();
                Ok(())
            }
            _ => Err(invalid_data("page checksum mismatch")),
        }
    }

    fn live_pages(&self) -> usize {
        self.map.len()
    }

    fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }
}

impl Pager for FilePager {
    fn allocate(&mut self) -> std::io::Result<PageId> {
        if self.read_only {
            return Err(read_only_err());
        }
        self.stats.bump_allocation();
        let id = self.free_logical.pop().unwrap_or_else(|| {
            let id = self.logical_high;
            self.logical_high += 1;
            id
        });
        // No physical page yet: the image materializes on first write, and
        // until then the page reads as zeros.
        self.map.insert(
            id,
            Entry {
                phys: PHYS_NONE,
                epoch: self.epoch + 1,
                seq: self.seq,
            },
        );
        Ok(id)
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> std::io::Result<()> {
        if self.read_only {
            return Err(read_only_err());
        }
        // Invariants, not I/O errors: see `read`.
        assert_eq!(data.len(), self.page_size);
        let working = self.epoch + 1;
        let e = *self
            .map
            .get(&id)
            .unwrap_or_else(|| panic!("write of unallocated page {id}"));
        let phys = if e.phys != PHYS_NONE && e.epoch == working && e.seq == self.seq {
            // Already shadowed this epoch *and* this publish generation —
            // no commit and no published view maps the image: write in
            // place.
            e.phys
        } else {
            // Copy-on-write: the committed image must stay intact until the
            // next commit is durable — and a published view's image until
            // its readers drain — so the new bytes land elsewhere.
            let p = self.alloc_phys();
            if e.phys != PHYS_NONE {
                if e.epoch == working {
                    // Uncommitted (no rollback cares about it) but written
                    // before the last publish: a live view may map it.
                    self.hub.quarantine(vec![e.phys]);
                } else {
                    self.deferred_phys.push(e.phys);
                }
            }
            p
        };
        self.write_phys(phys, data, working)?;
        self.map.insert(
            id,
            Entry {
                phys,
                epoch: working,
                seq: self.seq,
            },
        );
        self.stats.bump_write();
        Ok(())
    }

    fn free(&mut self, id: PageId) {
        assert!(!self.read_only, "free on a read-only pager");
        let e = self
            .map
            .remove(&id)
            .unwrap_or_else(|| panic!("free of unallocated page {id}"));
        if e.phys != PHYS_NONE {
            if e.epoch > self.epoch {
                if e.seq == self.seq {
                    // Never committed, never published: nothing can roll
                    // back to it and no view maps it.
                    self.free_phys.push(e.phys);
                } else {
                    // Uncommitted but captured by a published view.
                    self.hub.quarantine(vec![e.phys]);
                }
            } else {
                self.deferred_phys.push(e.phys);
            }
        }
        self.free_logical.push(id);
        self.stats.bump_free();
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.commit_state()
    }

    fn commit_meta(&mut self, meta: &[u8]) -> std::io::Result<()> {
        if self.read_only {
            return Err(read_only_err());
        }
        let previous = self.user_meta.replace(meta.to_vec());
        match self.commit_state() {
            Ok(()) => Ok(()),
            Err(e) => {
                // The commit never became durable; keep advertising the
                // blob that is actually on disk.
                self.user_meta = previous;
                Err(e)
            }
        }
    }

    fn read_meta(&self) -> std::io::Result<Option<Vec<u8>>> {
        Ok(self.user_meta.clone())
    }

    fn publish_view(&mut self) -> std::io::Result<Box<dyn SnapshotReader>> {
        // Reclaim whatever drained before pinning the new generation.
        let swept = self.hub.sweep();
        self.free_phys.extend(swept);
        self.seq = self.hub.publish();
        Ok(Box::new(FileEpochView {
            file: Arc::clone(&self.file),
            page_size: self.page_size,
            map: self.map.clone(),
            hub: self.hub.clone(),
            _pin: self.hub.pin(),
            stats: AtomicStats::default(),
        }))
    }

    fn epoch_stats(&self) -> EpochStats {
        self.hub.stats()
    }

    fn quarantine_clean(&self) -> Option<bool> {
        Some(
            self.quarantined_phys()
                .iter()
                .all(|&p| !self.phys_is_live(p)),
        )
    }
}

/// A frozen read view of one published generation of a [`FilePager`].
///
/// Holds the page table as it stood at the publish point and reads page
/// images positionally through a shared file handle — no lock anywhere on
/// the read path, so any number of threads can query one view (or many
/// views of different generations) while the writer keeps mutating. The
/// pin it holds keeps every physical page the table references out of the
/// free pool until the view is dropped.
struct FileEpochView {
    file: Arc<File>,
    page_size: usize,
    map: BTreeMap<PageId, Entry>,
    hub: EpochHub,
    _pin: PinGuard,
    stats: AtomicStats,
}

impl PageReader for FileEpochView {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn read(&self, id: PageId, buf: &mut [u8]) -> std::io::Result<()> {
        assert_eq!(buf.len(), self.page_size);
        let e = self
            .map
            .get(&id)
            .unwrap_or_else(|| panic!("read of page {id} not in this epoch view"));
        if e.phys == PHYS_NONE {
            buf.fill(0);
            self.stats.bump_read();
            return Ok(());
        }
        let mut page = vec![0u8; self.page_size + PAGE_TRAILER];
        self.file
            .read_exact_at(&mut page, FilePager::phys_offset(self.page_size, e.phys))?;
        match check_page(&page) {
            Ok(epoch) if epoch == e.epoch => {
                buf.copy_from_slice(&page[..self.page_size]);
                self.stats.bump_read();
                Ok(())
            }
            _ => Err(invalid_data("page checksum mismatch")),
        }
    }

    fn live_pages(&self) -> usize {
        self.map.len()
    }

    fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }
}

impl SnapshotReader for FileEpochView {
    fn epoch_stats(&self) -> EpochStats {
        self.hub.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cdb_filepager_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn round_trip() {
        let path = tmp("rt");
        let mut p = FilePager::create(&path, 128).unwrap();
        let a = p.allocate().unwrap();
        let mut data = vec![0u8; 128];
        data[3] = 99;
        p.write(a, &data).unwrap();
        let mut buf = vec![0u8; 128];
        p.read(a, &mut buf).unwrap();
        assert_eq!(buf, data);
        drop(p);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn persistence_across_reopen() {
        let path = tmp("persist");
        let (a, b);
        {
            let mut p = FilePager::create(&path, 128).unwrap();
            a = p.allocate().unwrap();
            b = p.allocate().unwrap();
            p.write(a, &[7u8; 128]).unwrap();
            p.free(b);
            p.sync().unwrap();
        }
        {
            let mut p = FilePager::open(&path).unwrap();
            assert_eq!(p.page_size(), 128);
            assert_eq!(p.recovery(), PagerRecovery::Clean);
            assert_eq!(p.live_pages(), 1);
            let mut buf = vec![0u8; 128];
            p.read(a, &mut buf).unwrap();
            assert!(buf.iter().all(|&x| x == 7));
            // The freed logical id is reused.
            let c = p.allocate().unwrap();
            assert_eq!(c, b);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn uncommitted_writes_vanish_on_reopen() {
        let path = tmp("crashdrop");
        let a;
        {
            let mut p = FilePager::create(&path, 128).unwrap();
            a = p.allocate().unwrap();
            p.write(a, &[1u8; 128]).unwrap();
            p.sync().unwrap();
            // Not synced: must not survive the (simulated) crash below.
            p.write(a, &[2u8; 128]).unwrap();
            drop(p); // no close — crash semantics
        }
        let p = FilePager::open(&path).unwrap();
        let mut buf = vec![0u8; 128];
        p.read(a, &mut buf).unwrap();
        assert!(
            buf.iter().all(|&x| x == 1),
            "un-synced write must roll back to the committed image"
        );
        drop(p);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, vec![1u8; 2048]).unwrap();
        let err = FilePager::open(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_newest_header_falls_back_to_previous_commit() {
        let path = tmp("torn_fallback");
        let a;
        {
            let mut p = FilePager::create(&path, 128).unwrap();
            a = p.allocate().unwrap();
            p.write(a, &[1u8; 128]).unwrap();
            p.commit_meta(b"old").unwrap(); // epoch 2, slot 1
            p.write(a, &[2u8; 128]).unwrap();
            p.commit_meta(b"new").unwrap(); // epoch 3, slot 0
            drop(p); // everything committed; drop leaves the file untouched
        }
        // Tear the newest header slot (slot 0 holds the odd epoch 3).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[9] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let p = FilePager::open(&path).unwrap();
        assert_eq!(
            p.recovery(),
            PagerRecovery::FellBack {
                recovered_epoch: 2,
                lost_epoch: 0, // the torn slot no longer parses at all
            },
            "recovery must report the fallback"
        );
        assert_eq!(p.read_meta().unwrap().as_deref(), Some(&b"old"[..]));
        let mut buf = vec![0u8; 128];
        p.read(a, &mut buf).unwrap();
        assert!(
            buf.iter().all(|&x| x == 1),
            "fallback must see the epoch-2 image, not the newer bytes"
        );
        drop(p);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn both_headers_torn_is_invalid_data() {
        let path = tmp("torn_both");
        {
            let p = FilePager::create(&path, 128).unwrap();
            drop(p);
        }
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[1] ^= 0xFF;
        if bytes.len() > HEADER_SLOT {
            bytes[HEADER_SLOT + 1] ^= 0xFF;
        }
        std::fs::write(&path, &bytes).unwrap();
        let err = FilePager::open(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recycled_page_is_zeroed() {
        let path = tmp("zero");
        let mut p = FilePager::create(&path, 128).unwrap();
        let a = p.allocate().unwrap();
        p.write(a, &[5u8; 128]).unwrap();
        p.free(a);
        let b = p.allocate().unwrap();
        assert_eq!(a, b);
        let mut buf = vec![9u8; 128];
        p.read(b, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0));
        drop(p);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn close_reports_success_and_reopens() {
        let path = tmp("close");
        let mut p = FilePager::create(&path, 128).unwrap();
        let a = p.allocate().unwrap();
        p.write(a, &[1u8; 128]).unwrap();
        p.close().unwrap();
        let p = FilePager::open(&path).unwrap();
        let mut buf = vec![0u8; 128];
        p.read(a, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 1));
        drop(p);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_data_page_reads_as_invalid_data() {
        let path = tmp("rot");
        let a;
        {
            let mut p = FilePager::create(&path, 128).unwrap();
            a = p.allocate().unwrap();
            p.write(a, &[6u8; 128]).unwrap();
            p.close().unwrap();
        }
        let (off, disk_len) = {
            let p = FilePager::open(&path).unwrap();
            (p.page_disk_offset(a).unwrap(), p.disk_page_len())
        };
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[off as usize + 17] ^= 0x20; // flip a body bit
        std::fs::write(&path, &bytes).unwrap();
        let p = FilePager::open(&path).unwrap();
        let mut buf = vec![0u8; 128];
        let err = p.read(a, &mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert_eq!(disk_len, 128 + PAGE_TRAILER);
        drop(p);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn many_freed_pages_survive_reopen_without_double_allocation() {
        let path = tmp("manyfree");
        let total = 400usize;
        let ids: Vec<PageId>;
        {
            let mut p = FilePager::create(&path, 64).unwrap();
            ids = (0..total).map(|_| p.allocate().unwrap()).collect();
            let keep = ids[0];
            p.write(keep, &[42u8; 64]).unwrap();
            for &id in &ids[1..] {
                p.free(id);
            }
            p.sync().unwrap();
        }
        {
            let mut p = FilePager::open(&path).unwrap();
            let mut buf = vec![0u8; 64];
            p.read(ids[0], &mut buf).unwrap();
            assert!(buf.iter().all(|&x| x == 42));
            let reused: std::collections::BTreeSet<PageId> =
                (0..total - 1).map(|_| p.allocate().unwrap()).collect();
            assert_eq!(reused.len(), total - 1, "no page handed out twice");
            assert!(
                reused.iter().all(|id| ids[1..].contains(id)),
                "every freed logical id must be recycled before growing"
            );
            p.close().unwrap();
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn repeated_sync_is_space_stable() {
        let path = tmp("sync_stable");
        let mut p = FilePager::create(&path, 64).unwrap();
        let ids: Vec<PageId> = (0..100).map(|_| p.allocate().unwrap()).collect();
        for &id in &ids {
            p.write(id, &[3u8; 64]).unwrap();
        }
        for _ in 0..5 {
            p.sync().unwrap();
        }
        let len_before = std::fs::metadata(&path).unwrap().len();
        for _ in 0..5 {
            p.sync().unwrap();
        }
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            len_before,
            "alternating commits must recycle chain pages, not grow the file"
        );
        p.close().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn meta_round_trips_across_reopen() {
        let path = tmp("meta");
        let blob: Vec<u8> = (0..3000).map(|i| (i % 251) as u8).collect();
        {
            let mut p = FilePager::create(&path, 128).unwrap();
            assert_eq!(p.read_meta().unwrap(), None);
            p.commit_meta(b"first").unwrap();
            assert_eq!(p.read_meta().unwrap().as_deref(), Some(&b"first"[..]));
            p.commit_meta(&blob).unwrap();
            p.close().unwrap();
        }
        let p = FilePager::open(&path).unwrap();
        assert_eq!(p.read_meta().unwrap().as_deref(), Some(&blob[..]));
        drop(p);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sole_commit_with_corrupt_chain_is_invalid_data() {
        let path = tmp("meta_corrupt");
        let blob = vec![0xABu8; 500];
        let offsets;
        {
            let mut p = FilePager::create(&path, 128).unwrap();
            p.commit_meta(&blob).unwrap();
            offsets = p.meta_chain_offsets();
            drop(p); // keeps the exact committed bytes
        }
        // Flip a payload byte mid-chain. The epoch-1 create commit's slot
        // was overwritten by... no: create used slot 0 (epoch 1), the blob
        // commit used slot 1 (epoch 2). Corrupting epoch 2's chain makes
        // open fall back to epoch 1 — whose meta is empty. To exercise the
        // no-fallback path, corrupt the epoch-1 slot header as well.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[offsets[1] as usize + 60] ^= 0x01;
        bytes[1] ^= 0xFF; // slot 0 header (epoch 1) no longer parses
        std::fs::write(&path, &bytes).unwrap();
        let err = FilePager::open(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_newest_chain_falls_back_to_previous_meta() {
        let path = tmp("meta_fallback");
        let offsets;
        {
            let mut p = FilePager::create(&path, 128).unwrap();
            p.commit_meta(b"genesis").unwrap();
            p.commit_meta(b"doomed").unwrap();
            offsets = p.meta_chain_offsets();
            drop(p);
        }
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[offsets[0] as usize + 40] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let p = FilePager::open(&path).unwrap();
        assert!(matches!(p.recovery(), PagerRecovery::FellBack { .. }));
        assert_eq!(p.read_meta().unwrap().as_deref(), Some(&b"genesis"[..]));
        drop(p);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_append_leaves_prior_meta_readable() {
        let path = tmp("meta_torn");
        {
            let mut p = FilePager::create(&path, 128).unwrap();
            p.commit_meta(b"committed state").unwrap();
            p.close().unwrap();
        }
        // Simulate a crash mid-commit: garbage lands past the committed
        // region, but no header was flipped.
        {
            let mut bytes = std::fs::read(&path).unwrap();
            bytes.extend_from_slice(&[0x5Au8; 300]);
            std::fs::write(&path, &bytes).unwrap();
        }
        let p = FilePager::open(&path).unwrap();
        assert_eq!(
            p.read_meta().unwrap().as_deref(),
            Some(&b"committed state"[..]),
            "the prior commit must survive a torn append"
        );
        drop(p);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn alternating_commits_do_not_leak_space() {
        let path = tmp("meta_alt");
        let mut p = FilePager::create(&path, 128).unwrap();
        let data = p.allocate().unwrap();
        p.write(data, &[9u8; 128]).unwrap();
        for round in 0u8..6 {
            p.commit_meta(&vec![round; 300]).unwrap();
            assert_eq!(p.read_meta().unwrap().as_deref(), Some(&[round; 300][..]));
        }
        let len_before = std::fs::metadata(&path).unwrap().len();
        for round in 6u8..12 {
            p.commit_meta(&vec![round; 300]).unwrap();
        }
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            len_before,
            "stale meta chains must be recycled, not leaked"
        );
        p.close().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cow_protects_committed_images_until_next_commit() {
        let path = tmp("cow");
        let a;
        {
            let mut p = FilePager::create(&path, 128).unwrap();
            a = p.allocate().unwrap();
            p.write(a, &[1u8; 128]).unwrap();
            p.sync().unwrap();
            let committed_off = p.page_disk_offset(a).unwrap();
            // Overwrite after the commit: must land on a different physical
            // page, leaving the committed image untouched.
            p.write(a, &[2u8; 128]).unwrap();
            assert_ne!(
                p.page_disk_offset(a).unwrap(),
                committed_off,
                "post-commit write must be copy-on-write"
            );
            // A second write within the same epoch may go in place.
            let shadow_off = p.page_disk_offset(a).unwrap();
            p.write(a, &[3u8; 128]).unwrap();
            assert_eq!(p.page_disk_offset(a).unwrap(), shadow_off);
            drop(p); // crash
        }
        let p = FilePager::open(&path).unwrap();
        let mut buf = vec![0u8; 128];
        p.read(a, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 1), "committed image intact");
        drop(p);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn published_view_is_isolated_from_later_writes() {
        let path = tmp("view_iso");
        let mut p = FilePager::create(&path, 128).unwrap();
        let a = p.allocate().unwrap();
        p.write(a, &[1u8; 128]).unwrap();
        let view = p.publish_view().unwrap();
        // Mutate past the publish point: in-place is now forbidden, so the
        // view's image survives on its original physical page.
        p.write(a, &[2u8; 128]).unwrap();
        p.sync().unwrap();
        p.write(a, &[3u8; 128]).unwrap();
        let mut buf = vec![0u8; 128];
        view.read(a, &mut buf).unwrap();
        assert!(
            buf.iter().all(|&x| x == 1),
            "view must see the publish-time image"
        );
        p.read(a, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 3), "writer sees its latest write");
        drop(view);
        drop(p);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn freed_page_stays_readable_through_view_until_drop() {
        let path = tmp("view_gc");
        let mut p = FilePager::create(&path, 128).unwrap();
        let a = p.allocate().unwrap();
        p.write(a, &[7u8; 128]).unwrap();
        p.sync().unwrap();
        let view = p.publish_view().unwrap();
        p.free(a);
        p.sync().unwrap(); // deferred → quarantine
        assert!(p.epoch_stats().quarantined_pages >= 1);
        // Churn allocations to force the pool empty and tempt a sweep: the
        // pinned view must keep its page out of reuse.
        for _ in 0..20 {
            let id = p.allocate().unwrap();
            p.write(id, &[0xEE; 128]).unwrap();
        }
        let mut buf = vec![0u8; 128];
        view.read(a, &mut buf).unwrap();
        assert!(
            buf.iter().all(|&x| x == 7),
            "quarantined image must stay intact while the view is pinned"
        );
        drop(view);
        // With the pin gone the next sweep reclaims the backlog.
        let _ = p.publish_view().unwrap();
        assert_eq!(p.epoch_stats().quarantined_pages, 0);
        drop(p);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn quarantine_persists_across_reopen_and_is_reclaimed() {
        let path = tmp("view_persist");
        let a;
        {
            let mut p = FilePager::create(&path, 128).unwrap();
            a = p.allocate().unwrap();
            p.write(a, &[5u8; 128]).unwrap();
            p.sync().unwrap();
            let view = p.publish_view().unwrap();
            p.write(a, &[6u8; 128]).unwrap();
            p.sync().unwrap(); // old image lands in quarantine, view pinned
            assert!(p.epoch_stats().quarantined_pages >= 1);
            p.sync().unwrap(); // persists the still-pinned quarantine list
            drop(view);
            drop(p); // crash: quarantine list is on disk
        }
        {
            let mut p = FilePager::open(&path).unwrap();
            assert_eq!(p.recovery(), PagerRecovery::Clean);
            let backlog = p.epoch_stats().quarantined_pages;
            assert!(backlog >= 1, "persisted quarantine must be visible");
            let mut buf = vec![0u8; 128];
            p.read(a, &mut buf).unwrap();
            assert!(buf.iter().all(|&x| x == 6));
            // No reader survived the reopen: the backlog is sweepable, and
            // reclaimed pages must be handed out again without corruption.
            let before = std::fs::metadata(&path).unwrap().len();
            let id = p.allocate().unwrap();
            p.write(id, &[8u8; 128]).unwrap();
            p.sync().unwrap();
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                before,
                "reclaimed quarantine pages should be reused, not grow the file"
            );
            assert_eq!(p.epoch_stats().quarantined_pages, 0);
            p.close().unwrap();
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_view_reads_during_writer_churn() {
        let path = tmp("view_threads");
        let mut p = FilePager::create(&path, 128).unwrap();
        let ids: Vec<PageId> = (0..16).map(|_| p.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.write(id, &[i as u8; 128]).unwrap();
        }
        p.sync().unwrap();
        let view = p.publish_view().unwrap();
        let view = &*view;
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut buf = vec![0u8; 128];
                    for _ in 0..50 {
                        for (i, &id) in ids.iter().enumerate() {
                            view.read(id, &mut buf).unwrap();
                            assert!(buf.iter().all(|&x| x == i as u8));
                        }
                    }
                });
            }
            // Writer churns the same pages while the readers run.
            for round in 0..30u8 {
                for &id in &ids {
                    p.write(id, &[100 + round; 128]).unwrap();
                }
                if round % 10 == 0 {
                    p.sync().unwrap();
                }
            }
        });
        drop(p);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_only_open_serves_reads_and_rejects_writes() {
        let path = tmp("ro");
        let a;
        {
            let mut p = FilePager::create(&path, 128).unwrap();
            a = p.allocate().unwrap();
            p.write(a, &[4u8; 128]).unwrap();
            p.close().unwrap();
        }
        let mut p = FilePager::open_read_only(&path).unwrap();
        assert!(p.is_read_only());
        let mut buf = vec![0u8; 128];
        p.read(a, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 4));
        let err = p.write(a, &[5u8; 128]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied);
        let err = p.allocate().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied);
        let err = p.commit_meta(b"nope").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied);
        p.close().unwrap();
        // Nothing was written: the file still opens with the old content.
        let p = FilePager::open(&path).unwrap();
        p.read(a, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 4));
        drop(p);
        std::fs::remove_file(&path).unwrap();
    }
}
