//! File-backed pager with a crash-safe metadata commit protocol.
//!
//! Same page contract as [`MemPager`](crate::MemPager) but persisted to a
//! real file, one page per `page_size` slice. Page 0 is the checksummed
//! header; user pages are numbered from 1.
//!
//! # Header layout (page 0)
//!
//! ```text
//! off  field
//!   0  magic           "CDB2"
//!   4  page_size
//!   8  page_count
//!  12  meta slot A     (first_page, byte_len, epoch, crc32)
//!  28  meta slot B     (first_page, byte_len, epoch, crc32)
//!  44  free spill head (0 = none)
//!  48  inline free count
//!  52  header crc32    (computed over the page with this field zeroed)
//!  56  inline free entries, 4 bytes each
//! ```
//!
//! # Metadata commit protocol
//!
//! [`commit_meta`](Pager::commit_meta) is shadow-paged: the new blob is
//! written to freshly allocated chain pages, `sync_all` makes it durable,
//! and only then is the header rewritten so the *other* meta slot (with a
//! higher epoch and a fresh checksum) points at the new chain. A crash at
//! any point leaves the old header — and therefore the old committed blob —
//! intact, because the current slot's chain pages are never freed or reused
//! until a newer header supersedes them. Reads are strict: the max-epoch
//! slot either verifies against its checksum or surfaces
//! [`std::io::ErrorKind::InvalidData`]; there is no silent fallback to an
//! older (possibly empty) catalog.
//!
//! # Free-list spill
//!
//! Free-page entries that do not fit the header page spill to a chain of
//! dedicated pages drawn from the free list itself, replacing the old
//! "free list overflows the header page" panic. A chain that fails
//! validation on open is dropped conservatively: the pager keeps only the
//! inline (checksummed) entries, leaking the spilled pages rather than
//! risking a double allocation.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::os::unix::fs::FileExt;
use std::path::Path;

use crate::codec::{crc32, get_u32, put_u32};
use crate::pager::{AtomicStats, PageId, PageReader, Pager};
use crate::stats::IoStats;

const MAGIC: u32 = 0x4344_4232; // "CDB2"
const FLIST_MAGIC: u32 = 0x4344_4246; // "CDBF"

/// Byte offsets of the two metadata descriptor slots in the header page.
const HDR_SLOTS: [usize; 2] = [12, 28];
const HDR_SPILL: usize = 44;
const HDR_FREE_COUNT: usize = 48;
const HDR_CRC: usize = 52;
const HDR_FREE_START: usize = 56;

/// Free-list chain page: magic, entry count, next page, crc, then entries.
const FLIST_NEXT: usize = 8;
const FLIST_CRC: usize = 12;
const FLIST_ENTRIES: usize = 16;

fn invalid_data(msg: &'static str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// One metadata descriptor: where the blob chain starts, how long the blob
/// is, which commit wrote it (epoch), and its checksum. `epoch == 0` marks
/// an empty slot.
#[derive(Clone, Copy, Debug, Default)]
struct MetaSlot {
    first: PageId,
    len: u32,
    epoch: u32,
    crc: u32,
}

impl MetaSlot {
    fn read_from(buf: &[u8], off: usize) -> Self {
        MetaSlot {
            first: get_u32(buf, off),
            len: get_u32(buf, off + 4),
            epoch: get_u32(buf, off + 8),
            crc: get_u32(buf, off + 12),
        }
    }

    fn write_to(&self, buf: &mut [u8], off: usize) {
        put_u32(buf, off, self.first);
        put_u32(buf, off + 4, self.len);
        put_u32(buf, off + 8, self.epoch);
        put_u32(buf, off + 12, self.crc);
    }
}

/// A pager persisting pages to a file, with durable metadata slots.
pub struct FilePager {
    file: File,
    page_size: usize,
    page_count: u32,
    free_list: Vec<PageId>,
    allocated: Vec<bool>, // index 0 unused (header)
    /// Pages currently holding spilled free-list entries. Kept out of
    /// `free_list` (and marked allocated) so `allocate` never hands them out.
    flist_chain: Vec<PageId>,
    meta_slots: [MetaSlot; 2],
    /// Reconstructed chain for each slot; `None` means the chain failed
    /// validation and must not be read or freed.
    meta_pages: [Option<Vec<PageId>>; 2],
    closed: bool,
    stats: AtomicStats,
}

impl FilePager {
    /// Creates a new paged file, truncating any existing content.
    ///
    /// # Panics
    /// Panics if `page_size < 64` (the header needs 56 fixed bytes plus
    /// room for at least one free entry).
    pub fn create(path: &Path, page_size: usize) -> std::io::Result<Self> {
        assert!(page_size >= 64, "page size too small");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut p = FilePager {
            file,
            page_size,
            page_count: 1,
            free_list: Vec::new(),
            allocated: vec![false],
            flist_chain: Vec::new(),
            meta_slots: [MetaSlot::default(); 2],
            meta_pages: [Some(Vec::new()), Some(Vec::new())],
            closed: false,
            stats: AtomicStats::default(),
        };
        p.write_header()?;
        Ok(p)
    }

    /// Opens an existing paged file created by [`create`](Self::create).
    ///
    /// A torn or corrupted header surfaces as
    /// [`std::io::ErrorKind::InvalidData`]. A corrupted free-list spill
    /// chain is recovered conservatively (spilled entries are leaked, not
    /// reused); a corrupted metadata chain is detected lazily by
    /// [`read_meta`](Pager::read_meta).
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut head8 = [0u8; 8];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut head8)?;
        if get_u32(&head8, 0) != MAGIC {
            return Err(invalid_data("not a cdb paged file"));
        }
        let page_size = get_u32(&head8, 4) as usize;
        if !(64..=1 << 24).contains(&page_size) {
            return Err(invalid_data("implausible page size in header"));
        }
        let mut head = vec![0u8; page_size];
        file.read_exact_at(&mut head, 0)?;
        let stored_crc = get_u32(&head, HDR_CRC);
        put_u32(&mut head, HDR_CRC, 0);
        if crc32(&head) != stored_crc {
            return Err(invalid_data("header checksum mismatch"));
        }
        let page_count = get_u32(&head, 8);
        if page_count == 0 {
            return Err(invalid_data("zero page count in header"));
        }
        let meta_slots = [
            MetaSlot::read_from(&head, HDR_SLOTS[0]),
            MetaSlot::read_from(&head, HDR_SLOTS[1]),
        ];
        let inline_cap = (page_size - HDR_FREE_START) / 4;
        let inline_count = get_u32(&head, HDR_FREE_COUNT) as usize;
        if inline_count > inline_cap {
            return Err(invalid_data("inline free count exceeds capacity"));
        }
        let mut free_list = Vec::with_capacity(inline_count);
        for i in 0..inline_count {
            let f = get_u32(&head, HDR_FREE_START + i * 4);
            if f == 0 || f >= page_count {
                return Err(invalid_data("free entry out of range"));
            }
            free_list.push(f);
        }

        let (flist_chain, spilled) = Self::walk_free_chain(
            &file,
            page_size,
            page_count,
            get_u32(&head, HDR_SPILL),
            &free_list,
        );
        free_list.extend(spilled);

        let mut allocated = vec![true; page_count as usize];
        allocated[0] = false;
        for &f in &free_list {
            allocated[f as usize] = false;
        }

        let mut meta_pages = [None, None];
        for (i, slot) in meta_slots.iter().enumerate() {
            meta_pages[i] = Self::walk_meta_chain(&file, page_size, page_count, &allocated, slot);
        }

        Ok(FilePager {
            file,
            page_size,
            page_count,
            free_list,
            allocated,
            flist_chain,
            meta_slots,
            meta_pages,
            closed: false,
            stats: AtomicStats::default(),
        })
    }

    /// Walks the spilled free-list chain. Any anomaly — bad magic, bad
    /// checksum, an out-of-range or duplicate entry, a cycle — drops the
    /// whole chain: the spilled pages are leaked (stay allocated) rather
    /// than risking a page being handed out twice.
    fn walk_free_chain(
        file: &File,
        page_size: usize,
        page_count: u32,
        mut cur: PageId,
        inline: &[PageId],
    ) -> (Vec<PageId>, Vec<PageId>) {
        let per = (page_size - FLIST_ENTRIES) / 4;
        let mut chain = Vec::new();
        let mut spilled: Vec<PageId> = Vec::new();
        let mut page = vec![0u8; page_size];
        while cur != 0 {
            let bad = cur >= page_count
                || chain.contains(&cur)
                || file
                    .read_exact_at(&mut page, cur as u64 * page_size as u64)
                    .is_err();
            if bad {
                return (Vec::new(), Vec::new());
            }
            let stored_crc = get_u32(&page, FLIST_CRC);
            put_u32(&mut page, FLIST_CRC, 0);
            if get_u32(&page, 0) != FLIST_MAGIC || crc32(&page) != stored_crc {
                return (Vec::new(), Vec::new());
            }
            let count = get_u32(&page, 4) as usize;
            if count > per {
                return (Vec::new(), Vec::new());
            }
            chain.push(cur);
            for j in 0..count {
                let f = get_u32(&page, FLIST_ENTRIES + j * 4);
                if f == 0
                    || f >= page_count
                    || inline.contains(&f)
                    || spilled.contains(&f)
                    || chain.contains(&f)
                {
                    return (Vec::new(), Vec::new());
                }
                spilled.push(f);
            }
            cur = get_u32(&page, FLIST_NEXT);
        }
        (chain, spilled)
    }

    /// Walks one metadata chain by its `next` pointers. Returns `None` if
    /// the chain is structurally broken (the slot is then unreadable).
    fn walk_meta_chain(
        file: &File,
        page_size: usize,
        page_count: u32,
        allocated: &[bool],
        slot: &MetaSlot,
    ) -> Option<Vec<PageId>> {
        if slot.epoch == 0 {
            return Some(Vec::new());
        }
        let payload = page_size - 4;
        let n = (slot.len as usize).div_ceil(payload);
        let mut pages = Vec::with_capacity(n);
        let mut cur = slot.first;
        let mut next_buf = [0u8; 4];
        for _ in 0..n {
            if cur == 0
                || cur >= page_count
                || !allocated[cur as usize]
                || pages.contains(&cur)
                || file
                    .read_exact_at(&mut next_buf, cur as u64 * page_size as u64)
                    .is_err()
            {
                return None;
            }
            pages.push(cur);
            cur = u32::from_le_bytes(next_buf);
        }
        // The chain must terminate exactly where the length says it does.
        (cur == 0).then_some(pages)
    }

    /// Index of the slot holding the most recent commit, if any.
    fn current_slot(&self) -> Option<usize> {
        (0..2)
            .filter(|&i| self.meta_slots[i].epoch > 0)
            .max_by_key(|&i| self.meta_slots[i].epoch)
    }

    /// Page ids of the currently committed metadata chain, in blob order.
    /// Exposed so corruption-injection tests can aim their byte flips.
    pub fn current_meta_pages(&self) -> Vec<PageId> {
        self.current_slot()
            .and_then(|i| self.meta_pages[i].clone())
            .unwrap_or_default()
    }

    fn write_header(&mut self) -> std::io::Result<()> {
        // Return the previous spill chain to the pool, then re-select chain
        // pages from the free list itself until everything fits. The loop
        // converges because every pop removes one entry and adds `per >= 1`
        // entries of capacity.
        for p in std::mem::take(&mut self.flist_chain) {
            self.allocated[p as usize] = false;
            self.free_list.push(p);
        }
        let inline_cap = (self.page_size - HDR_FREE_START) / 4;
        let per = (self.page_size - FLIST_ENTRIES) / 4;
        while self.free_list.len() > inline_cap + per * self.flist_chain.len() {
            let p = self
                .free_list
                .pop()
                .expect("free list larger than inline capacity");
            self.allocated[p as usize] = true;
            self.flist_chain.push(p);
        }

        let inline_n = self.free_list.len().min(inline_cap);
        let rest = self.free_list[inline_n..].to_vec();
        let chain = self.flist_chain.clone();
        for (ci, &cp) in chain.iter().enumerate() {
            let start = (ci * per).min(rest.len());
            let end = ((ci + 1) * per).min(rest.len());
            let chunk = &rest[start..end];
            let mut page = vec![0u8; self.page_size];
            put_u32(&mut page, 0, FLIST_MAGIC);
            put_u32(&mut page, 4, chunk.len() as u32);
            put_u32(
                &mut page,
                FLIST_NEXT,
                chain.get(ci + 1).copied().unwrap_or(0),
            );
            for (j, &f) in chunk.iter().enumerate() {
                put_u32(&mut page, FLIST_ENTRIES + j * 4, f);
            }
            let crc = crc32(&page); // crc field still zero here
            put_u32(&mut page, FLIST_CRC, crc);
            self.raw_write(cp, &page)?;
        }

        let mut head = vec![0u8; self.page_size];
        put_u32(&mut head, 0, MAGIC);
        put_u32(&mut head, 4, self.page_size as u32);
        put_u32(&mut head, 8, self.page_count);
        for (i, slot) in self.meta_slots.iter().enumerate() {
            slot.write_to(&mut head, HDR_SLOTS[i]);
        }
        put_u32(
            &mut head,
            HDR_SPILL,
            self.flist_chain.first().copied().unwrap_or(0),
        );
        put_u32(&mut head, HDR_FREE_COUNT, inline_n as u32);
        for (i, &f) in self.free_list[..inline_n].iter().enumerate() {
            put_u32(&mut head, HDR_FREE_START + i * 4, f);
        }
        let crc = crc32(&head); // crc field still zero here
        put_u32(&mut head, HDR_CRC, crc);
        self.raw_write(0, &head)
    }

    fn raw_write(&mut self, id: PageId, data: &[u8]) -> std::io::Result<()> {
        self.file.seek(SeekFrom::Start(self.offset(id)))?;
        self.file.write_all(data)
    }

    /// Flushes the header and file contents to stable storage.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.write_header()?;
        self.file.sync_all()
    }

    /// Flushes everything and closes the file, reporting any I/O error that
    /// a silent `Drop` would have swallowed.
    pub fn close(mut self) -> std::io::Result<()> {
        self.write_header()?;
        self.file.sync_all()?;
        self.closed = true;
        Ok(())
    }

    fn offset(&self, id: PageId) -> u64 {
        id as u64 * self.page_size as u64
    }
}

impl Drop for FilePager {
    fn drop(&mut self) {
        // Best effort only; use `close`/`sync` to observe failures.
        if !self.closed {
            let _ = self.write_header();
        }
    }
}

impl PageReader for FilePager {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn read(&self, id: PageId, buf: &mut [u8]) {
        assert_eq!(buf.len(), self.page_size);
        assert!(
            (id as usize) < self.allocated.len() && self.allocated[id as usize],
            "read of unallocated page {id}"
        );
        // Positioned read: no shared cursor, so concurrent query threads can
        // read through `&self` without racing on the file offset.
        self.file
            .read_exact_at(buf, self.offset(id))
            .expect("file pager read");
        self.stats.bump_read();
    }

    fn live_pages(&self) -> usize {
        self.allocated.iter().filter(|&&a| a).count()
    }

    fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }
}

impl Pager for FilePager {
    fn allocate(&mut self) -> PageId {
        self.stats.bump_allocation();
        let id = if let Some(id) = self.free_list.pop() {
            id
        } else {
            let id = self.page_count;
            self.page_count += 1;
            self.allocated.push(false);
            id
        };
        self.allocated[id as usize] = true;
        // Zero the page on disk.
        let zero = vec![0u8; self.page_size];
        self.file
            .seek(SeekFrom::Start(self.offset(id)))
            .and_then(|_| self.file.write_all(&zero))
            .expect("file pager write");
        id
    }

    fn write(&mut self, id: PageId, data: &[u8]) {
        assert_eq!(data.len(), self.page_size);
        assert!(
            (id as usize) < self.allocated.len() && self.allocated[id as usize],
            "write of unallocated page {id}"
        );
        self.file
            .seek(SeekFrom::Start(self.offset(id)))
            .and_then(|_| self.file.write_all(data))
            .expect("file pager write");
        self.stats.bump_write();
    }

    fn free(&mut self, id: PageId) {
        assert!(
            (id as usize) < self.allocated.len() && self.allocated[id as usize],
            "free of unallocated page {id}"
        );
        self.allocated[id as usize] = false;
        self.free_list.push(id);
        self.stats.bump_free();
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn commit_meta(&mut self, meta: &[u8]) -> std::io::Result<()> {
        // Shadow protocol: build the new chain in the stale slot's space,
        // sync, then flip the header. The current slot's pages are never
        // touched, so a crash anywhere leaves the previous commit readable.
        let target = match self.current_slot() {
            Some(cur) => 1 - cur,
            None => 0,
        };
        if let Some(old) = self.meta_pages[target].take() {
            for p in old {
                if self.allocated[p as usize] {
                    self.free(p);
                }
            }
        }
        let payload = self.page_size - 4;
        let n = meta.len().div_ceil(payload);
        let pages: Vec<PageId> = (0..n).map(|_| self.allocate()).collect();
        for (i, chunk) in meta.chunks(payload).enumerate() {
            let mut page = vec![0u8; self.page_size];
            put_u32(&mut page, 0, pages.get(i + 1).copied().unwrap_or(0));
            page[4..4 + chunk.len()].copy_from_slice(chunk);
            self.write(pages[i], &page);
        }
        // Make the blob (and every preceding data-page write) durable
        // before the header can name it.
        self.file.sync_all()?;
        let epoch = self.meta_slots.iter().map(|s| s.epoch).max().unwrap_or(0) + 1;
        self.meta_slots[target] = MetaSlot {
            first: pages.first().copied().unwrap_or(0),
            len: meta.len() as u32,
            epoch,
            crc: crc32(meta),
        };
        self.meta_pages[target] = Some(pages);
        self.write_header()?;
        self.file.sync_all()
    }

    fn read_meta(&self) -> std::io::Result<Option<Vec<u8>>> {
        let Some(idx) = self.current_slot() else {
            return Ok(None);
        };
        let slot = self.meta_slots[idx];
        let Some(pages) = self.meta_pages[idx].as_ref() else {
            return Err(invalid_data("metadata chain unreadable"));
        };
        let payload = self.page_size - 4;
        let mut blob = Vec::with_capacity(slot.len as usize);
        let mut page = vec![0u8; self.page_size];
        for &p in pages {
            self.file.read_exact_at(&mut page, self.offset(p))?;
            let take = payload.min(slot.len as usize - blob.len());
            blob.extend_from_slice(&page[4..4 + take]);
        }
        if blob.len() != slot.len as usize || crc32(&blob) != slot.crc {
            return Err(invalid_data("metadata checksum mismatch"));
        }
        Ok(Some(blob))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cdb_filepager_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn round_trip() {
        let path = tmp("rt");
        let mut p = FilePager::create(&path, 128).unwrap();
        let a = p.allocate();
        let mut data = vec![0u8; 128];
        data[3] = 99;
        p.write(a, &data);
        let mut buf = vec![0u8; 128];
        p.read(a, &mut buf);
        assert_eq!(buf, data);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn persistence_across_reopen() {
        let path = tmp("persist");
        let (a, b);
        {
            let mut p = FilePager::create(&path, 128).unwrap();
            a = p.allocate();
            b = p.allocate();
            p.write(a, &[7u8; 128]);
            p.free(b);
            p.sync().unwrap();
        }
        {
            let mut p = FilePager::open(&path).unwrap();
            assert_eq!(p.page_size(), 128);
            assert_eq!(p.live_pages(), 1);
            let mut buf = vec![0u8; 128];
            p.read(a, &mut buf);
            assert!(buf.iter().all(|&x| x == 7));
            // The freed page is reused.
            let c = p.allocate();
            assert_eq!(c, b);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, vec![1u8; 256]).unwrap();
        assert!(FilePager::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_torn_header() {
        let path = tmp("torn_header");
        {
            let mut p = FilePager::create(&path, 128).unwrap();
            let _ = p.allocate();
            p.sync().unwrap();
        }
        // Flip a byte inside the checksummed header region.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[9] ^= 0xFF; // page_count field
        std::fs::write(&path, &bytes).unwrap();
        let err = match FilePager::open(&path) {
            Err(e) => e,
            Ok(_) => panic!("torn header must not open"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recycled_page_is_zeroed() {
        let path = tmp("zero");
        let mut p = FilePager::create(&path, 128).unwrap();
        let a = p.allocate();
        p.write(a, &[5u8; 128]);
        p.free(a);
        let b = p.allocate();
        assert_eq!(a, b);
        let mut buf = vec![9u8; 128];
        p.read(b, &mut buf);
        assert!(buf.iter().all(|&x| x == 0));
        drop(p);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn close_reports_success_and_reopens() {
        let path = tmp("close");
        let mut p = FilePager::create(&path, 128).unwrap();
        let a = p.allocate();
        p.write(a, &[1u8; 128]);
        p.close().unwrap();
        let p = FilePager::open(&path).unwrap();
        let mut buf = vec![0u8; 128];
        p.read(a, &mut buf);
        assert!(buf.iter().all(|&x| x == 1));
        drop(p);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn large_free_list_spills_and_survives_reopen() {
        let path = tmp("spill");
        // With 64-byte pages the header holds only 2 inline free entries;
        // freeing hundreds of pages exercises the chained spill that
        // replaced the old overflow panic.
        let total = 400usize;
        let ids: Vec<PageId>;
        {
            let mut p = FilePager::create(&path, 64).unwrap();
            ids = (0..total).map(|_| p.allocate()).collect();
            let keep = ids[0];
            p.write(keep, &[42u8; 64]);
            for &id in &ids[1..] {
                p.free(id);
            }
            p.sync().unwrap();
        }
        {
            let mut p = FilePager::open(&path).unwrap();
            let mut buf = vec![0u8; 64];
            p.read(ids[0], &mut buf);
            assert!(buf.iter().all(|&x| x == 42));
            // Reallocate as many pages as were freed. Some free entries are
            // consumed by the spill chain itself (ceil(399/12) + slack), so
            // a few allocations grow the file instead — but nothing may be
            // handed out that is neither previously freed nor fresh.
            let reused: std::collections::BTreeSet<PageId> =
                (0..total - 1).map(|_| p.allocate()).collect();
            assert_eq!(reused.len(), total - 1, "no page handed out twice");
            let fresh = reused
                .iter()
                .filter(|id| !ids[1..].contains(id))
                .collect::<Vec<_>>();
            assert!(
                fresh.iter().all(|&&id| id as usize > total),
                "non-recycled allocations must be fresh growth, got {fresh:?}"
            );
            assert!(
                fresh.len() <= 40,
                "most spilled entries must be reusable, {} were not",
                fresh.len()
            );
            p.close().unwrap();
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn repeated_sync_with_large_free_list_is_stable() {
        let path = tmp("spill_stable");
        let mut p = FilePager::create(&path, 64).unwrap();
        let ids: Vec<PageId> = (0..100).map(|_| p.allocate()).collect();
        for &id in &ids {
            p.free(id);
        }
        for _ in 0..5 {
            p.sync().unwrap();
        }
        let live_before = p.live_pages();
        p.sync().unwrap();
        assert_eq!(p.live_pages(), live_before, "chain selection must converge");
        p.close().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn meta_round_trips_across_reopen() {
        let path = tmp("meta");
        let blob: Vec<u8> = (0..3000).map(|i| (i % 251) as u8).collect();
        {
            let mut p = FilePager::create(&path, 128).unwrap();
            assert_eq!(p.read_meta().unwrap(), None);
            p.commit_meta(b"first").unwrap();
            assert_eq!(p.read_meta().unwrap().as_deref(), Some(&b"first"[..]));
            p.commit_meta(&blob).unwrap();
            p.close().unwrap();
        }
        let p = FilePager::open(&path).unwrap();
        assert_eq!(p.read_meta().unwrap().as_deref(), Some(&blob[..]));
        drop(p);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_meta_chain_is_invalid_data_not_empty() {
        let path = tmp("meta_corrupt");
        let blob = vec![0xABu8; 500];
        let victim;
        {
            let mut p = FilePager::create(&path, 128).unwrap();
            p.commit_meta(&blob).unwrap();
            victim = p.current_meta_pages()[1];
            p.close().unwrap();
        }
        // Flip a payload byte in the middle of the committed chain.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[victim as usize * 128 + 60] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let p = FilePager::open(&path).unwrap();
        let err = p.read_meta().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        drop(p);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unpublished_commit_leaves_prior_meta_readable() {
        let path = tmp("meta_torn");
        {
            let mut p = FilePager::create(&path, 128).unwrap();
            p.commit_meta(b"committed state").unwrap();
            p.close().unwrap();
        }
        // Simulate a crash mid-commit: garbage lands in fresh pages past
        // the committed region, but the header was never flipped.
        {
            let mut bytes = std::fs::read(&path).unwrap();
            bytes.extend_from_slice(&[0x5Au8; 256]);
            std::fs::write(&path, &bytes).unwrap();
        }
        let p = FilePager::open(&path).unwrap();
        assert_eq!(
            p.read_meta().unwrap().as_deref(),
            Some(&b"committed state"[..]),
            "the prior commit must survive a torn write"
        );
        drop(p);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn alternating_commits_keep_exactly_two_chains() {
        let path = tmp("meta_alt");
        let mut p = FilePager::create(&path, 128).unwrap();
        let data = p.allocate();
        p.write(data, &[9u8; 128]);
        let baseline = p.live_pages();
        for round in 0u8..6 {
            p.commit_meta(&vec![round; 300]).unwrap();
            assert_eq!(p.read_meta().unwrap().as_deref(), Some(&[round; 300][..]));
        }
        // Two shadow chains of ceil(300/124) = 3 pages each stay resident;
        // older chains must have been recycled, not leaked.
        assert!(
            p.live_pages() <= baseline + 6,
            "stale meta chains must be recycled (live={})",
            p.live_pages()
        );
        p.close().unwrap();
        std::fs::remove_file(&path).unwrap();
    }
}
