//! Paged secondary-storage substrate with I/O accounting.
//!
//! The 1999 paper evaluates index structures on a Pentium 133 by timing
//! queries against structures with 1024-byte pages and 4-byte stored values.
//! This crate reproduces that substrate in simulation: structures allocate
//! fixed-size pages through a [`Pager`] and every page access is counted in
//! [`IoStats`] — at late-90s disk speeds elapsed time is proportional to page
//! I/O, so the access counts are the experiment metric.
//!
//! * [`MemPager`] — in-memory page store (the default for experiments);
//! * [`file::FilePager`] — the same interface persisted to a real file with
//!   shadow-paged (copy-on-write) commits, per-page CRC-32 seals and
//!   dual-slot headers so a torn write can never produce a silently mixed
//!   on-disk state;
//! * [`buffer::BufferPool`] — an LRU cache decorating any pager, separating
//!   logical from physical I/O;
//! * [`fault::FaultPager`] — a decorator that injects planned I/O errors,
//!   torn writes and crash points, for deterministic recovery testing;
//! * [`heap::HeapFile`] — a slotted-page heap for variable-length records
//!   (tuple payloads fetched by the refinement step);
//! * [`wal::Wal`] — an append-only, crc-framed write-ahead log with
//!   group-commit batching and torn-tail-tolerant replay, closing the
//!   durability gap between shadow-paged checkpoints;
//! * [`codec`] — little-endian page field helpers shared by the tree crates,
//!   the fallible record codec and CRC-32 behind the durable catalog, and
//!   the [`seal_page`]/[`check_page`] page-trailer pair behind torn-page
//!   detection.
//!
//! The pager interface is split into a read half ([`PageReader`], `&self`)
//! and a write half ([`Pager`], `&mut self`), so a built structure can serve
//! concurrent queries as a shared snapshot; [`tracked::TrackedReader`] gives
//! each query its own exact access counts on top of the shared reader.
//! Every operation that can touch a device is fallible (`io::Result`);
//! panics are reserved for caller bugs, as documented per method.

pub mod buffer;
pub mod codec;
pub mod epoch;
pub mod fault;
pub mod file;
pub mod heap;
pub mod pager;
pub mod stats;
pub mod tracked;
pub mod wal;

pub use buffer::BufferPool;
pub use codec::{
    check_page, crc32, read_frame, seal_page, write_frame, CodecError, FrameError, RecordReader,
    RecordWriter, DEFAULT_MAX_FRAME, PAGE_TRAILER,
};
pub use epoch::{EpochStats, SnapshotReader};
pub use fault::{FaultOp, FaultPager, FaultPlan, TraceEntry};
pub use file::{FilePager, PagerRecovery};
pub use heap::{HeapFile, RecordId};
pub use pager::{MemPager, PageId, PageReader, Pager, DEFAULT_PAGE_SIZE};
pub use stats::IoStats;
pub use tracked::TrackedReader;
pub use wal::{wal_path, Wal, WalFaultPlan, WalScan};
