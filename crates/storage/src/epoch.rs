//! Epoch views: frozen, lock-free read snapshots of a pager, plus the
//! shared bookkeeping that makes recycling freed pages safe while such
//! snapshots are alive.
//!
//! The MVCC protocol has one writer and any number of readers:
//!
//! 1. The writer mutates its copy-on-write working set as before.
//! 2. [`Pager::publish_view`](crate::pager::Pager::publish_view) freezes
//!    the current page table into a [`SnapshotReader`] — an immutable view
//!    any thread can read without taking a lock — and starts a new
//!    *generation*. Pages captured by the view are sealed: later writes to
//!    the same logical page go to fresh physical pages.
//! 3. Physical pages superseded or freed while a view may still map them
//!    enter a **quarantine** keyed by the generation at which every
//!    then-live view must have drained. The writer sweeps the quarantine at
//!    each publish and commit; drained pages return to the free pool.
//!
//! Each view holds a `PinGuard`; dropping the view unpins its
//! generation. New views always pin the *latest* generation, so an entry
//! quarantined at generation `g` is reclaimable exactly when the oldest
//! live pin is `> g` (or no pins remain).
//!
//! Pins are taken and released from any thread; the quarantine and the
//! reclaimable pool are mutated **only by the writer** (via
//! `EpochHub::sweep` and friends), which keeps the list a commit
//! serializes stable for the duration of that commit.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::pager::PageReader;

/// Operational counters of the epoch machinery, served live so a snapshot
/// taken minutes ago still reports the *current* backlog.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Generation of the latest published view (0 before the first
    /// publish). Bumped by every `publish_view`, not by durable commits.
    pub current_epoch: u64,
    /// Live reader views across all generations (each pins one epoch).
    pub pinned_epochs: u64,
    /// Freed physical pages awaiting GC until pinned readers drain.
    pub quarantined_pages: u64,
}

/// A frozen read view of a pager at one publish point.
///
/// The whole [`PageReader`] surface works from `&self` with no lock on the
/// page-read path; [`epoch_stats`](Self::epoch_stats) reports the owning
/// pager's *live* epoch bookkeeping (not the state at capture time).
pub trait SnapshotReader: PageReader + Send + Sync {
    /// Live epoch counters of the pager this view was published from.
    fn epoch_stats(&self) -> EpochStats;
}

#[derive(Debug, Default)]
struct HubState {
    /// Latest published generation.
    current: u64,
    /// Live pin count per generation.
    pins: BTreeMap<u64, u64>,
    /// `(safe_gen, pages)`: reclaimable once the oldest live pin is
    /// `>= safe_gen` (new pins always pin the newest generation, so this
    /// condition is monotone).
    quarantine: Vec<(u64, Vec<u32>)>,
    /// Swept out of quarantine; the writer drains these back into its free
    /// pool.
    reclaimable: Vec<u32>,
}

impl HubState {
    fn quarantined_pages(&self) -> u64 {
        self.quarantine.iter().map(|(_, p)| p.len() as u64).sum()
    }
}

/// Shared epoch bookkeeping between one writer and its published views.
///
/// Cheap to clone (an `Arc` around a small mutex-guarded table); the lock
/// is held only for pin/unpin and the writer's sweep — never on the page
/// read path.
#[derive(Clone, Debug, Default)]
pub(crate) struct EpochHub {
    state: Arc<Mutex<HubState>>,
}

impl EpochHub {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HubState> {
        self.state.lock().expect("epoch hub poisoned")
    }

    /// Starts a new generation, returning it. Called by the writer at each
    /// `publish_view`.
    pub(crate) fn publish(&self) -> u64 {
        let mut st = self.lock();
        st.current += 1;
        st.current
    }

    /// Pins the current generation for a newly published view.
    pub(crate) fn pin(&self) -> PinGuard {
        let mut st = self.lock();
        let gen = st.current;
        *st.pins.entry(gen).or_insert(0) += 1;
        PinGuard {
            hub: self.clone(),
            gen,
        }
    }

    /// Quarantines freed physical pages: views published at or before the
    /// current generation may still map them, so they become reclaimable
    /// only once every such view drains.
    pub(crate) fn quarantine(&self, pages: Vec<u32>) {
        if pages.is_empty() {
            return;
        }
        let mut st = self.lock();
        let safe = st.current + 1;
        st.quarantine.push((safe, pages));
    }

    /// Restores a quarantine backlog persisted by an earlier process. No
    /// reader from that process can still exist, so the entries are
    /// immediately sweepable — but they stay visible in
    /// [`stats`](Self::stats) until the writer's next sweep.
    pub(crate) fn load_quarantine(&self, pages: Vec<u32>) {
        if pages.is_empty() {
            return;
        }
        self.lock().quarantine.push((0, pages));
    }

    /// Writer-side GC step: moves every drained quarantine entry to the
    /// reclaimable pool and returns that pool's contents. An entry is
    /// drained when no live pin is older than its safe generation.
    pub(crate) fn sweep(&self) -> Vec<u32> {
        let mut st = self.lock();
        let oldest = st.pins.keys().next().copied();
        let mut kept = Vec::new();
        let mut freed = Vec::new();
        for (safe, pages) in std::mem::take(&mut st.quarantine) {
            if oldest.is_none_or(|g| g >= safe) {
                freed.extend(pages);
            } else {
                kept.push((safe, pages));
            }
        }
        st.quarantine = kept;
        st.reclaimable.extend(freed);
        std::mem::take(&mut st.reclaimable)
    }

    /// Physical pages currently in quarantine, for persistence alongside a
    /// commit.
    pub(crate) fn quarantined(&self) -> Vec<u32> {
        let st = self.lock();
        st.quarantine
            .iter()
            .flat_map(|(_, p)| p.iter().copied())
            .collect()
    }

    /// Live counters.
    pub(crate) fn stats(&self) -> EpochStats {
        let st = self.lock();
        EpochStats {
            current_epoch: st.current,
            pinned_epochs: st.pins.values().sum(),
            quarantined_pages: st.quarantined_pages(),
        }
    }
}

/// Keeps one view's generation pinned; dropping it unpins.
#[derive(Debug)]
pub(crate) struct PinGuard {
    hub: EpochHub,
    gen: u64,
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        let mut st = self.hub.lock();
        if let Some(n) = st.pins.get_mut(&self.gen) {
            *n -= 1;
            if *n == 0 {
                st.pins.remove(&self.gen);
            }
        }
        // No sweep here: reclamation is writer-side only, so a commit can
        // serialize the quarantine without racing reader drops.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarantine_waits_for_older_pins() {
        let hub = EpochHub::new();
        hub.publish();
        let pin = hub.pin(); // view at generation 1
        hub.quarantine(vec![10, 11]); // safe at generation 2
        assert!(hub.sweep().is_empty(), "generation-1 pin still live");
        assert_eq!(hub.stats().quarantined_pages, 2);
        hub.publish();
        let newer = hub.pin(); // generation 2: does not block the entry
        assert!(hub.sweep().is_empty(), "old pin still blocks");
        drop(pin);
        assert_eq!(hub.sweep(), vec![10, 11]);
        assert_eq!(hub.stats().quarantined_pages, 0);
        drop(newer);
    }

    #[test]
    fn no_pins_means_immediate_reclaim() {
        let hub = EpochHub::new();
        hub.quarantine(vec![5]);
        assert_eq!(hub.sweep(), vec![5]);
    }

    #[test]
    fn loaded_quarantine_is_visible_then_sweepable() {
        let hub = EpochHub::new();
        hub.load_quarantine(vec![7, 8, 9]);
        assert_eq!(hub.stats().quarantined_pages, 3);
        let mut got = hub.sweep();
        got.sort_unstable();
        assert_eq!(got, vec![7, 8, 9]);
    }

    #[test]
    fn stats_count_pins_per_generation() {
        let hub = EpochHub::new();
        hub.publish();
        let a = hub.pin();
        let b = hub.pin();
        hub.publish();
        let c = hub.pin();
        assert_eq!(hub.stats().pinned_epochs, 3);
        assert_eq!(hub.stats().current_epoch, 2);
        drop(a);
        drop(c);
        assert_eq!(hub.stats().pinned_epochs, 1);
        drop(b);
        assert_eq!(hub.stats().pinned_epochs, 0);
    }
}
