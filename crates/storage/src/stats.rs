//! I/O accounting — the metric reported by every experiment.

/// Counters of page-level operations performed through a pager.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages read (one per page visit; re-reads of the same page count).
    pub reads: u64,
    /// Pages written.
    pub writes: u64,
    /// Pages allocated.
    pub allocations: u64,
    /// Pages freed.
    pub frees: u64,
}

impl IoStats {
    /// Total page accesses (reads + writes) — the headline experiment metric.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Component-wise difference `self − earlier`, for measuring a window.
    ///
    /// # Panics
    /// Panics (in debug builds) if `earlier` is not a prefix of `self`.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        debug_assert!(self.reads >= earlier.reads && self.writes >= earlier.writes);
        IoStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            allocations: self.allocations - earlier.allocations,
            frees: self.frees - earlier.frees,
        }
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &IoStats) -> IoStats {
        IoStats {
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
            allocations: self.allocations + other.allocations,
            frees: self.frees + other.frees,
        }
    }
}

impl std::fmt::Display for IoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reads={} writes={} (accesses={})",
            self.reads,
            self.writes,
            self.accesses()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accesses_sums_reads_and_writes() {
        let s = IoStats {
            reads: 3,
            writes: 2,
            allocations: 1,
            frees: 0,
        };
        assert_eq!(s.accesses(), 5);
    }

    #[test]
    fn since_window() {
        let before = IoStats {
            reads: 10,
            writes: 5,
            allocations: 2,
            frees: 1,
        };
        let after = IoStats {
            reads: 14,
            writes: 6,
            allocations: 2,
            frees: 1,
        };
        let w = after.since(&before);
        assert_eq!(w.reads, 4);
        assert_eq!(w.writes, 1);
        assert_eq!(w.accesses(), 5);
    }

    #[test]
    fn plus_accumulates() {
        let a = IoStats {
            reads: 1,
            writes: 2,
            allocations: 3,
            frees: 4,
        };
        let b = a.plus(&a);
        assert_eq!(b.reads, 2);
        assert_eq!(b.frees, 8);
    }
}
