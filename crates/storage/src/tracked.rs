//! Per-query read accounting over a shared reader.
//!
//! When many queries run concurrently against one [`PageReader`], the
//! reader's global counters interleave and `stats().since(before)` no longer
//! isolates a single query. A [`TrackedReader`] wraps the shared reader with
//! a private `Cell` counter — it is *not* `Sync`, by design: each query
//! thread builds its own wrapper, so its counts are exactly that query's
//! page accesses.

use std::cell::Cell;

use crate::pager::{PageId, PageReader};
use crate::stats::IoStats;

/// A `&self` page reader that counts its own reads, delegating the actual
/// I/O (and the global accounting) to the wrapped reader.
pub struct TrackedReader<'a> {
    inner: &'a dyn PageReader,
    reads: Cell<u64>,
}

impl<'a> TrackedReader<'a> {
    /// Wraps `inner` with a fresh zeroed counter.
    pub fn new(inner: &'a dyn PageReader) -> Self {
        TrackedReader {
            inner,
            reads: Cell::new(0),
        }
    }

    /// Pages read through this wrapper (not the global total).
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }
}

impl PageReader for TrackedReader<'_> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn read(&self, id: PageId, buf: &mut [u8]) -> std::io::Result<()> {
        // A failed read still cost an access attempt; count it either way
        // so fault-injected runs account the same as healthy ones.
        self.reads.set(self.reads.get() + 1);
        self.inner.read(id, buf)
    }

    fn live_pages(&self) -> usize {
        self.inner.live_pages()
    }

    /// Stats observed through this wrapper: only reads are non-zero, since
    /// a read-only wrapper performs no writes, allocations or frees.
    fn stats(&self) -> IoStats {
        IoStats {
            reads: self.reads.get(),
            ..IoStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::{MemPager, Pager};

    #[test]
    fn counts_only_own_reads() {
        let mut p = MemPager::new(64);
        let a = p.allocate().unwrap();
        p.write(a, &[1u8; 64]).unwrap();
        let mut buf = vec![0u8; 64];
        p.read(a, &mut buf).unwrap(); // global read outside the tracker

        let t1 = TrackedReader::new(&p);
        let t2 = TrackedReader::new(&p);
        t1.read(a, &mut buf).unwrap();
        t1.read(a, &mut buf).unwrap();
        t2.read(a, &mut buf).unwrap();
        assert_eq!(t1.reads(), 2);
        assert_eq!(t2.reads(), 1);
        assert_eq!(t1.stats().reads, 2);
        assert_eq!(t1.stats().writes, 0);
        assert_eq!(p.stats().reads, 4, "global accounting still complete");
    }

    #[test]
    fn since_windows_isolate_phases() {
        let mut p = MemPager::new(64);
        let a = p.allocate().unwrap();
        p.write(a, &[1u8; 64]).unwrap();
        let t = TrackedReader::new(&p);
        let mut buf = vec![0u8; 64];
        t.read(a, &mut buf).unwrap();
        let mid = t.stats();
        t.read(a, &mut buf).unwrap();
        t.read(a, &mut buf).unwrap();
        assert_eq!(t.stats().since(&mid).reads, 2);
    }
}
