//! Little-endian field helpers for on-page layouts, plus a fallible
//! variable-length record codec for metadata blobs.
//!
//! The tree crates serialize node contents by hand so that the on-page
//! layout — and therefore the fan-out that drives the experimental curves —
//! is explicit and matches the paper's sizing (4-byte keys and pointers).
//! The fixed-offset `put_*`/`get_*` helpers serve that purpose and panic on
//! out-of-bounds offsets (a layout bug, not a data error).
//!
//! Catalog records read back from disk are a different regime: the bytes
//! may be torn or overwritten, so decoding must *fail*, not panic.
//! [`RecordWriter`]/[`RecordReader`] provide a length-prefixed sequential
//! codec whose every read returns a [`CodecError`] on truncation, and
//! [`crc32`] provides the checksum that detects silent corruption.

/// Writes a `u16` at `off`.
#[inline]
pub fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

/// Reads a `u16` at `off`.
#[inline]
pub fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([buf[off], buf[off + 1]])
}

/// Writes a `u32` at `off`.
#[inline]
pub fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Reads a `u32` at `off`.
#[inline]
pub fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// Writes an `f32` at `off` (the paper's 4-byte stored values).
#[inline]
pub fn put_f32(buf: &mut [u8], off: usize, v: f32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Reads an `f32` at `off`.
#[inline]
pub fn get_f32(buf: &[u8], off: usize) -> f32 {
    f32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// Writes an `f64` at `off` (used by handicap slots, which need the full
/// precision of the computed surface values).
#[inline]
pub fn put_f64(buf: &mut [u8], off: usize, v: f64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// Reads an `f64` at `off`.
#[inline]
pub fn get_f64(buf: &[u8], off: usize) -> f64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    f64::from_le_bytes(b)
}

/// Error produced when decoding a variable-length record fails.
///
/// Decoding failures are expected events (torn writes, bit rot, stale
/// software reading a newer format), so they are reported, never panicked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the field could be read.
    Truncated,
    /// A field was read but its value is impossible (bad magic, bad tag,
    /// an inner length larger than the remaining buffer, …).
    Invalid(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "record truncated"),
            CodecError::Invalid(what) => write!(f, "invalid record field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Sequential little-endian record writer used for metadata blobs.
///
/// Unlike the fixed-offset helpers above, the writer owns a growable
/// buffer, so encoding can never fail; all layout decisions live in the
/// order of `put_*` calls, mirrored exactly by the [`RecordReader`].
#[derive(Debug, Default)]
pub struct RecordWriter {
    buf: Vec<u8>,
}

impl RecordWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` length prefix followed by the raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(u32::try_from(v.len()).expect("record field over 4 GiB"));
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Sequential fallible reader over bytes produced by [`RecordWriter`].
#[derive(Clone, Copy, Debug)]
pub struct RecordReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> RecordReader<'a> {
    /// Creates a reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Reads an `f64`.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(f64::from_le_bytes(b))
    }

    /// Reads a length-prefixed byte slice. A prefix larger than the
    /// remaining buffer reads as [`CodecError::Truncated`] — from the
    /// reader's side it is indistinguishable from a cut-off record.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.get_u32()? as usize;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| CodecError::Invalid("non-UTF-8 string"))
    }
}

// ----------------------------------------------------------- frame streaming

/// Largest frame payload [`read_frame`] accepts unless the caller tightens
/// the limit: 16 MiB, far above any catalog blob or wire message the engine
/// produces, far below anything that could exhaust memory.
pub const DEFAULT_MAX_FRAME: usize = 16 << 20;

/// Granularity of the incremental payload reads in [`read_frame`]: memory is
/// committed as bytes actually arrive, so a length prefix lying about a huge
/// payload costs at most one chunk before the stream runs dry.
const FRAME_CHUNK: usize = 64 << 10;

/// Why a streamed frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The stream ended cleanly on a frame boundary (no bytes of a next
    /// frame had arrived) — a peer hanging up politely, not corruption.
    Closed,
    /// The frame is structurally bad: truncated mid-frame, a length prefix
    /// over the limit, or a checksum mismatch. The stream is out of sync
    /// and must be dropped.
    Corrupt(CodecError),
    /// The underlying reader failed.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "stream closed on a frame boundary"),
            FrameError::Corrupt(e) => write!(f, "corrupt frame: {e}"),
            FrameError::Io(e) => write!(f, "i/o error reading frame: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<CodecError> for FrameError {
    fn from(e: CodecError) -> Self {
        FrameError::Corrupt(e)
    }
}

/// Writes one length-prefixed, checksummed frame:
/// `[len: u32][payload: len bytes][crc32(payload): u32]`.
///
/// The payload is typically [`RecordWriter`] output; the mirror image is
/// [`read_frame`]. The caller flushes when message boundaries matter.
pub fn write_frame<W: std::io::Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).expect("frame payload over 4 GiB");
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    Ok(())
}

/// Reads one frame written by [`write_frame`], incrementally and with an
/// explicit size limit, so a malicious or truncated stream yields
/// [`FrameError::Corrupt`] — never a panic or an attacker-sized allocation.
///
/// * A clean EOF *before any byte* of the frame reads as
///   [`FrameError::Closed`] (peer done).
/// * EOF anywhere inside the frame reads as `Corrupt(Truncated)`.
/// * A length prefix above `max_len` reads as `Corrupt(Invalid)` without
///   buffering a single payload byte.
/// * Memory is committed in 64 KiB steps as bytes actually arrive.
///
/// `ErrorKind::Interrupted` is retried; every other I/O error (including
/// read timeouts — `WouldBlock`/`TimedOut`) is surfaced as
/// [`FrameError::Io`] with whatever was consumed discarded, so callers that
/// poll with timeouts should only do so *between* frames.
pub fn read_frame<R: std::io::Read>(r: &mut R, max_len: usize) -> Result<Vec<u8>, FrameError> {
    let mut len_buf = [0u8; 4];
    match read_exact_or_eof(r, &mut len_buf)? {
        ReadOutcome::Eof0 => return Err(FrameError::Closed),
        ReadOutcome::EofPartial => return Err(FrameError::Corrupt(CodecError::Truncated)),
        ReadOutcome::Full => {}
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_len {
        return Err(FrameError::Corrupt(CodecError::Invalid(
            "frame length exceeds the configured limit",
        )));
    }
    let mut payload = Vec::new();
    while payload.len() < len {
        let take = FRAME_CHUNK.min(len - payload.len());
        let start = payload.len();
        payload.resize(start + take, 0);
        match read_exact_or_eof(r, &mut payload[start..])? {
            ReadOutcome::Full => {}
            _ => return Err(FrameError::Corrupt(CodecError::Truncated)),
        }
    }
    let mut crc_buf = [0u8; 4];
    match read_exact_or_eof(r, &mut crc_buf)? {
        ReadOutcome::Full => {}
        _ => return Err(FrameError::Corrupt(CodecError::Truncated)),
    }
    if crc32(&payload) != u32::from_le_bytes(crc_buf) {
        return Err(FrameError::Corrupt(CodecError::Invalid(
            "frame checksum mismatch",
        )));
    }
    Ok(payload)
}

enum ReadOutcome {
    /// The buffer was filled.
    Full,
    /// EOF before a single byte landed.
    Eof0,
    /// EOF after some bytes landed.
    EofPartial,
}

/// `read_exact`, but distinguishing clean EOF (0 bytes) from a torn one and
/// retrying `Interrupted`.
fn read_exact_or_eof<R: std::io::Read>(
    r: &mut R,
    buf: &mut [u8],
) -> Result<ReadOutcome, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof0
                } else {
                    ReadOutcome::EofPartial
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(ReadOutcome::Full)
}

/// IEEE CRC-32 (the ubiquitous reflected 0xEDB88320 polynomial), table-driven.
///
/// Used to checksum the catalog blob and the pager's metadata descriptors so
/// that torn or bit-flipped pages are detected instead of deserialized.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Size in bytes of the integrity trailer sealed onto every on-disk page:
/// `[epoch: u32][crc32: u32]`.
///
/// The trailer is *out of band*: [`FilePager`](crate::FilePager) stores
/// `page_size + PAGE_TRAILER` bytes per physical page, so the logical page
/// the index structures see — and therefore node fan-out and every I/O
/// count in the experiments — is unchanged by checksumming.
pub const PAGE_TRAILER: usize = 8;

/// Seals a physical page image: writes `[epoch][crc32(data ‖ epoch)]` into
/// the last [`PAGE_TRAILER`] bytes of `page`, where `data` is everything
/// before the trailer.
///
/// # Panics
/// Panics if `page` is shorter than the trailer (a layout bug).
pub fn seal_page(page: &mut [u8], epoch: u32) {
    let body = page.len() - PAGE_TRAILER;
    let crc = trailer_crc(&page[..body], epoch);
    put_u32(page, body, epoch);
    put_u32(page, body + 4, crc);
}

/// Verifies a sealed page image and returns the epoch stamped in its
/// trailer. A checksum mismatch — a torn write, bit rot, or a page that was
/// never sealed — reads as [`CodecError::Invalid`].
pub fn check_page(page: &[u8]) -> Result<u32, CodecError> {
    if page.len() < PAGE_TRAILER {
        return Err(CodecError::Truncated);
    }
    let body = page.len() - PAGE_TRAILER;
    let epoch = get_u32(page, body);
    let stored = get_u32(page, body + 4);
    if trailer_crc(&page[..body], epoch) != stored {
        return Err(CodecError::Invalid("page checksum mismatch"));
    }
    Ok(epoch)
}

/// CRC over a page body plus its epoch, so a stale page recycled from an
/// older epoch can never masquerade as current even if its bytes are intact.
fn trailer_crc(body: &[u8], epoch: u32) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in body.iter().chain(epoch.to_le_bytes().iter()) {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut buf = vec![0u8; 32];
        put_u16(&mut buf, 0, 0xBEEF);
        put_u32(&mut buf, 2, 0xDEAD_BEEF);
        put_f32(&mut buf, 6, -1.5);
        put_f64(&mut buf, 10, std::f64::consts::PI);
        assert_eq!(get_u16(&buf, 0), 0xBEEF);
        assert_eq!(get_u32(&buf, 2), 0xDEAD_BEEF);
        assert_eq!(get_f32(&buf, 6), -1.5);
        assert_eq!(get_f64(&buf, 10), std::f64::consts::PI);
    }

    #[test]
    fn infinities_round_trip() {
        let mut buf = vec![0u8; 16];
        put_f32(&mut buf, 0, f32::INFINITY);
        put_f32(&mut buf, 4, f32::NEG_INFINITY);
        put_f64(&mut buf, 8, f64::INFINITY);
        assert_eq!(get_f32(&buf, 0), f32::INFINITY);
        assert_eq!(get_f32(&buf, 4), f32::NEG_INFINITY);
        assert_eq!(get_f64(&buf, 8), f64::INFINITY);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        let mut buf = vec![0u8; 4];
        put_u32(&mut buf, 2, 1);
    }

    #[test]
    fn record_round_trips() {
        let mut w = RecordWriter::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-0.125);
        w.put_str("relation-name");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();

        let mut r = RecordReader::new(&bytes);
        assert_eq!(r.get_u8(), Ok(7));
        assert_eq!(r.get_u16(), Ok(0xBEEF));
        assert_eq!(r.get_u32(), Ok(0xDEAD_BEEF));
        assert_eq!(r.get_u64(), Ok(u64::MAX - 3));
        assert_eq!(r.get_f64(), Ok(-0.125));
        assert_eq!(r.get_str(), Ok("relation-name"));
        assert_eq!(r.get_bytes(), Ok(&[1u8, 2, 3][..]));
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.get_u8(), Err(CodecError::Truncated));
    }

    #[test]
    fn truncated_record_is_an_error() {
        let mut w = RecordWriter::new();
        w.put_str("abcdef");
        let mut bytes = w.into_bytes();
        bytes.truncate(bytes.len() - 2);
        let mut r = RecordReader::new(&bytes);
        assert_eq!(r.get_str(), Err(CodecError::Truncated));
    }

    #[test]
    fn oversized_length_prefix_is_truncation() {
        let mut bytes = vec![0u8; 8];
        put_u32(&mut bytes, 0, 1_000_000);
        let mut r = RecordReader::new(&bytes);
        assert_eq!(r.get_bytes(), Err(CodecError::Truncated));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sealed_page_round_trips() {
        let mut page = vec![0u8; 64];
        page[..10].copy_from_slice(b"node bytes");
        seal_page(&mut page, 7);
        assert_eq!(check_page(&page), Ok(7));
    }

    #[test]
    fn sealed_page_detects_body_and_trailer_flips() {
        let mut page = vec![3u8; 64];
        seal_page(&mut page, 12);
        for pos in [0, 30, 55, 56, 60, 63] {
            page[pos] ^= 0x40;
            assert!(check_page(&page).is_err(), "flip at {pos} undetected");
            page[pos] ^= 0x40;
        }
        assert_eq!(check_page(&page), Ok(12));
    }

    #[test]
    fn sealed_page_binds_the_epoch() {
        let mut a = vec![9u8; 64];
        let mut b = vec![9u8; 64];
        seal_page(&mut a, 1);
        seal_page(&mut b, 2);
        assert_ne!(a, b, "identical bodies at different epochs must differ");
        assert_eq!(check_page(&a), Ok(1));
        assert_eq!(check_page(&b), Ok(2));
    }

    #[test]
    fn unsealed_page_is_invalid() {
        let page = vec![0xA5u8; 64];
        assert!(check_page(&page).is_err());
        assert!(check_page(&[1, 2, 3]).is_err(), "shorter than a trailer");
    }

    #[test]
    fn frames_round_trip_in_sequence() {
        let mut buf = Vec::new();
        let payloads: Vec<Vec<u8>> = vec![vec![], vec![7], vec![1; 200_000], b"catalog".to_vec()];
        for p in &payloads {
            write_frame(&mut buf, p).unwrap();
        }
        let mut r = std::io::Cursor::new(buf);
        for p in &payloads {
            assert_eq!(&read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap(), p);
        }
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_FRAME),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn oversized_frame_is_rejected_before_buffering() {
        // A length prefix claiming 1 GiB over an empty stream: the reader
        // must refuse on the prefix alone, without trying to allocate.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(1u32 << 30).to_le_bytes());
        let mut r = std::io::Cursor::new(&buf);
        assert!(matches!(
            read_frame(&mut r, 1 << 20),
            Err(FrameError::Corrupt(CodecError::Invalid(_)))
        ));
        assert_eq!(r.position(), 4, "no payload bytes were consumed");
    }

    #[test]
    fn truncated_frames_are_corrupt_not_closed() {
        let mut full = Vec::new();
        write_frame(&mut full, b"some payload").unwrap();
        for cut in 1..full.len() {
            let mut r = std::io::Cursor::new(&full[..cut]);
            assert!(
                matches!(
                    read_frame(&mut r, DEFAULT_MAX_FRAME),
                    Err(FrameError::Corrupt(CodecError::Truncated))
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn frame_bit_flips_fail_the_checksum() {
        let mut full = Vec::new();
        write_frame(&mut full, b"wire message body").unwrap();
        // Flip bits in the payload and crc regions (offsets 4..) — every
        // one must surface as a checksum mismatch.
        for pos in 4..full.len() {
            full[pos] ^= 0x10;
            let mut r = std::io::Cursor::new(&full);
            assert!(
                matches!(
                    read_frame(&mut r, DEFAULT_MAX_FRAME),
                    Err(FrameError::Corrupt(_))
                ),
                "flip at {pos} undetected"
            );
            full[pos] ^= 0x10;
        }
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let mut data = b"catalog page payload".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), base);
                data[byte] ^= 1 << bit;
            }
        }
    }
}
