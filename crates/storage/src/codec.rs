//! Little-endian field helpers for on-page layouts.
//!
//! The tree crates serialize node contents by hand so that the on-page
//! layout — and therefore the fan-out that drives the experimental curves —
//! is explicit and matches the paper's sizing (4-byte keys and pointers).

/// Writes a `u16` at `off`.
#[inline]
pub fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

/// Reads a `u16` at `off`.
#[inline]
pub fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([buf[off], buf[off + 1]])
}

/// Writes a `u32` at `off`.
#[inline]
pub fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Reads a `u32` at `off`.
#[inline]
pub fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// Writes an `f32` at `off` (the paper's 4-byte stored values).
#[inline]
pub fn put_f32(buf: &mut [u8], off: usize, v: f32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Reads an `f32` at `off`.
#[inline]
pub fn get_f32(buf: &[u8], off: usize) -> f32 {
    f32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// Writes an `f64` at `off` (used by handicap slots, which need the full
/// precision of the computed surface values).
#[inline]
pub fn put_f64(buf: &mut [u8], off: usize, v: f64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// Reads an `f64` at `off`.
#[inline]
pub fn get_f64(buf: &[u8], off: usize) -> f64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    f64::from_le_bytes(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut buf = vec![0u8; 32];
        put_u16(&mut buf, 0, 0xBEEF);
        put_u32(&mut buf, 2, 0xDEAD_BEEF);
        put_f32(&mut buf, 6, -1.5);
        put_f64(&mut buf, 10, std::f64::consts::PI);
        assert_eq!(get_u16(&buf, 0), 0xBEEF);
        assert_eq!(get_u32(&buf, 2), 0xDEAD_BEEF);
        assert_eq!(get_f32(&buf, 6), -1.5);
        assert_eq!(get_f64(&buf, 10), std::f64::consts::PI);
    }

    #[test]
    fn infinities_round_trip() {
        let mut buf = vec![0u8; 16];
        put_f32(&mut buf, 0, f32::INFINITY);
        put_f32(&mut buf, 4, f32::NEG_INFINITY);
        put_f64(&mut buf, 8, f64::INFINITY);
        assert_eq!(get_f32(&buf, 0), f32::INFINITY);
        assert_eq!(get_f32(&buf, 4), f32::NEG_INFINITY);
        assert_eq!(get_f64(&buf, 8), f64::INFINITY);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        let mut buf = vec![0u8; 4];
        put_u32(&mut buf, 2, 1);
    }
}
