//! Deterministic fault injection for every fallible storage operation.
//!
//! [`FaultPager`] wraps any [`Pager`] and numbers each fallible operation
//! (reads, writes, allocations, syncs, meta commits) with a single global
//! op counter plus a per-kind counter. A [`FaultPlan`] — built explicitly
//! or derived from a seeded [`cdb_prng::StdRng`] schedule — decides which
//! op indices fail:
//!
//! - **Injected error**: the op does not reach the inner pager and returns
//!   an `io::Error` of kind `Other`.
//! - **Torn write**: only a prefix (or suffix) of the new page image is
//!   persisted, the rest keeps the old bytes, and the op reports failure —
//!   the classic partially-persisted sector write.
//! - **Crash**: all writes and allocations since the last successful
//!   `sync`/`commit_meta` are rolled back (un-synced data vanishes, as it
//!   would from a volatile page cache) and every subsequent op fails.
//!
//! Every op is appended to a trace, so a failing randomized schedule can be
//! replayed as an explicit plan.
//!
//! # Fidelity notes
//!
//! The crash rollback restores journaled page images and frees pages
//! allocated since the last sync. Pages *freed* since the last sync are not
//! resurrected — with a [`MemPager`](crate::pager::MemPager) inner their ids
//! may be recycled, so crash schedules over free-heavy workloads should use
//! a [`FilePager`](crate::file::FilePager) inner, where true crash semantics
//! come for free (drop without close, then reopen). Journaling reads the old
//! page image through the inner pager, so the inner's *physical* read stats
//! include one extra read per first-touch write between syncs; the
//! `FaultPager`'s own stats count only the caller's operations.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io;
use std::sync::Mutex;

use cdb_prng::StdRng;

use crate::epoch::{EpochStats, SnapshotReader};
use crate::pager::{PageId, PageReader, Pager};
use crate::stats::IoStats;

/// The kind of storage operation, as numbered by the fault gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOp {
    /// A page read.
    Read,
    /// A page write.
    Write,
    /// A page allocation.
    Allocate,
    /// A page free (trace-only: frees are infallible bookkeeping).
    Free,
    /// A durability barrier.
    Sync,
    /// A metadata commit.
    CommitMeta,
    /// A metadata read.
    ReadMeta,
}

/// One numbered operation observed by a [`FaultPager`].
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// 1-based global op index (0 for trace-only ops such as `free`).
    pub index: u64,
    /// What the caller asked for.
    pub op: FaultOp,
    /// The page involved, when the op targets one.
    pub page: Option<PageId>,
    /// Whether the plan made this op fail (error, torn write, or crash).
    pub injected: bool,
}

/// How a torn write splits the page between new and old bytes.
#[derive(Clone, Copy, Debug)]
struct Torn {
    /// Number of bytes of the *new* image that reach the device.
    keep: usize,
    /// `true`: the new prefix lands (old suffix survives); `false`: the new
    /// suffix lands (old prefix survives).
    from_start: bool,
}

/// A deterministic schedule of faults, keyed by op index.
///
/// All indices are 1-based: `fail_write(1)` fails the first write. Global
/// indices (`fail_op`, `crash_at`) count every fallible op; per-kind
/// indices count only ops of that kind.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    fail_global: BTreeSet<u64>,
    fail_reads: BTreeSet<u64>,
    fail_writes: BTreeSet<u64>,
    fail_syncs: BTreeSet<u64>,
    torn_writes: BTreeMap<u64, Torn>,
    crash_at: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Fails the `k`-th fallible op, whatever its kind.
    pub fn fail_op(mut self, k: u64) -> Self {
        self.fail_global.insert(k);
        self
    }

    /// Fails the `k`-th read.
    pub fn fail_read(mut self, k: u64) -> Self {
        self.fail_reads.insert(k);
        self
    }

    /// Fails the `k`-th write.
    pub fn fail_write(mut self, k: u64) -> Self {
        self.fail_writes.insert(k);
        self
    }

    /// Fails the `k`-th durability barrier (`sync` or `commit_meta`).
    pub fn fail_sync(mut self, k: u64) -> Self {
        self.fail_syncs.insert(k);
        self
    }

    /// Tears the `k`-th write: `keep` bytes of the new image land
    /// (prefix if `from_start`, else suffix), the rest keeps old bytes,
    /// and the write reports failure.
    pub fn torn_write(mut self, k: u64, keep: usize, from_start: bool) -> Self {
        self.torn_writes.insert(k, Torn { keep, from_start });
        self
    }

    /// Simulates a crash at the `k`-th fallible op (global index): the op
    /// does not happen, un-synced state rolls back, and every later op
    /// fails.
    pub fn crash_at(mut self, k: u64) -> Self {
        self.crash_at = Some(k);
        self
    }

    /// A seeded random schedule: each of the first `horizon` ops fails
    /// independently with probability `fail_prob`. Deterministic in `seed`.
    pub fn random(seed: u64, horizon: u64, fail_prob: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        for k in 1..=horizon {
            if rng.gen_bool(fail_prob) {
                plan.fail_global.insert(k);
            }
        }
        plan
    }
}

struct FaultState<P> {
    inner: P,
    plan: FaultPlan,
    ops: u64,
    reads: u64,
    writes: u64,
    syncs: u64,
    trace: Vec<TraceEntry>,
    /// Old page images for pages written since the last durability point.
    journal: HashMap<PageId, Vec<u8>>,
    /// Pages allocated since the last durability point.
    fresh: Vec<PageId>,
    crashed: bool,
    stats: IoStats,
}

/// What the fault gate decided for one op.
enum Verdict {
    Proceed,
    Inject,
    Tear(Torn),
    Crash,
}

impl<P: Pager> FaultState<P> {
    /// Numbers the op, records it, and decides its fate. The `injected`
    /// flag in the trace is patched by the caller for torn/crash verdicts
    /// too — `gate` sets it for plain injections.
    fn gate(&mut self, op: FaultOp, page: Option<PageId>) -> io::Result<Verdict> {
        if self.crashed {
            // Post-crash, the device is gone: nothing is numbered anymore.
            return Err(io::Error::other("simulated crash: pager is down"));
        }
        self.ops += 1;
        let idx = self.ops;
        let kind_idx = match op {
            FaultOp::Read => {
                self.reads += 1;
                self.reads
            }
            FaultOp::Write => {
                self.writes += 1;
                self.writes
            }
            FaultOp::Sync | FaultOp::CommitMeta => {
                self.syncs += 1;
                self.syncs
            }
            _ => 0,
        };
        let verdict = if self.plan.crash_at == Some(idx) {
            Verdict::Crash
        } else if let (FaultOp::Write, Some(t)) =
            (op, self.plan.torn_writes.get(&kind_idx).copied())
        {
            Verdict::Tear(t)
        } else if self.plan.fail_global.contains(&idx)
            || (op == FaultOp::Read && self.plan.fail_reads.contains(&kind_idx))
            || (op == FaultOp::Write && self.plan.fail_writes.contains(&kind_idx))
            || (matches!(op, FaultOp::Sync | FaultOp::CommitMeta)
                && self.plan.fail_syncs.contains(&kind_idx))
        {
            Verdict::Inject
        } else {
            Verdict::Proceed
        };
        self.trace.push(TraceEntry {
            index: idx,
            op,
            page,
            injected: !matches!(verdict, Verdict::Proceed),
        });
        Ok(verdict)
    }

    /// Saves the current image of `id` so a crash can restore it. No-op if
    /// the page already has a journal entry or was allocated this epoch.
    fn journal_old(&mut self, id: PageId) {
        if self.journal.contains_key(&id) || self.fresh.contains(&id) {
            return;
        }
        let mut old = vec![0u8; self.inner.page_size()];
        if self.inner.read(id, &mut old).is_ok() {
            self.journal.insert(id, old);
        }
    }

    /// Undoes everything since the last durability point, then marks the
    /// pager crashed. Best-effort: the inner pager is assumed healthy (the
    /// faults live in this wrapper, not below it).
    fn crash(&mut self) -> io::Error {
        let journal = std::mem::take(&mut self.journal);
        let fresh = std::mem::take(&mut self.fresh);
        for (id, old) in journal {
            if !fresh.contains(&id) {
                let _ = self.inner.write(id, &old);
            }
        }
        for id in fresh {
            self.inner.free(id);
        }
        self.crashed = true;
        io::Error::other("simulated crash: un-synced writes dropped")
    }

    fn durability_point(&mut self) {
        self.journal.clear();
        self.fresh.clear();
    }
}

/// A pager decorator that injects planned faults; see the module docs.
pub struct FaultPager<P: Pager> {
    page_size: usize,
    state: Mutex<FaultState<P>>,
}

fn injected() -> io::Error {
    io::Error::other("injected fault")
}

impl<P: Pager> FaultPager<P> {
    /// Wraps `inner` so its operations follow `plan`.
    pub fn new(inner: P, plan: FaultPlan) -> Self {
        FaultPager {
            page_size: inner.page_size(),
            state: Mutex::new(FaultState {
                inner,
                plan,
                ops: 0,
                reads: 0,
                writes: 0,
                syncs: 0,
                trace: Vec::new(),
                journal: HashMap::new(),
                fresh: Vec::new(),
                crashed: false,
                stats: IoStats::default(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState<P>> {
        self.state.lock().expect("fault pager poisoned")
    }

    fn state_mut(&mut self) -> &mut FaultState<P> {
        self.state.get_mut().expect("fault pager poisoned")
    }

    /// Total fallible ops numbered so far.
    pub fn ops(&self) -> u64 {
        self.lock().ops
    }

    /// Whether a planned crash point has been reached.
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// A copy of the op trace recorded so far.
    pub fn trace(&self) -> Vec<TraceEntry> {
        self.lock().trace.clone()
    }

    /// Unwraps the inner pager, discarding the fault machinery.
    pub fn into_inner(self) -> P {
        self.state.into_inner().expect("fault pager poisoned").inner
    }
}

impl<P: Pager> PageReader for FaultPager<P> {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn read(&self, id: PageId, buf: &mut [u8]) -> io::Result<()> {
        let mut st = self.lock();
        match st.gate(FaultOp::Read, Some(id))? {
            Verdict::Proceed => {
                st.inner.read(id, buf)?;
                st.stats.reads += 1;
                Ok(())
            }
            Verdict::Inject => Err(injected()),
            Verdict::Tear(_) => unreachable!("tear verdicts only on writes"),
            Verdict::Crash => Err(st.crash()),
        }
    }

    fn live_pages(&self) -> usize {
        self.lock().inner.live_pages()
    }

    fn stats(&self) -> IoStats {
        self.lock().stats
    }
}

impl<P: Pager> Pager for FaultPager<P> {
    fn allocate(&mut self) -> io::Result<PageId> {
        let st = self.state_mut();
        match st.gate(FaultOp::Allocate, None)? {
            Verdict::Proceed => {
                let id = st.inner.allocate()?;
                st.fresh.push(id);
                st.stats.allocations += 1;
                Ok(id)
            }
            Verdict::Inject => Err(injected()),
            Verdict::Tear(_) => unreachable!("tear verdicts only on writes"),
            Verdict::Crash => Err(st.crash()),
        }
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> io::Result<()> {
        let st = self.state_mut();
        match st.gate(FaultOp::Write, Some(id))? {
            Verdict::Proceed => {
                st.journal_old(id);
                st.inner.write(id, data)?;
                st.stats.writes += 1;
                Ok(())
            }
            Verdict::Inject => Err(injected()),
            Verdict::Tear(t) => {
                st.journal_old(id);
                let mut torn = vec![0u8; data.len()];
                // Start from the old image (a torn sector keeps stale bytes
                // where the new write didn't land), then overlay the part of
                // the new image that "made it".
                if st.inner.read(id, &mut torn).is_err() {
                    torn.fill(0);
                }
                let keep = t.keep.min(data.len());
                if t.from_start {
                    torn[..keep].copy_from_slice(&data[..keep]);
                } else {
                    torn[data.len() - keep..].copy_from_slice(&data[data.len() - keep..]);
                }
                st.inner.write(id, &torn)?;
                Err(io::Error::other("injected torn write"))
            }
            Verdict::Crash => Err(st.crash()),
        }
    }

    fn free(&mut self, id: PageId) {
        let st = self.state_mut();
        // Trace-only: free is infallible bookkeeping (see the Pager trait),
        // so it is recorded but never numbered or failed.
        st.trace.push(TraceEntry {
            index: 0,
            op: FaultOp::Free,
            page: Some(id),
            injected: false,
        });
        st.fresh.retain(|&f| f != id);
        st.journal.remove(&id);
        st.inner.free(id);
        st.stats.frees += 1;
    }

    fn reset_stats(&mut self) {
        self.state_mut().stats = IoStats::default();
    }

    fn sync(&mut self) -> io::Result<()> {
        let st = self.state_mut();
        match st.gate(FaultOp::Sync, None)? {
            Verdict::Proceed => {
                st.inner.sync()?;
                st.durability_point();
                Ok(())
            }
            Verdict::Inject => Err(injected()),
            Verdict::Tear(_) => unreachable!("tear verdicts only on writes"),
            Verdict::Crash => Err(st.crash()),
        }
    }

    fn commit_meta(&mut self, meta: &[u8]) -> io::Result<()> {
        let st = self.state_mut();
        match st.gate(FaultOp::CommitMeta, None)? {
            Verdict::Proceed => {
                st.inner.commit_meta(meta)?;
                st.durability_point();
                Ok(())
            }
            Verdict::Inject => Err(injected()),
            Verdict::Tear(_) => unreachable!("tear verdicts only on writes"),
            Verdict::Crash => Err(st.crash()),
        }
    }

    fn read_meta(&self) -> io::Result<Option<Vec<u8>>> {
        let mut st = self.lock();
        match st.gate(FaultOp::ReadMeta, None)? {
            Verdict::Proceed => st.inner.read_meta(),
            Verdict::Inject => Err(injected()),
            Verdict::Tear(_) => unreachable!("tear verdicts only on writes"),
            Verdict::Crash => Err(st.crash()),
        }
    }

    fn publish_view(&mut self) -> io::Result<Box<dyn SnapshotReader>> {
        // Not a numbered op: publishing is pure in-memory bookkeeping. A
        // crashed pager still refuses, but note that reads through an
        // already-published view bypass fault injection entirely — views
        // talk to the inner pager's file handle directly.
        let st = self.state_mut();
        if st.crashed {
            return Err(io::Error::other("simulated crash: pager is down"));
        }
        st.inner.publish_view()
    }

    fn epoch_stats(&self) -> EpochStats {
        self.lock().inner.epoch_stats()
    }

    fn quarantine_clean(&self) -> Option<bool> {
        self.lock().inner.quarantine_clean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    #[test]
    fn clean_plan_is_transparent() {
        let mut p = FaultPager::new(MemPager::new(64), FaultPlan::new());
        let a = p.allocate().unwrap();
        p.write(a, &[7u8; 64]).unwrap();
        let mut buf = vec![0u8; 64];
        p.read(a, &mut buf).unwrap();
        assert_eq!(buf, vec![7u8; 64]);
        p.commit_meta(b"m").unwrap();
        assert_eq!(p.read_meta().unwrap().as_deref(), Some(&b"m"[..]));
        assert_eq!(p.ops(), 5);
        assert!(p.trace().iter().all(|t| !t.injected));
    }

    #[test]
    fn kth_global_op_fails_exactly_once() {
        // Ops: 1 allocate, 2 write, 3 read.
        let mut p = FaultPager::new(MemPager::new(64), FaultPlan::new().fail_op(2));
        let a = p.allocate().unwrap();
        let err = p.write(a, &[1u8; 64]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        // The failed write never reached the device.
        let mut buf = vec![0u8; 64];
        p.read(a, &mut buf).unwrap();
        assert_eq!(buf, vec![0u8; 64]);
        // Same call again: op index has moved on, so it now succeeds.
        p.write(a, &[1u8; 64]).unwrap();
        let trace = p.trace();
        assert_eq!(trace.iter().filter(|t| t.injected).count(), 1);
        assert_eq!(trace[1].op, FaultOp::Write);
        assert_eq!(trace[1].page, Some(a));
    }

    #[test]
    fn per_kind_indices_ignore_other_ops() {
        let mut p = FaultPager::new(MemPager::new(64), FaultPlan::new().fail_read(2));
        let a = p.allocate().unwrap();
        p.write(a, &[1u8; 64]).unwrap();
        let mut buf = vec![0u8; 64];
        p.read(a, &mut buf).unwrap(); // read #1: fine
        assert!(p.read(a, &mut buf).is_err()); // read #2: injected
        p.read(a, &mut buf).unwrap(); // read #3: fine
    }

    #[test]
    fn torn_write_persists_only_the_prefix() {
        let mut p = FaultPager::new(MemPager::new(64), FaultPlan::new().torn_write(2, 16, true));
        let a = p.allocate().unwrap();
        p.write(a, &[1u8; 64]).unwrap();
        let err = p.write(a, &[2u8; 64]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        let mut buf = vec![0u8; 64];
        p.read(a, &mut buf).unwrap();
        assert_eq!(&buf[..16], &[2u8; 16], "new prefix landed");
        assert_eq!(&buf[16..], &[1u8; 48], "old suffix survived the tear");
    }

    #[test]
    fn crash_drops_unsynced_writes_and_downs_the_pager() {
        let mut p = FaultPager::new(MemPager::new(64), FaultPlan::new().crash_at(6));
        let a = p.allocate().unwrap(); // op 1
        p.write(a, &[1u8; 64]).unwrap(); // op 2
        p.sync().unwrap(); // op 3: durability point
        p.write(a, &[2u8; 64]).unwrap(); // op 4
        let b = p.allocate().unwrap(); // op 5
        assert!(p.write(b, &[3u8; 64]).is_err()); // op 6: crash
        assert!(p.crashed());
        // Everything after the crash fails without being numbered.
        let ops = p.ops();
        assert!(p.sync().is_err());
        let mut buf = vec![0u8; 64];
        assert!(p.read(a, &mut buf).is_err());
        assert_eq!(p.ops(), ops);
        // The inner pager holds exactly the last-synced state.
        let inner = p.into_inner();
        inner.read(a, &mut buf).unwrap();
        assert_eq!(buf, vec![1u8; 64], "post-sync write rolled back");
        assert_eq!(inner.live_pages(), 1, "unsynced allocation rolled back");
    }

    #[test]
    fn random_schedules_are_deterministic_in_the_seed() {
        let run = |seed| {
            let mut p = FaultPager::new(MemPager::new(64), FaultPlan::random(seed, 50, 0.2));
            let mut outcome = Vec::new();
            let mut pages = Vec::new();
            for i in 0..25u8 {
                match p.allocate() {
                    Ok(id) => {
                        pages.push(id);
                        outcome.push(p.write(id, &[i; 64]).is_ok());
                    }
                    Err(_) => outcome.push(false),
                }
            }
            outcome
        };
        assert_eq!(run(42), run(42), "same seed, same faults");
        assert_ne!(run(42), run(43), "different seed, different schedule");
    }

    #[test]
    fn trace_supports_replaying_a_random_schedule_explicitly() {
        let mut p = FaultPager::new(MemPager::new(64), FaultPlan::random(7, 40, 0.3));
        let mut results = Vec::new();
        let a = p.allocate().unwrap_or(1);
        for i in 0..15u8 {
            results.push(p.write(a, &[i; 64]).is_ok());
        }
        // Rebuild an explicit plan from the trace and replay it.
        let mut plan = FaultPlan::new();
        for t in p.trace().iter().filter(|t| t.injected) {
            plan = plan.fail_op(t.index);
        }
        let mut q = FaultPager::new(MemPager::new(64), plan);
        let mut replayed = Vec::new();
        let b = q.allocate().unwrap_or(1);
        for i in 0..15u8 {
            replayed.push(q.write(b, &[i; 64]).is_ok());
        }
        assert_eq!(results, replayed);
    }

    #[test]
    fn failed_sync_is_not_a_durability_point() {
        let mut p = FaultPager::new(MemPager::new(64), FaultPlan::new().fail_sync(1).crash_at(4));
        let a = p.allocate().unwrap(); // op 1
        p.write(a, &[9u8; 64]).unwrap(); // op 2
        assert!(p.sync().is_err()); // op 3: injected sync failure
        let mut buf = vec![0u8; 64];
        assert!(p.read(a, &mut buf).is_err()); // op 4: crash
        let inner = p.into_inner();
        assert_eq!(
            inner.live_pages(),
            0,
            "nothing was ever durable: the write and allocation both rolled back"
        );
    }
}
