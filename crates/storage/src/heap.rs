//! A slotted-page heap file for variable-length records.
//!
//! Tuple payloads (the serialized constraint conjunctions) live here; the
//! refinement step of the approximate query techniques fetches candidate
//! tuples through this file, so those page accesses are part of the measured
//! query cost.
//!
//! Page layout:
//!
//! ```text
//! [u16 slot_count][u16 free_off] [slot0: u16 off, u16 len] [slot1] ...
//!                                              ... data grows downward ...
//! ```
//!
//! Deleted slots keep their directory entry with `len = 0xFFFF` (tombstone)
//! so record ids remain stable.
//!
//! Every operation that touches a page is fallible: over a durable pager a
//! read can fail with an I/O error or a checksum mismatch, and the heap
//! propagates it instead of panicking — the heap's *own* invariants (a
//! foreign page id, an out-of-range slot) still panic, because they are
//! caller bugs rather than storage conditions.

use crate::codec::{get_u16, put_u16};
use crate::pager::{PageId, PageReader, Pager};

const HDR: usize = 4;
const SLOT: usize = 4;
const TOMBSTONE: u16 = u16::MAX;

/// Stable identifier of a record: `(page, slot)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    /// Page holding the record.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

/// A heap file over a pager. Pages are owned exclusively by the heap.
#[derive(Clone, Debug)]
pub struct HeapFile {
    pages: Vec<PageId>,
    page_size: usize,
}

impl HeapFile {
    /// Creates an empty heap file allocating from `pager`.
    pub fn new(pager: &mut dyn Pager) -> Self {
        let _ = pager; // first page allocated lazily
        HeapFile {
            pages: Vec::new(),
            page_size: pager.page_size(),
        }
    }

    /// Re-attaches a heap from its persisted page list (the pages must
    /// already be allocated in the pager and hold valid slotted content).
    pub fn from_pages(page_size: usize, pages: Vec<PageId>) -> Self {
        HeapFile { pages, page_size }
    }

    /// The page ids owned by the heap, in insertion order. This list is what
    /// the catalog persists so a reopened database can re-attach the heap
    /// without rescanning.
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Largest record storable on a page of this heap.
    pub fn max_record_len(&self) -> usize {
        self.page_size - HDR - SLOT
    }

    /// Number of pages owned by the heap (the space metric).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Inserts a record and returns its id.
    ///
    /// # Panics
    /// Panics if `data.len() > max_record_len()` or `data` is empty.
    pub fn insert(&mut self, pager: &mut dyn Pager, data: &[u8]) -> std::io::Result<RecordId> {
        assert!(!data.is_empty(), "empty records are not supported");
        assert!(
            data.len() <= self.max_record_len(),
            "record of {} bytes exceeds page capacity {}",
            data.len(),
            self.max_record_len()
        );
        let mut buf = vec![0u8; self.page_size];
        // Try the last page first (append-mostly workloads).
        if let Some(&last) = self.pages.last() {
            pager.read(last, &mut buf)?;
            if let Some(slot) = try_insert(&mut buf, data, self.page_size) {
                pager.write(last, &buf)?;
                return Ok(RecordId { page: last, slot });
            }
        }
        // Fresh page.
        let id = pager.allocate()?;
        buf.fill(0);
        put_u16(&mut buf, 2, self.page_size as u16); // free_off = page end
        let slot = try_insert(&mut buf, data, self.page_size).expect("fits in a fresh page");
        pager.write(id, &buf)?;
        self.pages.push(id);
        Ok(RecordId { page: id, slot })
    }

    /// Reads a record. Returns `Ok(None)` for a tombstoned slot.
    ///
    /// # Panics
    /// Panics if the id does not refer to a heap page/slot.
    pub fn get(&self, pager: &dyn PageReader, id: RecordId) -> std::io::Result<Option<Vec<u8>>> {
        assert!(self.pages.contains(&id.page), "foreign page in RecordId");
        let mut buf = vec![0u8; self.page_size];
        pager.read(id.page, &mut buf)?;
        let n = get_u16(&buf, 0);
        assert!(id.slot < n, "slot {} out of range {n}", id.slot);
        let off = get_u16(&buf, HDR + id.slot as usize * SLOT) as usize;
        let len = get_u16(&buf, HDR + id.slot as usize * SLOT + 2);
        if len == TOMBSTONE {
            return Ok(None);
        }
        Ok(Some(buf[off..off + len as usize].to_vec()))
    }

    /// Reads many records with one page access per *distinct page*: the
    /// batched fetch used by query refinement (candidates are grouped by
    /// page before reading). Results align with `ids`; tombstoned slots
    /// yield `None`.
    pub fn get_many(
        &self,
        pager: &dyn PageReader,
        ids: &[RecordId],
    ) -> std::io::Result<Vec<Option<Vec<u8>>>> {
        let mut order: Vec<usize> = (0..ids.len()).collect();
        order.sort_by_key(|&i| (ids[i].page, ids[i].slot));
        let mut out: Vec<Option<Vec<u8>>> = vec![None; ids.len()];
        let mut buf = vec![0u8; self.page_size];
        let mut loaded: Option<PageId> = None;
        for i in order {
            let id = ids[i];
            assert!(self.pages.contains(&id.page), "foreign page in RecordId");
            if loaded != Some(id.page) {
                pager.read(id.page, &mut buf)?;
                loaded = Some(id.page);
            }
            let n = get_u16(&buf, 0);
            assert!(id.slot < n, "slot {} out of range {n}", id.slot);
            let off = get_u16(&buf, HDR + id.slot as usize * SLOT) as usize;
            let len = get_u16(&buf, HDR + id.slot as usize * SLOT + 2);
            if len != TOMBSTONE {
                out[i] = Some(buf[off..off + len as usize].to_vec());
            }
        }
        Ok(out)
    }

    /// Tombstones a record. Returns `true` if it was live.
    pub fn delete(&mut self, pager: &mut dyn Pager, id: RecordId) -> std::io::Result<bool> {
        assert!(self.pages.contains(&id.page), "foreign page in RecordId");
        let mut buf = vec![0u8; self.page_size];
        pager.read(id.page, &mut buf)?;
        let n = get_u16(&buf, 0);
        assert!(id.slot < n, "slot out of range");
        let len_off = HDR + id.slot as usize * SLOT + 2;
        if get_u16(&buf, len_off) == TOMBSTONE {
            return Ok(false);
        }
        put_u16(&mut buf, len_off, TOMBSTONE);
        pager.write(id.page, &buf)?;
        Ok(true)
    }

    /// Scans all live records in storage order.
    pub fn scan(&self, pager: &dyn PageReader) -> std::io::Result<Vec<(RecordId, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut buf = vec![0u8; self.page_size];
        for &page in &self.pages {
            pager.read(page, &mut buf)?;
            let n = get_u16(&buf, 0);
            for slot in 0..n {
                let off = get_u16(&buf, HDR + slot as usize * SLOT) as usize;
                let len = get_u16(&buf, HDR + slot as usize * SLOT + 2);
                if len != TOMBSTONE {
                    out.push((
                        RecordId { page, slot },
                        buf[off..off + len as usize].to_vec(),
                    ));
                }
            }
        }
        Ok(out)
    }

    /// Frees every heap page back to the pager.
    pub fn destroy(self, pager: &mut dyn Pager) {
        for page in self.pages {
            pager.free(page);
        }
    }
}

/// Tries to append `data` to the page image; returns the new slot on success.
fn try_insert(buf: &mut [u8], data: &[u8], page_size: usize) -> Option<u16> {
    let n = get_u16(buf, 0) as usize;
    let free_off = {
        let f = get_u16(buf, 2) as usize;
        if f == 0 {
            page_size
        } else {
            f
        }
    };
    let dir_end = HDR + (n + 1) * SLOT;
    if dir_end + data.len() > free_off {
        return None; // no room for slot + data
    }
    let new_off = free_off - data.len();
    buf[new_off..free_off].copy_from_slice(data);
    put_u16(buf, HDR + n * SLOT, new_off as u16);
    put_u16(buf, HDR + n * SLOT + 2, data.len() as u16);
    put_u16(buf, 0, (n + 1) as u16);
    put_u16(buf, 2, new_off as u16);
    Some(n as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    #[test]
    fn insert_and_get() {
        let mut pager = MemPager::new(128);
        let mut heap = HeapFile::new(&mut pager);
        let a = heap.insert(&mut pager, b"hello").unwrap();
        let b = heap.insert(&mut pager, b"world!").unwrap();
        assert_eq!(heap.get(&pager, a).unwrap().unwrap(), b"hello");
        assert_eq!(heap.get(&pager, b).unwrap().unwrap(), b"world!");
        assert_eq!(heap.page_count(), 1);
    }

    #[test]
    fn spills_to_new_pages() {
        let mut pager = MemPager::new(128);
        let mut heap = HeapFile::new(&mut pager);
        let payload = vec![7u8; 40];
        let ids: Vec<_> = (0..10)
            .map(|_| heap.insert(&mut pager, &payload).unwrap())
            .collect();
        assert!(heap.page_count() > 1, "should overflow a 128-byte page");
        for id in ids {
            assert_eq!(heap.get(&pager, id).unwrap().unwrap(), payload);
        }
    }

    #[test]
    fn delete_tombstones() {
        let mut pager = MemPager::new(128);
        let mut heap = HeapFile::new(&mut pager);
        let a = heap.insert(&mut pager, b"abc").unwrap();
        let b = heap.insert(&mut pager, b"def").unwrap();
        assert!(heap.delete(&mut pager, a).unwrap());
        assert!(
            !heap.delete(&mut pager, a).unwrap(),
            "second delete is a no-op"
        );
        assert!(heap.get(&pager, a).unwrap().is_none());
        assert_eq!(heap.get(&pager, b).unwrap().unwrap(), b"def");
    }

    #[test]
    fn scan_returns_live_records_in_order() {
        let mut pager = MemPager::new(256);
        let mut heap = HeapFile::new(&mut pager);
        let ids: Vec<_> = (0..5u8)
            .map(|i| heap.insert(&mut pager, &[i; 10]).unwrap())
            .collect();
        heap.delete(&mut pager, ids[2]).unwrap();
        let all = heap.scan(&pager).unwrap();
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].1, vec![0u8; 10]);
        assert_eq!(all[2].1, vec![3u8; 10], "deleted record skipped");
    }

    #[test]
    fn max_record_roundtrips() {
        let mut pager = MemPager::new(128);
        let mut heap = HeapFile::new(&mut pager);
        let big = vec![1u8; heap.max_record_len()];
        let id = heap.insert(&mut pager, &big).unwrap();
        assert_eq!(heap.get(&pager, id).unwrap().unwrap(), big);
    }

    #[test]
    #[should_panic]
    fn oversized_record_panics() {
        let mut pager = MemPager::new(128);
        let mut heap = HeapFile::new(&mut pager);
        let _ = heap.insert(&mut pager, &vec![0u8; 1000]);
    }

    #[test]
    fn destroy_frees_pages() {
        let mut pager = MemPager::new(128);
        let mut heap = HeapFile::new(&mut pager);
        for i in 0..20u8 {
            heap.insert(&mut pager, &[i; 30]).unwrap();
        }
        let pages = heap.page_count();
        assert!(pages > 0);
        heap.destroy(&mut pager);
        assert_eq!(pager.live_pages(), 0);
    }

    #[test]
    fn get_many_batches_page_reads() {
        let mut pager = MemPager::new(256);
        let mut heap = HeapFile::new(&mut pager);
        let ids: Vec<_> = (0..30u8)
            .map(|i| heap.insert(&mut pager, &[i; 10]).unwrap())
            .collect();
        heap.delete(&mut pager, ids[7]).unwrap();
        pager.reset_stats();
        // Fetch everything in a scrambled order.
        let mut order: Vec<RecordId> = ids.clone();
        order.reverse();
        let got = heap.get_many(&pager, &order).unwrap();
        assert_eq!(got.len(), 30);
        assert_eq!(got[29], Some(vec![0u8; 10]), "alignment with input order");
        assert_eq!(got[30 - 1 - 7], None, "tombstone yields None");
        assert_eq!(
            pager.stats().reads as usize,
            heap.page_count(),
            "one read per distinct page"
        );
    }

    #[test]
    fn reads_cost_io() {
        let mut pager = MemPager::new(128);
        let mut heap = HeapFile::new(&mut pager);
        let id = heap.insert(&mut pager, b"x").unwrap();
        pager.reset_stats();
        heap.get(&pager, id).unwrap();
        assert_eq!(pager.stats().reads, 1, "each fetch is one page read");
    }
}
