//! Append-only write-ahead log with group commit.
//!
//! The shadow-paged [`FilePager`](crate::FilePager) makes *checkpoints*
//! atomic, but between checkpoints an acknowledged mutation lives only in
//! memory. The [`Wal`] closes that gap: every mutation appends one typed
//! record (encoded by the engine — this layer sees opaque bytes) stamped
//! with a monotonically increasing **LSN**, and a single [`Wal::sync`]
//! makes the whole batch durable with one `fsync` — the group-commit
//! barrier a server issues once per drained write queue, after which every
//! reply in the batch may be acknowledged.
//!
//! # File format
//!
//! A sidecar file next to the database (`<db>.wal`), built entirely from
//! the [`codec`](crate::codec) frame layer — every frame is
//! `[len:u32][payload][crc32:u32]`:
//!
//! ```text
//! header frame:  magic "CDBW" u32 | version u16 | start_lsn u64
//! record frame:  lsn u64 | record bytes …        (repeated)
//! ```
//!
//! `start_lsn` is the LSN of the first record the file may contain; the
//! engine persists a *durable LSN* watermark in its catalog, so replay
//! filters out records an earlier checkpoint already covers — a crash
//! between a committed checkpoint and the log truncation is harmless.
//!
//! # Torn tails
//!
//! Appends are buffered in memory and reach the file only inside
//! [`Wal::sync`], so a crash mid-sync leaves a prefix of the batch on
//! disk — possibly ending in a half-written frame. [`Wal::read`] stops at
//! the first frame that fails its CRC (or breaks LSN monotonicity) and
//! reports `torn_tail`: everything before it was written by a completed
//! `write_all`, everything at or after it was never acknowledged, so
//! dropping it loses nothing the durability contract promised.
//!
//! # Fault injection
//!
//! Mirroring [`FaultPager`](crate::FaultPager), a [`WalFaultPlan`] crashes
//! the log at the k-th WAL operation (appends, syncs and truncations share
//! one 1-based counter): the op fails, un-synced buffered records vanish
//! (a crash on `sync` may first land a torn prefix), and every later op
//! fails — the volatile page cache losing power.

use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::codec::{
    read_frame, write_frame, FrameError, RecordReader, RecordWriter, DEFAULT_MAX_FRAME,
};

/// WAL magic: `"CDBW"`.
const MAGIC: u32 = 0x4344_4257;
/// Current WAL format version.
const VERSION: u16 = 1;

/// The sidecar log path for a database file: `<path>.wal`.
pub fn wal_path(db_path: &Path) -> PathBuf {
    let mut os = db_path.as_os_str().to_os_string();
    os.push(".wal");
    PathBuf::from(os)
}

fn header_frame(start_lsn: u64) -> Vec<u8> {
    let mut w = RecordWriter::new();
    w.put_u32(MAGIC);
    w.put_u16(VERSION);
    w.put_u64(start_lsn);
    let mut buf = Vec::new();
    write_frame(&mut buf, &w.into_bytes()).expect("in-memory write cannot fail");
    buf
}

fn crashed() -> io::Error {
    io::Error::other("simulated crash: wal is down")
}

/// A deterministic WAL fault schedule; see the module docs.
#[derive(Clone, Copy, Debug, Default)]
pub struct WalFaultPlan {
    crash_at: Option<u64>,
    torn_bytes: Option<usize>,
}

impl WalFaultPlan {
    /// A plan that injects nothing.
    pub fn new() -> Self {
        WalFaultPlan::default()
    }

    /// Crashes the log at its `k`-th operation (1-based, counting every
    /// append, sync and truncate): the op fails, buffered records are
    /// dropped, and every later op fails.
    pub fn crash_at(mut self, k: u64) -> Self {
        self.crash_at = Some(k);
        self
    }

    /// When the crash lands on a `sync`, exactly `n` bytes of the buffered
    /// batch reach the file before power is lost (default: half of the
    /// buffer — usually mid-frame, exercising torn-tail recovery).
    pub fn torn_bytes(mut self, n: usize) -> Self {
        self.torn_bytes = Some(n);
        self
    }
}

/// What [`Wal::read`] / [`Wal::read_from`] found in a log file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalScan {
    /// The LSN the header promises for the first record.
    pub start_lsn: u64,
    /// `(lsn, record bytes)` in append order. A bounded
    /// [`read_from`](Wal::read_from) may skip a prefix and cap the count,
    /// so the first LSN here can exceed `start_lsn`.
    pub records: Vec<(u64, Vec<u8>)>,
    /// The scan stopped at a frame that failed its CRC, broke LSN
    /// monotonicity, or a header that never fully landed. Everything after
    /// the stop was never acknowledged.
    pub torn_tail: bool,
    /// File length in bytes.
    pub bytes: u64,
    /// Byte offset just past the last *intact* frame the scan consumed —
    /// the safe length to truncate a torn tail back to.
    pub clean_bytes: u64,
    /// The scan stopped because it hit the record cap, not the end of the
    /// log: another `read_from` from `last_lsn() + 1` will yield more.
    pub capped: bool,
}

impl WalScan {
    /// LSN of the last record returned, or `start_lsn - 1` when none were
    /// (an empty or fully skipped log).
    pub fn last_lsn(&self) -> u64 {
        match self.records.last() {
            Some((lsn, _)) => *lsn,
            None => self.start_lsn.saturating_sub(1),
        }
    }
}

/// An open write-ahead log; see the module docs.
pub struct Wal {
    file: File,
    start_lsn: u64,
    next_lsn: u64,
    /// Encoded frames appended since the last sync; reaches the file only
    /// inside [`Wal::sync`].
    pending: Vec<u8>,
    pending_records: u64,
    durable_records: u64,
    plan: WalFaultPlan,
    ops: u64,
    down: bool,
}

impl Wal {
    /// Creates (or truncates) the log at `path`, armed to assign
    /// `start_lsn` to its first record. The header is synced before this
    /// returns, so a later torn append can never be mistaken for a missing
    /// log.
    ///
    /// # Errors
    /// Any I/O failure creating, writing or syncing the file.
    pub fn create(path: &Path, start_lsn: u64) -> io::Result<Wal> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&header_frame(start_lsn))?;
        file.sync_all()?;
        Ok(Wal {
            file,
            start_lsn,
            next_lsn: start_lsn,
            pending: Vec::new(),
            pending_records: 0,
            durable_records: 0,
            plan: WalFaultPlan::default(),
            ops: 0,
            down: false,
        })
    }

    /// Installs a fault schedule (testing hook; the default plan injects
    /// nothing).
    pub fn set_fault_plan(&mut self, plan: WalFaultPlan) {
        self.plan = plan;
    }

    /// Numbers the op; `Ok(false)` means the planned crash fires now.
    fn gate(&mut self) -> io::Result<bool> {
        if self.down {
            return Err(crashed());
        }
        self.ops += 1;
        Ok(self.plan.crash_at != Some(self.ops))
    }

    /// Drops the un-synced buffer and downs the log.
    fn crash(&mut self) -> io::Error {
        self.pending.clear();
        self.pending_records = 0;
        self.next_lsn -= self.pending_records; // zero by now; kept for clarity
        self.down = true;
        crashed()
    }

    /// Buffers one record and assigns it the next LSN. The record is NOT
    /// durable until the next successful [`sync`](Self::sync).
    ///
    /// # Errors
    /// Fails only under an injected fault or after a crash; buffering
    /// itself cannot fail.
    pub fn append(&mut self, record: &[u8]) -> io::Result<u64> {
        if !self.gate()? {
            return Err(self.crash());
        }
        let lsn = self.next_lsn;
        let mut payload = Vec::with_capacity(8 + record.len());
        payload.extend_from_slice(&lsn.to_le_bytes());
        payload.extend_from_slice(record);
        write_frame(&mut self.pending, &payload).expect("in-memory write cannot fail");
        self.next_lsn += 1;
        self.pending_records += 1;
        Ok(lsn)
    }

    /// The group-commit barrier: writes every buffered record and issues
    /// one `fsync`. On success, every record appended before this call is
    /// durable and its mutation may be acknowledged.
    ///
    /// # Errors
    /// A real write/sync failure downs the log (the file position is no
    /// longer trustworthy); an injected crash may first land a torn prefix
    /// of the buffer, exactly like a dying disk.
    pub fn sync(&mut self) -> io::Result<()> {
        if !self.gate()? {
            let keep = self
                .plan
                .torn_bytes
                .unwrap_or(self.pending.len() / 2)
                .min(self.pending.len());
            let _ = self.file.write_all(&self.pending[..keep]);
            return Err(self.crash());
        }
        if self.pending.is_empty() {
            return Ok(());
        }
        if let Err(e) = self
            .file
            .write_all(&self.pending)
            .and_then(|()| self.file.sync_data())
        {
            self.down = true;
            return Err(e);
        }
        self.durable_records += self.pending_records;
        self.pending.clear();
        self.pending_records = 0;
        Ok(())
    }

    /// Restarts the log after a checkpoint: everything logged so far is
    /// covered by the committed catalog, so the file shrinks back to a
    /// header promising `start_lsn` for the next record.
    ///
    /// # Errors
    /// A failure leaves the old records in place — harmless, because the
    /// engine's durable-LSN watermark filters them out on replay — but
    /// downs the log, so later mutations fail instead of logging into a
    /// file in an unknown state.
    pub fn truncate(&mut self, start_lsn: u64) -> io::Result<()> {
        if !self.gate()? {
            return Err(self.crash());
        }
        let res = (|| {
            self.file.set_len(0)?;
            self.file.seek(SeekFrom::Start(0))?;
            self.file.write_all(&header_frame(start_lsn))?;
            self.file.sync_all()
        })();
        if let Err(e) = res {
            self.down = true;
            return Err(e);
        }
        self.start_lsn = start_lsn;
        self.next_lsn = start_lsn;
        self.pending.clear();
        self.pending_records = 0;
        self.durable_records = 0;
        Ok(())
    }

    /// The LSN the next append will be assigned.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// The LSN the current file starts at.
    pub fn start_lsn(&self) -> u64 {
        self.start_lsn
    }

    /// Records appended but not yet synced.
    pub fn pending_records(&self) -> u64 {
        self.pending_records
    }

    /// Records made durable since the last truncation.
    pub fn durable_records(&self) -> u64 {
        self.durable_records
    }

    /// Whether a crash (planned or real) has downed the log.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Scans the log at `path` for replay: `Ok(None)` when no log exists,
    /// otherwise every intact record in order, stopping cleanly at a torn
    /// tail (see [`WalScan`]). A file whose header never fully landed scans
    /// as empty-and-torn — its creation was never acknowledged either.
    ///
    /// # Errors
    /// Only real I/O failures; corruption is a verdict, not an error.
    pub fn read(path: &Path) -> io::Result<Option<WalScan>> {
        Wal::read_from(path, 0, usize::MAX)
    }

    /// Bounded tail-follow scan: like [`read`](Self::read), but skips
    /// records below `from_lsn` and returns at most `max_records` of them
    /// — the shared entry point for recovery (which passes the durable
    /// watermark plus one, uncapped) and the replication shipping loop,
    /// which follows a *live* log in chunks. A concurrent appender is safe
    /// to race: frames land via one `write_all` per group commit, so the
    /// scan only ever sees intact frames followed by at most one partial
    /// frame, and stops cleanly there. `capped` tells a follower to read
    /// again immediately instead of waiting for the next commit signal.
    ///
    /// # Errors
    /// Only real I/O failures; corruption is a verdict, not an error.
    pub fn read_from(
        path: &Path,
        from_lsn: u64,
        max_records: usize,
    ) -> io::Result<Option<WalScan>> {
        let file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let bytes = file.metadata()?.len();
        let torn_empty = |bytes| WalScan {
            start_lsn: 0,
            records: Vec::new(),
            torn_tail: true,
            bytes,
            clean_bytes: 0,
            capped: false,
        };
        // Every frame occupies `4 (len) + payload + 4 (crc)` bytes, so the
        // clean-prefix offset is derived from payload sizes — no need to
        // fight BufReader's read-ahead with a counting wrapper.
        let frame_len = |payload: &[u8]| payload.len() as u64 + 8;
        let mut r = BufReader::new(file);
        let header = match read_frame(&mut r, DEFAULT_MAX_FRAME) {
            Ok(p) => p,
            Err(FrameError::Closed) | Err(FrameError::Corrupt(_)) => {
                return Ok(Some(torn_empty(bytes)))
            }
            Err(FrameError::Io(e)) => return Err(e),
        };
        let mut h = RecordReader::new(&header);
        let start_lsn = match (h.get_u32(), h.get_u16(), h.get_u64()) {
            (Ok(MAGIC), Ok(VERSION), Ok(lsn)) => lsn,
            _ => return Ok(Some(torn_empty(bytes))),
        };
        let mut records = Vec::new();
        let mut torn_tail = false;
        let mut capped = false;
        let mut seen = 0u64; // intact record frames consumed, kept or skipped
        let mut clean_bytes = frame_len(&header);
        loop {
            if records.len() >= max_records {
                capped = true;
                break;
            }
            match read_frame(&mut r, DEFAULT_MAX_FRAME) {
                Ok(payload) => {
                    if payload.len() < 8 {
                        torn_tail = true;
                        break;
                    }
                    let lsn = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
                    if lsn != start_lsn + seen {
                        torn_tail = true;
                        break;
                    }
                    seen += 1;
                    clean_bytes += frame_len(&payload);
                    if lsn >= from_lsn {
                        records.push((lsn, payload[8..].to_vec()));
                    }
                }
                Err(FrameError::Closed) => break,
                Err(FrameError::Corrupt(_)) => {
                    torn_tail = true;
                    break;
                }
                Err(FrameError::Io(e)) => return Err(e),
            }
        }
        Ok(Some(WalScan {
            start_lsn,
            records,
            torn_tail,
            bytes,
            clean_bytes,
            capped,
        }))
    }

    /// Reopens an existing log in append mode — the replication primary's
    /// restart path, which must *keep* shipped history so a lagging
    /// follower can still catch up from its LSN gap. The file is accepted
    /// when its intact records end exactly at `next_lsn - 1` (a torn tail
    /// is truncated away first — those records were never acknowledged);
    /// anything else (missing, headerless, or discontinuous with the
    /// engine's watermark) falls back to [`create`](Self::create).
    ///
    /// # Errors
    /// Any real I/O failure opening, truncating or syncing the file.
    pub fn open_or_create(path: &Path, next_lsn: u64) -> io::Result<Wal> {
        let scan = match Wal::read(path)? {
            Some(s) => s,
            None => return Wal::create(path, next_lsn),
        };
        let continuous =
            scan.start_lsn > 0 && scan.start_lsn <= next_lsn && scan.last_lsn() + 1 == next_lsn;
        if !continuous {
            return Wal::create(path, next_lsn);
        }
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        if scan.torn_tail {
            file.set_len(scan.clean_bytes)?;
            file.sync_all()?;
        }
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(Wal {
            file,
            start_lsn: scan.start_lsn,
            next_lsn,
            pending: Vec::new(),
            pending_records: 0,
            durable_records: scan.records.len() as u64,
            plan: WalFaultPlan::default(),
            ops: 0,
            down: false,
        })
    }

    /// The LSN of the last record a successful [`sync`](Self::sync) made
    /// durable, or `start_lsn - 1` when none — what a primary may ship.
    pub fn synced_lsn(&self) -> u64 {
        (self.next_lsn - self.pending_records).saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("cdb_wal_{name}_{}", std::process::id()))
    }

    #[test]
    fn appends_survive_a_sync_and_replay_in_order() {
        let path = tmp("roundtrip");
        let mut wal = Wal::create(&path, 5).unwrap();
        assert_eq!(wal.append(b"alpha").unwrap(), 5);
        assert_eq!(wal.append(b"beta").unwrap(), 6);
        assert_eq!(wal.pending_records(), 2);
        wal.sync().unwrap();
        assert_eq!(wal.pending_records(), 0);
        assert_eq!(wal.durable_records(), 2);
        wal.append(b"gamma").unwrap();
        wal.sync().unwrap();
        drop(wal);

        let scan = Wal::read(&path).unwrap().unwrap();
        assert_eq!(scan.start_lsn, 5);
        assert!(!scan.torn_tail);
        assert_eq!(
            scan.records,
            vec![
                (5, b"alpha".to_vec()),
                (6, b"beta".to_vec()),
                (7, b"gamma".to_vec())
            ]
        );
        assert_eq!(scan.last_lsn(), 7);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unsynced_appends_never_reach_the_file() {
        let path = tmp("unsynced");
        let mut wal = Wal::create(&path, 1).unwrap();
        wal.append(b"durable").unwrap();
        wal.sync().unwrap();
        wal.append(b"lost").unwrap();
        drop(wal); // no sync: the buffered record dies with the process

        let scan = Wal::read(&path).unwrap().unwrap();
        assert_eq!(scan.records, vec![(1, b"durable".to_vec())]);
        assert!(!scan.torn_tail);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_restarts_the_log_at_the_new_watermark() {
        let path = tmp("truncate");
        let mut wal = Wal::create(&path, 1).unwrap();
        for r in [b"a".as_ref(), b"b", b"c"] {
            wal.append(r).unwrap();
        }
        wal.sync().unwrap();
        wal.truncate(4).unwrap();
        assert_eq!(wal.next_lsn(), 4);
        assert_eq!(wal.durable_records(), 0);
        wal.append(b"post-checkpoint").unwrap();
        wal.sync().unwrap();
        drop(wal);

        let scan = Wal::read(&path).unwrap().unwrap();
        assert_eq!(scan.start_lsn, 4);
        assert_eq!(scan.records, vec![(4, b"post-checkpoint".to_vec())]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_stops_the_scan_without_losing_the_prefix() {
        let path = tmp("torn");
        let mut wal = Wal::create(&path, 1).unwrap();
        wal.append(b"kept").unwrap();
        wal.append(b"also kept").unwrap();
        wal.sync().unwrap();
        drop(wal);

        // A torn write: garbage bytes after the intact records.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
        drop(f);

        let scan = Wal::read(&path).unwrap().unwrap();
        assert!(scan.torn_tail);
        assert_eq!(
            scan.records,
            vec![(1, b"kept".to_vec()), (2, b"also kept".to_vec())]
        );

        // Truncating mid-record tears the last frame instead.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);
        let scan = Wal::read(&path).unwrap().unwrap();
        assert!(scan.torn_tail);
        assert_eq!(scan.records.len(), 1, "only the first record survives");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_and_headerless_files_scan_safely() {
        let path = tmp("missing");
        let _ = std::fs::remove_file(&path);
        assert_eq!(Wal::read(&path).unwrap(), None);

        std::fs::write(&path, b"no").unwrap();
        let scan = Wal::read(&path).unwrap().unwrap();
        assert!(scan.torn_tail);
        assert!(scan.records.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crash_on_append_downs_the_log_and_drops_the_batch() {
        let path = tmp("crash_append");
        let mut wal = Wal::create(&path, 1).unwrap();
        // Ops: 1 append (ok), 2 sync (ok), 3 append (ok), 4 append (crash).
        wal.set_fault_plan(WalFaultPlan::new().crash_at(4));
        wal.append(b"acked").unwrap();
        wal.sync().unwrap();
        wal.append(b"buffered").unwrap();
        assert!(wal.append(b"boom").is_err());
        assert!(wal.is_down());
        assert!(wal.sync().is_err(), "everything fails after the crash");
        drop(wal);

        let scan = Wal::read(&path).unwrap().unwrap();
        assert_eq!(
            scan.records,
            vec![(1, b"acked".to_vec())],
            "the un-synced batch vanished with the crash"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crash_on_sync_lands_a_torn_prefix() {
        let path = tmp("crash_sync");
        let mut wal = Wal::create(&path, 1).unwrap();
        wal.append(b"first record of the doomed batch").unwrap();
        wal.append(b"second record of the doomed batch").unwrap();
        // Op 3 is the sync; land 10 bytes of the buffer — mid-frame.
        wal.set_fault_plan(WalFaultPlan::new().crash_at(3).torn_bytes(10));
        assert!(wal.sync().is_err());
        drop(wal);

        let scan = Wal::read(&path).unwrap().unwrap();
        assert!(scan.torn_tail, "the half-written frame fails its crc");
        assert!(scan.records.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crash_on_truncate_leaves_the_old_records_intact() {
        let path = tmp("crash_trunc");
        let mut wal = Wal::create(&path, 1).unwrap();
        wal.append(b"old").unwrap();
        wal.sync().unwrap();
        wal.set_fault_plan(WalFaultPlan::new().crash_at(3));
        assert!(wal.truncate(2).is_err());
        assert!(wal.is_down());
        drop(wal);

        // The stale record is still there; the engine's durable-LSN
        // watermark is what makes it harmless.
        let scan = Wal::read(&path).unwrap().unwrap();
        assert_eq!(scan.records, vec![(1, b"old".to_vec())]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_from_skips_shipped_records_and_caps_chunks() {
        let path = tmp("read_from");
        let mut wal = Wal::create(&path, 1).unwrap();
        for i in 1..=9u8 {
            wal.append(&[i]).unwrap();
        }
        wal.sync().unwrap();

        // Skip the first four, cap at three: a shipping-loop chunk.
        let scan = Wal::read_from(&path, 5, 3).unwrap().unwrap();
        assert_eq!(scan.start_lsn, 1);
        assert_eq!(scan.records, vec![(5, vec![5]), (6, vec![6]), (7, vec![7])]);
        assert!(scan.capped, "more records remain past the cap");
        assert_eq!(scan.last_lsn(), 7);

        // The follow-up chunk drains the tail and is not capped.
        let scan = Wal::read_from(&path, 8, 3).unwrap().unwrap();
        assert_eq!(scan.records, vec![(8, vec![8]), (9, vec![9])]);
        assert!(!scan.capped);

        // Reading past the end is empty, not an error.
        let scan = Wal::read_from(&path, 10, 64).unwrap().unwrap();
        assert!(scan.records.is_empty());
        assert!(!scan.capped && !scan.torn_tail);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_from_follows_a_live_log_under_a_concurrent_appender() {
        let path = tmp("tail_follow");
        let mut wal = Wal::create(&path, 1).unwrap();
        const TOTAL: u64 = 200;
        std::thread::scope(|s| {
            let appender = s.spawn(|| {
                for i in 0..TOTAL {
                    wal.append(format!("record-{i}").as_bytes()).unwrap();
                    if i % 7 == 0 {
                        wal.sync().unwrap();
                    }
                }
                wal.sync().unwrap();
            });
            // The follower tails the file while the appender races it,
            // reading in small chunks exactly like the shipping loop.
            let mut next = 1u64;
            while next <= TOTAL {
                let scan = Wal::read_from(&path, next, 16).unwrap().unwrap();
                for (lsn, rec) in &scan.records {
                    assert_eq!(*lsn, next, "no gaps, no reorders");
                    assert_eq!(rec, format!("record-{}", lsn - 1).as_bytes());
                    next += 1;
                }
                if scan.records.is_empty() {
                    std::thread::yield_now();
                }
            }
            appender.join().unwrap();
        });
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_from_stops_cleanly_at_a_torn_tail() {
        let path = tmp("read_from_torn");
        let mut wal = Wal::create(&path, 1).unwrap();
        for i in 1..=4u8 {
            wal.append(&[i]).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let clean = std::fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xBA, 0xD0]).unwrap();
        drop(f);

        let scan = Wal::read_from(&path, 3, 64).unwrap().unwrap();
        assert!(scan.torn_tail);
        assert!(!scan.capped);
        assert_eq!(scan.records, vec![(3, vec![3]), (4, vec![4])]);
        assert_eq!(scan.clean_bytes, clean, "clean prefix excludes the tear");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_or_create_appends_to_continuous_history() {
        let path = tmp("reopen");
        let mut wal = Wal::create(&path, 1).unwrap();
        wal.append(b"one").unwrap();
        wal.append(b"two").unwrap();
        wal.sync().unwrap();
        drop(wal);

        // Continuous restart: history is preserved, appends continue at 3.
        let mut wal = Wal::open_or_create(&path, 3).unwrap();
        assert_eq!(wal.start_lsn(), 1);
        assert_eq!(wal.synced_lsn(), 2);
        assert_eq!(wal.append(b"three").unwrap(), 3);
        wal.sync().unwrap();
        drop(wal);
        let scan = Wal::read(&path).unwrap().unwrap();
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.last_lsn(), 3);

        // A torn tail is truncated away before appending resumes.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xFF; 5]).unwrap();
        drop(f);
        let mut wal = Wal::open_or_create(&path, 4).unwrap();
        wal.append(b"four").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let scan = Wal::read(&path).unwrap().unwrap();
        assert!(!scan.torn_tail);
        assert_eq!(scan.records.len(), 4);

        // A discontinuous watermark falls back to a fresh log.
        let wal = Wal::open_or_create(&path, 42).unwrap();
        assert_eq!(wal.start_lsn(), 42);
        drop(wal);
        let scan = Wal::read(&path).unwrap().unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.start_lsn, 42);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wal_path_appends_the_suffix() {
        assert_eq!(
            wal_path(Path::new("/tmp/data.db")),
            PathBuf::from("/tmp/data.db.wal")
        );
        assert_eq!(wal_path(Path::new("bare")), PathBuf::from("bare.wal"));
    }
}
