//! Property tests: the B⁺-tree against `std::collections::BTreeMap` under
//! arbitrary operation sequences, plus structural invariants.

use proptest::prelude::*;
use std::collections::BTreeMap;

use cdb_btree::{BTree, SweepControl};
use cdb_storage::{MemPager, Pager};

/// An operation in a randomized workload.
#[derive(Clone, Debug)]
enum Op {
    Insert(i16, u32),
    Delete(i16),
    Range(i16, i16),
    SweepDown(i16),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<i16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k % 500, v)),
        1 => any::<i16>().prop_map(|k| Op::Delete(k % 500)),
        1 => (any::<i16>(), any::<i16>()).prop_map(|(a, b)| Op::Range(a % 500, b % 500)),
        1 => any::<i16>().prop_map(|k| Op::SweepDown(k % 500)),
    ]
}

fn collect_all(tree: &BTree, pager: &mut dyn Pager) -> Vec<(f64, u32)> {
    let mut out = Vec::new();
    tree.sweep_up(pager, f64::NEG_INFINITY, |s| {
        out.extend_from_slice(&s.entries);
        SweepControl::Continue
    });
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_ops_match_btreemap(ops in prop::collection::vec(arb_op(), 1..400)) {
        // Tiny pages force splits constantly.
        let mut pager = MemPager::new(128);
        let mut tree = BTree::new(&mut pager);
        // Oracle: multiset keyed by (key, value); values unique per op index.
        let mut oracle: BTreeMap<(i64, u32), ()> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    tree.insert(&mut pager, k as f64, v);
                    oracle.insert((k as i64, v), ());
                }
                Op::Delete(k) => {
                    // Delete one arbitrary matching entry, mirroring on both.
                    let pick = oracle
                        .range((k as i64, 0)..=(k as i64, u32::MAX))
                        .next()
                        .map(|(kv, _)| *kv);
                    match pick {
                        Some((ok, ov)) => {
                            prop_assert!(tree.delete(&mut pager, ok as f64, ov));
                            oracle.remove(&(ok, ov));
                        }
                        None => {
                            prop_assert!(!tree.delete(&mut pager, k as f64, 12345));
                        }
                    }
                }
                Op::Range(a, b) => {
                    let (lo, hi) = (a.min(b) as f64, a.max(b) as f64);
                    let got = tree.range(&mut pager, lo, hi);
                    let want = oracle
                        .range((lo as i64, 0)..=(hi as i64, u32::MAX))
                        .count();
                    prop_assert_eq!(got.len(), want, "range [{}, {}]", lo, hi);
                    prop_assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
                }
                Op::SweepDown(k) => {
                    let mut last = f64::INFINITY;
                    let mut n = 0usize;
                    tree.sweep_down(&mut pager, k as f64, |snap| {
                        for &(key, _) in &snap.entries {
                            assert!(key <= last, "descending order violated");
                            last = key;
                            n += 1;
                        }
                        SweepControl::Continue
                    });
                    let want = oracle
                        .range((i64::MIN, 0)..=(k as i64, u32::MAX))
                        .count();
                    prop_assert_eq!(n, want, "sweep_down from {}", k);
                }
            }
        }
        tree.validate(&mut pager);
        prop_assert_eq!(tree.len() as usize, oracle.len());
        let all = collect_all(&tree, &mut pager);
        let mut got: Vec<(i64, u32)> = all.iter().map(|&(k, v)| (k as i64, v)).collect();
        got.sort_unstable();
        let want: Vec<(i64, u32)> = oracle.keys().copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bulk_load_equals_insertion_build(
        mut keys in prop::collection::vec(-1000i32..1000, 1..300),
        fill in 0.5f64..1.0,
    ) {
        keys.sort_unstable();
        let entries: Vec<(f64, u32)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k as f64 / 7.0, i as u32))
            .collect();
        let mut p1 = MemPager::new(128);
        let bulk = BTree::bulk_load(&mut p1, &entries, fill);
        bulk.validate(&mut p1);
        let mut p2 = MemPager::new(128);
        let mut incr = BTree::new(&mut p2);
        for &(k, v) in &entries {
            incr.insert(&mut p2, k, v);
        }
        let mut a: Vec<u32> = collect_all(&bulk, &mut p1).iter().map(|e| e.1).collect();
        let mut b: Vec<u32> = collect_all(&incr, &mut p2).iter().map(|e| e.1).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        // Keys come back in order from both.
        prop_assert!(collect_all(&bulk, &mut p1).windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn sweeps_partition_the_key_space(
        keys in prop::collection::vec(-500i32..500, 1..200),
        pivot in -500i32..500,
    ) {
        let mut pager = MemPager::new(128);
        let mut tree = BTree::new(&mut pager);
        for (i, &k) in keys.iter().enumerate() {
            tree.insert(&mut pager, k as f64, i as u32);
        }
        // Everything strictly below pivot from sweep_down(pivot - eps),
        // everything >= pivot from sweep_up(pivot): together = all.
        let mut up = 0usize;
        tree.sweep_up(&mut pager, pivot as f64, |s| {
            up += s.entries.len();
            SweepControl::Continue
        });
        let mut down = 0usize;
        tree.sweep_down(&mut pager, (pivot as f64).next_down(), |s| {
            down += s.entries.len();
            SweepControl::Continue
        });
        prop_assert_eq!(up + down, keys.len());
    }
}

#[test]
fn handicaps_survive_heavy_splitting() {
    use cdb_btree::Handicaps;
    let mut pager = MemPager::new(128);
    let mut tree = BTree::new(&mut pager);
    // Set distinctive handicaps on the single root leaf, then split it many
    // times: every descendant leaf must inherit (conservative bounds).
    tree.insert(&mut pager, 0.0, 0);
    let first = tree.leaves(&mut pager)[0].page;
    tree.set_handicaps(
        &mut pager,
        first,
        Handicaps {
            low_prev: -7.25,
            low_next: -3.5,
            high_prev: 99.0,
            high_next: 42.0,
        },
    );
    for i in 1..300u32 {
        tree.insert(&mut pager, i as f64, i);
    }
    for leaf in tree.leaves(&mut pager) {
        let h = tree.read_handicaps(&mut pager, leaf.page);
        assert!(h.low_prev <= -7.25, "low_prev loosened only: {h:?}");
        assert!(h.high_prev >= 99.0, "high_prev loosened only: {h:?}");
    }
}

#[test]
fn emptied_leaf_migrates_handicaps() {
    use cdb_btree::Handicaps;
    let mut pager = MemPager::new(128);
    let entries: Vec<(f64, u32)> = (0..30).map(|i| (i as f64, i as u32)).collect();
    let mut tree = BTree::bulk_load(&mut pager, &entries, 1.0);
    let leaves = tree.leaves(&mut pager);
    assert!(leaves.len() >= 3);
    let mid = leaves[1];
    tree.set_handicaps(
        &mut pager,
        mid.page,
        Handicaps {
            low_prev: -100.0,
            low_next: -200.0,
            high_prev: 300.0,
            high_next: 400.0,
        },
    );
    // Empty the middle leaf.
    for i in 0..30u32 {
        let k = i as f64;
        if k >= mid.min_key && k <= mid.max_key {
            assert!(tree.delete(&mut pager, k, i));
        }
    }
    let after = tree.leaves(&mut pager);
    // Low bounds moved to the next leaf, high bounds to the previous.
    let next = after.iter().position(|l| l.page == mid.page).unwrap() + 1;
    let prev = next - 2;
    let hn = tree.read_handicaps(&mut pager, after[next].page);
    let hp = tree.read_handicaps(&mut pager, after[prev].page);
    assert!(hn.low_prev <= -100.0 && hn.low_next <= -200.0, "{hn:?}");
    assert!(hp.high_prev >= 300.0 && hp.high_next >= 400.0, "{hp:?}");
}
