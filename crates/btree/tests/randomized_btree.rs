//! Randomized tests: the B⁺-tree against `std::collections::BTreeMap` under
//! seeded operation sequences, plus structural invariants.

use std::collections::BTreeMap;

use cdb_btree::{BTree, SweepControl};
use cdb_prng::StdRng;
use cdb_storage::{MemPager, PageReader};

/// An operation in a randomized workload.
#[derive(Clone, Debug)]
enum Op {
    Insert(i16, u32),
    Delete(i16),
    Range(i16, i16),
    SweepDown(i16),
}

fn random_op(rng: &mut StdRng) -> Op {
    let key = |rng: &mut StdRng| (rng.gen::<u32>() as i16) % 500;
    match rng.gen_range(0..6u32) {
        0..=2 => {
            let k = key(rng);
            Op::Insert(k, rng.gen::<u32>())
        }
        3 => Op::Delete(key(rng)),
        4 => {
            let a = key(rng);
            Op::Range(a, key(rng))
        }
        _ => Op::SweepDown(key(rng)),
    }
}

fn collect_all(tree: &BTree, pager: &dyn PageReader) -> Vec<(f64, u32)> {
    let mut out = Vec::new();
    tree.sweep_up(pager, f64::NEG_INFINITY, |s| {
        out.extend_from_slice(&s.entries);
        SweepControl::Continue
    })
    .unwrap();
    out
}

#[test]
fn random_ops_match_btreemap() {
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_ops = rng.gen_range(1..400usize);
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(&mut rng)).collect();
        // Tiny pages force splits constantly.
        let mut pager = MemPager::new(128);
        let mut tree = BTree::new(&mut pager).unwrap();
        // Oracle: multiset keyed by (key, value); values unique per op index.
        let mut oracle: BTreeMap<(i64, u32), ()> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    tree.insert(&mut pager, k as f64, v).unwrap();
                    oracle.insert((k as i64, v), ());
                }
                Op::Delete(k) => {
                    // Delete one arbitrary matching entry, mirroring on both.
                    let pick = oracle
                        .range((k as i64, 0)..=(k as i64, u32::MAX))
                        .next()
                        .map(|(kv, _)| *kv);
                    match pick {
                        Some((ok, ov)) => {
                            assert!(
                                tree.delete(&mut pager, ok as f64, ov).unwrap(),
                                "seed {seed}"
                            );
                            oracle.remove(&(ok, ov));
                        }
                        None => {
                            assert!(
                                !tree.delete(&mut pager, k as f64, 12345).unwrap(),
                                "seed {seed}"
                            );
                        }
                    }
                }
                Op::Range(a, b) => {
                    let (lo, hi) = (a.min(b) as f64, a.max(b) as f64);
                    let got = tree.range(&pager, lo, hi).unwrap();
                    let want = oracle.range((lo as i64, 0)..=(hi as i64, u32::MAX)).count();
                    assert_eq!(got.len(), want, "range [{lo}, {hi}] (seed {seed})");
                    assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
                }
                Op::SweepDown(k) => {
                    let mut last = f64::INFINITY;
                    let mut n = 0usize;
                    tree.sweep_down(&pager, k as f64, |snap| {
                        for &(key, _) in &snap.entries {
                            assert!(key <= last, "descending order violated");
                            last = key;
                            n += 1;
                        }
                        SweepControl::Continue
                    })
                    .unwrap();
                    let want = oracle.range((i64::MIN, 0)..=(k as i64, u32::MAX)).count();
                    assert_eq!(n, want, "sweep_down from {k} (seed {seed})");
                }
            }
        }
        tree.validate(&pager).unwrap();
        assert_eq!(tree.len() as usize, oracle.len(), "seed {seed}");
        let all = collect_all(&tree, &pager);
        let mut got: Vec<(i64, u32)> = all.iter().map(|&(k, v)| (k as i64, v)).collect();
        got.sort_unstable();
        let want: Vec<(i64, u32)> = oracle.keys().copied().collect();
        assert_eq!(got, want, "seed {seed}");
    }
}

#[test]
fn bulk_load_equals_insertion_build() {
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let n_keys = rng.gen_range(1..300usize);
        let mut keys: Vec<i32> = (0..n_keys)
            .map(|_| rng.gen_range(-1000i64..1000) as i32)
            .collect();
        let fill = rng.gen_range(0.5f64..1.0);
        keys.sort_unstable();
        let entries: Vec<(f64, u32)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k as f64 / 7.0, i as u32))
            .collect();
        let mut p1 = MemPager::new(128);
        let bulk = BTree::bulk_load(&mut p1, &entries, fill).unwrap();
        bulk.validate(&p1).unwrap();
        let mut p2 = MemPager::new(128);
        let mut incr = BTree::new(&mut p2).unwrap();
        for &(k, v) in &entries {
            incr.insert(&mut p2, k, v).unwrap();
        }
        let mut a: Vec<u32> = collect_all(&bulk, &p1).iter().map(|e| e.1).collect();
        let mut b: Vec<u32> = collect_all(&incr, &p2).iter().map(|e| e.1).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "seed {seed}");
        // Keys come back in order from both.
        assert!(collect_all(&bulk, &p1).windows(2).all(|w| w[0].0 <= w[1].0));
    }
}

#[test]
fn sweeps_partition_the_key_space() {
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(200 + seed);
        let n_keys = rng.gen_range(1..200usize);
        let keys: Vec<i32> = (0..n_keys)
            .map(|_| rng.gen_range(-500i64..500) as i32)
            .collect();
        let pivot = rng.gen_range(-500i64..500) as i32;
        let mut pager = MemPager::new(128);
        let mut tree = BTree::new(&mut pager).unwrap();
        for (i, &k) in keys.iter().enumerate() {
            tree.insert(&mut pager, k as f64, i as u32).unwrap();
        }
        // Everything strictly below pivot from sweep_down(pivot - eps),
        // everything >= pivot from sweep_up(pivot): together = all.
        let mut up = 0usize;
        tree.sweep_up(&pager, pivot as f64, |s| {
            up += s.entries.len();
            SweepControl::Continue
        })
        .unwrap();
        let mut down = 0usize;
        tree.sweep_down(&pager, (pivot as f64).next_down(), |s| {
            down += s.entries.len();
            SweepControl::Continue
        })
        .unwrap();
        assert_eq!(up + down, keys.len(), "seed {seed}, pivot {pivot}");
    }
}

#[test]
fn handicaps_survive_heavy_splitting() {
    use cdb_btree::Handicaps;
    let mut pager = MemPager::new(128);
    let mut tree = BTree::new(&mut pager).unwrap();
    // Set distinctive handicaps on the single root leaf, then split it many
    // times: every descendant leaf must inherit (conservative bounds).
    tree.insert(&mut pager, 0.0, 0).unwrap();
    let first = tree.leaves(&pager).unwrap()[0].page;
    tree.set_handicaps(
        &mut pager,
        first,
        Handicaps {
            low_prev: -7.25,
            low_next: -3.5,
            high_prev: 99.0,
            high_next: 42.0,
        },
    )
    .unwrap();
    for i in 1..300u32 {
        tree.insert(&mut pager, i as f64, i).unwrap();
    }
    for leaf in tree.leaves(&pager).unwrap() {
        let h = tree.read_handicaps(&pager, leaf.page).unwrap();
        assert!(h.low_prev <= -7.25, "low_prev loosened only: {h:?}");
        assert!(h.high_prev >= 99.0, "high_prev loosened only: {h:?}");
    }
}

#[test]
fn emptied_leaf_migrates_handicaps() {
    use cdb_btree::Handicaps;
    let mut pager = MemPager::new(128);
    let entries: Vec<(f64, u32)> = (0..30).map(|i| (i as f64, i as u32)).collect();
    let mut tree = BTree::bulk_load(&mut pager, &entries, 1.0).unwrap();
    let leaves = tree.leaves(&pager).unwrap();
    assert!(leaves.len() >= 3);
    let mid = leaves[1];
    tree.set_handicaps(
        &mut pager,
        mid.page,
        Handicaps {
            low_prev: -100.0,
            low_next: -200.0,
            high_prev: 300.0,
            high_next: 400.0,
        },
    )
    .unwrap();
    // Empty the middle leaf.
    for i in 0..30u32 {
        let k = i as f64;
        if k >= mid.min_key && k <= mid.max_key {
            assert!(tree.delete(&mut pager, k, i).unwrap());
        }
    }
    let after = tree.leaves(&pager).unwrap();
    // Low bounds moved to the next leaf, high bounds to the previous.
    let next = after.iter().position(|l| l.page == mid.page).unwrap() + 1;
    let prev = next - 2;
    let hn = tree.read_handicaps(&pager, after[next].page).unwrap();
    let hp = tree.read_handicaps(&pager, after[prev].page).unwrap();
    assert!(hn.low_prev <= -100.0 && hn.low_next <= -200.0, "{hn:?}");
    assert!(hp.high_prev >= 300.0 && hp.high_next >= 400.0, "{hp:?}");
}
