//! Typed accessors over raw page images.
//!
//! [`Leaf`] and [`Internal`] wrap a page-sized byte buffer and expose the
//! fields of the layouts in [`crate::layout`]. They own no storage: the tree
//! reads a page into a scratch buffer, manipulates it through these views and
//! writes it back.

use cdb_storage::codec::{get_f32, get_f64, get_u16, get_u32, put_f32, put_f64, put_u16, put_u32};

use crate::layout::{
    internal_capacity, leaf_capacity, Handicaps, INTERNAL_ENTRY, INTERNAL_HDR, KIND_INTERNAL,
    KIND_LEAF, LEAF_ENTRY, LEAF_HDR,
};

/// Returns `true` if the page image is a leaf.
pub fn is_leaf(page: &[u8]) -> bool {
    page[0] == KIND_LEAF
}

/// Mutable leaf view.
pub struct Leaf<'a> {
    buf: &'a mut [u8],
}

impl<'a> Leaf<'a> {
    /// Wraps an existing leaf page.
    ///
    /// # Panics
    /// Panics if the page is not a leaf.
    pub fn new(buf: &'a mut [u8]) -> Self {
        assert_eq!(buf[0], KIND_LEAF, "not a leaf page");
        Leaf { buf }
    }

    /// Formats `buf` as an empty leaf and wraps it.
    pub fn init(buf: &'a mut [u8]) -> Self {
        buf.fill(0);
        buf[0] = KIND_LEAF;
        put_u32(buf, 4, crate::layout::NULL_PAGE);
        put_u32(buf, 8, crate::layout::NULL_PAGE);
        let mut leaf = Leaf { buf };
        leaf.set_handicaps(Handicaps::default());
        leaf
    }

    /// Number of entries.
    pub fn count(&self) -> usize {
        get_u16(self.buf, 2) as usize
    }

    fn set_count(&mut self, n: usize) {
        put_u16(self.buf, 2, n as u16);
    }

    /// Previous-leaf link.
    pub fn prev(&self) -> u32 {
        get_u32(self.buf, 4)
    }

    /// Sets the previous-leaf link.
    pub fn set_prev(&mut self, p: u32) {
        put_u32(self.buf, 4, p);
    }

    /// Next-leaf link.
    pub fn next(&self) -> u32 {
        get_u32(self.buf, 8)
    }

    /// Sets the next-leaf link.
    pub fn set_next(&mut self, p: u32) {
        put_u32(self.buf, 8, p);
    }

    /// The four handicap slots.
    pub fn handicaps(&self) -> Handicaps {
        Handicaps {
            low_prev: get_f64(self.buf, 12),
            low_next: get_f64(self.buf, 20),
            high_prev: get_f64(self.buf, 28),
            high_next: get_f64(self.buf, 36),
        }
    }

    /// Writes the four handicap slots.
    pub fn set_handicaps(&mut self, h: Handicaps) {
        put_f64(self.buf, 12, h.low_prev);
        put_f64(self.buf, 20, h.low_next);
        put_f64(self.buf, 28, h.high_prev);
        put_f64(self.buf, 36, h.high_next);
    }

    /// Key of entry `i` (as stored: `f32` widened to `f64`).
    pub fn key(&self, i: usize) -> f64 {
        debug_assert!(i < self.count());
        get_f32(self.buf, LEAF_HDR + i * LEAF_ENTRY) as f64
    }

    /// Value (tuple id) of entry `i`.
    pub fn value(&self, i: usize) -> u32 {
        debug_assert!(i < self.count());
        get_u32(self.buf, LEAF_HDR + i * LEAF_ENTRY + 4)
    }

    /// All entries in key order.
    pub fn entries(&self) -> Vec<(f64, u32)> {
        (0..self.count())
            .map(|i| (self.key(i), self.value(i)))
            .collect()
    }

    /// First index whose key is `≥ k` (lower bound), or `count()`.
    pub fn lower_bound(&self, k: f64) -> usize {
        let n = self.count();
        let (mut lo, mut hi) = (0, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.key(mid) < k {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Inserts `(k, v)` keeping key order (after equal keys). Returns the
    /// slot used.
    ///
    /// # Panics
    /// Panics if the leaf is full.
    pub fn insert(&mut self, page_size: usize, k: f64, v: u32) -> usize {
        let n = self.count();
        assert!(n < leaf_capacity(page_size), "leaf overflow");
        // Position after all keys <= k (upper bound) keeps insertion stable.
        let mut pos = self.lower_bound(k);
        while pos < n && self.key(pos) <= k {
            pos += 1;
        }
        let start = LEAF_HDR + pos * LEAF_ENTRY;
        let end = LEAF_HDR + n * LEAF_ENTRY;
        self.buf.copy_within(start..end, start + LEAF_ENTRY);
        put_f32(self.buf, start, k as f32);
        put_u32(self.buf, start + 4, v);
        self.set_count(n + 1);
        pos
    }

    /// Removes entry `i`.
    pub fn remove(&mut self, i: usize) {
        let n = self.count();
        assert!(i < n, "remove out of range");
        let start = LEAF_HDR + (i + 1) * LEAF_ENTRY;
        let end = LEAF_HDR + n * LEAF_ENTRY;
        self.buf.copy_within(start..end, start - LEAF_ENTRY);
        self.set_count(n - 1);
    }

    /// Moves the upper half of the entries into `right` (an empty leaf).
    /// Returns the first key of `right` (the separator to promote).
    pub fn split_into(&mut self, right: &mut Leaf<'_>) -> f64 {
        let n = self.count();
        let mid = n / 2;
        for i in mid..n {
            let k = self.key(i);
            let v = self.value(i);
            let j = i - mid;
            let off = LEAF_HDR + j * LEAF_ENTRY;
            put_f32(right.buf, off, k as f32);
            put_u32(right.buf, off + 4, v);
        }
        right.set_count(n - mid);
        self.set_count(mid);
        right.key(0)
    }

    /// Appends every entry of `right` (used by merges).
    ///
    /// # Panics
    /// Panics if the combined count exceeds capacity.
    pub fn absorb(&mut self, page_size: usize, right: &Leaf<'_>) {
        let n = self.count();
        let m = right.count();
        assert!(n + m <= leaf_capacity(page_size), "merge overflow");
        for i in 0..m {
            let off = LEAF_HDR + (n + i) * LEAF_ENTRY;
            put_f32(self.buf, off, right.key(i) as f32);
            put_u32(self.buf, off + 4, right.value(i));
        }
        self.set_count(n + m);
    }
}

/// Mutable internal-node view.
pub struct Internal<'a> {
    buf: &'a mut [u8],
}

impl<'a> Internal<'a> {
    /// Wraps an existing internal page.
    ///
    /// # Panics
    /// Panics if the page is not internal.
    pub fn new(buf: &'a mut [u8]) -> Self {
        assert_eq!(buf[0], KIND_INTERNAL, "not an internal page");
        Internal { buf }
    }

    /// Formats `buf` as an internal node with a single child.
    pub fn init(buf: &'a mut [u8], child0: u32) -> Self {
        buf.fill(0);
        buf[0] = KIND_INTERNAL;
        put_u32(buf, 4, child0);
        Internal { buf }
    }

    /// Number of separator keys (children = count + 1).
    pub fn count(&self) -> usize {
        get_u16(self.buf, 2) as usize
    }

    fn set_count(&mut self, n: usize) {
        put_u16(self.buf, 2, n as u16);
    }

    /// Separator key `i`.
    pub fn key(&self, i: usize) -> f64 {
        debug_assert!(i < self.count());
        get_f32(self.buf, INTERNAL_HDR + i * INTERNAL_ENTRY) as f64
    }

    /// Child pointer `i` (`0 ..= count()`).
    pub fn child(&self, i: usize) -> u32 {
        debug_assert!(i <= self.count());
        if i == 0 {
            get_u32(self.buf, 4)
        } else {
            get_u32(self.buf, INTERNAL_HDR + (i - 1) * INTERNAL_ENTRY + 4)
        }
    }

    /// Sets child pointer `i`.
    pub fn set_child(&mut self, i: usize, c: u32) {
        if i == 0 {
            put_u32(self.buf, 4, c);
        } else {
            put_u32(self.buf, INTERNAL_HDR + (i - 1) * INTERNAL_ENTRY + 4, c);
        }
    }

    /// Sets separator key `i`.
    pub fn set_key(&mut self, i: usize, k: f64) {
        put_f32(self.buf, INTERNAL_HDR + i * INTERNAL_ENTRY, k as f32);
    }

    /// Child index to descend into for key `k`: the child after the last
    /// separator `≤ k` (so duplicates of a separator key land right of it).
    pub fn descend_index(&self, k: f64) -> usize {
        let n = self.count();
        let (mut lo, mut hi) = (0, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.key(mid) <= k {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Leftmost child index whose subtree may contain keys `≥ k`
    /// (for locating the *first* occurrence of a duplicated key).
    pub fn descend_index_left(&self, k: f64) -> usize {
        let n = self.count();
        let (mut lo, mut hi) = (0, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.key(mid) < k {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Inserts separator `k` with right child `c` at position `pos`.
    ///
    /// # Panics
    /// Panics if full.
    pub fn insert_at(&mut self, page_size: usize, pos: usize, k: f64, c: u32) {
        let n = self.count();
        assert!(n < internal_capacity(page_size), "internal overflow");
        assert!(pos <= n);
        let start = INTERNAL_HDR + pos * INTERNAL_ENTRY;
        let end = INTERNAL_HDR + n * INTERNAL_ENTRY;
        self.buf.copy_within(start..end, start + INTERNAL_ENTRY);
        put_f32(self.buf, start, k as f32);
        put_u32(self.buf, start + 4, c);
        self.set_count(n + 1);
    }

    /// Removes separator `i` and its *right* child pointer.
    pub fn remove_at(&mut self, i: usize) {
        let n = self.count();
        assert!(i < n);
        let start = INTERNAL_HDR + (i + 1) * INTERNAL_ENTRY;
        let end = INTERNAL_HDR + n * INTERNAL_ENTRY;
        self.buf.copy_within(start..end, start - INTERNAL_ENTRY);
        self.set_count(n - 1);
    }

    /// Splits around the median: upper entries move to `right` (empty
    /// internal node); returns the median key to promote. `right`'s child 0
    /// becomes the child right of the median.
    pub fn split_into(&mut self, right: &mut Internal<'_>) -> f64 {
        let n = self.count();
        let mid = n / 2;
        let promoted = self.key(mid);
        right.set_child(0, self.child(mid + 1));
        for i in (mid + 1)..n {
            let j = i - mid - 1;
            let off = INTERNAL_HDR + j * INTERNAL_ENTRY;
            put_f32(right.buf, off, self.key(i) as f32);
            put_u32(right.buf, off + 4, self.child(i + 1));
        }
        right.set_count(n - mid - 1);
        self.set_count(mid);
        promoted
    }

    /// Appends `sep` and all of `right`'s separators/children (merge).
    pub fn absorb(&mut self, page_size: usize, sep: f64, right: &Internal<'_>) {
        let n = self.count();
        let m = right.count();
        assert!(n + m < internal_capacity(page_size), "merge overflow");
        let off = INTERNAL_HDR + n * INTERNAL_ENTRY;
        put_f32(self.buf, off, sep as f32);
        put_u32(self.buf, off + 4, right.child(0));
        for i in 0..m {
            let off = INTERNAL_HDR + (n + 1 + i) * INTERNAL_ENTRY;
            put_f32(self.buf, off, right.key(i) as f32);
            put_u32(self.buf, off + 4, right.child(i + 1));
        }
        self.set_count(n + m + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: usize = 256;

    #[test]
    fn leaf_insert_ordered() {
        let mut buf = vec![0u8; P];
        let mut leaf = Leaf::init(&mut buf);
        leaf.insert(P, 5.0, 50);
        leaf.insert(P, 1.0, 10);
        leaf.insert(P, 3.0, 30);
        leaf.insert(P, 3.0, 31); // duplicate goes after
        assert_eq!(leaf.count(), 4);
        let keys: Vec<f64> = (0..4).map(|i| leaf.key(i)).collect();
        assert_eq!(keys, vec![1.0, 3.0, 3.0, 5.0]);
        assert_eq!(leaf.value(1), 30);
        assert_eq!(leaf.value(2), 31, "stable duplicate order");
    }

    #[test]
    fn leaf_lower_bound() {
        let mut buf = vec![0u8; P];
        let mut leaf = Leaf::init(&mut buf);
        for (k, v) in [(1.0, 1), (3.0, 2), (3.0, 3), (7.0, 4)] {
            leaf.insert(P, k, v);
        }
        assert_eq!(leaf.lower_bound(0.0), 0);
        assert_eq!(leaf.lower_bound(3.0), 1);
        assert_eq!(leaf.lower_bound(4.0), 3);
        assert_eq!(leaf.lower_bound(8.0), 4);
    }

    #[test]
    fn leaf_remove() {
        let mut buf = vec![0u8; P];
        let mut leaf = Leaf::init(&mut buf);
        for (k, v) in [(1.0, 1), (2.0, 2), (3.0, 3)] {
            leaf.insert(P, k, v);
        }
        leaf.remove(1);
        assert_eq!(leaf.count(), 2);
        assert_eq!(leaf.key(0), 1.0);
        assert_eq!(leaf.key(1), 3.0);
    }

    #[test]
    fn leaf_split_and_absorb() {
        let mut buf = vec![0u8; P];
        let mut leaf = Leaf::init(&mut buf);
        for i in 0..10 {
            leaf.insert(P, i as f64, i);
        }
        let mut rbuf = vec![0u8; P];
        let mut right = Leaf::init(&mut rbuf);
        let sep = leaf.split_into(&mut right);
        assert_eq!(sep, 5.0);
        assert_eq!(leaf.count(), 5);
        assert_eq!(right.count(), 5);
        assert_eq!(right.key(0), 5.0);
        leaf.absorb(P, &right);
        assert_eq!(leaf.count(), 10);
        assert_eq!(leaf.key(9), 9.0);
    }

    #[test]
    fn leaf_handicaps_round_trip() {
        let mut buf = vec![0u8; P];
        let mut leaf = Leaf::init(&mut buf);
        assert_eq!(leaf.handicaps(), Handicaps::default());
        let h = Handicaps {
            low_prev: -3.5,
            low_next: 2.25,
            high_prev: 10.0,
            high_next: f64::NEG_INFINITY,
        };
        leaf.set_handicaps(h);
        assert_eq!(leaf.handicaps(), h);
    }

    #[test]
    fn leaf_infinite_keys_order() {
        let mut buf = vec![0u8; P];
        let mut leaf = Leaf::init(&mut buf);
        leaf.insert(P, f64::INFINITY, 1);
        leaf.insert(P, 0.0, 2);
        leaf.insert(P, f64::NEG_INFINITY, 3);
        assert_eq!(leaf.key(0), f64::NEG_INFINITY);
        assert_eq!(leaf.key(1), 0.0);
        assert_eq!(leaf.key(2), f64::INFINITY);
    }

    #[test]
    fn internal_descend() {
        let mut buf = vec![0u8; P];
        let mut node = Internal::init(&mut buf, 100);
        node.insert_at(P, 0, 10.0, 101);
        node.insert_at(P, 1, 20.0, 102);
        assert_eq!(node.count(), 2);
        assert_eq!(node.descend_index(5.0), 0);
        assert_eq!(node.descend_index(10.0), 1, "equal key goes right");
        assert_eq!(node.descend_index_left(10.0), 0, "left variant stays left");
        assert_eq!(node.descend_index(15.0), 1);
        assert_eq!(node.descend_index(25.0), 2);
        assert_eq!(node.child(0), 100);
        assert_eq!(node.child(1), 101);
        assert_eq!(node.child(2), 102);
    }

    #[test]
    fn internal_split_and_absorb() {
        let mut buf = vec![0u8; P];
        let mut node = Internal::init(&mut buf, 0);
        for i in 0..9 {
            node.insert_at(P, i, (i as f64 + 1.0) * 10.0, (i + 1) as u32);
        }
        let mut rbuf = vec![0u8; P];
        let mut right = Internal::init(&mut rbuf, 0);
        let promoted = node.split_into(&mut right);
        assert_eq!(promoted, 50.0);
        assert_eq!(node.count(), 4);
        assert_eq!(right.count(), 4);
        assert_eq!(right.child(0), 5, "child right of the median");
        assert_eq!(right.key(0), 60.0);
        // Merge back.
        node.absorb(P, promoted, &right);
        assert_eq!(node.count(), 9);
        assert_eq!(node.key(4), 50.0);
        assert_eq!(node.child(9), 9);
    }

    #[test]
    fn internal_remove() {
        let mut buf = vec![0u8; P];
        let mut node = Internal::init(&mut buf, 0);
        node.insert_at(P, 0, 10.0, 1);
        node.insert_at(P, 1, 20.0, 2);
        node.remove_at(0);
        assert_eq!(node.count(), 1);
        assert_eq!(node.key(0), 20.0);
        assert_eq!(node.child(0), 0);
        assert_eq!(node.child(1), 2);
    }

    #[test]
    fn kind_detection() {
        let mut buf = vec![0u8; P];
        Leaf::init(&mut buf);
        assert!(is_leaf(&buf));
        Internal::init(&mut buf, 0);
        assert!(!is_leaf(&buf));
    }
}
