//! On-page layouts and sizing.
//!
//! ```text
//! Leaf page:
//!   0  u8   kind = 0
//!   1  u8   (unused)
//!   2  u16  entry count
//!   4  u32  prev leaf (NULL_PAGE if first)
//!   8  u32  next leaf (NULL_PAGE if last)
//!  12  f64  handicap low_prev
//!  20  f64  handicap low_next
//!  28  f64  handicap high_prev
//!  36  f64  handicap high_next
//!  44  ...  entries: (f32 key, u32 value) × count
//!
//! Internal page:
//!   0  u8   kind = 1
//!   1  u8   (unused)
//!   2  u16  key count
//!   4  u32  child 0
//!   8  ...  (f32 separator, u32 child) × count
//! ```
//!
//! With the paper's 1024-byte pages this gives 122 leaf entries and 127
//! internal separators per page (the paper's idealized `B = 1024/8 = 128`
//! minus header overhead).

/// Sentinel for "no page" in leaf links.
pub const NULL_PAGE: u32 = u32::MAX;

/// Page kind tags.
pub const KIND_LEAF: u8 = 0;
/// Page kind tag for internal nodes.
pub const KIND_INTERNAL: u8 = 1;

/// Byte offset where leaf entries begin.
pub const LEAF_HDR: usize = 44;
/// Bytes per leaf entry (`f32` key + `u32` value).
pub const LEAF_ENTRY: usize = 8;
/// Byte offset where internal entries begin (after child 0).
pub const INTERNAL_HDR: usize = 8;
/// Bytes per internal entry (`f32` separator + `u32` child).
pub const INTERNAL_ENTRY: usize = 8;

/// Maximum leaf entries for a page size.
pub const fn leaf_capacity(page_size: usize) -> usize {
    (page_size - LEAF_HDR) / LEAF_ENTRY
}

/// Maximum internal separators for a page size.
pub const fn internal_capacity(page_size: usize) -> usize {
    (page_size - INTERNAL_HDR) / INTERNAL_ENTRY
}

/// The four per-leaf handicap values of technique T2 (Sections 4.2–4.3).
///
/// `low_*` guide the second (downward) sweep of upward-first queries —
/// `EXIST(q(≥))` on `B^up` trees, `ALL(q(≥))` on `B^down` trees; `high_*`
/// guide the second (upward) sweep of downward-first queries. The `prev`
/// slot covers query slopes between this tree's slope and its predecessor in
/// `S`, the `next` slot slopes toward its successor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Handicaps {
    /// Min bucketed key for slopes toward the previous slope in `S`.
    pub low_prev: f64,
    /// Min bucketed key for slopes toward the next slope in `S`.
    pub low_next: f64,
    /// Max bucketed key for slopes toward the previous slope in `S`.
    pub high_prev: f64,
    /// Max bucketed key for slopes toward the next slope in `S`.
    pub high_next: f64,
}

impl Default for Handicaps {
    /// Neutral handicaps: `low = +∞` (never forces a descent),
    /// `high = −∞` (never forces an ascent).
    fn default() -> Self {
        Handicaps {
            low_prev: f64::INFINITY,
            low_next: f64::INFINITY,
            high_prev: f64::NEG_INFINITY,
            high_next: f64::NEG_INFINITY,
        }
    }
}

/// Upper bound on the absolute error introduced by storing an `f64` key as
/// `f32`, for a key of magnitude `|k|`.
///
/// `f32` has a 24-bit significand, so the relative rounding error is at most
/// `2⁻²⁴`; the bound is padded by a binade and an absolute floor to stay
/// conservative. Query code widens scan boundaries by this slack and lets
/// the exact refinement step discard the extra candidates.
pub fn key_slack(k: f64) -> f64 {
    if !k.is_finite() {
        return 0.0;
    }
    k.abs() * (2.0 / 16_777_216.0) + 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_page_capacities() {
        assert_eq!(leaf_capacity(1024), 122);
        assert_eq!(internal_capacity(1024), 127);
    }

    #[test]
    fn small_page_capacities() {
        // 128-byte pages (used by the stress tests to force deep trees).
        assert_eq!(leaf_capacity(128), 10);
        assert_eq!(internal_capacity(128), 15);
    }

    #[test]
    fn slack_covers_f32_rounding() {
        for k in [0.0, 1.0, -3.75, 123.456, -9876.5, 1e6, -1e8] {
            let rounded = k as f32 as f64;
            assert!(
                (rounded - k).abs() <= key_slack(k),
                "slack too small for {k}: err {} > slack {}",
                (rounded - k).abs(),
                key_slack(k)
            );
        }
    }

    #[test]
    fn slack_of_infinity_is_zero() {
        assert_eq!(key_slack(f64::INFINITY), 0.0);
        assert_eq!(key_slack(f64::NEG_INFINITY), 0.0);
    }

    #[test]
    fn default_handicaps_are_neutral() {
        let h = Handicaps::default();
        assert_eq!(h.low_prev, f64::INFINITY);
        assert_eq!(h.high_next, f64::NEG_INFINITY);
    }
}
