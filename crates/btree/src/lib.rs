//! A disk-based B⁺-tree over `cdb-storage` pages.
//!
//! This is the index substrate of the dual-representation techniques of
//! Bertino, Catania and Chidlovskii (ICDE 1999). Each `B^up`/`B^down` tree of
//! Section 3 is one [`BTree`] keyed by `TOP_P`/`BOT_P` surface values and
//! storing tuple identifiers; many trees share one pager, so the space
//! measurements of Figure 10 fall out of the pager's live-page count.
//!
//! Specifics dictated by the paper:
//!
//! * **4-byte stored values** — keys are serialized as `f32` and record ids
//!   as `u32`, giving the fan-out the paper's page geometry implies
//!   (≈ 122 leaf entries per 1024-byte page). Callers pass `f64` keys;
//!   [`layout::key_slack`] bounds the rounding and query code widens scans
//!   accordingly (the refinement step removes the resulting false hits).
//! * **`±∞` keys** — unbounded polyhedra have infinite `TOP`/`BOT` values;
//!   they are stored as IEEE infinities, which order correctly.
//! * **bidirectional leaf sweeps** — leaves form a doubly-linked list so both
//!   the upward and downward sweeps of technique T2 cost one page per leaf.
//! * **handicap slots** — each leaf reserves four `f64` slots
//!   (`low_prev`, `low_next`, `high_prev`, `high_next`; Section 4.2 Step 2)
//!   that the index layer fills and the sweep callbacks expose.

pub mod layout;
pub mod node;
pub mod tree;

pub use layout::{key_slack, Handicaps, NULL_PAGE};
pub use tree::{BTree, LeafInfo, LeafSnapshot, SweepControl};
