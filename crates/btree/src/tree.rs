//! The B⁺-tree proper: search, insert, delete, bulk load and leaf sweeps.
//!
//! Trees do not own their pager — many trees (the `2k` `B^up`/`B^down`
//! forests of Section 3) share one, so the pager's live-page count is the
//! space metric of Figure 10. Mutating operations take `&mut dyn Pager`
//! explicitly; searches and sweeps only need a `&dyn PageReader`, so a
//! built tree can serve concurrent queries. Page accesses are counted in
//! the pager either way.
//!
//! Every operation that touches pages is fallible (`io::Result`): the pager
//! underneath may be a real file, a fault-injected wrapper, or a quarantined
//! device. Errors propagate; panics are reserved for caller bugs (`NaN`
//! keys, unsorted bulk loads) and for invariant violations in [`BTree::validate`].
//!
//! **Deletion policy.** Entries are removed in place; leaves are never
//! merged (the PostgreSQL-style relaxed deletion): an emptied leaf stays in
//! the chain and is skipped by sweeps. Space therefore tracks the high-water
//! mark; [`BTree::rebuild`] compacts. This keeps the duplicate-heavy delete
//! path simple and does not affect any experiment (the paper's workloads are
//! build-then-query); the paper's `O(log_B n)` amortized update bound still
//! holds since no operation exceeds one root-to-leaf path plus splits.

use std::io;

use cdb_storage::{PageId, PageReader, Pager};

use crate::layout::{internal_capacity, leaf_capacity, Handicaps, NULL_PAGE};
use crate::node::{is_leaf, Internal, Leaf};

/// Flow control for leaf sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepControl {
    /// Keep sweeping into the next leaf.
    Continue,
    /// Stop after this leaf.
    Stop,
}

/// What a sweep callback sees for each visited leaf.
#[derive(Clone, Debug)]
pub struct LeafSnapshot {
    /// Page id of the leaf (one page access per visit).
    pub page: PageId,
    /// The leaf's handicap slots.
    pub handicaps: Handicaps,
    /// Entries within the sweep range, in sweep order
    /// (ascending keys for upward sweeps, descending for downward).
    pub entries: Vec<(f64, u32)>,
}

/// Summary of one leaf, in chain order (for handicap rebuilds).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LeafInfo {
    /// Page id.
    pub page: PageId,
    /// Smallest key stored (`NaN`-free; `f64::NAN` never enters the tree).
    pub min_key: f64,
    /// Largest key stored.
    pub max_key: f64,
    /// Number of entries.
    pub count: usize,
}

/// A disk-based B⁺-tree multi-map from `f64` keys (stored as `f32`) to
/// `u32` values.
///
/// ```
/// use cdb_btree::{BTree, SweepControl};
/// use cdb_storage::{MemPager, Pager};
///
/// let mut pager = MemPager::paper_1999();
/// let mut tree = BTree::new(&mut pager).unwrap();
/// for (k, v) in [(3.5, 1), (-2.0, 2), (f64::INFINITY, 3), (3.5, 4)] {
///     tree.insert(&mut pager, k, v).unwrap();
/// }
/// // Range scan: duplicates kept, infinities ordered last.
/// let hits = tree.range(&mut pager, 0.0, 10.0).unwrap();
/// assert_eq!(hits.len(), 2);
/// // Leaf sweep with early stop.
/// let mut seen = 0;
/// tree.sweep_up(&mut pager, -10.0, |leaf| {
///     seen += leaf.entries.len();
///     SweepControl::Continue
/// })
/// .unwrap();
/// assert_eq!(seen, 4);
/// ```
#[derive(Clone, Debug)]
pub struct BTree {
    page_size: usize,
    root: PageId,
    height: usize, // 0 = root is a leaf
    len: u64,
    first_leaf: PageId,
    last_leaf: PageId,
    pages: u64,
}

impl BTree {
    /// Creates an empty tree, allocating its root leaf from `pager`.
    pub fn new(pager: &mut dyn Pager) -> io::Result<Self> {
        let page_size = pager.page_size();
        let root = pager.allocate()?;
        let mut buf = vec![0u8; page_size];
        Leaf::init(&mut buf);
        pager.write(root, &buf)?;
        Ok(BTree {
            page_size,
            root,
            height: 0,
            len: 0,
            first_leaf: root,
            last_leaf: root,
            pages: 1,
        })
    }

    /// Re-attaches a tree from persisted metadata without touching the
    /// pager: the node pages (and any handicap slots stored in the leaves)
    /// are already on disk, so scalar roots are all a catalog needs to save.
    ///
    /// The caller is responsible for passing values that describe a tree
    /// previously built over the same pager; the structure is trusted, and
    /// a wrong root surfaces as a read of an unallocated page.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        page_size: usize,
        root: PageId,
        height: usize,
        len: u64,
        first_leaf: PageId,
        last_leaf: PageId,
        pages: u64,
    ) -> Self {
        BTree {
            page_size,
            root,
            height,
            len,
            first_leaf,
            last_leaf,
            pages,
        }
    }

    /// Root page id (persisted by the catalog).
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Number of stored entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (`0` when the root is a leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pages owned by this tree (leaves + internals).
    pub fn page_count(&self) -> u64 {
        self.pages
    }

    fn read(&self, pager: &dyn PageReader, id: PageId, buf: &mut [u8]) -> io::Result<()> {
        pager.read(id, buf)
    }

    // ------------------------------------------------------------- insert --

    /// Inserts `(key, value)`. Duplicate keys are allowed; `NaN` is not.
    ///
    /// # Errors
    /// Propagates pager I/O failures. A failed insert may leave a split
    /// half-propagated; rebuild from the heap in that case.
    ///
    /// # Panics
    /// Panics on a `NaN` key.
    pub fn insert(&mut self, pager: &mut dyn Pager, key: f64, value: u32) -> io::Result<()> {
        assert!(!key.is_nan(), "NaN keys are not allowed");
        // Descend, remembering the path.
        let mut path: Vec<(PageId, usize)> = Vec::with_capacity(self.height);
        let mut page = self.root;
        let mut buf = vec![0u8; self.page_size];
        for _ in 0..self.height {
            self.read(&*pager, page, &mut buf)?;
            let node = Internal::new(&mut buf);
            let idx = node.descend_index(key);
            let child = node.child(idx);
            path.push((page, idx));
            page = child;
        }
        self.read(&*pager, page, &mut buf)?;
        let mut leaf = Leaf::new(&mut buf);
        if leaf.count() < leaf_capacity(self.page_size) {
            leaf.insert(self.page_size, key, value);
            pager.write(page, &buf)?;
            self.len += 1;
            return Ok(());
        }
        // Split the leaf. Both halves inherit the original handicap values:
        // a handicap is a conservative sweep bound, and keeping the
        // pre-split bound in both halves can only widen (never corrupt) the
        // second sweep of technique T2 — incremental index updates rely on
        // this (they re-tighten lazily via a rebuild).
        let new_page = pager.allocate()?;
        self.pages += 1;
        let mut rbuf = vec![0u8; self.page_size];
        let mut right = Leaf::init(&mut rbuf);
        let mut leaf = Leaf::new(&mut buf);
        right.set_handicaps(leaf.handicaps());
        let sep = leaf.split_into(&mut right);
        // Fix the chain.
        let old_next = leaf.next();
        leaf.set_next(new_page);
        right.set_prev(page);
        right.set_next(old_next);
        if old_next == NULL_PAGE {
            self.last_leaf = new_page;
        } else {
            let mut nbuf = vec![0u8; self.page_size];
            self.read(&*pager, old_next, &mut nbuf)?;
            Leaf::new(&mut nbuf).set_prev(new_page);
            pager.write(old_next, &nbuf)?;
        }
        // Insert into the correct half. Duplicates of `sep` may span the
        // boundary; route by comparison with the separator.
        if key < sep {
            Leaf::new(&mut buf).insert(self.page_size, key, value);
        } else {
            Leaf::new(&mut rbuf).insert(self.page_size, key, value);
        }
        pager.write(page, &buf)?;
        pager.write(new_page, &rbuf)?;
        self.len += 1;
        self.insert_separator(pager, path, sep, new_page)
    }

    /// Propagates a split upward: inserts `(sep, right_child)` along `path`.
    fn insert_separator(
        &mut self,
        pager: &mut dyn Pager,
        mut path: Vec<(PageId, usize)>,
        mut sep: f64,
        mut right_child: PageId,
    ) -> io::Result<()> {
        let mut buf = vec![0u8; self.page_size];
        while let Some((page, idx)) = path.pop() {
            self.read(&*pager, page, &mut buf)?;
            let mut node = Internal::new(&mut buf);
            if node.count() < internal_capacity(self.page_size) {
                node.insert_at(self.page_size, idx, sep, right_child);
                pager.write(page, &buf)?;
                return Ok(());
            }
            // Split this internal node. Insert first into a widened copy is
            // avoided by splitting first, then placing into the proper half.
            let new_page = pager.allocate()?;
            self.pages += 1;
            let mut rbuf = vec![0u8; self.page_size];
            let mut right = Internal::init(&mut rbuf, 0);
            let promoted = node.split_into(&mut right);
            if sep < promoted {
                let mut left = Internal::new(&mut buf);
                let pos = left.descend_index(sep);
                left.insert_at(self.page_size, pos, sep, right_child);
            } else {
                let mut r = Internal::new(&mut rbuf);
                let pos = r.descend_index(sep);
                r.insert_at(self.page_size, pos, sep, right_child);
            }
            pager.write(page, &buf)?;
            pager.write(new_page, &rbuf)?;
            sep = promoted;
            right_child = new_page;
        }
        // Root split.
        let new_root = pager.allocate()?;
        self.pages += 1;
        let mut buf = vec![0u8; self.page_size];
        let mut root = Internal::init(&mut buf, self.root);
        root.insert_at(self.page_size, 0, sep, right_child);
        pager.write(new_root, &buf)?;
        self.root = new_root;
        self.height += 1;
        Ok(())
    }

    // ------------------------------------------------------------- delete --

    /// Removes one entry equal to `(key, value)` (key compared after the
    /// same `f32` rounding applied at insert). Returns `true` if found.
    pub fn delete(&mut self, pager: &mut dyn Pager, key: f64, value: u32) -> io::Result<bool> {
        assert!(!key.is_nan(), "NaN keys are not allowed");
        let k32 = key as f32 as f64;
        let Some((mut page, mut slot)) = self.find_first_geq(&*pager, k32)? else {
            return Ok(false);
        };
        let mut buf = vec![0u8; self.page_size];
        loop {
            self.read(&*pager, page, &mut buf)?;
            let mut leaf = Leaf::new(&mut buf);
            while slot < leaf.count() {
                let k = leaf.key(slot);
                if k > k32 {
                    return Ok(false);
                }
                if k == k32 && leaf.value(slot) == value {
                    leaf.remove(slot);
                    let emptied = leaf.count() == 0;
                    let (prev, next, h) = (leaf.prev(), leaf.next(), leaf.handicaps());
                    pager.write(page, &buf)?;
                    self.len -= 1;
                    if emptied {
                        // Preserve handicap reachability: an emptied leaf may
                        // be skipped by future sweep starts, so its `low`
                        // bounds migrate upward (next leaf) and its `high`
                        // bounds downward (previous leaf). Folding is
                        // conservative (min/max), cascading through later
                        // deletions, so technique T2 stays correct without a
                        // rebuild.
                        if next != NULL_PAGE {
                            let mut nbuf = vec![0u8; self.page_size];
                            self.read(&*pager, next, &mut nbuf)?;
                            let mut nleaf = Leaf::new(&mut nbuf);
                            let mut nh = nleaf.handicaps();
                            nh.low_prev = nh.low_prev.min(h.low_prev);
                            nh.low_next = nh.low_next.min(h.low_next);
                            nleaf.set_handicaps(nh);
                            pager.write(next, &nbuf)?;
                        }
                        if prev != NULL_PAGE {
                            let mut pbuf = vec![0u8; self.page_size];
                            self.read(&*pager, prev, &mut pbuf)?;
                            let mut pleaf = Leaf::new(&mut pbuf);
                            let mut ph = pleaf.handicaps();
                            ph.high_prev = ph.high_prev.max(h.high_prev);
                            ph.high_next = ph.high_next.max(h.high_next);
                            pleaf.set_handicaps(ph);
                            pager.write(prev, &pbuf)?;
                        }
                    }
                    return Ok(true);
                }
                slot += 1;
            }
            let next = leaf.next();
            if next == NULL_PAGE {
                return Ok(false);
            }
            page = next;
            slot = 0;
        }
    }

    // ------------------------------------------------------------- search --

    /// Locates the first entry with key `≥ key`: `(leaf page, slot)`.
    /// Returns `None` when every key is smaller.
    pub fn find_first_geq(
        &self,
        pager: &dyn PageReader,
        key: f64,
    ) -> io::Result<Option<(PageId, usize)>> {
        let mut page = self.root;
        let mut buf = vec![0u8; self.page_size];
        for _ in 0..self.height {
            self.read(pager, page, &mut buf)?;
            let node = Internal::new(&mut buf);
            page = node.child(node.descend_index_left(key));
        }
        loop {
            self.read(pager, page, &mut buf)?;
            let leaf = Leaf::new(&mut buf);
            let slot = leaf.lower_bound(key);
            if slot < leaf.count() {
                return Ok(Some((page, slot)));
            }
            let next = leaf.next();
            if next == NULL_PAGE {
                return Ok(None);
            }
            page = next;
        }
    }

    /// Locates the last entry with key `≤ key`: `(leaf page, slot)`.
    /// Returns `None` when every key is larger.
    pub fn find_last_leq(
        &self,
        pager: &dyn PageReader,
        key: f64,
    ) -> io::Result<Option<(PageId, usize)>> {
        let mut page = self.root;
        let mut buf = vec![0u8; self.page_size];
        for _ in 0..self.height {
            self.read(pager, page, &mut buf)?;
            let node = Internal::new(&mut buf);
            page = node.child(node.descend_index(key));
        }
        loop {
            self.read(pager, page, &mut buf)?;
            let leaf = Leaf::new(&mut buf);
            // Last index with key <= key.
            let mut ub = leaf.lower_bound(key);
            while ub < leaf.count() && leaf.key(ub) <= key {
                ub += 1;
            }
            if ub > 0 {
                return Ok(Some((page, ub - 1)));
            }
            let prev = leaf.prev();
            if prev == NULL_PAGE {
                return Ok(None);
            }
            page = prev;
        }
    }

    /// Collects all values whose key lies in `[lo, hi]` (both inclusive).
    pub fn range(&self, pager: &dyn PageReader, lo: f64, hi: f64) -> io::Result<Vec<(f64, u32)>> {
        let mut out = Vec::new();
        self.sweep_up(pager, lo, |snap| {
            for &(k, v) in &snap.entries {
                if k > hi {
                    return SweepControl::Stop;
                }
                out.push((k, v));
            }
            SweepControl::Continue
        })?;
        Ok(out)
    }

    // ------------------------------------------------------------- sweeps --

    /// Sweeps leaves upward starting from the first entry with key `≥ from`,
    /// invoking `visit` once per leaf (ascending entries ≥ `from`).
    pub fn sweep_up<F>(&self, pager: &dyn PageReader, from: f64, mut visit: F) -> io::Result<()>
    where
        F: FnMut(&LeafSnapshot) -> SweepControl,
    {
        let Some((mut page, slot)) = self.find_first_geq(pager, from)? else {
            return Ok(());
        };
        let mut first_slot = slot;
        let mut buf = vec![0u8; self.page_size];
        loop {
            self.read(pager, page, &mut buf)?;
            let leaf = Leaf::new(&mut buf);
            let entries: Vec<(f64, u32)> = (first_slot..leaf.count())
                .map(|i| (leaf.key(i), leaf.value(i)))
                .collect();
            let snap = LeafSnapshot {
                page,
                handicaps: leaf.handicaps(),
                entries,
            };
            if visit(&snap) == SweepControl::Stop {
                return Ok(());
            }
            let next = leaf.next();
            if next == NULL_PAGE {
                return Ok(());
            }
            page = next;
            first_slot = 0;
        }
    }

    /// Sweeps leaves downward starting from the last entry with key `≤ from`,
    /// invoking `visit` once per leaf (descending entries ≤ `from`).
    pub fn sweep_down<F>(&self, pager: &dyn PageReader, from: f64, mut visit: F) -> io::Result<()>
    where
        F: FnMut(&LeafSnapshot) -> SweepControl,
    {
        let Some((mut page, slot)) = self.find_last_leq(pager, from)? else {
            return Ok(());
        };
        let mut last_slot = Some(slot);
        let mut buf = vec![0u8; self.page_size];
        loop {
            self.read(pager, page, &mut buf)?;
            let leaf = Leaf::new(&mut buf);
            let hi = last_slot.unwrap_or_else(|| leaf.count().wrapping_sub(1));
            let entries: Vec<(f64, u32)> = if leaf.count() == 0 {
                Vec::new()
            } else {
                (0..=hi)
                    .rev()
                    .map(|i| (leaf.key(i), leaf.value(i)))
                    .collect()
            };
            let snap = LeafSnapshot {
                page,
                handicaps: leaf.handicaps(),
                entries,
            };
            if visit(&snap) == SweepControl::Stop {
                return Ok(());
            }
            let prev = leaf.prev();
            if prev == NULL_PAGE {
                return Ok(());
            }
            page = prev;
            last_slot = None;
        }
    }

    // ---------------------------------------------------------- bulk load --

    /// Builds a tree from entries **sorted by key** (duplicates allowed).
    /// Leaves are filled to `fill` (0.5–1.0) of capacity.
    ///
    /// # Panics
    /// Panics if the input is unsorted or `fill` is out of range.
    pub fn bulk_load(pager: &mut dyn Pager, entries: &[(f64, u32)], fill: f64) -> io::Result<Self> {
        assert!((0.5..=1.0).contains(&fill), "fill factor out of range");
        let page_size = pager.page_size();
        if entries.is_empty() {
            return BTree::new(pager);
        }
        let per_leaf = ((leaf_capacity(page_size) as f64 * fill) as usize).max(1);
        let mut buf = vec![0u8; page_size];
        let mut leaves: Vec<(PageId, f64)> = Vec::new(); // (page, first key)
        let mut pages = 0u64;
        let mut prev_key = f64::NEG_INFINITY;
        let mut prev_page = NULL_PAGE;
        for chunk in entries.chunks(per_leaf) {
            let page = pager.allocate()?;
            pages += 1;
            let mut leaf = Leaf::init(&mut buf);
            for &(k, v) in chunk {
                assert!(!k.is_nan(), "NaN keys are not allowed");
                assert!(
                    k >= prev_key || (k as f32 as f64) >= prev_key,
                    "unsorted bulk load"
                );
                prev_key = k as f32 as f64;
                leaf.insert(page_size, k, v);
            }
            leaf.set_prev(prev_page);
            pager.write(page, &buf)?;
            if prev_page != NULL_PAGE {
                let mut pbuf = vec![0u8; page_size];
                pager.read(prev_page, &mut pbuf)?;
                Leaf::new(&mut pbuf).set_next(page);
                pager.write(prev_page, &pbuf)?;
            }
            leaves.push((page, chunk[0].0 as f32 as f64));
            prev_page = page;
        }
        let first_leaf = leaves[0].0;
        let last_leaf = leaves[leaves.len() - 1].0;

        // Build internal levels bottom-up.
        let mut level: Vec<(PageId, f64)> = leaves;
        let mut height = 0usize;
        let per_node = internal_capacity(page_size); // keys per node
        while level.len() > 1 {
            height += 1;
            let mut next_level = Vec::new();
            // Each node takes up to per_node+1 children; a trailing group of
            // a single child would make a keyless internal node, so borrow
            // one child from its left neighbour in that case.
            let cap = per_node + 1;
            let mut bounds: Vec<usize> = (0..level.len()).step_by(cap).collect();
            bounds.push(level.len());
            if bounds.len() >= 3 && bounds[bounds.len() - 1] - bounds[bounds.len() - 2] == 1 {
                let n = bounds.len();
                bounds[n - 2] -= 1;
            }
            let groups = bounds.windows(2).map(|w| &level[w[0]..w[1]]);
            for group in groups {
                let page = pager.allocate()?;
                pages += 1;
                let mut node = Internal::init(&mut buf, group[0].0);
                for (i, &(child, first_key)) in group.iter().enumerate().skip(1) {
                    node.insert_at(page_size, i - 1, first_key, child);
                }
                pager.write(page, &buf)?;
                next_level.push((page, group[0].1));
            }
            level = next_level;
        }
        Ok(BTree {
            page_size,
            root: level[0].0,
            height,
            len: entries.len() as u64,
            first_leaf,
            last_leaf,
            pages,
        })
    }

    /// Rewrites the tree compactly (full leaves) and frees the old pages.
    pub fn rebuild(&mut self, pager: &mut dyn Pager) -> io::Result<()> {
        let mut entries = Vec::with_capacity(self.len as usize);
        self.sweep_up(&*pager, f64::NEG_INFINITY, |snap| {
            entries.extend_from_slice(&snap.entries);
            SweepControl::Continue
        })?;
        let old_pages = self.collect_pages(&*pager)?;
        let rebuilt = BTree::bulk_load(pager, &entries, 1.0)?;
        for p in old_pages {
            pager.free(p);
        }
        *self = rebuilt;
        Ok(())
    }

    /// All page ids owned by the tree (BFS). The walk reads every page —
    /// internal nodes to find their children, leaves for integrity alone —
    /// so under a checksumming pager it doubles as a full-tree
    /// verification pass.
    pub fn collect_pages(&self, pager: &dyn PageReader) -> io::Result<Vec<PageId>> {
        let mut out = Vec::new();
        let mut queue = vec![self.root];
        let mut buf = vec![0u8; self.page_size];
        while let Some(page) = queue.pop() {
            out.push(page);
            self.read(pager, page, &mut buf)?;
            if !is_leaf(&buf) {
                let node = Internal::new(&mut buf);
                for i in 0..=node.count() {
                    queue.push(node.child(i));
                }
            }
        }
        Ok(out)
    }

    /// Frees every page of the tree.
    pub fn destroy(self, pager: &mut dyn Pager) -> io::Result<()> {
        for p in self.collect_pages(&*pager)? {
            pager.free(p);
        }
        Ok(())
    }

    // ----------------------------------------------------------- handicaps --

    /// Walks the leaf chain left to right.
    pub fn leaves(&self, pager: &dyn PageReader) -> io::Result<Vec<LeafInfo>> {
        let mut out = Vec::new();
        let mut page = self.first_leaf;
        let mut buf = vec![0u8; self.page_size];
        loop {
            self.read(pager, page, &mut buf)?;
            let leaf = Leaf::new(&mut buf);
            let count = leaf.count();
            out.push(LeafInfo {
                page,
                min_key: if count > 0 { leaf.key(0) } else { f64::NAN },
                max_key: if count > 0 {
                    leaf.key(count - 1)
                } else {
                    f64::NAN
                },
                count,
            });
            let next = leaf.next();
            if next == NULL_PAGE {
                return Ok(out);
            }
            page = next;
        }
    }

    /// First leaf in chain order.
    pub fn first_leaf(&self) -> PageId {
        self.first_leaf
    }

    /// Last leaf in chain order.
    pub fn last_leaf(&self) -> PageId {
        self.last_leaf
    }

    /// Reads the handicap slots of a leaf page (one page access).
    pub fn read_handicaps(&self, pager: &dyn PageReader, page: PageId) -> io::Result<Handicaps> {
        let mut buf = vec![0u8; self.page_size];
        self.read(pager, page, &mut buf)?;
        Ok(Leaf::new(&mut buf).handicaps())
    }

    /// Overwrites the handicap slots of `page` (must be a leaf of this tree).
    pub fn set_handicaps(
        &self,
        pager: &mut dyn Pager,
        page: PageId,
        h: Handicaps,
    ) -> io::Result<()> {
        let mut buf = vec![0u8; self.page_size];
        self.read(&*pager, page, &mut buf)?;
        let mut leaf = Leaf::new(&mut buf);
        leaf.set_handicaps(h);
        pager.write(page, &buf)
    }

    // ----------------------------------------------------------- validation --

    /// Exhaustively checks structural invariants (tests/debugging):
    /// key order within and across leaves, chain consistency, separator
    /// bounds, entry count. Returns I/O errors; panics with a description
    /// on an invariant violation (a bug, not a device failure).
    pub fn validate(&self, pager: &dyn PageReader) -> io::Result<()> {
        // Leaf chain: ordered keys, consistent prev links, count total.
        let mut total = 0u64;
        let mut prev_page = NULL_PAGE;
        let mut prev_key = f64::NEG_INFINITY;
        let mut page = self.first_leaf;
        let mut buf = vec![0u8; self.page_size];
        loop {
            self.read(pager, page, &mut buf)?;
            let leaf = Leaf::new(&mut buf);
            assert_eq!(leaf.prev(), prev_page, "broken prev link at {page}");
            for i in 0..leaf.count() {
                let k = leaf.key(i);
                assert!(k >= prev_key, "key order violation at page {page} slot {i}");
                prev_key = k;
            }
            total += leaf.count() as u64;
            let next = leaf.next();
            if next == NULL_PAGE {
                assert_eq!(page, self.last_leaf, "last_leaf out of date");
                break;
            }
            prev_page = page;
            page = next;
        }
        assert_eq!(total, self.len, "len out of sync");
        // Separator sanity: every key reachable via find_first_geq of itself.
        self.check_node(
            pager,
            self.root,
            self.height,
            f64::NEG_INFINITY,
            f64::INFINITY,
        )
    }

    fn check_node(
        &self,
        pager: &dyn PageReader,
        page: PageId,
        depth: usize,
        lo: f64,
        hi: f64,
    ) -> io::Result<()> {
        let mut buf = vec![0u8; self.page_size];
        self.read(pager, page, &mut buf)?;
        if depth == 0 {
            let leaf = Leaf::new(&mut buf);
            for i in 0..leaf.count() {
                let k = leaf.key(i);
                assert!(k >= lo && k <= hi, "leaf key {k} outside [{lo}, {hi}]");
            }
            return Ok(());
        }
        let node = Internal::new(&mut buf);
        assert!(node.count() >= 1, "empty internal node {page}");
        let mut prev = lo;
        for i in 0..node.count() {
            let k = node.key(i);
            assert!(k >= prev && k <= hi, "separator {k} outside [{prev}, {hi}]");
            prev = k;
        }
        let n = node.count();
        let children: Vec<PageId> = (0..=n).map(|i| node.child(i)).collect();
        let keys: Vec<f64> = (0..n).map(|i| node.key(i)).collect();
        drop(buf);
        for (i, &child) in children.iter().enumerate() {
            let clo = if i == 0 { lo } else { keys[i - 1] };
            let chi = if i == n { hi } else { keys[i] };
            self.check_node(pager, child, depth - 1, clo, chi)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_storage::MemPager;

    const P: usize = 128; // 10 leaf entries -> forces splits quickly

    fn collect_all(tree: &BTree, pager: &mut dyn Pager) -> Vec<(f64, u32)> {
        let mut out = Vec::new();
        tree.sweep_up(pager, f64::NEG_INFINITY, |s| {
            out.extend_from_slice(&s.entries);
            SweepControl::Continue
        })
        .unwrap();
        out
    }

    #[test]
    fn insert_and_range() {
        let mut pager = MemPager::new(P);
        let mut t = BTree::new(&mut pager).unwrap();
        for i in 0..100u32 {
            t.insert(&mut pager, (i * 7 % 100) as f64, i).unwrap();
        }
        assert_eq!(t.len(), 100);
        t.validate(&pager).unwrap();
        let all = collect_all(&t, &mut pager);
        assert_eq!(all.len(), 100);
        assert!(all.windows(2).all(|w| w[0].0 <= w[1].0), "sorted output");
        let r = t.range(&pager, 10.0, 19.0).unwrap();
        assert_eq!(r.len(), 10);
        assert!(r.iter().all(|&(k, _)| (10.0..=19.0).contains(&k)));
    }

    #[test]
    fn duplicates_are_kept() {
        let mut pager = MemPager::new(P);
        let mut t = BTree::new(&mut pager).unwrap();
        for v in 0..50u32 {
            t.insert(&mut pager, 1.0, v).unwrap();
        }
        for v in 0..50u32 {
            t.insert(&mut pager, 2.0, v + 100).unwrap();
        }
        t.validate(&pager).unwrap();
        let r = t.range(&pager, 1.0, 1.0).unwrap();
        assert_eq!(r.len(), 50);
        let r2 = t.range(&pager, 2.0, 2.0).unwrap();
        assert_eq!(r2.len(), 50);
    }

    #[test]
    fn descending_insert_order() {
        let mut pager = MemPager::new(P);
        let mut t = BTree::new(&mut pager).unwrap();
        for i in (0..200u32).rev() {
            t.insert(&mut pager, i as f64, i).unwrap();
        }
        t.validate(&pager).unwrap();
        assert_eq!(t.len(), 200);
        assert!(t.height() >= 1);
        let all = collect_all(&t, &mut pager);
        assert_eq!(all.first().unwrap().1, 0);
        assert_eq!(all.last().unwrap().1, 199);
    }

    #[test]
    fn infinite_keys() {
        let mut pager = MemPager::new(P);
        let mut t = BTree::new(&mut pager).unwrap();
        t.insert(&mut pager, f64::INFINITY, 1).unwrap();
        t.insert(&mut pager, f64::NEG_INFINITY, 2).unwrap();
        t.insert(&mut pager, 0.0, 3).unwrap();
        let all = collect_all(&t, &mut pager);
        assert_eq!(all[0], (f64::NEG_INFINITY, 2));
        assert_eq!(all[2], (f64::INFINITY, 1));
        // Sweep from a finite key sees only the +inf and finite entries.
        let r = t.range(&pager, -10.0, f64::INFINITY).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn delete_specific_duplicate() {
        let mut pager = MemPager::new(P);
        let mut t = BTree::new(&mut pager).unwrap();
        for v in 0..30u32 {
            t.insert(&mut pager, 5.0, v).unwrap();
        }
        assert!(t.delete(&mut pager, 5.0, 17).unwrap());
        assert!(!t.delete(&mut pager, 5.0, 17).unwrap(), "already gone");
        assert!(!t.delete(&mut pager, 6.0, 0).unwrap(), "absent key");
        assert_eq!(t.len(), 29);
        let vals: Vec<u32> = t
            .range(&pager, 5.0, 5.0)
            .unwrap()
            .iter()
            .map(|e| e.1)
            .collect();
        assert!(!vals.contains(&17));
        assert_eq!(vals.len(), 29);
        t.validate(&pager).unwrap();
    }

    #[test]
    fn delete_everything_then_reinsert() {
        let mut pager = MemPager::new(P);
        let mut t = BTree::new(&mut pager).unwrap();
        for i in 0..100u32 {
            t.insert(&mut pager, i as f64, i).unwrap();
        }
        for i in 0..100u32 {
            assert!(t.delete(&mut pager, i as f64, i).unwrap(), "delete {i}");
        }
        assert_eq!(t.len(), 0);
        t.validate(&pager).unwrap();
        for i in 0..50u32 {
            t.insert(&mut pager, i as f64, i + 1000).unwrap();
        }
        t.validate(&pager).unwrap();
        assert_eq!(collect_all(&t, &mut pager).len(), 50);
    }

    #[test]
    fn find_first_geq_and_last_leq() {
        let mut pager = MemPager::new(P);
        let mut t = BTree::new(&mut pager).unwrap();
        for i in 0..50 {
            t.insert(&mut pager, (i * 2) as f64, i as u32).unwrap(); // evens 0..98
        }
        let (page, slot) = t.find_first_geq(&pager, 51.0).unwrap().unwrap();
        let mut buf = vec![0u8; P];
        pager.read(page, &mut buf).unwrap();
        let leaf = Leaf::new(&mut buf);
        assert_eq!(leaf.key(slot), 52.0);
        let (page, slot) = t.find_last_leq(&pager, 51.0).unwrap().unwrap();
        pager.read(page, &mut buf).unwrap();
        let leaf = Leaf::new(&mut buf);
        assert_eq!(leaf.key(slot), 50.0);
        assert!(t.find_first_geq(&pager, 99.0).unwrap().is_none());
        assert!(t.find_last_leq(&pager, -1.0).unwrap().is_none());
    }

    #[test]
    fn sweep_down_descends() {
        let mut pager = MemPager::new(P);
        let mut t = BTree::new(&mut pager).unwrap();
        for i in 0..100u32 {
            t.insert(&mut pager, i as f64, i).unwrap();
        }
        let mut seen = Vec::new();
        t.sweep_down(&pager, 42.5, |snap| {
            seen.extend(snap.entries.iter().map(|e| e.0));
            SweepControl::Continue
        })
        .unwrap();
        assert_eq!(seen.len(), 43); // keys 0..=42
        assert!(seen.windows(2).all(|w| w[0] >= w[1]), "descending order");
        assert_eq!(seen[0], 42.0);
        assert_eq!(*seen.last().unwrap(), 0.0);
    }

    #[test]
    fn sweep_stop_is_respected() {
        let mut pager = MemPager::new(P);
        let mut t = BTree::new(&mut pager).unwrap();
        for i in 0..500u32 {
            t.insert(&mut pager, i as f64, i).unwrap();
        }
        let mut leaves = 0;
        t.sweep_up(&pager, 0.0, |_| {
            leaves += 1;
            if leaves == 3 {
                SweepControl::Stop
            } else {
                SweepControl::Continue
            }
        })
        .unwrap();
        assert_eq!(leaves, 3);
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let mut pager = MemPager::new(P);
        let entries: Vec<(f64, u32)> = (0..1000).map(|i| (i as f64 / 3.0, i as u32)).collect();
        let t = BTree::bulk_load(&mut pager, &entries, 1.0).unwrap();
        t.validate(&pager).unwrap();
        assert_eq!(t.len(), 1000);
        let all = collect_all(&t, &mut pager);
        assert_eq!(all.len(), 1000);
        // Same multiset of values as a tree built by inserts.
        let mut pager2 = MemPager::new(P);
        let mut t2 = BTree::new(&mut pager2).unwrap();
        for &(k, v) in &entries {
            t2.insert(&mut pager2, k, v).unwrap();
        }
        let mut a: Vec<u32> = all.iter().map(|e| e.1).collect();
        let mut b: Vec<u32> = collect_all(&t2, &mut pager2).iter().map(|e| e.1).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn bulk_load_empty_and_single() {
        let mut pager = MemPager::new(P);
        let t = BTree::bulk_load(&mut pager, &[], 1.0).unwrap();
        assert!(t.is_empty());
        let t2 = BTree::bulk_load(&mut pager, &[(1.5, 9)], 0.7).unwrap();
        assert_eq!(t2.len(), 1);
        assert_eq!(t2.range(&pager, 1.0, 2.0).unwrap(), vec![(1.5, 9)]);
    }

    #[test]
    #[should_panic]
    fn bulk_load_unsorted_panics() {
        let mut pager = MemPager::new(P);
        let _ = BTree::bulk_load(&mut pager, &[(2.0, 0), (1.0, 1)], 1.0);
    }

    #[test]
    fn handicaps_round_trip_through_sweeps() {
        let mut pager = MemPager::new(P);
        let entries: Vec<(f64, u32)> = (0..100).map(|i| (i as f64, i as u32)).collect();
        let t = BTree::bulk_load(&mut pager, &entries, 1.0).unwrap();
        let leaves = t.leaves(&pager).unwrap();
        assert!(leaves.len() > 3);
        for (i, l) in leaves.iter().enumerate() {
            t.set_handicaps(
                &mut pager,
                l.page,
                Handicaps {
                    low_prev: i as f64,
                    low_next: i as f64 + 0.25,
                    high_prev: -(i as f64),
                    high_next: f64::NEG_INFINITY,
                },
            )
            .unwrap();
        }
        let mut seen = Vec::new();
        t.sweep_up(&pager, f64::NEG_INFINITY, |snap| {
            seen.push(snap.handicaps.low_prev);
            SweepControl::Continue
        })
        .unwrap();
        assert_eq!(
            seen,
            (0..leaves.len()).map(|i| i as f64).collect::<Vec<_>>()
        );
    }

    #[test]
    fn leaves_report_ranges() {
        let mut pager = MemPager::new(P);
        let entries: Vec<(f64, u32)> = (0..95).map(|i| (i as f64, i as u32)).collect();
        let t = BTree::bulk_load(&mut pager, &entries, 1.0).unwrap();
        let leaves = t.leaves(&pager).unwrap();
        assert_eq!(leaves.iter().map(|l| l.count).sum::<usize>(), 95);
        assert_eq!(leaves[0].min_key, 0.0);
        assert_eq!(leaves.last().unwrap().max_key, 94.0);
        // Ranges are increasing and non-overlapping.
        for w in leaves.windows(2) {
            assert!(w[0].max_key <= w[1].min_key);
        }
    }

    #[test]
    fn rebuild_compacts() {
        let mut pager = MemPager::new(P);
        let mut t = BTree::new(&mut pager).unwrap();
        for i in 0..300u32 {
            t.insert(&mut pager, i as f64, i).unwrap();
        }
        for i in 0..280u32 {
            t.delete(&mut pager, i as f64, i).unwrap();
        }
        let before = pager.live_pages();
        t.rebuild(&mut pager).unwrap();
        t.validate(&pager).unwrap();
        assert_eq!(t.len(), 20);
        assert!(pager.live_pages() < before, "rebuild reclaims pages");
        let all = collect_all(&t, &mut pager);
        assert_eq!(all.len(), 20);
        assert_eq!(all[0].1, 280);
    }

    #[test]
    fn destroy_frees_all_pages() {
        let mut pager = MemPager::new(P);
        let mut t = BTree::new(&mut pager).unwrap();
        for i in 0..500u32 {
            t.insert(&mut pager, i as f64, i).unwrap();
        }
        assert!(pager.live_pages() > 10);
        t.destroy(&mut pager).unwrap();
        assert_eq!(pager.live_pages(), 0);
    }

    #[test]
    fn page_count_tracks_allocations() {
        let mut pager = MemPager::new(P);
        let mut t = BTree::new(&mut pager).unwrap();
        for i in 0..500u32 {
            t.insert(&mut pager, i as f64, i).unwrap();
        }
        assert_eq!(t.page_count() as usize, pager.live_pages());
    }

    #[test]
    fn randomized_against_btreemap() {
        use std::collections::BTreeMap;
        let mut pager = MemPager::new(P);
        let mut t = BTree::new(&mut pager).unwrap();
        let mut oracle: BTreeMap<(i64, u32), ()> = BTreeMap::new();
        let mut seed = 0x12345678u64;
        let mut rand = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        for step in 0..3000u32 {
            let k = (rand() % 200) as f64 - 100.0;
            if rand() % 4 == 0 {
                // Delete a random oracle entry with this key if present.
                let lo = (k as i64, 0u32);
                let hi = (k as i64, u32::MAX);
                if let Some(&(ok, ov)) = oracle.range(lo..=hi).next().map(|(kv, _)| kv) {
                    assert!(t.delete(&mut pager, ok as f64, ov).unwrap());
                    oracle.remove(&(ok, ov));
                }
            } else {
                t.insert(&mut pager, k, step).unwrap();
                oracle.insert((k as i64, step), ());
            }
            if step % 500 == 0 {
                t.validate(&pager).unwrap();
            }
        }
        t.validate(&pager).unwrap();
        assert_eq!(t.len() as usize, oracle.len());
        let all = collect_all(&t, &mut pager);
        let mut got: Vec<(i64, u32)> = all.iter().map(|&(k, v)| (k as i64, v)).collect();
        got.sort_unstable();
        let mut want: Vec<(i64, u32)> = oracle.keys().copied().collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
