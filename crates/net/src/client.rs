//! Blocking client for the `cdb` wire protocol.
//!
//! One [`Client`] is one TCP session: connect performs the versioned
//! handshake, every call sends one request frame and blocks for its
//! response frame, pairing by request id. Typed helpers mirror the engine
//! facade; [`Client::call`] exposes the raw request/response layer for
//! anything else.

use std::io::Write as _;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use cdb_core::query::{QueryResult, Selection, Strategy};
use cdb_core::sql::{SqlMode, SqlOutcome};
use cdb_core::DbStats;
use cdb_geometry::tuple::GeneralizedTuple;
use cdb_storage::codec::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};

use crate::proto::{
    decode_greeting, decode_repl_ack, decode_response, decode_wal_batch, encode_hello,
    encode_repl_ack, encode_request, encode_wal_batch, HandshakeStatus, NetError, ReplicationInfo,
    Request, RequestEnvelope, Response, ShardIdentity, WalBatch, WireQueryResult,
    WireRecoveryReport, PROTOCOL_VERSION,
};

/// Everything a node's `stats` reports, as one typed reply.
#[derive(Clone, Debug)]
pub struct StatsReply {
    /// Engine statistics.
    pub db: DbStats,
    /// Replication role and progress (`None` on a standalone server).
    pub replication: Option<ReplicationInfo>,
    /// Client sessions currently admitted on the node.
    pub connections: u32,
    /// The node's shard identity (`None` outside a sharded deployment).
    pub shard: Option<ShardIdentity>,
}

/// Patience for establishing the TCP connection itself.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);
/// Default per-call socket patience. A hung or blackholed server turns
/// into a typed, retryable [`NetError::Timeout`] instead of wedging the
/// caller forever; [`Client::set_io_timeout`] overrides it.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// A connected wire-protocol session.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    deadline_ms: u32,
    last_lsn: u64,
}

impl Client {
    /// Connects and performs the handshake: read the server's greeting
    /// (refusals — overloaded, shutting down, version skew — surface as
    /// typed errors), then send our hello. Every socket starts with
    /// [`DEFAULT_IO_TIMEOUT`] read/write patience — a dead peer is a
    /// typed [`NetError::Timeout`], never an indefinite hang.
    ///
    /// # Errors
    /// [`NetError::Transport`] for socket/frame failures,
    /// [`NetError::Timeout`] when the peer stops responding,
    /// [`NetError::Overloaded`] / [`NetError::ShuttingDown`] /
    /// [`NetError::VersionMismatch`] when the server refuses the session.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, NetError> {
        let addrs = addr.to_socket_addrs().map_err(transport)?;
        let mut last_err: Option<std::io::Error> = None;
        let mut connected = None;
        for a in addrs {
            match TcpStream::connect_timeout(&a, CONNECT_TIMEOUT) {
                Ok(s) => {
                    connected = Some(s);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let stream = match connected {
            Some(s) => s,
            None => {
                return Err(last_err
                    .map(transport)
                    .unwrap_or_else(|| NetError::Transport("address resolved to nothing".into())))
            }
        };
        stream.set_nodelay(true).map_err(transport)?;
        stream
            .set_read_timeout(Some(DEFAULT_IO_TIMEOUT))
            .map_err(transport)?;
        stream
            .set_write_timeout(Some(DEFAULT_IO_TIMEOUT))
            .map_err(transport)?;
        let mut client = Client {
            stream,
            next_id: 1,
            deadline_ms: 0,
            last_lsn: 0,
        };
        let greeting = client.read_payload()?;
        let (server_version, status) = decode_greeting(&greeting)
            .map_err(|e| NetError::Transport(format!("bad greeting: {e}")))?;
        match status {
            HandshakeStatus::Ok => {}
            HandshakeStatus::Overloaded => return Err(NetError::Overloaded),
            HandshakeStatus::ShuttingDown => return Err(NetError::ShuttingDown),
            HandshakeStatus::VersionMismatch => {
                return Err(NetError::VersionMismatch { server_version })
            }
        }
        if server_version != PROTOCOL_VERSION {
            return Err(NetError::VersionMismatch { server_version });
        }
        client.write_payload(&encode_hello(PROTOCOL_VERSION))?;
        Ok(client)
    }

    /// Sets the relative deadline attached to every subsequent request,
    /// in milliseconds (0 = none).
    pub fn set_deadline_ms(&mut self, ms: u32) {
        self.deadline_ms = ms;
    }

    /// The LSN stamped on the most recent response: the durable LSN for an
    /// acknowledged write, the snapshot LSN the answer was computed
    /// against for a read. This is the client-side basis for
    /// read-your-writes across replicas.
    pub fn last_seen_lsn(&self) -> u64 {
        self.last_lsn
    }

    /// Bounds how long a single call may block on the socket (dead-server
    /// detection). `None` restores indefinite blocking.
    ///
    /// # Errors
    /// [`NetError::Transport`] when the socket option cannot be set.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.stream.set_read_timeout(timeout).map_err(transport)?;
        self.stream.set_write_timeout(timeout).map_err(transport)
    }

    fn write_payload(&mut self, payload: &[u8]) -> Result<(), NetError> {
        write_frame(&mut self.stream, payload).map_err(transport)?;
        self.stream.flush().map_err(transport)
    }

    fn read_payload(&mut self) -> Result<Vec<u8>, NetError> {
        match read_frame(&mut self.stream, DEFAULT_MAX_FRAME) {
            Ok(p) => Ok(p),
            Err(FrameError::Closed) => {
                Err(NetError::Transport("server closed the connection".into()))
            }
            Err(FrameError::Corrupt(e)) => Err(NetError::Transport(format!("corrupt frame: {e}"))),
            Err(FrameError::Io(e)) => Err(transport(e)),
        }
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    /// Any [`NetError`] the server answers with, or
    /// [`NetError::Transport`] when the session itself fails.
    pub fn call(&mut self, request: Request) -> Result<Response, NetError> {
        let env = RequestEnvelope {
            request_id: self.next_id,
            deadline_ms: self.deadline_ms,
            request,
        };
        self.next_id += 1;
        self.write_payload(&encode_request(&env))?;
        let payload = self.read_payload()?;
        let (id, lsn, outcome) = decode_response(&payload)
            .map_err(|e| NetError::Transport(format!("bad response: {e}")))?;
        if id != env.request_id {
            return Err(NetError::Transport(format!(
                "response id {id} does not match request id {}",
                env.request_id
            )));
        }
        self.last_lsn = lsn;
        outcome
    }

    fn expect_unit(&mut self, request: Request) -> Result<(), NetError> {
        match self.call(request)? {
            Response::Unit => Ok(()),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), NetError> {
        self.expect_unit(Request::Ping)
    }

    /// Creates a relation of the given dimension.
    pub fn create_relation(&mut self, relation: &str, dim: u32) -> Result<(), NetError> {
        self.expect_unit(Request::CreateRelation {
            relation: relation.into(),
            dim,
        })
    }

    /// Drops a relation and frees its pages.
    pub fn drop_relation(&mut self, relation: &str) -> Result<(), NetError> {
        self.expect_unit(Request::DropRelation {
            relation: relation.into(),
        })
    }

    /// Inserts a tuple; returns its assigned id.
    pub fn insert(&mut self, relation: &str, tuple: GeneralizedTuple) -> Result<u32, NetError> {
        match self.call(Request::Insert {
            relation: relation.into(),
            tuple,
        })? {
            Response::Inserted(id) => Ok(id),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Deletes a tuple; returns the removed tuple.
    pub fn delete(&mut self, relation: &str, id: u32) -> Result<GeneralizedTuple, NetError> {
        match self.call(Request::Delete {
            relation: relation.into(),
            id,
        })? {
            Response::Tuple(t) => Ok(t),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Builds the 2-D dual index over an explicit slope set.
    pub fn build_dual(&mut self, relation: &str, slopes: Vec<f64>) -> Result<(), NetError> {
        self.expect_unit(Request::BuildDual {
            relation: relation.into(),
            slopes,
        })
    }

    /// Builds the d-dimensional dual index over a regular slope grid.
    pub fn build_dual_d(
        &mut self,
        relation: &str,
        per_axis: u32,
        range: f64,
    ) -> Result<(), NetError> {
        self.expect_unit(Request::BuildDualD {
            relation: relation.into(),
            per_axis,
            range,
        })
    }

    /// Packs the R⁺-tree baseline at the given fill factor.
    pub fn build_rplus(&mut self, relation: &str, fill: f64) -> Result<(), NetError> {
        self.expect_unit(Request::BuildRPlus {
            relation: relation.into(),
            fill,
        })
    }

    /// Runs an ALL/EXIST selection with the given strategy.
    pub fn query(
        &mut self,
        relation: &str,
        selection: Selection,
        strategy: Strategy,
    ) -> Result<QueryResult, NetError> {
        match self.call(Request::Query {
            relation: relation.into(),
            selection,
            strategy,
        })? {
            Response::Query(WireQueryResult { ids, stats }) => Ok(QueryResult::new(ids, stats)),
            other => Err(protocol_violation(&other)),
        }
    }

    /// EXPLAIN ANALYZE: returns the rendered report and the executed
    /// result.
    pub fn explain(
        &mut self,
        relation: &str,
        selection: Selection,
    ) -> Result<(String, QueryResult), NetError> {
        match self.call(Request::Explain {
            relation: relation.into(),
            selection,
        })? {
            Response::Explain { rendered, result } => {
                let WireQueryResult { ids, stats } = result;
                Ok((rendered, QueryResult::new(ids, stats)))
            }
            other => Err(protocol_violation(&other)),
        }
    }

    /// Equality (line) query: EXIST tuples intersecting `y = a·x + c`, or
    /// ALL tuples lying entirely on it.
    pub fn query_line(
        &mut self,
        relation: &str,
        kind: cdb_core::query::SelectionKind,
        a: f64,
        c: f64,
    ) -> Result<QueryResult, NetError> {
        match self.call(Request::QueryLine {
            relation: relation.into(),
            kind,
            a,
            c,
        })? {
            Response::Query(WireQueryResult { ids, stats }) => Ok(QueryResult::new(ids, stats)),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Runs one constraint-SQL statement on the server's latest snapshot.
    /// `mode` selects execution, `EXPLAIN`, or `EXPLAIN ANALYZE`; the
    /// rendered plan (when present) is byte-identical to what a local
    /// session would print.
    pub fn sql(&mut self, text: &str, mode: SqlMode) -> Result<SqlOutcome, NetError> {
        match self.call(Request::Sql {
            text: text.into(),
            mode,
        })? {
            Response::Sql(o) => Ok(o.into()),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Fetches a stored tuple by id.
    pub fn fetch_tuple(&mut self, relation: &str, id: u32) -> Result<GeneralizedTuple, NetError> {
        match self.call(Request::FetchTuple {
            relation: relation.into(),
            id,
        })? {
            Response::Tuple(t) => Ok(t),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Relation names, sorted.
    pub fn relations(&mut self) -> Result<Vec<String>, NetError> {
        match self.call(Request::ListRelations)? {
            Response::Relations(names) => Ok(names),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Engine statistics snapshot, plus the node's replication role,
    /// session count and shard identity.
    pub fn stats(&mut self) -> Result<StatsReply, NetError> {
        match self.call(Request::Stats)? {
            Response::Stats {
                db,
                replication,
                connections,
                shard,
            } => Ok(StatsReply {
                db,
                replication,
                connections,
                shard,
            }),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Online page-verification report.
    pub fn fsck(&mut self) -> Result<WireRecoveryReport, NetError> {
        match self.call(Request::Fsck)? {
            Response::Fsck(rep) => Ok(rep),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Forces a durable checkpoint.
    pub fn checkpoint(&mut self) -> Result<(), NetError> {
        self.expect_unit(Request::Checkpoint)
    }

    /// Asks the server to shut down gracefully (drain, checkpoint, exit).
    /// The acknowledgement arrives before the server exits.
    pub fn shutdown(&mut self) -> Result<(), NetError> {
        self.expect_unit(Request::Shutdown)
    }

    /// Turns the session into a replication subscription: the server
    /// starts streaming [`WalBatch`] frames from `from_lsn`, this side
    /// answers each with an ack. Consumes the client — the socket leaves
    /// the request/response discipline for good.
    ///
    /// # Errors
    /// [`NetError::NotPrimary`] when the peer is itself a follower (the
    /// hint names the primary), [`NetError::Malformed`] when `from_lsn`
    /// predates the peer's retained history (the follower must reseed
    /// from a base copy), plus the usual transport failures.
    pub fn subscribe(mut self, from_lsn: u64, follower_id: &str) -> Result<Subscription, NetError> {
        match self.call(Request::Subscribe {
            from_lsn,
            follower_id: follower_id.into(),
        })? {
            Response::Subscribed {
                start_lsn,
                durable_lsn,
            } => Ok(Subscription {
                stream: self.stream,
                start_lsn,
                durable_lsn,
            }),
            other => Err(protocol_violation(&other)),
        }
    }
}

/// The follower side of a WAL-shipping stream: stop-and-wait batches in,
/// acks out. Obtained from [`Client::subscribe`].
pub struct Subscription {
    stream: TcpStream,
    /// First LSN the primary's retained history can ship.
    pub start_lsn: u64,
    /// The primary's durable LSN when the subscription was accepted.
    pub durable_lsn: u64,
}

impl Subscription {
    /// Bounds how long [`next_batch`](Subscription::next_batch) waits.
    /// The primary heartbeats idle subscriptions about once a second, so
    /// a few seconds of silence means the link or the primary is gone.
    ///
    /// # Errors
    /// [`NetError::Transport`] when the socket option cannot be set.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.stream.set_read_timeout(timeout).map_err(transport)
    }

    /// Blocks for the next shipped batch. Empty `records` is a heartbeat
    /// carrying only the primary's advancing durable LSN.
    ///
    /// # Errors
    /// [`NetError::Timeout`] when the primary goes silent past the read
    /// timeout, [`NetError::Transport`] when the stream dies or frames
    /// stop parsing.
    pub fn next_batch(&mut self) -> Result<WalBatch, NetError> {
        let payload = match read_frame(&mut self.stream, DEFAULT_MAX_FRAME) {
            Ok(p) => p,
            Err(FrameError::Closed) => {
                return Err(NetError::Transport("primary closed the stream".into()))
            }
            Err(FrameError::Corrupt(e)) => {
                return Err(NetError::Transport(format!("corrupt batch frame: {e}")))
            }
            Err(FrameError::Io(e)) => return Err(transport(e)),
        };
        decode_wal_batch(&payload).map_err(|e| NetError::Transport(format!("bad batch: {e}")))
    }

    /// Acknowledges application through `applied_lsn` (the follower's own
    /// durable LSN — acked means replica-durable).
    ///
    /// # Errors
    /// [`NetError::Transport`] / [`NetError::Timeout`] when the ack
    /// cannot be written.
    pub fn ack(&mut self, applied_lsn: u64) -> Result<(), NetError> {
        write_frame(&mut self.stream, &encode_repl_ack(applied_lsn)).map_err(transport)?;
        self.stream.flush().map_err(transport)
    }
}

/// The primary side of one accepted subscription, used by the server's
/// shipping loop: batches out, acks in.
pub(crate) struct ShipStream<'a> {
    pub stream: &'a mut TcpStream,
}

impl ShipStream<'_> {
    pub(crate) fn send_batch(&mut self, batch: &WalBatch) -> std::io::Result<()> {
        write_frame(self.stream, &encode_wal_batch(batch))?;
        self.stream.flush()
    }

    pub(crate) fn read_ack(&mut self) -> Result<u64, NetError> {
        let payload = match read_frame(self.stream, DEFAULT_MAX_FRAME) {
            Ok(p) => p,
            Err(FrameError::Closed) => {
                return Err(NetError::Transport("follower closed the stream".into()))
            }
            Err(FrameError::Corrupt(e)) => {
                return Err(NetError::Transport(format!("corrupt ack frame: {e}")))
            }
            Err(FrameError::Io(e)) => return Err(transport(e)),
        };
        decode_repl_ack(&payload).map_err(|e| NetError::Transport(format!("bad ack: {e}")))
    }
}

/// Maps socket failures to typed errors: timeouts become the retryable
/// [`NetError::Timeout`], everything else [`NetError::Transport`].
fn transport(e: std::io::Error) -> NetError {
    match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => NetError::Timeout,
        _ => NetError::Transport(e.to_string()),
    }
}

pub(crate) fn protocol_violation(got: &Response) -> NetError {
    NetError::Transport(format!("unexpected response variant: {got:?}"))
}
