//! Blocking client for the `cdb` wire protocol.
//!
//! One [`Client`] is one TCP session: connect performs the versioned
//! handshake, every call sends one request frame and blocks for its
//! response frame, pairing by request id. Typed helpers mirror the engine
//! facade; [`Client::call`] exposes the raw request/response layer for
//! anything else.

use std::io::Write as _;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use cdb_core::query::{QueryResult, Selection, Strategy};
use cdb_core::sql::{SqlMode, SqlOutcome};
use cdb_core::DbStats;
use cdb_geometry::tuple::GeneralizedTuple;
use cdb_storage::codec::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};

use crate::proto::{
    decode_greeting, decode_response, encode_hello, encode_request, HandshakeStatus, NetError,
    Request, RequestEnvelope, Response, WireQueryResult, WireRecoveryReport, PROTOCOL_VERSION,
};

/// A connected wire-protocol session.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    deadline_ms: u32,
}

impl Client {
    /// Connects and performs the handshake: read the server's greeting
    /// (refusals — overloaded, shutting down, version skew — surface as
    /// typed errors), then send our hello.
    ///
    /// # Errors
    /// [`NetError::Transport`] for socket/frame failures,
    /// [`NetError::Overloaded`] / [`NetError::ShuttingDown`] /
    /// [`NetError::VersionMismatch`] when the server refuses the session.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, NetError> {
        let stream = TcpStream::connect(addr).map_err(transport)?;
        stream.set_nodelay(true).map_err(transport)?;
        let mut client = Client {
            stream,
            next_id: 1,
            deadline_ms: 0,
        };
        let greeting = client.read_payload()?;
        let (server_version, status) = decode_greeting(&greeting)
            .map_err(|e| NetError::Transport(format!("bad greeting: {e}")))?;
        match status {
            HandshakeStatus::Ok => {}
            HandshakeStatus::Overloaded => return Err(NetError::Overloaded),
            HandshakeStatus::ShuttingDown => return Err(NetError::ShuttingDown),
            HandshakeStatus::VersionMismatch => {
                return Err(NetError::VersionMismatch { server_version })
            }
        }
        if server_version != PROTOCOL_VERSION {
            return Err(NetError::VersionMismatch { server_version });
        }
        client.write_payload(&encode_hello(PROTOCOL_VERSION))?;
        Ok(client)
    }

    /// Sets the relative deadline attached to every subsequent request,
    /// in milliseconds (0 = none).
    pub fn set_deadline_ms(&mut self, ms: u32) {
        self.deadline_ms = ms;
    }

    /// Bounds how long a single call may block on the socket (dead-server
    /// detection). `None` restores indefinite blocking.
    ///
    /// # Errors
    /// [`NetError::Transport`] when the socket option cannot be set.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.stream.set_read_timeout(timeout).map_err(transport)?;
        self.stream.set_write_timeout(timeout).map_err(transport)
    }

    fn write_payload(&mut self, payload: &[u8]) -> Result<(), NetError> {
        write_frame(&mut self.stream, payload).map_err(transport)?;
        self.stream.flush().map_err(transport)
    }

    fn read_payload(&mut self) -> Result<Vec<u8>, NetError> {
        match read_frame(&mut self.stream, DEFAULT_MAX_FRAME) {
            Ok(p) => Ok(p),
            Err(FrameError::Closed) => {
                Err(NetError::Transport("server closed the connection".into()))
            }
            Err(FrameError::Corrupt(e)) => Err(NetError::Transport(format!("corrupt frame: {e}"))),
            Err(FrameError::Io(e)) => Err(transport(e)),
        }
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    /// Any [`NetError`] the server answers with, or
    /// [`NetError::Transport`] when the session itself fails.
    pub fn call(&mut self, request: Request) -> Result<Response, NetError> {
        let env = RequestEnvelope {
            request_id: self.next_id,
            deadline_ms: self.deadline_ms,
            request,
        };
        self.next_id += 1;
        self.write_payload(&encode_request(&env))?;
        let payload = self.read_payload()?;
        let (id, outcome) = decode_response(&payload)
            .map_err(|e| NetError::Transport(format!("bad response: {e}")))?;
        if id != env.request_id {
            return Err(NetError::Transport(format!(
                "response id {id} does not match request id {}",
                env.request_id
            )));
        }
        outcome
    }

    fn expect_unit(&mut self, request: Request) -> Result<(), NetError> {
        match self.call(request)? {
            Response::Unit => Ok(()),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), NetError> {
        self.expect_unit(Request::Ping)
    }

    /// Creates a relation of the given dimension.
    pub fn create_relation(&mut self, relation: &str, dim: u32) -> Result<(), NetError> {
        self.expect_unit(Request::CreateRelation {
            relation: relation.into(),
            dim,
        })
    }

    /// Drops a relation and frees its pages.
    pub fn drop_relation(&mut self, relation: &str) -> Result<(), NetError> {
        self.expect_unit(Request::DropRelation {
            relation: relation.into(),
        })
    }

    /// Inserts a tuple; returns its assigned id.
    pub fn insert(&mut self, relation: &str, tuple: GeneralizedTuple) -> Result<u32, NetError> {
        match self.call(Request::Insert {
            relation: relation.into(),
            tuple,
        })? {
            Response::Inserted(id) => Ok(id),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Deletes a tuple; returns the removed tuple.
    pub fn delete(&mut self, relation: &str, id: u32) -> Result<GeneralizedTuple, NetError> {
        match self.call(Request::Delete {
            relation: relation.into(),
            id,
        })? {
            Response::Tuple(t) => Ok(t),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Builds the 2-D dual index over an explicit slope set.
    pub fn build_dual(&mut self, relation: &str, slopes: Vec<f64>) -> Result<(), NetError> {
        self.expect_unit(Request::BuildDual {
            relation: relation.into(),
            slopes,
        })
    }

    /// Builds the d-dimensional dual index over a regular slope grid.
    pub fn build_dual_d(
        &mut self,
        relation: &str,
        per_axis: u32,
        range: f64,
    ) -> Result<(), NetError> {
        self.expect_unit(Request::BuildDualD {
            relation: relation.into(),
            per_axis,
            range,
        })
    }

    /// Packs the R⁺-tree baseline at the given fill factor.
    pub fn build_rplus(&mut self, relation: &str, fill: f64) -> Result<(), NetError> {
        self.expect_unit(Request::BuildRPlus {
            relation: relation.into(),
            fill,
        })
    }

    /// Runs an ALL/EXIST selection with the given strategy.
    pub fn query(
        &mut self,
        relation: &str,
        selection: Selection,
        strategy: Strategy,
    ) -> Result<QueryResult, NetError> {
        match self.call(Request::Query {
            relation: relation.into(),
            selection,
            strategy,
        })? {
            Response::Query(WireQueryResult { ids, stats }) => Ok(QueryResult::new(ids, stats)),
            other => Err(protocol_violation(&other)),
        }
    }

    /// EXPLAIN ANALYZE: returns the rendered report and the executed
    /// result.
    pub fn explain(
        &mut self,
        relation: &str,
        selection: Selection,
    ) -> Result<(String, QueryResult), NetError> {
        match self.call(Request::Explain {
            relation: relation.into(),
            selection,
        })? {
            Response::Explain { rendered, result } => {
                let WireQueryResult { ids, stats } = result;
                Ok((rendered, QueryResult::new(ids, stats)))
            }
            other => Err(protocol_violation(&other)),
        }
    }

    /// Equality (line) query: EXIST tuples intersecting `y = a·x + c`, or
    /// ALL tuples lying entirely on it.
    pub fn query_line(
        &mut self,
        relation: &str,
        kind: cdb_core::query::SelectionKind,
        a: f64,
        c: f64,
    ) -> Result<QueryResult, NetError> {
        match self.call(Request::QueryLine {
            relation: relation.into(),
            kind,
            a,
            c,
        })? {
            Response::Query(WireQueryResult { ids, stats }) => Ok(QueryResult::new(ids, stats)),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Runs one constraint-SQL statement on the server's latest snapshot.
    /// `mode` selects execution, `EXPLAIN`, or `EXPLAIN ANALYZE`; the
    /// rendered plan (when present) is byte-identical to what a local
    /// session would print.
    pub fn sql(&mut self, text: &str, mode: SqlMode) -> Result<SqlOutcome, NetError> {
        match self.call(Request::Sql {
            text: text.into(),
            mode,
        })? {
            Response::Sql(o) => Ok(o.into()),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Fetches a stored tuple by id.
    pub fn fetch_tuple(&mut self, relation: &str, id: u32) -> Result<GeneralizedTuple, NetError> {
        match self.call(Request::FetchTuple {
            relation: relation.into(),
            id,
        })? {
            Response::Tuple(t) => Ok(t),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Relation names, sorted.
    pub fn relations(&mut self) -> Result<Vec<String>, NetError> {
        match self.call(Request::ListRelations)? {
            Response::Relations(names) => Ok(names),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Engine statistics snapshot.
    pub fn stats(&mut self) -> Result<DbStats, NetError> {
        match self.call(Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Online page-verification report.
    pub fn fsck(&mut self) -> Result<WireRecoveryReport, NetError> {
        match self.call(Request::Fsck)? {
            Response::Fsck(rep) => Ok(rep),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Forces a durable checkpoint.
    pub fn checkpoint(&mut self) -> Result<(), NetError> {
        self.expect_unit(Request::Checkpoint)
    }

    /// Asks the server to shut down gracefully (drain, checkpoint, exit).
    /// The acknowledgement arrives before the server exits.
    pub fn shutdown(&mut self) -> Result<(), NetError> {
        self.expect_unit(Request::Shutdown)
    }
}

fn transport(e: std::io::Error) -> NetError {
    NetError::Transport(e.to_string())
}

fn protocol_violation(got: &Response) -> NetError {
    NetError::Transport(format!("unexpected response variant: {got:?}"))
}
