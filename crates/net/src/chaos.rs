//! A deterministic in-process TCP chaos proxy for fault-injection tests.
//!
//! [`ChaosProxy`] sits between a client and a real server on loopback and
//! forwards traffic frame by frame — it parses the same
//! `[len][payload][crc]` framing the protocol uses, so faults land on
//! exact frame boundaries (or at an exact byte offset *inside* a chosen
//! frame, for torn-write tests) instead of wherever the kernel happened
//! to split a segment. Faults come from a [`ChaosPlan`], which is plain
//! data derived from a seed: the same plan against the same traffic
//! produces the same failure, every run.
//!
//! The proxy counts frames globally across both directions and all
//! connections through it, in arrival order. Under the protocol's
//! stop-and-wait discipline (one request, one response; one shipped
//! batch, one ack) that order is deterministic, which is what makes
//! "reset on the 7th frame" a reproducible scenario rather than a race.
//!
//! This is test infrastructure, compiled into the library so integration
//! tests and the chaos matrix in `tests/replication.rs` can drive it; it
//! has no dependencies beyond std and never touches the engine.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cdb_prng::StdRng;

/// How often pump threads re-check the stop flag while idle.
const PUMP_POLL: Duration = Duration::from_millis(200);

/// A deterministic fault schedule. Frame indices count every frame the
/// proxy forwards, in either direction, starting at 0.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaosPlan {
    /// Added delay before forwarding each frame.
    pub latency: Option<Duration>,
    /// Forward only the first `bytes` bytes of frame number `frame`,
    /// then tear the connection down — a torn write on the wire.
    pub torn_frame: Option<(u64, usize)>,
    /// Reset both directions when frame number `n` arrives, before
    /// forwarding it.
    pub reset_at_frame: Option<u64>,
    /// From frame number `n` on, swallow traffic silently instead of
    /// forwarding — the peer sees a hang, not an error.
    pub blackhole_from_frame: Option<u64>,
}

impl ChaosPlan {
    /// No faults: the proxy forwards everything verbatim.
    pub fn clean() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// A random-but-reproducible plan: picks one fault kind and an early
    /// frame index from the seed. The same seed always yields the same
    /// plan, so a failing chaos case replays exactly. Frame 0 (the
    /// greeting) is always spared, so connections establish and faults
    /// land on requests in flight.
    pub fn seeded(seed: u64) -> ChaosPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let frame = 1 + rng.next_u64() % 12;
        let mut plan = ChaosPlan {
            latency: Some(Duration::from_millis(1 + rng.next_u64() % 20)),
            ..ChaosPlan::default()
        };
        match rng.next_u64() % 3 {
            0 => plan.torn_frame = Some((frame, 1 + (rng.next_u64() % 7) as usize)),
            1 => plan.reset_at_frame = Some(frame),
            _ => plan.blackhole_from_frame = Some(frame),
        }
        plan
    }
}

/// A loopback TCP proxy that applies a [`ChaosPlan`] to traffic between
/// its listen address and a fixed upstream. Dropping the proxy stops the
/// accept thread and tears down every connection through it.
pub struct ChaosProxy {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral loopback port and forwards every connection to
    /// `upstream` under `plan`.
    ///
    /// # Errors
    /// [`std::io::Error`] when the loopback port cannot be bound.
    pub fn spawn(upstream: SocketAddr, plan: ChaosPlan) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let frames = Arc::new(AtomicU64::new(0));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut pumps = Vec::new();
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((down, _)) => {
                            let Ok(up) = TcpStream::connect(upstream) else {
                                drop(down);
                                continue;
                            };
                            let _ = down.set_nodelay(true);
                            let _ = up.set_nodelay(true);
                            for (src, dst) in
                                [(down.try_clone(), up.try_clone()), (Ok(up), Ok(down))]
                            {
                                let (Ok(src), Ok(dst)) = (src, dst) else {
                                    continue;
                                };
                                let stop = Arc::clone(&stop);
                                let frames = Arc::clone(&frames);
                                pumps.push(std::thread::spawn(move || {
                                    pump(src, dst, plan, &frames, &stop);
                                }));
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                }
                for p in pumps {
                    let _ = p.join();
                }
            })
        };
        Ok(ChaosProxy {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should connect to instead of the upstream.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Reads exactly `buf.len()` bytes, tolerating read timeouts (used as a
/// stop-flag poll) and partial reads. Returns false on EOF, error, or
/// stop — the pump should wind down.
fn read_full(src: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> bool {
    let mut filled = 0;
    while filled < buf.len() {
        if stop.load(Ordering::SeqCst) {
            return false;
        }
        match src.read(&mut buf[filled..]) {
            Ok(0) => return false,
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Mid-frame stalls are tolerated indefinitely: the poll
                // timeout exists to observe the stop flag, not to give
                // the proxy opinions about peer latency.
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    true
}

/// Forwards frames from `src` to `dst` until EOF, error, stop, or a
/// scheduled fault fires. One pump per direction per connection; both
/// share the proxy-global frame counter.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    plan: ChaosPlan,
    frames: &AtomicU64,
    stop: &AtomicBool,
) {
    let _ = src.set_read_timeout(Some(PUMP_POLL));
    loop {
        // One protocol frame = [len u32 LE][payload][crc32 LE].
        let mut len_bytes = [0u8; 4];
        if !read_full(&mut src, &mut len_bytes, stop) {
            break;
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        let mut frame = vec![0u8; 4 + len + 4];
        frame[..4].copy_from_slice(&len_bytes);
        if !read_full(&mut src, &mut frame[4..], stop) {
            break;
        }
        let idx = frames.fetch_add(1, Ordering::SeqCst);
        if let Some(d) = plan.latency {
            std::thread::sleep(d);
        }
        if plan.reset_at_frame == Some(idx) {
            break; // teardown below resets both directions
        }
        if let Some(from) = plan.blackhole_from_frame {
            if idx >= from {
                continue; // swallowed: the peer just waits
            }
        }
        if let Some((torn_idx, bytes)) = plan.torn_frame {
            if idx == torn_idx {
                let cut = bytes.min(frame.len());
                let _ = dst.write_all(&frame[..cut]);
                let _ = dst.flush();
                break; // the rest of the frame never arrives
            }
        }
        if dst.write_all(&frame).is_err() || dst.flush().is_err() {
            break;
        }
    }
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}
