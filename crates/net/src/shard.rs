//! Sharding: a fan-out/merge client over hash-partitioned shard groups.
//!
//! A sharded deployment splits one logical constraint database across `K`
//! independent shard groups, each a primary plus optional followers
//! running the unmodified server. Partitioning is by **tuple id**: shard
//! ownership is [`cdb_core::hash_owner`]`(seed, K, id)`, and every shard
//! carries the same persisted [`cdb_core::PartitionSpec`], so an engine
//! only ever *assigns* ids it owns (foreign ids are skipped at insert).
//! The shards' id spaces are therefore disjoint by construction, which
//! makes the merge rules trivial and exact:
//!
//! * **EXIST/ALL selections** — every shard evaluates the same selection
//!   over its local tuples; the global answer is the sorted union of the
//!   per-shard id sets (no duplicates possible), with I/O accounting
//!   summed.
//! * **Single-relation SQL** — rows emerge from each shard in ascending
//!   id order, so per-shard `LIMIT n` + a merge sort by id + a final
//!   truncation to `n` is equivalent to running `LIMIT n` on one node.
//!   Cross-shard joins are refused with a typed error rather than
//!   answered wrong.
//! * **DML** — an insert is routed to the shard that owns the next
//!   global id (so sharded deployments assign the *same* ids a single
//!   node would, in the same order); deletes and point fetches are routed
//!   by the id's owner. A node that receives a misrouted id answers
//!   [`NetError::WrongShard`] naming the owner, which the client follows
//!   once.
//!
//! Each shard group is driven by its own [`ClusterClient`], so failover,
//! backoff and read-your-writes (per-shard LSN watermarks) compose with
//! sharding instead of being reimplemented under it.

use std::collections::HashMap;
use std::fmt;

use cdb_core::query::{QueryResult, QueryStats, Selection, SelectionKind, Strategy};
use cdb_core::sql::{SqlMode, SqlOutcome};
use cdb_geometry::tuple::GeneralizedTuple;

use crate::client::StatsReply;
use crate::cluster::{ClusterClient, ClusterConfig};
use crate::proto::NetError;

/// An epoch-versioned map from shard id to that shard's member
/// addresses: the first address of each group is the primary, the rest
/// are followers. The epoch lets servers and clients detect that they
/// disagree about the topology (a [`NetError::WrongShard`] redirect
/// carries the server's epoch).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    epoch: u64,
    seed: u64,
    groups: Vec<Vec<String>>,
}

impl ShardMap {
    /// Builds a map from a spec string: shard groups separated by `;`,
    /// member addresses within a group by `,`, the first member of each
    /// group being the primary — e.g.
    /// `"127.0.0.1:4001,127.0.0.1:4002;127.0.0.1:4003"` is two shards,
    /// the first with one follower.
    ///
    /// # Errors
    /// [`NetError::Malformed`] for an empty spec, an empty group, or an
    /// empty address.
    pub fn parse(spec: &str, seed: u64, epoch: u64) -> Result<ShardMap, NetError> {
        let mut groups = Vec::new();
        for group in spec.split(';') {
            let members: Vec<String> = group.split(',').map(|a| a.trim().to_string()).collect();
            if members.iter().any(String::is_empty) {
                return Err(NetError::Malformed(format!(
                    "bad shard spec {spec:?}: every `;`-separated group needs \
                     `,`-separated non-empty addresses"
                )));
            }
            groups.push(members);
        }
        if groups.is_empty() {
            return Err(NetError::Malformed(
                "a shard map needs at least one shard group".into(),
            ));
        }
        Ok(ShardMap {
            epoch,
            seed,
            groups,
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.groups.len() as u32
    }

    /// The map's topology epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The deployment-wide partition hash seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Member addresses of shard `i` (primary first).
    pub fn group(&self, i: u32) -> &[String] {
        &self.groups[i as usize]
    }

    /// The shard owning tuple id `id`.
    pub fn owner(&self, id: u32) -> u32 {
        cdb_core::hash_owner(self.seed, self.shards(), id)
    }
}

impl fmt::Display for ShardMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "shard map: {} shards, seed {:#x}, epoch {}",
            self.shards(),
            self.seed,
            self.epoch
        )?;
        for (i, group) in self.groups.iter().enumerate() {
            write!(f, "  shard {i}: {} (primary)", group[0])?;
            for follower in &group[1..] {
                write!(f, ", {follower}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A client for a sharded deployment: owner-routed DML, concurrent
/// fan-out reads, exact merges. See the module docs for the routing and
/// merge rules.
pub struct ShardedClient {
    map: ShardMap,
    clients: Vec<ClusterClient>,
    /// Predicted next global id per relation, kept in lockstep with the
    /// servers' assignments and resynced from every acknowledged insert.
    next_ids: HashMap<String, u32>,
}

impl ShardedClient {
    /// Builds a client over the map, one [`ClusterClient`] per shard
    /// group (connections are lazy). The cluster config applies to every
    /// group; the backoff seed is decorrelated per shard.
    ///
    /// # Errors
    /// [`NetError::Malformed`] when a group's member list is empty
    /// (already ruled out by [`ShardMap::parse`]).
    pub fn new(map: ShardMap, config: ClusterConfig) -> Result<ShardedClient, NetError> {
        let clients = map
            .groups
            .iter()
            .enumerate()
            .map(|(i, group)| {
                let mut c = config;
                c.seed ^= (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ClusterClient::new(group.iter().cloned(), c)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedClient {
            map,
            clients,
            next_ids: HashMap::new(),
        })
    }

    /// The shard map this client routes by.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Runs `f` against every shard concurrently (scoped threads, one per
    /// shard) and returns the outcomes in shard order.
    fn fan_out<T, F>(&mut self, f: F) -> Vec<Result<T, NetError>>
    where
        T: Send,
        F: Fn(&mut ClusterClient) -> Result<T, NetError> + Sync,
    {
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .clients
                .iter_mut()
                .map(|c| s.spawn(move || f(c)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(NetError::Transport("a shard worker panicked".into()))
                    })
                })
                .collect()
        })
    }

    /// Fans `f` out to every shard and demands success everywhere —
    /// DDL and merged reads have no partial-success story.
    fn all_shards<T, F>(&mut self, f: F) -> Result<Vec<T>, NetError>
    where
        T: Send,
        F: Fn(&mut ClusterClient) -> Result<T, NetError> + Sync,
    {
        self.fan_out(f).into_iter().collect()
    }

    /// Liveness probe against every shard.
    pub fn ping(&mut self) -> Result<(), NetError> {
        self.all_shards(ClusterClient::ping)?;
        Ok(())
    }

    /// Creates a relation on every shard.
    pub fn create_relation(&mut self, relation: &str, dim: u32) -> Result<(), NetError> {
        self.all_shards(|c| c.create_relation(relation, dim))?;
        self.next_ids.insert(relation.to_string(), 0);
        Ok(())
    }

    /// Drops a relation from every shard.
    pub fn drop_relation(&mut self, relation: &str) -> Result<(), NetError> {
        self.all_shards(|c| {
            match c.write(crate::proto::Request::DropRelation {
                relation: relation.into(),
            })? {
                crate::proto::Response::Unit => Ok(()),
                other => Err(crate::client::protocol_violation(&other)),
            }
        })?;
        self.next_ids.remove(relation);
        Ok(())
    }

    /// Builds the 2-D dual index on every shard.
    pub fn build_dual(&mut self, relation: &str, slopes: Vec<f64>) -> Result<(), NetError> {
        let slopes = &slopes;
        self.all_shards(|c| c.build_dual(relation, slopes.clone()))?;
        Ok(())
    }

    /// Builds the d-dimensional dual index on every shard.
    pub fn build_dual_d(
        &mut self,
        relation: &str,
        per_axis: u32,
        range: f64,
    ) -> Result<(), NetError> {
        self.all_shards(|c| c.build_dual_d(relation, per_axis, range))?;
        Ok(())
    }

    /// Packs the R⁺-tree baseline on every shard.
    pub fn build_rplus(&mut self, relation: &str, fill: f64) -> Result<(), NetError> {
        self.all_shards(|c| c.build_rplus(relation, fill))?;
        Ok(())
    }

    /// Forces a durable checkpoint on every shard's primary.
    pub fn checkpoint(&mut self) -> Result<(), NetError> {
        self.all_shards(ClusterClient::checkpoint)?;
        Ok(())
    }

    /// Inserts a tuple, routed to the shard owning the next global id —
    /// so a sharded deployment assigns exactly the ids a single node
    /// would, in the same order. The counter resyncs from every
    /// acknowledged id, which also recovers from other writers or
    /// pre-existing data.
    pub fn insert(&mut self, relation: &str, tuple: GeneralizedTuple) -> Result<u32, NetError> {
        let next = self.next_ids.get(relation).copied().unwrap_or(0);
        let shard = self.map.owner(next);
        let id = self.clients[shard as usize].insert(relation, tuple)?;
        self.next_ids.insert(relation.to_string(), id + 1);
        Ok(id)
    }

    /// Deletes a tuple on the shard owning its id; a `WrongShard`
    /// redirect (stale map) is followed once.
    pub fn delete(&mut self, relation: &str, id: u32) -> Result<GeneralizedTuple, NetError> {
        let shard = self.map.owner(id);
        match self.clients[shard as usize].delete(relation, id) {
            Err(NetError::WrongShard { hint, .. })
                if hint != shard && (hint as usize) < self.clients.len() =>
            {
                self.clients[hint as usize].delete(relation, id)
            }
            outcome => outcome,
        }
    }

    /// Fetches a tuple from the shard owning its id; a `WrongShard`
    /// redirect is followed once.
    pub fn fetch_tuple(&mut self, relation: &str, id: u32) -> Result<GeneralizedTuple, NetError> {
        let shard = self.map.owner(id);
        match self.clients[shard as usize].fetch_tuple(relation, id) {
            Err(NetError::WrongShard { hint, .. })
                if hint != shard && (hint as usize) < self.clients.len() =>
            {
                self.clients[hint as usize].fetch_tuple(relation, id)
            }
            outcome => outcome,
        }
    }

    /// Runs an ALL/EXIST selection on every shard concurrently and
    /// merges: the shards' id sets are disjoint, so the global answer is
    /// their sorted union, with I/O accounting summed.
    pub fn query(
        &mut self,
        relation: &str,
        selection: Selection,
        strategy: Strategy,
    ) -> Result<QueryResult, NetError> {
        let selection = &selection;
        let parts = self.all_shards(|c| c.query(relation, selection.clone(), strategy))?;
        Ok(merge_results(parts))
    }

    /// Equality (line) query fanned out and merged like [`query`].
    ///
    /// [`query`]: Self::query
    pub fn query_line(
        &mut self,
        relation: &str,
        kind: SelectionKind,
        a: f64,
        c: f64,
    ) -> Result<QueryResult, NetError> {
        let parts = self.all_shards(|cl| cl.query_line(relation, kind, a, c))?;
        Ok(merge_results(parts))
    }

    /// EXPLAIN ANALYZE on every shard: the per-shard reports labeled and
    /// concatenated, the results merged like [`query`](Self::query).
    pub fn explain(
        &mut self,
        relation: &str,
        selection: Selection,
    ) -> Result<(String, QueryResult), NetError> {
        let selection = &selection;
        let parts = self.all_shards(|c| c.explain(relation, selection.clone()))?;
        let mut rendered = Vec::new();
        let mut results = Vec::new();
        for (shard, (report, result)) in parts.into_iter().enumerate() {
            rendered.push(format!("shard {shard}:\n{}", report.trim_end()));
            results.push(result);
        }
        Ok((rendered.join("\n"), merge_results(results)))
    }

    /// Runs one constraint-SQL statement on every shard and merges the
    /// rows by ascending id, re-applying `LIMIT` after the merge (exact:
    /// each shard's rows are already its `LIMIT`-sized ascending-id
    /// prefix). Multi-relation queries are refused — a per-shard join
    /// would silently drop every cross-shard pair.
    ///
    /// # Errors
    /// [`NetError::Malformed`] for a join; otherwise any shard's error.
    pub fn sql(&mut self, text: &str, mode: SqlMode) -> Result<SqlOutcome, NetError> {
        let query = match cdb_core::sql::parse(text) {
            Ok(q) => q,
            // Let one engine report the parse error with its own (richer)
            // diagnostics — it will fail the same way everywhere.
            Err(_) => return self.clients[0].sql(text, mode),
        };
        if query.relations.len() > 1 {
            return Err(NetError::Malformed(format!(
                "cross-shard joins are not supported: the query names {} relations \
                 and shards hold disjoint id ranges of each",
                query.relations.len()
            )));
        }
        let parts = self.all_shards(|c| c.sql(text, mode))?;
        Ok(merge_sql(parts, query.limit))
    }

    /// Relation names across the deployment (sorted union — normally
    /// identical on every shard, since DDL fans out).
    pub fn relations(&mut self) -> Result<Vec<String>, NetError> {
        let parts = self.all_shards(|c| c.relations())?;
        let mut names: Vec<String> = parts.into_iter().flatten().collect();
        names.sort();
        names.dedup();
        Ok(names)
    }

    /// `stats` from every member of every shard: one `(shard, address,
    /// outcome)` row per member, in map order — the fan-in behind the
    /// shell's `cluster stats` table.
    #[allow(clippy::type_complexity)]
    pub fn member_stats(&mut self) -> Vec<(u32, String, Result<StatsReply, NetError>)> {
        let rows = self.fan_out(|c| Ok(c.member_stats()));
        rows.into_iter()
            .enumerate()
            .flat_map(|(shard, rows)| {
                rows.unwrap_or_default()
                    .into_iter()
                    .map(move |(addr, reply)| (shard as u32, addr, reply))
            })
            .collect()
    }

    /// Per-shard durable LSNs of this client's last acknowledged writes —
    /// the vector its read-your-writes guarantee is enforced against
    /// (each shard's [`ClusterClient`] tracks its own watermark).
    pub fn last_write_lsns(&self) -> Vec<u64> {
        self.clients
            .iter()
            .map(ClusterClient::last_write_lsn)
            .collect()
    }
}

/// Sorted union of disjoint per-shard results, I/O accounting summed.
fn merge_results(parts: Vec<QueryResult>) -> QueryResult {
    let mut ids = Vec::new();
    let mut stats = QueryStats::default();
    for part in parts {
        ids.extend_from_slice(part.ids());
        add_stats(&mut stats, &part.stats);
    }
    QueryResult::new(ids, stats)
}

/// Merges per-shard SQL outcomes: rows sorted by their id vector and cut
/// to `limit`, plans concatenated, accounting summed.
fn merge_sql(parts: Vec<SqlOutcome>, limit: Option<u64>) -> SqlOutcome {
    let mut merged = SqlOutcome {
        columns: Vec::new(),
        rows: Vec::new(),
        plan: None,
        stats: QueryStats::default(),
    };
    let mut plans = Vec::new();
    for (shard, part) in parts.into_iter().enumerate() {
        if merged.columns.is_empty() {
            merged.columns = part.columns;
        }
        merged.rows.extend(part.rows);
        if let Some(p) = part.plan {
            plans.push(format!("shard {shard}:\n{p}"));
        }
        add_stats(&mut merged.stats, &part.stats);
    }
    merged.rows.sort_by(|a, b| a.ids.cmp(&b.ids));
    if let Some(n) = limit {
        merged.rows.truncate(n as usize);
    }
    if !plans.is_empty() {
        merged.plan = Some(plans.join("\n"));
    }
    merged
}

fn add_stats(into: &mut QueryStats, part: &QueryStats) {
    into.index_io.reads += part.index_io.reads;
    into.index_io.writes += part.index_io.writes;
    into.index_io.allocations += part.index_io.allocations;
    into.index_io.frees += part.index_io.frees;
    into.heap_io.reads += part.heap_io.reads;
    into.heap_io.writes += part.heap_io.writes;
    into.heap_io.allocations += part.heap_io.allocations;
    into.heap_io.frees += part.heap_io.frees;
    into.candidates += part.candidates;
    into.duplicates += part.duplicates;
    into.false_hits += part.false_hits;
    into.accepted_by_key += part.accepted_by_key;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_map_parses_groups_and_rejects_garbage() {
        let map = ShardMap::parse("a:1,b:2;c:3", 7, 2).unwrap();
        assert_eq!(map.shards(), 2);
        assert_eq!(map.epoch(), 2);
        assert_eq!(map.group(0), ["a:1", "b:2"]);
        assert_eq!(map.group(1), ["c:3"]);
        assert!(ShardMap::parse("", 7, 0).is_err());
        assert!(ShardMap::parse("a:1;;b:2", 7, 0).is_err());
        assert!(ShardMap::parse("a:1,;b:2", 7, 0).is_err());
    }

    #[test]
    fn shard_map_ownership_matches_the_engine_hash() {
        let map = ShardMap::parse("a;b;c", 0xC0FFEE, 0).unwrap();
        for id in 0..1000 {
            assert_eq!(map.owner(id), cdb_core::hash_owner(0xC0FFEE, 3, id));
            assert!(map.owner(id) < 3);
        }
    }

    #[test]
    fn merged_sql_rows_are_sorted_and_limited() {
        use cdb_core::sql::SqlRow;
        let outcome = |ids: &[u32]| SqlOutcome {
            columns: vec!["r".into()],
            rows: ids
                .iter()
                .map(|&i| SqlRow {
                    ids: vec![i],
                    region: None,
                })
                .collect(),
            plan: None,
            stats: QueryStats::default(),
        };
        let merged = merge_sql(vec![outcome(&[1, 5, 9]), outcome(&[0, 2, 4])], Some(4));
        let ids: Vec<u32> = merged.rows.iter().map(|r| r.ids[0]).collect();
        assert_eq!(ids, [0, 1, 2, 4]);
        assert_eq!(merged.columns, ["r"]);
    }
}
