//! The replica's fetcher: subscribes to the primary, applies shipped WAL
//! batches through the engine lane, and acks its own durable progress.
//!
//! The fetcher is a single background thread owned by a
//! [`Server`](crate::server::Server) running in the replica role. It
//! keeps one subscription alive at a time (stop-and-wait, like the
//! primary's shipping side), reconnecting with seeded, jittered
//! exponential backoff whenever the link drops — a partitioned follower
//! resumes from its own durably-applied LSN, so re-shipping covers
//! exactly the gap. Unrecoverable conditions (the primary's retained
//! history no longer covers our resume point, or a shipped record fails
//! to apply) stop the fetcher and leave the divergence in the log and in
//! `stats`; serving reads continues from the last applied state.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{mpsc, Arc};
use std::time::Duration;

use cdb_prng::StdRng;

use crate::client::Client;
use crate::proto::NetError;
use crate::server::EngineJob;

/// Patience for the next batch (the primary heartbeats every second, so
/// several missed heartbeats in a row mean the link is dead).
const BATCH_TIMEOUT: Duration = Duration::from_secs(5);
/// First reconnect delay; doubles per consecutive failure.
const BACKOFF_BASE: Duration = Duration::from_millis(100);
/// Reconnect delay ceiling.
const BACKOFF_CAP: Duration = Duration::from_secs(3);
/// Granularity of backoff sleeps (each slice re-checks the shutdown flag).
const SLEEP_SLICE: Duration = Duration::from_millis(50);

/// The replica's replication progress, shared between the fetcher thread
/// and the `stats` path.
pub(crate) struct ReplicaStatus {
    /// Whether a subscription to the primary is currently live.
    pub connected: AtomicBool,
    /// LSN of the last durably applied record.
    pub applied_lsn: AtomicU64,
    /// Non-empty batches applied since this process started.
    pub batches: AtomicU64,
    /// The primary's durable LSN as of the last batch (heartbeats
    /// included) — `source_lsn - applied_lsn` is the staleness gap.
    pub source_lsn: AtomicU64,
}

impl ReplicaStatus {
    pub fn new(applied_lsn: u64) -> ReplicaStatus {
        ReplicaStatus {
            connected: AtomicBool::new(false),
            applied_lsn: AtomicU64::new(applied_lsn),
            batches: AtomicU64::new(0),
            source_lsn: AtomicU64::new(0),
        }
    }
}

enum FetchErr {
    /// The stream broke; reconnect and resume.
    Transient(String),
    /// Replication cannot continue (history gap, apply failure).
    Fatal(String),
}

/// Runs until shutdown: keep a subscription to `primary` alive, feed its
/// batches into the engine lane, back off between attempts.
pub(crate) fn fetcher_loop(
    primary: &str,
    follower_id: &str,
    status: &Arc<ReplicaStatus>,
    jobs: &SyncSender<EngineJob>,
    shutdown: &Arc<AtomicBool>,
) {
    // Deterministic jitter: seeded from the follower's identity so two
    // replicas of the same primary don't reconnect in lockstep.
    let seed = follower_id.bytes().fold(0x6b7_5ca1u64, |h, b| {
        h.wrapping_mul(1099511628211) ^ u64::from(b)
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let mut failures: u32 = 0;
    while !shutdown.load(Ordering::SeqCst) {
        match stream_once(primary, follower_id, status, jobs, shutdown) {
            Ok(()) => return, // shutdown observed mid-stream
            Err(FetchErr::Transient(why)) => {
                status.connected.store(false, Ordering::SeqCst);
                failures = failures.saturating_add(1);
                let base = BACKOFF_BASE
                    .saturating_mul(1u32 << failures.min(5).saturating_sub(1))
                    .min(BACKOFF_CAP);
                // 0.5x..1.5x jitter around the exponential step.
                let jittered = base.mul_f64(0.5 + rng.next_f64());
                eprintln!("cdb-replica: link to {primary} lost ({why}); retrying in {jittered:?}");
                sleep_interruptible(jittered, shutdown);
            }
            Err(FetchErr::Fatal(why)) => {
                status.connected.store(false, Ordering::SeqCst);
                eprintln!(
                    "cdb-replica: replication from {primary} stopped: {why}; \
                     serving reads from the last applied state"
                );
                return;
            }
        }
    }
}

fn sleep_interruptible(total: Duration, shutdown: &Arc<AtomicBool>) {
    let mut remaining = total;
    while remaining > Duration::ZERO && !shutdown.load(Ordering::SeqCst) {
        let slice = remaining.min(SLEEP_SLICE);
        std::thread::sleep(slice);
        remaining = remaining.saturating_sub(slice);
    }
}

/// One subscription lifetime: connect, subscribe from our durable resume
/// point, apply batches until the link drops or shutdown.
fn stream_once(
    primary: &str,
    follower_id: &str,
    status: &Arc<ReplicaStatus>,
    jobs: &SyncSender<EngineJob>,
    shutdown: &Arc<AtomicBool>,
) -> Result<(), FetchErr> {
    let from = status.applied_lsn.load(Ordering::SeqCst) + 1;
    let client =
        Client::connect(primary).map_err(|e| FetchErr::Transient(format!("connect: {e}")))?;
    let sub = match client.subscribe(from, follower_id) {
        Ok(sub) => sub,
        // A demoted primary tells us where the leader went; one hop is
        // enough — a stale hint comes back here as another error.
        Err(NetError::NotPrimary {
            leader_hint: Some(hint),
        }) => {
            let redirected = Client::connect(&hint)
                .map_err(|e| FetchErr::Transient(format!("connect to leader hint {hint}: {e}")))?;
            redirected
                .subscribe(from, follower_id)
                .map_err(subscribe_err)?
        }
        Err(e) => return Err(subscribe_err(e)),
    };
    if sub.start_lsn > from {
        return Err(FetchErr::Fatal(format!(
            "the primary's retained history starts at lsn {} but we need {from}: \
             reseed this replica from a base copy",
            sub.start_lsn
        )));
    }
    let mut sub = sub;
    sub.set_read_timeout(Some(BATCH_TIMEOUT))
        .map_err(|e| FetchErr::Transient(format!("socket: {e}")))?;
    status.connected.store(true, Ordering::SeqCst);
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let batch = sub
            .next_batch()
            .map_err(|e| FetchErr::Transient(format!("batch: {e}")))?;
        status.source_lsn.store(batch.durable_lsn, Ordering::SeqCst);
        let applied = status.applied_lsn.load(Ordering::SeqCst);
        if batch.records.is_empty() {
            // Heartbeat: acknowledge liveness with our current progress.
            sub.ack(applied)
                .map_err(|e| FetchErr::Transient(format!("ack: {e}")))?;
            continue;
        }
        // decode_wal_batch already guarantees the batch itself is gapless;
        // verify it starts exactly where we left off.
        let first = batch.records[0].0;
        if first != applied + 1 {
            return Err(FetchErr::Fatal(format!(
                "shipped batch starts at lsn {first} but lsn {} is next: \
                 replication stream out of order",
                applied + 1
            )));
        }
        let (done_tx, done_rx) = mpsc::channel();
        // A blocking send is safe: the fetcher is stop-and-wait (at most
        // one Apply in flight) and the writer drains the lane until the
        // fetcher has already been joined at shutdown.
        jobs.send(EngineJob::Apply {
            records: batch.records,
            done: done_tx,
        })
        .map_err(|_| FetchErr::Transient("engine lane unavailable".into()))?;
        let new_applied = match done_rx.recv() {
            Ok(Ok(lsn)) => lsn,
            Ok(Err(why)) => return Err(FetchErr::Fatal(format!("apply failed: {why}"))),
            Err(_) => return Ok(()), // writer gone: shutdown in progress
        };
        status.applied_lsn.store(new_applied, Ordering::SeqCst);
        status.batches.fetch_add(1, Ordering::SeqCst);
        // Ack only after our own group commit made the records durable —
        // the primary's per-follower acked LSN means replica-durable.
        sub.ack(new_applied)
            .map_err(|e| FetchErr::Transient(format!("ack: {e}")))?;
    }
}

fn subscribe_err(e: NetError) -> FetchErr {
    match e {
        NetError::Malformed(why) => FetchErr::Fatal(why),
        other => FetchErr::Transient(other.to_string()),
    }
}
