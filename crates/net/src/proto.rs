//! The `cdb` wire protocol: typed requests/responses over crc-framed
//! record payloads.
//!
//! Every message is one frame ([`cdb_storage::write_frame`] /
//! [`cdb_storage::read_frame`]: `[len u32][payload][crc32 u32]`), whose
//! payload is encoded with the same fallible [`RecordWriter`] /
//! [`RecordReader`] codec the durable catalog uses — little-endian,
//! length-prefixed strings, explicit tags. Decoding therefore *fails*
//! (never panics, never over-allocates) on torn, malicious or
//! version-skewed bytes, exactly like catalog reads.
//!
//! Connection lifecycle:
//!
//! 1. **Greeting** (server → client, immediately on accept):
//!    `[magic "CDBN"][version u16][status u8]`. A non-zero status
//!    (version-mismatch / overloaded / shutting-down) means the server is
//!    refusing the session and will close the socket.
//! 2. **Hello** (client → server): `[magic "CDBN"][version u16]`. The
//!    server verifies magic and version before serving any request.
//! 3. **Requests** (client → server):
//!    `[request_id u64][deadline_ms u32][op u8][op body]`. `deadline_ms`
//!    is relative to receipt; 0 means no deadline.
//! 4. **Responses** (server → client):
//!    `[request_id u64][lsn u64][status u8][body]` where status 0 carries
//!    a tagged [`Response`] and any other status carries a [`NetError`]
//!    body. The request id is echoed verbatim. `lsn` stamps the state the
//!    answer reflects — the snapshot's applied LSN for reads, the durable
//!    LSN after the batch for writes — which is what a cluster client's
//!    read-your-writes mode compares against.
//! 5. **Replication** (after a [`Request::Subscribe`] is answered with
//!    [`Response::Subscribed`]): the server pushes [`WalBatch`] frames and
//!    reads `ReplAck` frames until either side disconnects; see
//!    [`encode_wal_batch`] / [`encode_repl_ack`].
//!
//! Structured errors survive the wire: every [`CdbError`] variant —
//! including `Quarantined`, `ReadOnly` and `CorruptRecord` — has a stable
//! tag, so a client can distinguish "your query is wrong" from "the
//! relation is quarantined" without parsing message strings.

use cdb_core::plan::{CostEstimate, MethodKind};
use cdb_core::query::{QueryResult, QueryStats, Selection, SelectionKind, Strategy};
use cdb_core::sql::{SqlMode, SqlOutcome, SqlRow};
use cdb_core::{CdbError, DbStats, RelationHealth, RelationStats, WalReplay, WalStats};
use cdb_geometry::constraint::RelOp;
use cdb_geometry::halfplane::HalfPlane;
use cdb_geometry::tuple::GeneralizedTuple;
use cdb_storage::{CodecError, EpochStats, IoStats, PagerRecovery, RecordReader, RecordWriter};

/// Protocol magic, first bytes of both greeting and hello.
pub const MAGIC: [u8; 4] = *b"CDBN";

/// Protocol version spoken by this build. Bumped on any frame-layout or
/// tag change; the handshake refuses mismatched peers. Version 2 added
/// the WAL fields to `Stats` and `Fsck` responses; version 3 added the
/// epoch counters to `Stats` and the quarantine verdict to `Fsck`;
/// version 4 added the `Sql` request/response pair; version 5 added
/// replication (the `Subscribe` request and the `WalBatch`/`ReplAck`
/// stream frames), the `NotPrimary` redirect error, a replication section
/// in `Stats`, and an LSN stamp on every response envelope; version 6
/// added sharding (the `WrongShard` redirect error, and the active-session
/// count plus shard identity in `Stats`).
pub const PROTOCOL_VERSION: u16 = 6;

/// Handshake verdict carried by the server's greeting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HandshakeStatus {
    /// Session admitted; requests may follow.
    Ok,
    /// The server speaks a different protocol version.
    VersionMismatch,
    /// Admission control refused the session (connection limit or request
    /// queue full). Retry later.
    Overloaded,
    /// The server is draining for shutdown and accepts no new sessions.
    ShuttingDown,
}

impl HandshakeStatus {
    fn tag(self) -> u8 {
        match self {
            HandshakeStatus::Ok => 0,
            HandshakeStatus::VersionMismatch => 1,
            HandshakeStatus::Overloaded => 2,
            HandshakeStatus::ShuttingDown => 3,
        }
    }

    fn from_tag(t: u8) -> Result<Self, CodecError> {
        Ok(match t {
            0 => HandshakeStatus::Ok,
            1 => HandshakeStatus::VersionMismatch,
            2 => HandshakeStatus::Overloaded,
            3 => HandshakeStatus::ShuttingDown,
            _ => return Err(CodecError::Invalid("handshake status tag")),
        })
    }
}

/// Encodes the server's greeting payload.
pub fn encode_greeting(version: u16, status: HandshakeStatus) -> Vec<u8> {
    let mut w = RecordWriter::new();
    w.put_bytes(&MAGIC);
    w.put_u16(version);
    w.put_u8(status.tag());
    w.into_bytes()
}

/// Decodes a greeting payload into `(server_version, status)`.
pub fn decode_greeting(buf: &[u8]) -> Result<(u16, HandshakeStatus), CodecError> {
    let mut r = RecordReader::new(buf);
    if r.get_bytes()? != MAGIC {
        return Err(CodecError::Invalid("greeting magic"));
    }
    let version = r.get_u16()?;
    let status = HandshakeStatus::from_tag(r.get_u8()?)?;
    expect_end(&r)?;
    Ok((version, status))
}

/// Encodes the client's hello payload.
pub fn encode_hello(version: u16) -> Vec<u8> {
    let mut w = RecordWriter::new();
    w.put_bytes(&MAGIC);
    w.put_u16(version);
    w.into_bytes()
}

/// Decodes a hello payload into the client's version.
pub fn decode_hello(buf: &[u8]) -> Result<u16, CodecError> {
    let mut r = RecordReader::new(buf);
    if r.get_bytes()? != MAGIC {
        return Err(CodecError::Invalid("hello magic"));
    }
    let version = r.get_u16()?;
    expect_end(&r)?;
    Ok(version)
}

/// One operation a client can ask the server to perform. Mirrors the
/// engine facade (and through it, every `cdb` shell command).
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Unit`].
    Ping,
    /// `ConstraintDb::create_relation`.
    CreateRelation {
        /// Relation name.
        relation: String,
        /// Tuple dimension.
        dim: u32,
    },
    /// `ConstraintDb::drop_relation`.
    DropRelation {
        /// Relation name.
        relation: String,
    },
    /// `ConstraintDb::insert`; answered with [`Response::Inserted`].
    Insert {
        /// Target relation.
        relation: String,
        /// The tuple to store.
        tuple: GeneralizedTuple,
    },
    /// `ConstraintDb::delete`; answered with the removed tuple.
    Delete {
        /// Target relation.
        relation: String,
        /// Tuple id.
        id: u32,
    },
    /// `ConstraintDb::build_dual_index` over an explicit slope set.
    BuildDual {
        /// Target relation.
        relation: String,
        /// Slopes of `S` (≥ 2 distinct finite values).
        slopes: Vec<f64>,
    },
    /// `ConstraintDb::build_dual_index_d` over a regular slope grid.
    BuildDualD {
        /// Target relation.
        relation: String,
        /// Grid points per slope axis (≥ 2).
        per_axis: u32,
        /// Grid half-extent per axis.
        range: f64,
    },
    /// `ConstraintDb::build_rplus_index`.
    BuildRPlus {
        /// Target relation.
        relation: String,
        /// Packing fill factor.
        fill: f64,
    },
    /// `ConstraintDb::query_with`; answered with [`Response::Query`].
    Query {
        /// Target relation.
        relation: String,
        /// The ALL/EXIST half-plane selection.
        selection: Selection,
        /// Execution strategy (`Auto` = planner).
        strategy: Strategy,
    },
    /// `ConstraintDb::explain`; answered with the rendered report plus the
    /// executed result.
    Explain {
        /// Target relation.
        relation: String,
        /// The selection to plan and execute.
        selection: Selection,
    },
    /// `ConstraintDb::exist_line` / `all_line` — the paper's equality
    /// (line) query convenience; answered with [`Response::Query`].
    QueryLine {
        /// Target relation.
        relation: String,
        /// EXIST (intersects the line) or ALL (lies on the line).
        kind: SelectionKind,
        /// Line slope in `y = a·x + c`.
        a: f64,
        /// Line intercept in `y = a·x + c`.
        c: f64,
    },
    /// `ConstraintDb::sql` / `Snapshot::sql` — one constraint-SQL
    /// statement through the operator pipeline; answered with
    /// [`Response::Sql`]. A read: the server runs it against the latest
    /// snapshot, never the writer lane.
    Sql {
        /// The SQL text.
        text: String,
        /// Execute / explain / explain-analyze.
        mode: SqlMode,
    },
    /// `ConstraintDb::fetch_tuple`; answered with [`Response::Tuple`].
    FetchTuple {
        /// Target relation.
        relation: String,
        /// Tuple id.
        id: u32,
    },
    /// `ConstraintDb::relation_names`.
    ListRelations,
    /// `ConstraintDb::stats_snapshot`.
    Stats,
    /// `ConstraintDb::verify_now` — online page verification.
    Fsck,
    /// `ConstraintDb::checkpoint` — explicit durable commit.
    Checkpoint,
    /// Begin graceful shutdown: the server stops admitting sessions,
    /// drains in-flight requests, checkpoints, and exits.
    Shutdown,
    /// A follower asks the primary to stream WAL records from `from_lsn`
    /// on. Answered with [`Response::Subscribed`], after which the session
    /// leaves the request/response discipline: the server pushes
    /// [`WalBatch`] frames and reads `ReplAck` frames until either side
    /// disconnects.
    Subscribe {
        /// First LSN the follower still needs (its applied LSN + 1).
        from_lsn: u64,
        /// Stable follower identity (its serving address), keyed in the
        /// primary's per-follower `stats` so reconnects resume one entry.
        follower_id: String,
    },
}

impl Request {
    /// `true` when the operation mutates the database and must go through
    /// the server's single writer lane.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Request::CreateRelation { .. }
                | Request::DropRelation { .. }
                | Request::Insert { .. }
                | Request::Delete { .. }
                | Request::BuildDual { .. }
                | Request::BuildDualD { .. }
                | Request::BuildRPlus { .. }
                | Request::Checkpoint
        )
    }

    /// Operation name for logs and metrics.
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::CreateRelation { .. } => "create",
            Request::DropRelation { .. } => "drop",
            Request::Insert { .. } => "insert",
            Request::Delete { .. } => "delete",
            Request::BuildDual { .. } => "index",
            Request::BuildDualD { .. } => "index-d",
            Request::BuildRPlus { .. } => "rplus",
            Request::Query { .. } => "query",
            Request::Explain { .. } => "explain",
            Request::QueryLine { .. } => "line",
            Request::Sql { .. } => "sql",
            Request::FetchTuple { .. } => "show",
            Request::ListRelations => "relations",
            Request::Stats => "stats",
            Request::Fsck => "fsck",
            Request::Checkpoint => "checkpoint",
            Request::Shutdown => "shutdown",
            Request::Subscribe { .. } => "subscribe",
        }
    }
}

/// A request frame: id, relative deadline, operation.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestEnvelope {
    /// Client-chosen id, echoed verbatim in the response.
    pub request_id: u64,
    /// Relative deadline in milliseconds from server receipt; 0 = none.
    pub deadline_ms: u32,
    /// The operation.
    pub request: Request,
}

/// Successful response bodies, tagged so the decoder is self-describing.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Acknowledgement with no payload.
    Unit,
    /// Id assigned by an insert.
    Inserted(u32),
    /// A stored tuple (delete returns the removed one, show a fetched one).
    Tuple(GeneralizedTuple),
    /// Query outcome: matching ids plus full cost accounting.
    Query(WireQueryResult),
    /// EXPLAIN ANALYZE outcome: rendered report plus the executed result.
    Explain {
        /// The report as rendered by `ExplainReport::render`.
        rendered: String,
        /// The executed query result.
        result: WireQueryResult,
    },
    /// Constraint-SQL outcome: columns, rows and/or a rendered plan.
    Sql(WireSqlOutcome),
    /// Relation names, sorted.
    Relations(Vec<String>),
    /// Engine statistics snapshot plus the serving node's replication
    /// role and shard identity, when it has them.
    Stats {
        /// Engine statistics.
        db: DbStats,
        /// Replication role and progress (`None` on a standalone server).
        replication: Option<ReplicationInfo>,
        /// Client sessions currently admitted (the serving layer's
        /// connection count, the one admission control caps).
        connections: u32,
        /// This node's place in a sharded deployment (`None` outside one).
        shard: Option<ShardIdentity>,
    },
    /// Online verification report.
    Fsck(WireRecoveryReport),
    /// Subscription accepted: WAL shipping begins with the next frame.
    Subscribed {
        /// First LSN the primary's retained log can ship.
        start_lsn: u64,
        /// The primary's durable (synced) LSN at accept time.
        durable_lsn: u64,
    },
}

/// Replication role and progress, carried inside [`Response::Stats`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplicationInfo {
    /// This node is a primary shipping its WAL.
    Primary {
        /// One entry per follower that ever subscribed, keyed by the
        /// follower's self-reported id.
        followers: Vec<FollowerInfo>,
    },
    /// This node is a read-only follower applying a primary's WAL.
    Replica {
        /// Address of the primary it follows (also the `NotPrimary`
        /// leader hint it hands to misrouted writers).
        primary: String,
        /// Whether the subscription is currently connected.
        connected: bool,
        /// LSN of the last record applied and locally synced.
        applied_lsn: u64,
        /// Batches applied since this process started.
        batches: u64,
        /// The primary's durable LSN as of the last batch or heartbeat —
        /// `source_lsn - applied_lsn` is the staleness bound in records.
        source_lsn: u64,
    },
}

/// One node's place in a sharded deployment, carried inside
/// [`Response::Stats`] so clients can verify their shard map against what
/// the node believes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardIdentity {
    /// This node's shard index.
    pub shard: u32,
    /// Total shards in the deployment.
    pub shards: u32,
    /// The deployment-wide partition hash seed.
    pub seed: u64,
    /// The shard-map epoch this node was booted under.
    pub epoch: u64,
}

/// Per-follower shipping progress tracked by a primary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FollowerInfo {
    /// The follower's self-reported id (its serving address).
    pub id: String,
    /// Whether its subscription is currently connected.
    pub connected: bool,
    /// Last LSN the follower acknowledged as applied and synced.
    pub acked_lsn: u64,
    /// Batches shipped and acknowledged over the entry's lifetime.
    pub batches: u64,
}

/// One shipped batch of WAL records (primary → follower, after
/// [`Response::Subscribed`]). An empty `records` is a heartbeat carrying
/// a fresh `durable_lsn`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalBatch {
    /// The primary's durable LSN when the batch was cut.
    pub durable_lsn: u64,
    /// `(lsn, record bytes)` in LSN order, gapless from the follower's
    /// last acknowledged LSN + 1.
    pub records: Vec<(u64, Vec<u8>)>,
}

/// A [`QueryResult`] in transportable form: ids are sorted and unique
/// (validated on decode), stats carry the full planner accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct WireQueryResult {
    /// Matching tuple ids, ascending.
    pub ids: Vec<u32>,
    /// Execution statistics, including method and estimate when planned.
    pub stats: QueryStats,
}

impl From<&QueryResult> for WireQueryResult {
    fn from(r: &QueryResult) -> Self {
        WireQueryResult {
            ids: r.ids().to_vec(),
            stats: r.stats,
        }
    }
}

/// A [`SqlOutcome`] in transportable form. Identical shape; the wire type
/// exists so the codec layer owns validation on decode.
#[derive(Clone, Debug, PartialEq)]
pub struct WireSqlOutcome {
    /// Column headers.
    pub columns: Vec<String>,
    /// Result rows (empty for explain modes).
    pub rows: Vec<WireSqlRow>,
    /// Rendered operator tree (explain modes).
    pub plan: Option<String>,
    /// Aggregated scan accounting.
    pub stats: QueryStats,
}

/// One [`SqlRow`] on the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct WireSqlRow {
    /// Tuple ids, one per `FROM` relation.
    pub ids: Vec<u32>,
    /// The projected region, when the query projects variables.
    pub region: Option<GeneralizedTuple>,
}

impl From<&SqlOutcome> for WireSqlOutcome {
    fn from(o: &SqlOutcome) -> Self {
        WireSqlOutcome {
            columns: o.columns.clone(),
            rows: o
                .rows
                .iter()
                .map(|r| WireSqlRow {
                    ids: r.ids.clone(),
                    region: r.region.clone(),
                })
                .collect(),
            plan: o.plan.clone(),
            stats: o.stats,
        }
    }
}

impl From<WireSqlOutcome> for SqlOutcome {
    fn from(o: WireSqlOutcome) -> Self {
        SqlOutcome {
            columns: o.columns,
            rows: o
                .rows
                .into_iter()
                .map(|r| SqlRow {
                    ids: r.ids,
                    region: r.region,
                })
                .collect(),
            plan: o.plan,
            stats: o.stats,
        }
    }
}

/// `ConstraintDb::verify_now` report in transportable form.
#[derive(Clone, Debug, PartialEq)]
pub struct WireRecoveryReport {
    /// Header recovery performed at open.
    pub pager: PagerRecovery,
    /// Write-ahead-log replay performed at open, if a log was present.
    pub wal: Option<WalReplay>,
    /// `(relation, health)` pairs, sorted by name.
    pub relations: Vec<(String, RelationHealth)>,
    /// Deferred-reclaim (quarantine) cross-check: `Some(true)` when every
    /// quarantined page is non-live, `Some(false)` on a violation, `None`
    /// for engines without a durable quarantine.
    pub quarantine: Option<bool>,
}

/// Failure responses. `Db` carries the engine's structured error; the
/// rest are conditions of the serving layer itself.
#[derive(Clone, Debug, PartialEq)]
pub enum NetError {
    /// The engine refused the operation.
    Db(CdbError),
    /// Admission control refused the request (queue full). Retry later.
    Overloaded,
    /// The request's deadline expired before execution began.
    DeadlineExceeded,
    /// The request frame failed to decode; the session is closed.
    Malformed(String),
    /// The server is draining for shutdown.
    ShuttingDown,
    /// Handshake failure: the server speaks `server_version`.
    VersionMismatch {
        /// Version advertised by the server's greeting.
        server_version: u16,
    },
    /// The node is a read-only follower; writes belong on the primary.
    NotPrimary {
        /// Address of the primary, when the follower knows it — a
        /// redirect, not just a refusal.
        leader_hint: Option<String>,
    },
    /// The addressed tuple id belongs to a different shard of the
    /// deployment — a routing correction, not a failure. A client whose
    /// map epoch differs from `map_epoch` is holding a stale shard map.
    WrongShard {
        /// The shard-map epoch the serving node was booted under.
        map_epoch: u64,
        /// The shard index that owns the addressed id.
        hint: u32,
    },
    /// Client-side transport failure (connection reset, frame corruption).
    /// Never sent over the wire.
    Transport(String),
    /// A client-side socket timeout: the peer was slow, hung or
    /// blackholed. The request may or may not have executed, so only
    /// idempotent operations should be retried. Never sent over the wire.
    Timeout,
}

impl NetError {
    /// `true` for failures worth retrying — on the same node after a
    /// backoff (`Overloaded`), or transparently on a *different* replica
    /// for idempotent reads (`Timeout`, `Transport`, `ShuttingDown`).
    /// `NotPrimary` and `WrongShard` are redirects, not retries, and the
    /// rest are deterministic refusals.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            NetError::Overloaded
                | NetError::Timeout
                | NetError::Transport(_)
                | NetError::ShuttingDown
        )
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Db(e) => write!(f, "{e}"),
            NetError::Overloaded => write!(f, "server overloaded, retry later"),
            NetError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            NetError::Malformed(m) => write!(f, "malformed request: {m}"),
            NetError::ShuttingDown => write!(f, "server is shutting down"),
            NetError::VersionMismatch { server_version } => {
                write!(
                    f,
                    "protocol version mismatch: server speaks v{server_version}, client v{PROTOCOL_VERSION}"
                )
            }
            NetError::NotPrimary { leader_hint } => match leader_hint {
                Some(addr) => write!(f, "not the primary: writes go to {addr}"),
                None => write!(f, "not the primary: this node is a read-only follower"),
            },
            NetError::WrongShard { map_epoch, hint } => write!(
                f,
                "wrong shard: the id belongs to shard {hint} (map epoch {map_epoch})"
            ),
            NetError::Transport(m) => write!(f, "transport failure: {m}"),
            NetError::Timeout => write!(f, "request timed out"),
        }
    }
}

impl std::error::Error for NetError {}

// --------------------------------------------------------------- tag tables

fn strategy_tag(s: Strategy) -> u8 {
    match s {
        Strategy::Restricted => 0,
        Strategy::T1 => 1,
        Strategy::T2 => 2,
        Strategy::Auto => 3,
        Strategy::Scan => 4,
        Strategy::RPlus => 5,
    }
}

fn strategy_from_tag(t: u8) -> Result<Strategy, CodecError> {
    Ok(match t {
        0 => Strategy::Restricted,
        1 => Strategy::T1,
        2 => Strategy::T2,
        3 => Strategy::Auto,
        4 => Strategy::Scan,
        5 => Strategy::RPlus,
        _ => return Err(CodecError::Invalid("strategy tag")),
    })
}

fn sql_mode_tag(m: SqlMode) -> u8 {
    match m {
        SqlMode::Execute => 0,
        SqlMode::Explain => 1,
        SqlMode::ExplainAnalyze => 2,
    }
}

fn sql_mode_from_tag(t: u8) -> Result<SqlMode, CodecError> {
    Ok(match t {
        0 => SqlMode::Execute,
        1 => SqlMode::Explain,
        2 => SqlMode::ExplainAnalyze,
        _ => return Err(CodecError::Invalid("sql mode tag")),
    })
}

fn method_tag(m: MethodKind) -> u8 {
    match m {
        MethodKind::Restricted => 0,
        MethodKind::T1 => 1,
        MethodKind::T2 => 2,
        MethodKind::DualD => 3,
        MethodKind::SeqScan => 4,
        MethodKind::RPlus => 5,
    }
}

fn method_from_tag(t: u8) -> Result<MethodKind, CodecError> {
    Ok(match t {
        0 => MethodKind::Restricted,
        1 => MethodKind::T1,
        2 => MethodKind::T2,
        3 => MethodKind::DualD,
        4 => MethodKind::SeqScan,
        5 => MethodKind::RPlus,
        _ => return Err(CodecError::Invalid("method tag")),
    })
}

// ----------------------------------------------------------- field helpers

fn expect_end(r: &RecordReader<'_>) -> Result<(), CodecError> {
    if r.remaining() != 0 {
        return Err(CodecError::Invalid("trailing bytes"));
    }
    Ok(())
}

fn get_finite_f64(r: &mut RecordReader<'_>) -> Result<f64, CodecError> {
    let v = r.get_f64()?;
    if !v.is_finite() {
        return Err(CodecError::Invalid("non-finite coefficient"));
    }
    Ok(v)
}

/// Reads a count-prefixed vector without trusting the count for
/// allocation: elements are pushed as their bytes actually arrive, so a
/// forged count fails with `Truncated` after at most the real buffer.
fn get_counted<T>(
    r: &mut RecordReader<'_>,
    mut read: impl FnMut(&mut RecordReader<'_>) -> Result<T, CodecError>,
) -> Result<Vec<T>, CodecError> {
    let n = r.get_u32()? as usize;
    let mut v = Vec::new();
    for _ in 0..n {
        v.push(read(r)?);
    }
    Ok(v)
}

fn put_halfplane(w: &mut RecordWriter, h: &HalfPlane) {
    w.put_u8(match h.op {
        RelOp::Le => 0,
        RelOp::Ge => 1,
    });
    w.put_f64(h.intercept);
    w.put_u32(h.slope.len() as u32);
    for &s in &h.slope {
        w.put_f64(s);
    }
}

fn get_halfplane(r: &mut RecordReader<'_>) -> Result<HalfPlane, CodecError> {
    let op = match r.get_u8()? {
        0 => RelOp::Le,
        1 => RelOp::Ge,
        _ => return Err(CodecError::Invalid("relop tag")),
    };
    let intercept = get_finite_f64(r)?;
    let slope = get_counted(r, get_finite_f64)?;
    // Coefficients are finite by construction above, so `new` cannot panic.
    Ok(HalfPlane::new(slope, intercept, op))
}

fn put_selection(w: &mut RecordWriter, s: &Selection) {
    w.put_u8(match s.kind {
        SelectionKind::All => 0,
        SelectionKind::Exist => 1,
    });
    put_halfplane(w, &s.halfplane);
}

fn get_selection(r: &mut RecordReader<'_>) -> Result<Selection, CodecError> {
    let kind = match r.get_u8()? {
        0 => SelectionKind::All,
        1 => SelectionKind::Exist,
        _ => return Err(CodecError::Invalid("selection kind tag")),
    };
    let halfplane = get_halfplane(r)?;
    Ok(Selection { kind, halfplane })
}

fn put_tuple(w: &mut RecordWriter, t: &GeneralizedTuple) {
    w.put_bytes(&t.encode());
}

fn get_tuple(r: &mut RecordReader<'_>) -> Result<GeneralizedTuple, CodecError> {
    GeneralizedTuple::decode(r.get_bytes()?).ok_or(CodecError::Invalid("tuple bytes"))
}

fn put_iostats(w: &mut RecordWriter, s: &IoStats) {
    w.put_u64(s.reads);
    w.put_u64(s.writes);
    w.put_u64(s.allocations);
    w.put_u64(s.frees);
}

fn get_iostats(r: &mut RecordReader<'_>) -> Result<IoStats, CodecError> {
    Ok(IoStats {
        reads: r.get_u64()?,
        writes: r.get_u64()?,
        allocations: r.get_u64()?,
        frees: r.get_u64()?,
    })
}

fn put_query_stats(w: &mut RecordWriter, s: &QueryStats) {
    put_iostats(w, &s.index_io);
    put_iostats(w, &s.heap_io);
    w.put_u64(s.candidates);
    w.put_u64(s.duplicates);
    w.put_u64(s.false_hits);
    w.put_u64(s.accepted_by_key);
    match s.method {
        None => w.put_u8(0),
        Some(m) => {
            w.put_u8(1);
            w.put_u8(method_tag(m));
        }
    }
    match &s.estimate {
        None => w.put_u8(0),
        Some(e) => {
            w.put_u8(1);
            w.put_f64(e.index_pages);
            w.put_f64(e.heap_pages);
            w.put_f64(e.candidates);
        }
    }
}

fn get_query_stats(r: &mut RecordReader<'_>) -> Result<QueryStats, CodecError> {
    let index_io = get_iostats(r)?;
    let heap_io = get_iostats(r)?;
    let candidates = r.get_u64()?;
    let duplicates = r.get_u64()?;
    let false_hits = r.get_u64()?;
    let accepted_by_key = r.get_u64()?;
    let method = match r.get_u8()? {
        0 => None,
        1 => Some(method_from_tag(r.get_u8()?)?),
        _ => return Err(CodecError::Invalid("method option tag")),
    };
    let estimate = match r.get_u8()? {
        0 => None,
        1 => Some(CostEstimate {
            index_pages: r.get_f64()?,
            heap_pages: r.get_f64()?,
            candidates: r.get_f64()?,
        }),
        _ => return Err(CodecError::Invalid("estimate option tag")),
    };
    Ok(QueryStats {
        index_io,
        heap_io,
        candidates,
        duplicates,
        false_hits,
        accepted_by_key,
        method,
        estimate,
    })
}

fn put_wire_result(w: &mut RecordWriter, res: &WireQueryResult) {
    w.put_u32(res.ids.len() as u32);
    for &id in &res.ids {
        w.put_u32(id);
    }
    put_query_stats(w, &res.stats);
}

fn get_wire_result(r: &mut RecordReader<'_>) -> Result<WireQueryResult, CodecError> {
    let ids = get_counted(r, |r| r.get_u32())?;
    if ids.windows(2).any(|w| w[0] >= w[1]) {
        return Err(CodecError::Invalid("result ids not sorted-unique"));
    }
    let stats = get_query_stats(r)?;
    Ok(WireQueryResult { ids, stats })
}

fn put_sql_outcome(w: &mut RecordWriter, o: &WireSqlOutcome) {
    w.put_u32(o.columns.len() as u32);
    for c in &o.columns {
        w.put_str(c);
    }
    w.put_u32(o.rows.len() as u32);
    for row in &o.rows {
        w.put_u32(row.ids.len() as u32);
        for &id in &row.ids {
            w.put_u32(id);
        }
        match &row.region {
            None => w.put_u8(0),
            Some(t) => {
                w.put_u8(1);
                put_tuple(w, t);
            }
        }
    }
    match &o.plan {
        None => w.put_u8(0),
        Some(p) => {
            w.put_u8(1);
            w.put_str(p);
        }
    }
    put_query_stats(w, &o.stats);
}

fn get_sql_outcome(r: &mut RecordReader<'_>) -> Result<WireSqlOutcome, CodecError> {
    let columns = get_counted(r, |r| Ok(r.get_str()?.to_string()))?;
    let rows = get_counted(r, |r| {
        let ids = get_counted(r, |r| r.get_u32())?;
        let region = match r.get_u8()? {
            0 => None,
            1 => Some(get_tuple(r)?),
            _ => return Err(CodecError::Invalid("sql region presence")),
        };
        Ok(WireSqlRow { ids, region })
    })?;
    let plan = match r.get_u8()? {
        0 => None,
        1 => Some(r.get_str()?.to_string()),
        _ => return Err(CodecError::Invalid("sql plan presence")),
    };
    let stats = get_query_stats(r)?;
    Ok(WireSqlOutcome {
        columns,
        rows,
        plan,
        stats,
    })
}

fn put_health(w: &mut RecordWriter, h: &RelationHealth) {
    match h {
        RelationHealth::Healthy => w.put_u8(0),
        RelationHealth::Degraded { corrupt_indexes } => {
            w.put_u8(1);
            w.put_u32(corrupt_indexes.len() as u32);
            for c in corrupt_indexes {
                w.put_str(c);
            }
        }
        RelationHealth::Quarantined { detail } => {
            w.put_u8(2);
            w.put_str(detail);
        }
    }
}

fn get_health(r: &mut RecordReader<'_>) -> Result<RelationHealth, CodecError> {
    Ok(match r.get_u8()? {
        0 => RelationHealth::Healthy,
        1 => RelationHealth::Degraded {
            corrupt_indexes: get_counted(r, |r| Ok(r.get_str()?.to_string()))?,
        },
        2 => RelationHealth::Quarantined {
            detail: r.get_str()?.to_string(),
        },
        _ => return Err(CodecError::Invalid("health tag")),
    })
}

fn put_pager_recovery(w: &mut RecordWriter, p: &PagerRecovery) {
    match p {
        PagerRecovery::Clean => w.put_u8(0),
        PagerRecovery::FellBack {
            recovered_epoch,
            lost_epoch,
        } => {
            w.put_u8(1);
            w.put_u32(*recovered_epoch);
            w.put_u32(*lost_epoch);
        }
    }
}

fn get_pager_recovery(r: &mut RecordReader<'_>) -> Result<PagerRecovery, CodecError> {
    Ok(match r.get_u8()? {
        0 => PagerRecovery::Clean,
        1 => PagerRecovery::FellBack {
            recovered_epoch: r.get_u32()?,
            lost_epoch: r.get_u32()?,
        },
        _ => return Err(CodecError::Invalid("pager recovery tag")),
    })
}

fn put_wal_replay(w: &mut RecordWriter, rep: &Option<WalReplay>) {
    match rep {
        None => w.put_u8(0),
        Some(rep) => {
            w.put_u8(1);
            w.put_u64(rep.start_lsn);
            w.put_u64(rep.replayed);
            w.put_u64(rep.first_lsn);
            w.put_u64(rep.last_lsn);
            w.put_u8(u8::from(rep.torn_tail));
            match &rep.error {
                None => w.put_u8(0),
                Some(msg) => {
                    w.put_u8(1);
                    w.put_str(msg);
                }
            }
        }
    }
}

fn get_wal_replay(r: &mut RecordReader<'_>) -> Result<Option<WalReplay>, CodecError> {
    Ok(match r.get_u8()? {
        0 => None,
        1 => Some(WalReplay {
            start_lsn: r.get_u64()?,
            replayed: r.get_u64()?,
            first_lsn: r.get_u64()?,
            last_lsn: r.get_u64()?,
            torn_tail: get_bool(r, "wal torn-tail flag")?,
            error: match r.get_u8()? {
                0 => None,
                1 => Some(r.get_str()?.to_string()),
                _ => return Err(CodecError::Invalid("wal error presence")),
            },
        }),
        _ => return Err(CodecError::Invalid("wal replay presence")),
    })
}

fn get_bool(r: &mut RecordReader<'_>, what: &'static str) -> Result<bool, CodecError> {
    match r.get_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(CodecError::Invalid(what)),
    }
}

fn put_db_stats(w: &mut RecordWriter, s: &DbStats) {
    w.put_u32(s.relations.len() as u32);
    for rel in &s.relations {
        w.put_str(&rel.name);
        w.put_u32(rel.dim as u32);
        w.put_u64(rel.live);
        w.put_u64(rel.heap_pages);
        w.put_u64(rel.total_pages);
        w.put_u32(rel.indexes.len() as u32);
        for i in &rel.indexes {
            w.put_str(i);
        }
        put_health(w, &rel.health);
    }
    w.put_u64(s.live_pages);
    put_iostats(w, &s.io);
    w.put_u8(u8::from(s.read_only));
    w.put_u64(s.checkpoint_failures);
    match &s.wal {
        None => w.put_u8(0),
        Some(wal) => {
            w.put_u8(1);
            w.put_u64(wal.durable_lsn);
            w.put_u64(wal.next_lsn);
            w.put_u64(wal.pending);
        }
    }
    w.put_u64(s.epochs.current_epoch);
    w.put_u64(s.epochs.pinned_epochs);
    w.put_u64(s.epochs.quarantined_pages);
}

fn get_db_stats(r: &mut RecordReader<'_>) -> Result<DbStats, CodecError> {
    let relations = get_counted(r, |r| {
        Ok(RelationStats {
            name: r.get_str()?.to_string(),
            dim: r.get_u32()? as usize,
            live: r.get_u64()?,
            heap_pages: r.get_u64()?,
            total_pages: r.get_u64()?,
            indexes: get_counted(r, |r| Ok(r.get_str()?.to_string()))?,
            health: get_health(r)?,
        })
    })?;
    let live_pages = r.get_u64()?;
    let io = get_iostats(r)?;
    let read_only = get_bool(r, "read-only flag")?;
    let checkpoint_failures = r.get_u64()?;
    let wal = match r.get_u8()? {
        0 => None,
        1 => Some(WalStats {
            durable_lsn: r.get_u64()?,
            next_lsn: r.get_u64()?,
            pending: r.get_u64()?,
        }),
        _ => return Err(CodecError::Invalid("wal stats presence")),
    };
    let epochs = EpochStats {
        current_epoch: r.get_u64()?,
        pinned_epochs: r.get_u64()?,
        quarantined_pages: r.get_u64()?,
    };
    Ok(DbStats {
        relations,
        live_pages,
        io,
        read_only,
        checkpoint_failures,
        wal,
        epochs,
    })
}

// ------------------------------------------------------- request envelope

const OP_PING: u8 = 0;
const OP_CREATE: u8 = 1;
const OP_DROP: u8 = 2;
const OP_INSERT: u8 = 3;
const OP_DELETE: u8 = 4;
const OP_BUILD_DUAL: u8 = 5;
const OP_BUILD_DUAL_D: u8 = 6;
const OP_BUILD_RPLUS: u8 = 7;
const OP_QUERY: u8 = 8;
const OP_EXPLAIN: u8 = 9;
const OP_FETCH: u8 = 10;
const OP_RELATIONS: u8 = 11;
const OP_STATS: u8 = 12;
const OP_FSCK: u8 = 13;
const OP_CHECKPOINT: u8 = 14;
const OP_SHUTDOWN: u8 = 15;
const OP_QUERY_LINE: u8 = 16;
const OP_SQL: u8 = 17;
const OP_SUBSCRIBE: u8 = 18;

/// Encodes a request envelope into a frame payload.
pub fn encode_request(env: &RequestEnvelope) -> Vec<u8> {
    let mut w = RecordWriter::new();
    w.put_u64(env.request_id);
    w.put_u32(env.deadline_ms);
    match &env.request {
        Request::Ping => w.put_u8(OP_PING),
        Request::CreateRelation { relation, dim } => {
            w.put_u8(OP_CREATE);
            w.put_str(relation);
            w.put_u32(*dim);
        }
        Request::DropRelation { relation } => {
            w.put_u8(OP_DROP);
            w.put_str(relation);
        }
        Request::Insert { relation, tuple } => {
            w.put_u8(OP_INSERT);
            w.put_str(relation);
            put_tuple(&mut w, tuple);
        }
        Request::Delete { relation, id } => {
            w.put_u8(OP_DELETE);
            w.put_str(relation);
            w.put_u32(*id);
        }
        Request::BuildDual { relation, slopes } => {
            w.put_u8(OP_BUILD_DUAL);
            w.put_str(relation);
            w.put_u32(slopes.len() as u32);
            for &s in slopes {
                w.put_f64(s);
            }
        }
        Request::BuildDualD {
            relation,
            per_axis,
            range,
        } => {
            w.put_u8(OP_BUILD_DUAL_D);
            w.put_str(relation);
            w.put_u32(*per_axis);
            w.put_f64(*range);
        }
        Request::BuildRPlus { relation, fill } => {
            w.put_u8(OP_BUILD_RPLUS);
            w.put_str(relation);
            w.put_f64(*fill);
        }
        Request::Query {
            relation,
            selection,
            strategy,
        } => {
            w.put_u8(OP_QUERY);
            w.put_str(relation);
            w.put_u8(strategy_tag(*strategy));
            put_selection(&mut w, selection);
        }
        Request::Explain {
            relation,
            selection,
        } => {
            w.put_u8(OP_EXPLAIN);
            w.put_str(relation);
            put_selection(&mut w, selection);
        }
        Request::QueryLine {
            relation,
            kind,
            a,
            c,
        } => {
            w.put_u8(OP_QUERY_LINE);
            w.put_str(relation);
            w.put_u8(match kind {
                SelectionKind::All => 0,
                SelectionKind::Exist => 1,
            });
            w.put_f64(*a);
            w.put_f64(*c);
        }
        Request::Sql { text, mode } => {
            w.put_u8(OP_SQL);
            w.put_str(text);
            w.put_u8(sql_mode_tag(*mode));
        }
        Request::FetchTuple { relation, id } => {
            w.put_u8(OP_FETCH);
            w.put_str(relation);
            w.put_u32(*id);
        }
        Request::ListRelations => w.put_u8(OP_RELATIONS),
        Request::Stats => w.put_u8(OP_STATS),
        Request::Fsck => w.put_u8(OP_FSCK),
        Request::Checkpoint => w.put_u8(OP_CHECKPOINT),
        Request::Shutdown => w.put_u8(OP_SHUTDOWN),
        Request::Subscribe {
            from_lsn,
            follower_id,
        } => {
            w.put_u8(OP_SUBSCRIBE);
            w.put_u64(*from_lsn);
            w.put_str(follower_id);
        }
    }
    w.into_bytes()
}

/// Decodes a request frame payload.
pub fn decode_request(buf: &[u8]) -> Result<RequestEnvelope, CodecError> {
    let mut r = RecordReader::new(buf);
    let request_id = r.get_u64()?;
    let deadline_ms = r.get_u32()?;
    let op = r.get_u8()?;
    let request = match op {
        OP_PING => Request::Ping,
        OP_CREATE => Request::CreateRelation {
            relation: r.get_str()?.to_string(),
            dim: r.get_u32()?,
        },
        OP_DROP => Request::DropRelation {
            relation: r.get_str()?.to_string(),
        },
        OP_INSERT => Request::Insert {
            relation: r.get_str()?.to_string(),
            tuple: get_tuple(&mut r)?,
        },
        OP_DELETE => Request::Delete {
            relation: r.get_str()?.to_string(),
            id: r.get_u32()?,
        },
        OP_BUILD_DUAL => Request::BuildDual {
            relation: r.get_str()?.to_string(),
            slopes: get_counted(&mut r, get_finite_f64)?,
        },
        OP_BUILD_DUAL_D => Request::BuildDualD {
            relation: r.get_str()?.to_string(),
            per_axis: r.get_u32()?,
            range: get_finite_f64(&mut r)?,
        },
        OP_BUILD_RPLUS => Request::BuildRPlus {
            relation: r.get_str()?.to_string(),
            fill: get_finite_f64(&mut r)?,
        },
        OP_QUERY => {
            let relation = r.get_str()?.to_string();
            let strategy = strategy_from_tag(r.get_u8()?)?;
            let selection = get_selection(&mut r)?;
            Request::Query {
                relation,
                selection,
                strategy,
            }
        }
        OP_EXPLAIN => Request::Explain {
            relation: r.get_str()?.to_string(),
            selection: get_selection(&mut r)?,
        },
        OP_QUERY_LINE => Request::QueryLine {
            relation: r.get_str()?.to_string(),
            kind: match r.get_u8()? {
                0 => SelectionKind::All,
                1 => SelectionKind::Exist,
                _ => return Err(CodecError::Invalid("selection kind tag")),
            },
            a: get_finite_f64(&mut r)?,
            c: get_finite_f64(&mut r)?,
        },
        OP_SQL => Request::Sql {
            text: r.get_str()?.to_string(),
            mode: sql_mode_from_tag(r.get_u8()?)?,
        },
        OP_FETCH => Request::FetchTuple {
            relation: r.get_str()?.to_string(),
            id: r.get_u32()?,
        },
        OP_RELATIONS => Request::ListRelations,
        OP_STATS => Request::Stats,
        OP_FSCK => Request::Fsck,
        OP_CHECKPOINT => Request::Checkpoint,
        OP_SHUTDOWN => Request::Shutdown,
        OP_SUBSCRIBE => Request::Subscribe {
            from_lsn: r.get_u64()?,
            follower_id: r.get_str()?.to_string(),
        },
        _ => return Err(CodecError::Invalid("request op tag")),
    };
    expect_end(&r)?;
    Ok(RequestEnvelope {
        request_id,
        deadline_ms,
        request,
    })
}

// ------------------------------------------------------ response envelope

const STATUS_OK: u8 = 0;
const STATUS_DB: u8 = 1;
const STATUS_OVERLOADED: u8 = 2;
const STATUS_DEADLINE: u8 = 3;
const STATUS_MALFORMED: u8 = 4;
const STATUS_SHUTTING_DOWN: u8 = 5;
const STATUS_VERSION: u8 = 6;
const STATUS_NOT_PRIMARY: u8 = 7;
const STATUS_WRONG_SHARD: u8 = 8;

const RESP_UNIT: u8 = 0;
const RESP_INSERTED: u8 = 1;
const RESP_TUPLE: u8 = 2;
const RESP_QUERY: u8 = 3;
const RESP_EXPLAIN: u8 = 4;
const RESP_RELATIONS: u8 = 5;
const RESP_STATS: u8 = 6;
const RESP_FSCK: u8 = 7;
const RESP_SQL: u8 = 8;
const RESP_SUBSCRIBED: u8 = 9;

/// Stream-frame markers after a subscription handshake; distinct from
/// every response status so a desynced stream fails decode immediately.
const REPL_BATCH: u8 = 0xB1;
const REPL_ACK: u8 = 0xA1;

const DBERR_NOT_FOUND: u8 = 0;
const DBERR_EXISTS: u8 = 1;
const DBERR_DIM: u8 = 2;
const DBERR_UNSAT: u8 = 3;
const DBERR_NO_TUPLE: u8 = 4;
const DBERR_NO_INDEX: u8 = 5;
const DBERR_UNSUPPORTED: u8 = 6;
const DBERR_CORRUPT: u8 = 7;
const DBERR_IO: u8 = 8;
const DBERR_QUARANTINED: u8 = 9;
const DBERR_READ_ONLY: u8 = 10;

fn put_db_error(w: &mut RecordWriter, e: &CdbError) {
    match e {
        CdbError::RelationNotFound(n) => {
            w.put_u8(DBERR_NOT_FOUND);
            w.put_str(n);
        }
        CdbError::RelationExists(n) => {
            w.put_u8(DBERR_EXISTS);
            w.put_str(n);
        }
        CdbError::DimensionMismatch { expected, got } => {
            w.put_u8(DBERR_DIM);
            w.put_u32(*expected as u32);
            w.put_u32(*got as u32);
        }
        CdbError::UnsatisfiableTuple => w.put_u8(DBERR_UNSAT),
        CdbError::NoSuchTuple(id) => {
            w.put_u8(DBERR_NO_TUPLE);
            w.put_u32(*id);
        }
        CdbError::NoIndex(n) => {
            w.put_u8(DBERR_NO_INDEX);
            w.put_str(n);
        }
        CdbError::UnsupportedQuery(m) => {
            w.put_u8(DBERR_UNSUPPORTED);
            w.put_str(m);
        }
        CdbError::CorruptRecord(id) => {
            w.put_u8(DBERR_CORRUPT);
            w.put_u32(*id);
        }
        CdbError::Io(m) => {
            w.put_u8(DBERR_IO);
            w.put_str(m);
        }
        CdbError::Quarantined(n) => {
            w.put_u8(DBERR_QUARANTINED);
            w.put_str(n);
        }
        CdbError::ReadOnly => w.put_u8(DBERR_READ_ONLY),
    }
}

fn get_db_error(r: &mut RecordReader<'_>) -> Result<CdbError, CodecError> {
    Ok(match r.get_u8()? {
        DBERR_NOT_FOUND => CdbError::RelationNotFound(r.get_str()?.to_string()),
        DBERR_EXISTS => CdbError::RelationExists(r.get_str()?.to_string()),
        DBERR_DIM => CdbError::DimensionMismatch {
            expected: r.get_u32()? as usize,
            got: r.get_u32()? as usize,
        },
        DBERR_UNSAT => CdbError::UnsatisfiableTuple,
        DBERR_NO_TUPLE => CdbError::NoSuchTuple(r.get_u32()?),
        DBERR_NO_INDEX => CdbError::NoIndex(r.get_str()?.to_string()),
        DBERR_UNSUPPORTED => CdbError::UnsupportedQuery(r.get_str()?.to_string()),
        DBERR_CORRUPT => CdbError::CorruptRecord(r.get_u32()?),
        DBERR_IO => CdbError::Io(r.get_str()?.to_string()),
        DBERR_QUARANTINED => CdbError::Quarantined(r.get_str()?.to_string()),
        DBERR_READ_ONLY => CdbError::ReadOnly,
        _ => return Err(CodecError::Invalid("db error tag")),
    })
}

fn put_replication(w: &mut RecordWriter, info: &Option<ReplicationInfo>) {
    match info {
        None => w.put_u8(0),
        Some(ReplicationInfo::Primary { followers }) => {
            w.put_u8(1);
            w.put_u32(followers.len() as u32);
            for f in followers {
                w.put_str(&f.id);
                w.put_u8(u8::from(f.connected));
                w.put_u64(f.acked_lsn);
                w.put_u64(f.batches);
            }
        }
        Some(ReplicationInfo::Replica {
            primary,
            connected,
            applied_lsn,
            batches,
            source_lsn,
        }) => {
            w.put_u8(2);
            w.put_str(primary);
            w.put_u8(u8::from(*connected));
            w.put_u64(*applied_lsn);
            w.put_u64(*batches);
            w.put_u64(*source_lsn);
        }
    }
}

fn get_replication(r: &mut RecordReader<'_>) -> Result<Option<ReplicationInfo>, CodecError> {
    Ok(match r.get_u8()? {
        0 => None,
        1 => Some(ReplicationInfo::Primary {
            followers: get_counted(r, |r| {
                Ok(FollowerInfo {
                    id: r.get_str()?.to_string(),
                    connected: get_bool(r, "follower connected flag")?,
                    acked_lsn: r.get_u64()?,
                    batches: r.get_u64()?,
                })
            })?,
        }),
        2 => Some(ReplicationInfo::Replica {
            primary: r.get_str()?.to_string(),
            connected: get_bool(r, "replica connected flag")?,
            applied_lsn: r.get_u64()?,
            batches: r.get_u64()?,
            source_lsn: r.get_u64()?,
        }),
        _ => return Err(CodecError::Invalid("replication info tag")),
    })
}

/// Encodes one shipped batch of WAL records as a stream-frame payload.
pub fn encode_wal_batch(batch: &WalBatch) -> Vec<u8> {
    let mut w = RecordWriter::new();
    w.put_u8(REPL_BATCH);
    w.put_u64(batch.durable_lsn);
    w.put_u32(batch.records.len() as u32);
    for (lsn, bytes) in &batch.records {
        w.put_u64(*lsn);
        w.put_bytes(bytes);
    }
    w.into_bytes()
}

/// Decodes a shipped batch, validating the marker and LSN contiguity.
pub fn decode_wal_batch(buf: &[u8]) -> Result<WalBatch, CodecError> {
    let mut r = RecordReader::new(buf);
    if r.get_u8()? != REPL_BATCH {
        return Err(CodecError::Invalid("wal batch marker"));
    }
    let durable_lsn = r.get_u64()?;
    let records = get_counted(&mut r, |r| Ok((r.get_u64()?, r.get_bytes()?.to_vec())))?;
    if records.windows(2).any(|p| p[1].0 != p[0].0 + 1) {
        return Err(CodecError::Invalid("wal batch lsn gap"));
    }
    expect_end(&r)?;
    Ok(WalBatch {
        durable_lsn,
        records,
    })
}

/// Encodes a follower's acknowledgement: every record up to and including
/// `applied_lsn` is applied and locally synced.
pub fn encode_repl_ack(applied_lsn: u64) -> Vec<u8> {
    let mut w = RecordWriter::new();
    w.put_u8(REPL_ACK);
    w.put_u64(applied_lsn);
    w.into_bytes()
}

/// Decodes a follower's acknowledgement.
pub fn decode_repl_ack(buf: &[u8]) -> Result<u64, CodecError> {
    let mut r = RecordReader::new(buf);
    if r.get_u8()? != REPL_ACK {
        return Err(CodecError::Invalid("repl ack marker"));
    }
    let lsn = r.get_u64()?;
    expect_end(&r)?;
    Ok(lsn)
}

/// Encodes a response frame payload: `Ok(response)` or `Err(error)` for
/// the given request id. `lsn` stamps the state the answer reflects (see
/// the module docs).
pub fn encode_response(request_id: u64, lsn: u64, outcome: &Result<Response, NetError>) -> Vec<u8> {
    let mut w = RecordWriter::new();
    w.put_u64(request_id);
    w.put_u64(lsn);
    match outcome {
        Ok(resp) => {
            w.put_u8(STATUS_OK);
            match resp {
                Response::Unit => w.put_u8(RESP_UNIT),
                Response::Inserted(id) => {
                    w.put_u8(RESP_INSERTED);
                    w.put_u32(*id);
                }
                Response::Tuple(t) => {
                    w.put_u8(RESP_TUPLE);
                    put_tuple(&mut w, t);
                }
                Response::Query(res) => {
                    w.put_u8(RESP_QUERY);
                    put_wire_result(&mut w, res);
                }
                Response::Explain { rendered, result } => {
                    w.put_u8(RESP_EXPLAIN);
                    w.put_str(rendered);
                    put_wire_result(&mut w, result);
                }
                Response::Sql(o) => {
                    w.put_u8(RESP_SQL);
                    put_sql_outcome(&mut w, o);
                }
                Response::Relations(names) => {
                    w.put_u8(RESP_RELATIONS);
                    w.put_u32(names.len() as u32);
                    for n in names {
                        w.put_str(n);
                    }
                }
                Response::Stats {
                    db,
                    replication,
                    connections,
                    shard,
                } => {
                    w.put_u8(RESP_STATS);
                    put_db_stats(&mut w, db);
                    put_replication(&mut w, replication);
                    w.put_u32(*connections);
                    match shard {
                        None => w.put_u8(0),
                        Some(identity) => {
                            w.put_u8(1);
                            w.put_u32(identity.shard);
                            w.put_u32(identity.shards);
                            w.put_u64(identity.seed);
                            w.put_u64(identity.epoch);
                        }
                    }
                }
                Response::Subscribed {
                    start_lsn,
                    durable_lsn,
                } => {
                    w.put_u8(RESP_SUBSCRIBED);
                    w.put_u64(*start_lsn);
                    w.put_u64(*durable_lsn);
                }
                Response::Fsck(rep) => {
                    w.put_u8(RESP_FSCK);
                    put_pager_recovery(&mut w, &rep.pager);
                    put_wal_replay(&mut w, &rep.wal);
                    w.put_u32(rep.relations.len() as u32);
                    for (name, health) in &rep.relations {
                        w.put_str(name);
                        put_health(&mut w, health);
                    }
                    match rep.quarantine {
                        None => w.put_u8(0),
                        Some(clean) => w.put_u8(if clean { 1 } else { 2 }),
                    }
                }
            }
        }
        Err(err) => match err {
            NetError::Db(e) => {
                w.put_u8(STATUS_DB);
                put_db_error(&mut w, e);
            }
            NetError::Overloaded => w.put_u8(STATUS_OVERLOADED),
            NetError::DeadlineExceeded => w.put_u8(STATUS_DEADLINE),
            NetError::Malformed(m) => {
                w.put_u8(STATUS_MALFORMED);
                w.put_str(m);
            }
            NetError::ShuttingDown => w.put_u8(STATUS_SHUTTING_DOWN),
            NetError::VersionMismatch { server_version } => {
                w.put_u8(STATUS_VERSION);
                w.put_u16(*server_version);
            }
            NetError::NotPrimary { leader_hint } => {
                w.put_u8(STATUS_NOT_PRIMARY);
                match leader_hint {
                    None => w.put_u8(0),
                    Some(addr) => {
                        w.put_u8(1);
                        w.put_str(addr);
                    }
                }
            }
            NetError::WrongShard { map_epoch, hint } => {
                w.put_u8(STATUS_WRONG_SHARD);
                w.put_u64(*map_epoch);
                w.put_u32(*hint);
            }
            NetError::Transport(_) | NetError::Timeout => {
                // Both describe the client's own socket and are never
                // generated server-side; encode defensively as a
                // malformed-session close.
                w.put_u8(STATUS_MALFORMED);
                w.put_str("transport error");
            }
        },
    }
    w.into_bytes()
}

/// Decodes a response frame payload into `(request_id, lsn, outcome)`.
#[allow(clippy::type_complexity)]
pub fn decode_response(buf: &[u8]) -> Result<(u64, u64, Result<Response, NetError>), CodecError> {
    let mut r = RecordReader::new(buf);
    let request_id = r.get_u64()?;
    let lsn = r.get_u64()?;
    let status = r.get_u8()?;
    let outcome = match status {
        STATUS_OK => Ok(match r.get_u8()? {
            RESP_UNIT => Response::Unit,
            RESP_INSERTED => Response::Inserted(r.get_u32()?),
            RESP_TUPLE => Response::Tuple(get_tuple(&mut r)?),
            RESP_QUERY => Response::Query(get_wire_result(&mut r)?),
            RESP_EXPLAIN => Response::Explain {
                rendered: r.get_str()?.to_string(),
                result: get_wire_result(&mut r)?,
            },
            RESP_SQL => Response::Sql(get_sql_outcome(&mut r)?),
            RESP_RELATIONS => {
                Response::Relations(get_counted(&mut r, |r| Ok(r.get_str()?.to_string()))?)
            }
            RESP_STATS => Response::Stats {
                db: get_db_stats(&mut r)?,
                replication: get_replication(&mut r)?,
                connections: r.get_u32()?,
                shard: match r.get_u8()? {
                    0 => None,
                    1 => Some(ShardIdentity {
                        shard: r.get_u32()?,
                        shards: r.get_u32()?,
                        seed: r.get_u64()?,
                        epoch: r.get_u64()?,
                    }),
                    _ => return Err(CodecError::Invalid("shard identity presence")),
                },
            },
            RESP_SUBSCRIBED => Response::Subscribed {
                start_lsn: r.get_u64()?,
                durable_lsn: r.get_u64()?,
            },
            RESP_FSCK => {
                let pager = get_pager_recovery(&mut r)?;
                let wal = get_wal_replay(&mut r)?;
                let relations =
                    get_counted(&mut r, |r| Ok((r.get_str()?.to_string(), get_health(r)?)))?;
                let quarantine = match r.get_u8()? {
                    0 => None,
                    1 => Some(true),
                    2 => Some(false),
                    _ => return Err(CodecError::Invalid("quarantine verdict")),
                };
                Response::Fsck(WireRecoveryReport {
                    pager,
                    wal,
                    relations,
                    quarantine,
                })
            }
            _ => return Err(CodecError::Invalid("response tag")),
        }),
        STATUS_DB => Err(NetError::Db(get_db_error(&mut r)?)),
        STATUS_OVERLOADED => Err(NetError::Overloaded),
        STATUS_DEADLINE => Err(NetError::DeadlineExceeded),
        STATUS_MALFORMED => Err(NetError::Malformed(r.get_str()?.to_string())),
        STATUS_SHUTTING_DOWN => Err(NetError::ShuttingDown),
        STATUS_VERSION => Err(NetError::VersionMismatch {
            server_version: r.get_u16()?,
        }),
        STATUS_NOT_PRIMARY => Err(NetError::NotPrimary {
            leader_hint: match r.get_u8()? {
                0 => None,
                1 => Some(r.get_str()?.to_string()),
                _ => return Err(CodecError::Invalid("leader hint presence")),
            },
        }),
        STATUS_WRONG_SHARD => Err(NetError::WrongShard {
            map_epoch: r.get_u64()?,
            hint: r.get_u32()?,
        }),
        _ => return Err(CodecError::Invalid("response status tag")),
    };
    expect_end(&r)?;
    Ok((request_id, lsn, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_geometry::constraint::LinearConstraint;

    fn sample_tuple() -> GeneralizedTuple {
        GeneralizedTuple::new(vec![
            LinearConstraint::new(vec![0.0, 1.0], -1.0, RelOp::Ge),
            LinearConstraint::new(vec![0.0, 1.0], 3.0, RelOp::Le),
            LinearConstraint::new(vec![1.0, 1.0], 5.0, RelOp::Le),
        ])
    }

    fn empty_db_stats() -> DbStats {
        DbStats {
            relations: Vec::new(),
            live_pages: 0,
            io: IoStats::default(),
            read_only: false,
            checkpoint_failures: 0,
            wal: None,
            epochs: EpochStats {
                current_epoch: 0,
                pinned_epochs: 0,
                quarantined_pages: 0,
            },
        }
    }

    fn roundtrip_request(req: Request) {
        let env = RequestEnvelope {
            request_id: 42,
            deadline_ms: 250,
            request: req,
        };
        let bytes = encode_request(&env);
        assert_eq!(decode_request(&bytes).unwrap(), env);
    }

    #[test]
    fn requests_round_trip() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::CreateRelation {
            relation: "r".into(),
            dim: 3,
        });
        roundtrip_request(Request::DropRelation {
            relation: "r".into(),
        });
        roundtrip_request(Request::Insert {
            relation: "r".into(),
            tuple: sample_tuple(),
        });
        roundtrip_request(Request::Delete {
            relation: "r".into(),
            id: 7,
        });
        roundtrip_request(Request::BuildDual {
            relation: "r".into(),
            slopes: vec![-1.0, 0.5, 2.0],
        });
        roundtrip_request(Request::BuildDualD {
            relation: "r".into(),
            per_axis: 3,
            range: 2.0,
        });
        roundtrip_request(Request::BuildRPlus {
            relation: "r".into(),
            fill: 0.7,
        });
        roundtrip_request(Request::Query {
            relation: "r".into(),
            selection: Selection::exist(HalfPlane::above(0.3, -5.0)),
            strategy: Strategy::Auto,
        });
        roundtrip_request(Request::Explain {
            relation: "r".into(),
            selection: Selection::all(HalfPlane::new(vec![0.1, -0.2], 1.0, RelOp::Le)),
        });
        roundtrip_request(Request::QueryLine {
            relation: "r".into(),
            kind: SelectionKind::Exist,
            a: 0.5,
            c: 2.0,
        });
        roundtrip_request(Request::Sql {
            text: "SELECT x, y FROM r JOIN s WHERE x <= 1 EXIST".into(),
            mode: SqlMode::ExplainAnalyze,
        });
        roundtrip_request(Request::FetchTuple {
            relation: "r".into(),
            id: 9,
        });
        roundtrip_request(Request::ListRelations);
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Fsck);
        roundtrip_request(Request::Checkpoint);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Subscribe {
            from_lsn: 1234,
            follower_id: "127.0.0.1:9999".into(),
        });
    }

    fn roundtrip_outcome(outcome: Result<Response, NetError>) {
        let bytes = encode_response(7, 99, &outcome);
        let (id, lsn, got) = decode_response(&bytes).unwrap();
        assert_eq!(id, 7);
        assert_eq!(lsn, 99, "the lsn stamp is echoed");
        assert_eq!(got, outcome);
    }

    #[test]
    fn responses_round_trip() {
        roundtrip_outcome(Ok(Response::Unit));
        roundtrip_outcome(Ok(Response::Inserted(11)));
        roundtrip_outcome(Ok(Response::Tuple(sample_tuple())));
        let stats = QueryStats {
            index_io: IoStats {
                reads: 5,
                ..IoStats::default()
            },
            heap_io: IoStats {
                reads: 3,
                ..IoStats::default()
            },
            candidates: 9,
            duplicates: 1,
            false_hits: 2,
            accepted_by_key: 0,
            method: Some(MethodKind::T2),
            estimate: Some(CostEstimate {
                index_pages: 4.5,
                heap_pages: 2.5,
                candidates: 8.0,
            }),
        };
        roundtrip_outcome(Ok(Response::Query(WireQueryResult {
            ids: vec![1, 4, 9],
            stats,
        })));
        roundtrip_outcome(Ok(Response::Explain {
            rendered: "plan ...".into(),
            result: WireQueryResult {
                ids: vec![],
                stats: QueryStats::default(),
            },
        }));
        roundtrip_outcome(Ok(Response::Sql(WireSqlOutcome {
            columns: vec!["id(r)".into(), "id(s)".into(), "region(x, y)".into()],
            rows: vec![
                WireSqlRow {
                    ids: vec![3, 7],
                    region: Some(sample_tuple()),
                },
                WireSqlRow {
                    ids: vec![4, 1],
                    region: None,
                },
            ],
            plan: Some("NestedLoopJoin\n├─ IndexScan r\n└─ SeqScan s\n".into()),
            stats: QueryStats::default(),
        })));
        roundtrip_outcome(Ok(Response::Relations(vec!["a".into(), "b".into()])));
        roundtrip_outcome(Ok(Response::Subscribed {
            start_lsn: 1,
            durable_lsn: 77,
        }));
        roundtrip_outcome(Ok(Response::Stats {
            replication: None,
            connections: 3,
            shard: Some(ShardIdentity {
                shard: 1,
                shards: 4,
                seed: 0xFEED_FACE_CAFE_BEEF,
                epoch: 7,
            }),
            db: DbStats {
                relations: vec![RelationStats {
                    name: "r".into(),
                    dim: 2,
                    live: 100,
                    heap_pages: 7,
                    total_pages: 19,
                    indexes: vec!["dual".into(), "rplus".into()],
                    health: RelationHealth::Degraded {
                        corrupt_indexes: vec!["rplus".into()],
                    },
                }],
                live_pages: 20,
                io: IoStats {
                    reads: 1,
                    writes: 2,
                    allocations: 3,
                    frees: 0,
                },
                read_only: true,
                checkpoint_failures: 3,
                wal: Some(WalStats {
                    durable_lsn: 41,
                    next_lsn: 44,
                    pending: 2,
                }),
                epochs: EpochStats {
                    current_epoch: 9,
                    pinned_epochs: 2,
                    quarantined_pages: 5,
                },
            },
        }));
        roundtrip_outcome(Ok(Response::Stats {
            db: empty_db_stats(),
            replication: Some(ReplicationInfo::Primary {
                followers: vec![FollowerInfo {
                    id: "127.0.0.1:4000".into(),
                    connected: true,
                    acked_lsn: 812,
                    batches: 40,
                }],
            }),
            connections: 0,
            shard: None,
        }));
        roundtrip_outcome(Ok(Response::Stats {
            db: empty_db_stats(),
            replication: Some(ReplicationInfo::Replica {
                primary: "127.0.0.1:3000".into(),
                connected: false,
                applied_lsn: 810,
                batches: 39,
                source_lsn: 812,
            }),
            connections: 17,
            shard: None,
        }));
        roundtrip_outcome(Ok(Response::Fsck(WireRecoveryReport {
            pager: PagerRecovery::FellBack {
                recovered_epoch: 4,
                lost_epoch: 5,
            },
            wal: Some(WalReplay {
                start_lsn: 7,
                replayed: 2,
                first_lsn: 7,
                last_lsn: 8,
                torn_tail: true,
                error: Some("replay stopped at lsn 9: boom".into()),
            }),
            relations: vec![
                ("a".into(), RelationHealth::Healthy),
                (
                    "b".into(),
                    RelationHealth::Quarantined {
                        detail: "heap page 3".into(),
                    },
                ),
            ],
            quarantine: Some(false),
        })));
    }

    #[test]
    fn every_db_error_survives_the_wire() {
        let errors = vec![
            CdbError::RelationNotFound("r".into()),
            CdbError::RelationExists("r".into()),
            CdbError::DimensionMismatch {
                expected: 2,
                got: 3,
            },
            CdbError::UnsatisfiableTuple,
            CdbError::NoSuchTuple(5),
            CdbError::NoIndex("r".into()),
            CdbError::UnsupportedQuery("vertical".into()),
            CdbError::CorruptRecord(cdb_core::CATALOG_RECORD),
            CdbError::Io("disk gone".into()),
            CdbError::Quarantined("r".into()),
            CdbError::ReadOnly,
        ];
        for e in errors {
            roundtrip_outcome(Err(NetError::Db(e)));
        }
        roundtrip_outcome(Err(NetError::Overloaded));
        roundtrip_outcome(Err(NetError::DeadlineExceeded));
        roundtrip_outcome(Err(NetError::Malformed("bad tag".into())));
        roundtrip_outcome(Err(NetError::ShuttingDown));
        roundtrip_outcome(Err(NetError::VersionMismatch { server_version: 2 }));
        roundtrip_outcome(Err(NetError::NotPrimary { leader_hint: None }));
        roundtrip_outcome(Err(NetError::NotPrimary {
            leader_hint: Some("10.0.0.1:7878".into()),
        }));
        roundtrip_outcome(Err(NetError::WrongShard {
            map_epoch: 12,
            hint: 3,
        }));
    }

    #[test]
    fn replication_stream_frames_round_trip() {
        let batch = WalBatch {
            durable_lsn: 42,
            records: vec![(40, b"a".to_vec()), (41, b"bb".to_vec()), (42, vec![])],
        };
        assert_eq!(decode_wal_batch(&encode_wal_batch(&batch)).unwrap(), batch);

        // A heartbeat is an empty batch with a fresh durable lsn.
        let hb = WalBatch {
            durable_lsn: 99,
            records: vec![],
        };
        assert_eq!(decode_wal_batch(&encode_wal_batch(&hb)).unwrap(), hb);

        assert_eq!(decode_repl_ack(&encode_repl_ack(41)).unwrap(), 41);

        // Gapped LSNs inside a batch are a protocol violation.
        let gapped = WalBatch {
            durable_lsn: 5,
            records: vec![(1, vec![]), (3, vec![])],
        };
        assert!(decode_wal_batch(&encode_wal_batch(&gapped)).is_err());

        // Markers keep the two stream directions from decoding as each
        // other after a desync.
        assert!(decode_repl_ack(&encode_wal_batch(&hb)).is_err());
        assert!(decode_wal_batch(&encode_repl_ack(7)).is_err());
    }

    #[test]
    fn retryable_errors_are_exactly_the_transient_ones() {
        assert!(NetError::Timeout.is_retryable());
        assert!(NetError::Overloaded.is_retryable());
        assert!(NetError::Transport("reset".into()).is_retryable());
        assert!(NetError::ShuttingDown.is_retryable());
        assert!(!NetError::DeadlineExceeded.is_retryable());
        assert!(!NetError::NotPrimary { leader_hint: None }.is_retryable());
        assert!(!NetError::WrongShard {
            map_epoch: 1,
            hint: 0
        }
        .is_retryable());
        assert!(!NetError::Db(CdbError::ReadOnly).is_retryable());
        assert!(!NetError::Malformed("x".into()).is_retryable());
    }

    #[test]
    fn handshake_round_trips_and_rejects_bad_magic() {
        let g = encode_greeting(PROTOCOL_VERSION, HandshakeStatus::Ok);
        assert_eq!(
            decode_greeting(&g).unwrap(),
            (PROTOCOL_VERSION, HandshakeStatus::Ok)
        );
        let h = encode_hello(PROTOCOL_VERSION);
        assert_eq!(decode_hello(&h).unwrap(), PROTOCOL_VERSION);
        let mut bad = h.clone();
        bad[4] ^= 0xFF; // corrupt the magic bytes (after the length prefix)
        assert!(decode_hello(&bad).is_err());
    }

    #[test]
    fn non_finite_coefficients_are_rejected() {
        // Hand-craft a query whose intercept is NaN: the decoder must fail
        // cleanly instead of constructing a HalfPlane (whose constructor
        // would panic).
        let mut w = RecordWriter::new();
        w.put_u64(1);
        w.put_u32(0);
        w.put_u8(OP_QUERY);
        w.put_str("r");
        w.put_u8(strategy_tag(Strategy::Auto));
        w.put_u8(1); // Exist
        w.put_u8(1); // Ge
        w.put_f64(f64::NAN);
        w.put_u32(1);
        w.put_f64(0.5);
        assert!(decode_request(&w.into_bytes()).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode_request(&RequestEnvelope {
            request_id: 1,
            deadline_ms: 0,
            request: Request::Ping,
        });
        bytes.push(0);
        assert!(decode_request(&bytes).is_err());
    }

    #[test]
    fn unsorted_result_ids_are_rejected() {
        let mut w = RecordWriter::new();
        w.put_u64(1);
        w.put_u64(0); // lsn stamp
        w.put_u8(STATUS_OK);
        w.put_u8(RESP_QUERY);
        w.put_u32(2);
        w.put_u32(9);
        w.put_u32(3);
        put_query_stats(&mut w, &QueryStats::default());
        assert!(decode_response(&w.into_bytes()).is_err());
    }
}
