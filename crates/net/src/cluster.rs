//! A resilient multi-node client: writes go to the primary, reads are
//! load-balanced across followers, failures are retried with seeded
//! jittered backoff, and read-your-writes staleness is bounded.
//!
//! [`ClusterClient`] holds the member list and one lazy connection per
//! member. It discovers the primary by probing members' `stats` (each
//! replica names its primary, so one probe usually resolves the whole
//! topology) and follows [`NetError::NotPrimary`] leader hints on
//! redirect — including to addresses it has never heard of, which it
//! adds to the member list.
//!
//! **Retry discipline.** Reads are idempotent: a retryable failure
//! ([`NetError::is_retryable`]) moves the read to a different member
//! after a backoff, up to the configured attempt budget, then falls back
//! to the primary. Writes are not: a write is retried only when it
//! provably never reached an engine — a connection that could not be
//! established, or a [`NetError::NotPrimary`] redirect (the replica
//! rejected it before the lane). A transport error *after* a write was
//! sent is returned to the caller, who knows whether the operation is
//! safe to repeat.
//!
//! **Read-your-writes.** Every response carries the LSN of the state it
//! reflects; the client remembers the durable LSN of its last
//! acknowledged write. With `read_your_writes` on, a follower answer
//! reflecting an older LSN is discarded: retried on another member while
//! the lag is within `staleness_bound`, or served by the primary
//! (which is never stale) once it exceeds it.

use std::time::{Duration, Instant};

use cdb_core::query::{QueryResult, Selection, SelectionKind, Strategy};
use cdb_core::sql::{SqlMode, SqlOutcome};
use cdb_geometry::tuple::GeneralizedTuple;
use cdb_prng::StdRng;

use crate::client::{protocol_violation, Client, StatsReply};
use crate::proto::{
    NetError, ReplicationInfo, Request, Response, WireQueryResult, WireRecoveryReport,
};

/// Tunables for [`ClusterClient`]. The defaults suit tests and
/// interactive use; long-haul deployments should raise the backoff cap.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Seeds the backoff jitter and nothing else — two clients with
    /// different seeds desynchronize their retry storms.
    pub seed: u64,
    /// Per-request deadline in milliseconds (0: none), enforced
    /// server-side and stamped on every request.
    pub deadline_ms: u32,
    /// Read attempts across distinct members before falling back to the
    /// primary.
    pub read_retries: u32,
    /// First retry delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Retry delay ceiling.
    pub backoff_cap: Duration,
    /// Discard follower answers older than this client's last
    /// acknowledged write.
    pub read_your_writes: bool,
    /// With read-your-writes: a follower lagging more than this many
    /// LSNs behind the last write stops being retried — the primary
    /// serves the read directly.
    pub staleness_bound: u64,
    /// Socket I/O timeout applied to every member connection (None: the
    /// client default). Chaos tests shorten this so blackholed links
    /// resolve to [`NetError::Timeout`] quickly.
    pub io_timeout: Option<Duration>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            seed: 0xC1D8,
            deadline_ms: 0,
            read_retries: 3,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(1),
            read_your_writes: true,
            staleness_bound: 0,
            io_timeout: None,
        }
    }
}

/// Bound on leader-hint hops per write: a flapping or circular topology
/// surfaces as an error instead of a spin.
const MAX_WRITE_HOPS: u32 = 4;

struct Member {
    addr: String,
    conn: Option<Client>,
}

/// A client for a replicated deployment. See the module docs for the
/// routing and retry rules.
pub struct ClusterClient {
    members: Vec<Member>,
    primary: Option<usize>,
    cursor: usize,
    rng: StdRng,
    last_write_lsn: u64,
    config: ClusterConfig,
}

impl ClusterClient {
    /// Builds a client over the given member addresses. Connections are
    /// lazy — nothing is dialed until the first request — so a cluster
    /// client can be constructed while some members are down.
    ///
    /// # Errors
    /// [`NetError::Malformed`] when the member list is empty.
    pub fn new(
        members: impl IntoIterator<Item = impl Into<String>>,
        config: ClusterConfig,
    ) -> Result<ClusterClient, NetError> {
        let members: Vec<Member> = members
            .into_iter()
            .map(|a| Member {
                addr: a.into(),
                conn: None,
            })
            .collect();
        if members.is_empty() {
            return Err(NetError::Malformed(
                "a cluster client needs at least one member address".into(),
            ));
        }
        Ok(ClusterClient {
            members,
            primary: None,
            cursor: 0,
            rng: StdRng::seed_from_u64(config.seed),
            last_write_lsn: 0,
            config,
        })
    }

    /// The member addresses currently known (grows when leader hints
    /// name new nodes).
    pub fn members(&self) -> Vec<String> {
        self.members.iter().map(|m| m.addr.clone()).collect()
    }

    /// The durable LSN of this client's last acknowledged write — the
    /// watermark read-your-writes enforces.
    pub fn last_write_lsn(&self) -> u64 {
        self.last_write_lsn
    }

    /// The address currently believed to be the primary, if discovered.
    pub fn primary_addr(&self) -> Option<&str> {
        self.primary.map(|i| self.members[i].addr.as_str())
    }

    /// Routes a mutation to the primary, following leader hints and
    /// re-probing the member list on connection failures. See the module
    /// docs for what is — and deliberately is not — retried. The retry
    /// loop's total wall clock is capped by the configured per-request
    /// deadline: once it expires, the attempt budget no longer buys
    /// another round and [`NetError::Timeout`] surfaces instead.
    ///
    /// # Errors
    /// Any [`NetError`] from the winning attempt, or the error that
    /// exhausted the hop budget.
    pub fn write(&mut self, request: Request) -> Result<Response, NetError> {
        let deadline = self.request_deadline();
        let mut hops = 0u32;
        loop {
            let idx = match self.primary {
                Some(i) => i,
                None => self.reprobe()?,
            };
            let sent = match self.conn(idx) {
                Ok(c) => c.call(request.clone()),
                Err(e) => {
                    // Never dialed: provably not applied, safe to retry.
                    self.primary = None;
                    hops += 1;
                    if hops > MAX_WRITE_HOPS {
                        return Err(e);
                    }
                    self.backoff(hops, deadline)?;
                    continue;
                }
            };
            match sent {
                Ok(resp) => {
                    if let Some(c) = self.members[idx].conn.as_ref() {
                        self.last_write_lsn = self.last_write_lsn.max(c.last_seen_lsn());
                    }
                    return Ok(resp);
                }
                Err(NetError::NotPrimary { leader_hint }) => {
                    // Rejected before the engine lane: retry at the leader.
                    self.primary = leader_hint.map(|hint| self.member_index(&hint));
                    hops += 1;
                    if hops > MAX_WRITE_HOPS {
                        return Err(NetError::NotPrimary { leader_hint: None });
                    }
                    if expired(deadline) {
                        return Err(NetError::Timeout);
                    }
                    continue;
                }
                Err(e) => {
                    if matches!(e, NetError::Transport(_) | NetError::Timeout) {
                        // The request may or may not have been applied —
                        // drop the connection and our primary belief, but
                        // surface the ambiguity instead of re-sending.
                        self.members[idx].conn = None;
                        self.primary = None;
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Serves a read from a follower, load-balanced round-robin, with
    /// retryable failures moved to a different member after a backoff.
    /// Falls back to the primary when followers are exhausted or (under
    /// read-your-writes) too stale. Like [`write`](Self::write), the
    /// configured per-request deadline caps the loop's total wall clock,
    /// not just its attempt count.
    ///
    /// # Errors
    /// The first non-retryable [`NetError`], or the primary fallback's
    /// error once follower attempts are spent.
    pub fn read(&mut self, request: Request) -> Result<Response, NetError> {
        let deadline = self.request_deadline();
        let candidates: Vec<usize> = {
            let followers: Vec<usize> = (0..self.members.len())
                .filter(|i| Some(*i) != self.primary)
                .collect();
            if followers.is_empty() {
                (0..self.members.len()).collect()
            } else {
                followers
            }
        };
        let attempts = self.config.read_retries.max(1);
        for attempt in 1..=attempts {
            let idx = candidates[self.cursor % candidates.len()];
            self.cursor = self.cursor.wrapping_add(1);
            let outcome = match self.conn(idx) {
                Ok(c) => c.call(request.clone()),
                Err(e) => Err(e),
            };
            let seen = self.members[idx]
                .conn
                .as_ref()
                .map_or(0, |c| c.last_seen_lsn());
            if outcome.is_err() {
                // A timed-out or broken session may deliver a late
                // response and desynchronize request ids — never reuse it.
                self.members[idx].conn = None;
            }
            if self.config.read_your_writes && seen < self.last_write_lsn {
                // This follower has not caught up to our own write — even
                // an error (e.g. "no such tuple") could be from before it.
                if self.last_write_lsn - seen > self.config.staleness_bound {
                    return self.read_at_primary(request);
                }
                self.backoff(attempt, deadline)?;
                continue;
            }
            match outcome {
                Ok(resp) => return Ok(resp),
                Err(e) if e.is_retryable() => {
                    self.backoff(attempt, deadline)?;
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        if expired(deadline) {
            return Err(NetError::Timeout);
        }
        self.read_at_primary(request)
    }

    /// Routes a read to the primary — never stale, so this is both the
    /// read-your-writes escape hatch and the last-resort fallback.
    fn read_at_primary(&mut self, request: Request) -> Result<Response, NetError> {
        let idx = match self.primary {
            Some(i) => i,
            None => self.reprobe()?,
        };
        match self.conn(idx) {
            Ok(c) => c.call(request),
            Err(e) => {
                self.primary = None;
                Err(e)
            }
        }
    }

    /// Finds the primary by probing members' `stats`: a standalone or
    /// primary node answers for itself; a replica names its primary,
    /// which is probed next (and remembered, even if previously
    /// unknown).
    ///
    /// # Errors
    /// The last probe error when no member resolves to a primary.
    fn reprobe(&mut self) -> Result<usize, NetError> {
        let mut last_err = NetError::Transport("no cluster member is reachable".into());
        for start in 0..self.members.len() {
            let mut idx = start;
            // Follow at most one hint chain per starting member.
            for _ in 0..=MAX_WRITE_HOPS {
                let probe = match self.conn(idx) {
                    Ok(c) => c.stats(),
                    Err(e) => {
                        last_err = e;
                        break;
                    }
                };
                match probe {
                    Ok(reply) => match reply.replication {
                        Some(ReplicationInfo::Replica { primary, .. }) => {
                            idx = self.member_index(&primary);
                        }
                        _ => {
                            // Primary role, or a standalone server: writes
                            // go here either way.
                            self.primary = Some(idx);
                            return Ok(idx);
                        }
                    },
                    Err(e) => {
                        self.members[idx].conn = None;
                        last_err = e;
                        break;
                    }
                }
            }
        }
        Err(last_err)
    }

    /// The index of `addr` in the member list, adding it when unknown.
    fn member_index(&mut self, addr: &str) -> usize {
        if let Some(i) = self.members.iter().position(|m| m.addr == addr) {
            return i;
        }
        self.members.push(Member {
            addr: addr.to_string(),
            conn: None,
        });
        self.members.len() - 1
    }

    /// The (possibly freshly dialed) connection to member `idx`.
    fn conn(&mut self, idx: usize) -> Result<&mut Client, NetError> {
        if self.members[idx].conn.is_none() {
            let mut c = Client::connect(&self.members[idx].addr)?;
            c.set_deadline_ms(self.config.deadline_ms);
            if let Some(t) = self.config.io_timeout {
                c.set_io_timeout(Some(t))?;
            }
            self.members[idx].conn = Some(c);
        }
        Ok(self.members[idx].conn.as_mut().expect("just installed"))
    }

    /// The wall-clock instant the current request must conclude by, from
    /// the configured per-request deadline (`None`: unlimited).
    fn request_deadline(&self) -> Option<Instant> {
        (self.config.deadline_ms > 0)
            .then(|| Instant::now() + Duration::from_millis(u64::from(self.config.deadline_ms)))
    }

    /// Exponential backoff with 0.5x–1.5x jitter, capped — by the
    /// configured ceiling *and* by the request deadline: the sleep never
    /// overshoots the deadline, and a deadline already spent refuses
    /// another round with [`NetError::Timeout`] instead of sleeping at
    /// all.
    fn backoff(&mut self, attempt: u32, deadline: Option<Instant>) -> Result<(), NetError> {
        let base = self
            .config
            .backoff_base
            .saturating_mul(1u32 << attempt.min(6).saturating_sub(1))
            .min(self.config.backoff_cap);
        let mut delay = base.mul_f64(0.5 + self.rng.next_f64());
        if let Some(d) = deadline {
            let remaining = d.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(NetError::Timeout);
            }
            delay = delay.min(remaining);
        }
        std::thread::sleep(delay);
        if expired(deadline) {
            return Err(NetError::Timeout);
        }
        Ok(())
    }
}

/// Whether a request deadline has passed (`false` when there is none).
fn expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// Typed helpers mirroring [`Client`]'s surface, routed through the
/// cluster's read/write discipline. Errors are the same as
/// [`ClusterClient::read`] / [`ClusterClient::write`].
impl ClusterClient {
    /// Liveness probe against whichever member the read rotation picks.
    pub fn ping(&mut self) -> Result<(), NetError> {
        match self.read(Request::Ping)? {
            Response::Unit => Ok(()),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Creates a relation of the given dimension (on the primary).
    pub fn create_relation(&mut self, relation: &str, dim: u32) -> Result<(), NetError> {
        match self.write(Request::CreateRelation {
            relation: relation.into(),
            dim,
        })? {
            Response::Unit => Ok(()),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Inserts a tuple (on the primary); returns its assigned id.
    pub fn insert(&mut self, relation: &str, tuple: GeneralizedTuple) -> Result<u32, NetError> {
        match self.write(Request::Insert {
            relation: relation.into(),
            tuple,
        })? {
            Response::Inserted(id) => Ok(id),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Deletes a tuple (on the primary); returns the removed tuple.
    pub fn delete(&mut self, relation: &str, id: u32) -> Result<GeneralizedTuple, NetError> {
        match self.write(Request::Delete {
            relation: relation.into(),
            id,
        })? {
            Response::Tuple(t) => Ok(t),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Builds the 2-D dual index (on the primary).
    pub fn build_dual(&mut self, relation: &str, slopes: Vec<f64>) -> Result<(), NetError> {
        match self.write(Request::BuildDual {
            relation: relation.into(),
            slopes,
        })? {
            Response::Unit => Ok(()),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Builds the d-dimensional dual index (on the primary).
    pub fn build_dual_d(
        &mut self,
        relation: &str,
        per_axis: u32,
        range: f64,
    ) -> Result<(), NetError> {
        match self.write(Request::BuildDualD {
            relation: relation.into(),
            per_axis,
            range,
        })? {
            Response::Unit => Ok(()),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Packs the R⁺-tree baseline (on the primary).
    pub fn build_rplus(&mut self, relation: &str, fill: f64) -> Result<(), NetError> {
        match self.write(Request::BuildRPlus {
            relation: relation.into(),
            fill,
        })? {
            Response::Unit => Ok(()),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Runs an ALL/EXIST selection on a follower (primary fallback).
    pub fn query(
        &mut self,
        relation: &str,
        selection: Selection,
        strategy: Strategy,
    ) -> Result<QueryResult, NetError> {
        match self.read(Request::Query {
            relation: relation.into(),
            selection,
            strategy,
        })? {
            Response::Query(WireQueryResult { ids, stats }) => Ok(QueryResult::new(ids, stats)),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Equality (line) query on a follower (primary fallback).
    pub fn query_line(
        &mut self,
        relation: &str,
        kind: SelectionKind,
        a: f64,
        c: f64,
    ) -> Result<QueryResult, NetError> {
        match self.read(Request::QueryLine {
            relation: relation.into(),
            kind,
            a,
            c,
        })? {
            Response::Query(WireQueryResult { ids, stats }) => Ok(QueryResult::new(ids, stats)),
            other => Err(protocol_violation(&other)),
        }
    }

    /// EXPLAIN ANALYZE on a follower: rendered report plus the result.
    pub fn explain(
        &mut self,
        relation: &str,
        selection: Selection,
    ) -> Result<(String, QueryResult), NetError> {
        match self.read(Request::Explain {
            relation: relation.into(),
            selection,
        })? {
            Response::Explain { rendered, result } => {
                let WireQueryResult { ids, stats } = result;
                Ok((rendered, QueryResult::new(ids, stats)))
            }
            other => Err(protocol_violation(&other)),
        }
    }

    /// Runs one constraint-SQL statement on a follower's latest snapshot.
    pub fn sql(&mut self, text: &str, mode: SqlMode) -> Result<SqlOutcome, NetError> {
        match self.read(Request::Sql {
            text: text.into(),
            mode,
        })? {
            Response::Sql(o) => Ok(o.into()),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Fetches a stored tuple by id from a follower.
    pub fn fetch_tuple(&mut self, relation: &str, id: u32) -> Result<GeneralizedTuple, NetError> {
        match self.read(Request::FetchTuple {
            relation: relation.into(),
            id,
        })? {
            Response::Tuple(t) => Ok(t),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Relation names from a follower, sorted.
    pub fn relations(&mut self) -> Result<Vec<String>, NetError> {
        match self.read(Request::ListRelations)? {
            Response::Relations(names) => Ok(names),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Statistics from whichever member the read rotation picks — the
    /// replication section names the member's role, so asking repeatedly
    /// walks the topology.
    pub fn stats(&mut self) -> Result<StatsReply, NetError> {
        match self.read(Request::Stats)? {
            Response::Stats {
                db,
                replication,
                connections,
                shard,
            } => Ok(StatsReply {
                db,
                replication,
                connections,
                shard,
            }),
            other => Err(protocol_violation(&other)),
        }
    }

    /// `stats` from *every* known member, keyed by address — the fan-in
    /// behind the shell's `cluster stats` table. One sweep, one row per
    /// member; an unreachable member contributes its error instead of
    /// poisoning the sweep.
    pub fn member_stats(&mut self) -> Vec<(String, Result<StatsReply, NetError>)> {
        (0..self.members.len())
            .map(|idx| {
                let addr = self.members[idx].addr.clone();
                let reply = match self.conn(idx) {
                    Ok(c) => c.stats(),
                    Err(e) => Err(e),
                };
                if reply.is_err() {
                    // Same hygiene as read(): a failed session may deliver
                    // a late response and desynchronize request ids.
                    self.members[idx].conn = None;
                }
                (addr, reply)
            })
            .collect()
    }

    /// Online page-verification report from one member.
    pub fn fsck(&mut self) -> Result<WireRecoveryReport, NetError> {
        match self.read(Request::Fsck)? {
            Response::Fsck(rep) => Ok(rep),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Forces a durable checkpoint on the primary.
    pub fn checkpoint(&mut self) -> Result<(), NetError> {
        match self.write(Request::Checkpoint)? {
            Response::Unit => Ok(()),
            other => Err(protocol_violation(&other)),
        }
    }
}
