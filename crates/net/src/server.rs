//! The threaded query server: MVCC reads over published snapshots, one
//! owning writer.
//!
//! ## Architecture
//!
//! ```text
//!            accept loop (non-blocking, polls shutdown flag)
//!                 │  greeting + admission control
//!                 ▼
//!        channel of admitted sockets ──► N session workers
//!                                          │ reads: Arc<Snapshot> clone ──► pinned-epoch query path
//!                                          │ engine ops: bounded lane  ──► group-commit writer
//!                                          ▼                               (owns the ConstraintDb)
//!                                     response frames                      apply batch, one fsync,
//!                                                                          publish snapshot, reply
//! ```
//!
//! * **Reads never block, and are never blocked.** The writer thread owns
//!   the engine outright; after every applied batch it publishes a fresh
//!   [`Snapshot`] into a shared slot. A read request clones the `Arc` out
//!   of the slot (a mutex held for nanoseconds — never across a query, and
//!   never held by the writer while applying a batch) and runs the full
//!   `&self` query path against that pinned epoch. A long scan holds its
//!   epoch's pages via the storage-layer pin; concurrent commits proceed
//!   and recycle nothing the scan can still see.
//! * **Writes group-commit through one lane.** Mutations are
//!   `try_send`-ed into a bounded queue consumed by the writer thread; a
//!   full queue answers [`NetError::Overloaded`] instead of growing
//!   without bound. The writer drains the queue into a batch, applies it
//!   in arrival order, appends the mutations' WAL records and fsyncs
//!   *once*, publishes the new snapshot, and only then sends the replies:
//!   an acknowledged write is durable and visible, full stop. Checkpoints
//!   every `checkpoint_every` successful mutations fold the log into the
//!   shadow-paged commit and truncate it. `Stats` and `Fsck` also ride
//!   this lane — they report the live engine (WAL watermarks, quarantine
//!   cross-check), which only its owner can see.
//! * **Admission control.** At most `max_connections` admitted sessions at
//!   a time; beyond that the greeting itself says
//!   [`HandshakeStatus::Overloaded`] and the socket is closed.
//! * **Deadlines.** Each request carries a relative deadline; it is
//!   checked before execution starts (reads) and again once the writer
//!   actually holds the write lock — a job that waited out its deadline
//!   behind a slow batch or checkpoint answers
//!   [`NetError::DeadlineExceeded`] without touching the engine.
//! * **Graceful shutdown.** The `Shutdown` op (or a [`ShutdownHandle`])
//!   raises a flag: the accept loop refuses new sessions, session workers
//!   finish the request in flight and close, the writer drains its queue,
//!   and [`Server::run`] takes a final checkpoint before returning the
//!   engine.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use cdb_core::db::{ConstraintDb, Snapshot};
use cdb_core::slopes::SlopeSet;
use cdb_core::CdbError;
use cdb_storage::codec::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};

use crate::proto::{
    decode_hello, decode_request, encode_greeting, encode_response, HandshakeStatus, NetError,
    Request, Response, WireRecoveryReport, PROTOCOL_VERSION,
};

/// How often idle sessions and the accept loop re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);
/// Patience for the rest of a frame once its first byte has arrived.
const FRAME_TIMEOUT: Duration = Duration::from_secs(30);
/// Patience for the client's hello after the greeting.
const HELLO_TIMEOUT: Duration = Duration::from_secs(10);
/// Patience for response writes (a stalled client should not pin a worker).
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Tunables of the serving layer.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Session worker threads (concurrent sessions actually served).
    pub workers: usize,
    /// Admitted-session ceiling; beyond it the greeting answers
    /// `Overloaded` and the socket closes.
    pub max_connections: usize,
    /// Depth of the bounded writer lane; a full lane answers `Overloaded`.
    pub write_queue: usize,
    /// Checkpoint after this many successful mutations.
    pub checkpoint_every: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            max_connections: 64,
            write_queue: 64,
            checkpoint_every: 64,
        }
    }
}

/// Raises the server's shutdown flag from outside a session (signal
/// handlers, tests). Requesting shutdown is idempotent.
#[derive(Clone, Debug)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Begins graceful shutdown: stop admitting, drain, checkpoint, exit.
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// A mutation queued for the single writer lane.
struct WriteJob {
    request: Request,
    deadline: Option<Instant>,
    reply: mpsc::Sender<Result<Response, NetError>>,
}

/// State shared by the accept loop, session workers and the writer.
struct Shared {
    /// Latest published snapshot. The lock guards only the `Arc` swap —
    /// readers clone it out and query lock-free; the writer replaces it
    /// after each applied batch.
    snapshot: Mutex<Arc<Snapshot>>,
    shutdown: Arc<AtomicBool>,
    /// Admitted sessions not yet finished (accept-loop admission control).
    active_sessions: AtomicUsize,
}

impl Shared {
    /// The latest published snapshot (one mutex-guarded `Arc` clone).
    fn latest(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snapshot.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Publishes the engine's current state for readers. A failed
    /// publication keeps the previous snapshot serving — readers fall
    /// behind rather than erroring.
    fn publish(&self, db: &mut ConstraintDb) {
        match db.snapshot() {
            Ok(s) => {
                *self.snapshot.lock().unwrap_or_else(|e| e.into_inner()) = Arc::new(s);
            }
            Err(e) => eprintln!("cdb-server: snapshot publication failed: {e}"),
        }
    }
}

/// The server: a bound listener plus the shared engine. [`Server::run`]
/// blocks until graceful shutdown completes and returns the engine.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    db: ConstraintDb,
    shared: Arc<Shared>,
    config: ServerConfig,
}

impl Server {
    /// Binds a listener and wraps the engine for serving. Pass port 0 for
    /// an ephemeral port and read it back with [`local_addr`]. A writable
    /// file-backed engine gets its write-ahead log armed here, so every
    /// acknowledgement the server sends names a durable mutation;
    /// in-memory engines serve without one (nothing to promise).
    ///
    /// [`local_addr`]: Server::local_addr
    ///
    /// # Errors
    /// [`CdbError::Io`] when the address cannot be bound or the
    /// write-ahead log cannot be created.
    pub fn bind(
        addr: impl ToSocketAddrs,
        mut db: ConstraintDb,
        config: ServerConfig,
    ) -> Result<Server, CdbError> {
        if !db.is_read_only() {
            db.begin_wal()?;
        }
        let listener = TcpListener::bind(addr).map_err(CdbError::from)?;
        let local_addr = listener.local_addr().map_err(CdbError::from)?;
        let initial = Arc::new(db.snapshot()?);
        Ok(Server {
            listener,
            local_addr,
            db,
            shared: Arc::new(Shared {
                snapshot: Mutex::new(initial),
                shutdown: Arc::new(AtomicBool::new(false)),
                active_sessions: AtomicUsize::new(0),
            }),
            config,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that can request shutdown from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shared.shutdown))
    }

    /// Serves until shutdown is requested (by a `Shutdown` request or a
    /// [`ShutdownHandle`]), then drains in-flight work, takes a final
    /// checkpoint and returns the engine.
    ///
    /// # Errors
    /// [`CdbError::Io`] when the final checkpoint fails; everything served
    /// before the last successful checkpoint is still durable.
    pub fn run(self) -> Result<ConstraintDb, CdbError> {
        let Server {
            listener,
            db,
            shared,
            config,
            ..
        } = self;
        listener.set_nonblocking(true).map_err(CdbError::from)?;

        // Writer lane: bounded job queue into one writer thread, which
        // owns the engine for the server's whole life and hands it back
        // when the lane disconnects.
        let (write_tx, write_rx) = mpsc::sync_channel::<WriteJob>(config.write_queue.max(1));
        let writer = {
            let shared = Arc::clone(&shared);
            let every = config.checkpoint_every.max(1);
            std::thread::spawn(move || writer_loop(db, &shared, &write_rx, every))
        };

        // Session workers: a fixed pool draining admitted sockets.
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let workers: Vec<_> = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let conn_rx = Arc::clone(&conn_rx);
                let write_tx = write_tx.clone();
                std::thread::spawn(move || loop {
                    let next = conn_rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
                    match next {
                        Ok(stream) => {
                            serve_session(&shared, &write_tx, stream);
                            shared.active_sessions.fetch_sub(1, Ordering::SeqCst);
                        }
                        Err(_) => return, // accept loop gone: drain complete
                    }
                })
            })
            .collect();

        // Accept loop: greet, admit or refuse, hand off.
        while !shared.shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let admitted =
                        shared.active_sessions.load(Ordering::SeqCst) < config.max_connections;
                    let status = if !admitted {
                        HandshakeStatus::Overloaded
                    } else {
                        HandshakeStatus::Ok
                    };
                    if greet(&stream, status).is_err() || !admitted {
                        continue; // refused or unreachable: drop the socket
                    }
                    shared.active_sessions.fetch_add(1, Ordering::SeqCst);
                    if conn_tx.send(stream).is_err() {
                        shared.active_sessions.fetch_sub(1, Ordering::SeqCst);
                        break; // workers gone — nothing left to serve with
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(_) => std::thread::sleep(POLL_INTERVAL),
            }
        }

        // Refuse the sockets the OS already queued, then drain.
        while let Ok((stream, _)) = listener.accept() {
            let _ = greet(&stream, HandshakeStatus::ShuttingDown);
        }
        drop(conn_tx); // workers finish queued sessions, then exit
        for w in workers {
            let _ = w.join();
        }
        drop(write_tx); // writer drains remaining jobs, then exits
        let mut db = writer.join().expect("writer thread panicked");
        db.checkpoint()?;
        Ok(db)
    }
}

/// Sends the greeting frame on a fresh socket (with a write timeout so a
/// wedged peer cannot pin the accept loop).
fn greet(stream: &TcpStream, status: HandshakeStatus) -> std::io::Result<()> {
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    let mut s = stream;
    write_frame(&mut s, &encode_greeting(PROTOCOL_VERSION, status))?;
    s.flush()
}

fn would_block(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn respond(
    stream: &mut TcpStream,
    request_id: u64,
    outcome: &Result<Response, NetError>,
) -> std::io::Result<()> {
    write_frame(stream, &encode_response(request_id, outcome))?;
    stream.flush()
}

/// Serves one admitted session to completion. All transport failures end
/// the session silently — the peer is gone or out of sync; the engine's
/// state is untouched by transport trouble.
fn serve_session(shared: &Shared, write_tx: &SyncSender<WriteJob>, mut stream: TcpStream) {
    let _ = session_loop(shared, write_tx, &mut stream);
}

fn session_loop(
    shared: &Shared,
    write_tx: &SyncSender<WriteJob>,
    stream: &mut TcpStream,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;

    // Hello: verify the peer speaks our protocol before serving anything.
    stream.set_read_timeout(Some(HELLO_TIMEOUT))?;
    let hello = match read_frame(stream, DEFAULT_MAX_FRAME) {
        Ok(p) => p,
        Err(_) => return Ok(()),
    };
    match decode_hello(&hello) {
        Ok(v) if v == PROTOCOL_VERSION => {}
        Ok(_) => {
            let _ = respond(
                stream,
                0,
                &Err(NetError::VersionMismatch {
                    server_version: PROTOCOL_VERSION,
                }),
            );
            return Ok(());
        }
        Err(e) => {
            let _ = respond(stream, 0, &Err(NetError::Malformed(e.to_string())));
            return Ok(());
        }
    }

    loop {
        // Idle poll: wait for the first byte of a frame without consuming
        // it, so the shutdown flag is observed between requests and a
        // timeout can never desynchronize the frame stream.
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                return Ok(()); // drained: nothing in flight on this session
            }
            stream.set_read_timeout(Some(POLL_INTERVAL))?;
            let mut probe = [0u8; 1];
            match stream.peek(&mut probe) {
                Ok(0) => return Ok(()), // peer hung up
                Ok(_) => break,
                Err(e) if would_block(&e) => continue,
                Err(_) => return Ok(()),
            }
        }

        stream.set_read_timeout(Some(FRAME_TIMEOUT))?;
        let payload = match read_frame(stream, DEFAULT_MAX_FRAME) {
            Ok(p) => p,
            Err(FrameError::Closed) => return Ok(()),
            Err(FrameError::Corrupt(e)) => {
                // The stream is out of sync; report and close.
                let _ = respond(stream, 0, &Err(NetError::Malformed(e.to_string())));
                return Ok(());
            }
            Err(FrameError::Io(_)) => return Ok(()),
        };
        let env = match decode_request(&payload) {
            Ok(env) => env,
            Err(e) => {
                let _ = respond(stream, 0, &Err(NetError::Malformed(e.to_string())));
                return Ok(());
            }
        };
        let deadline = (env.deadline_ms > 0)
            .then(|| Instant::now() + Duration::from_millis(u64::from(env.deadline_ms)));

        let outcome = dispatch(shared, write_tx, env.request, deadline);
        respond(stream, env.request_id, &outcome)?;
    }
}

fn expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

fn dispatch(
    shared: &Shared,
    write_tx: &SyncSender<WriteJob>,
    request: Request,
    deadline: Option<Instant>,
) -> Result<Response, NetError> {
    if request == Request::Shutdown {
        shared.shutdown.store(true, Ordering::SeqCst);
        return Ok(Response::Unit);
    }
    if expired(deadline) {
        return Err(NetError::DeadlineExceeded);
    }
    // Mutations must reach the engine's owner; Stats and Fsck report the
    // live engine (WAL watermarks, quarantine cross-check) and ride the
    // same lane. Everything else is answered from the latest published
    // snapshot without ever waiting on the writer.
    let needs_engine = request.is_write() || matches!(request, Request::Stats | Request::Fsck);
    if needs_engine {
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = WriteJob {
            request,
            deadline,
            reply: reply_tx,
        };
        match write_tx.try_send(job) {
            Ok(()) => reply_rx.recv().unwrap_or(Err(NetError::ShuttingDown)),
            Err(TrySendError::Full(_)) => Err(NetError::Overloaded),
            Err(TrySendError::Disconnected(_)) => Err(NetError::ShuttingDown),
        }
    } else {
        apply_read(&shared.latest(), &request)
    }
}

/// Executes a read-only request against one pinned snapshot. No lock is
/// held while this runs: the snapshot's epoch keeps every page it can
/// reach stable regardless of what the writer commits meanwhile.
fn apply_read(snap: &Snapshot, request: &Request) -> Result<Response, NetError> {
    match request {
        Request::Ping => Ok(Response::Unit),
        Request::Query {
            relation,
            selection,
            strategy,
        } => snap
            .query_with(relation, selection.clone(), *strategy)
            .map(|r| Response::Query((&r).into()))
            .map_err(NetError::Db),
        Request::Explain {
            relation,
            selection,
        } => snap
            .explain(relation, selection.clone())
            .map(|rep| Response::Explain {
                rendered: rep.render(),
                result: (&rep.result).into(),
            })
            .map_err(NetError::Db),
        Request::QueryLine {
            relation,
            kind,
            a,
            c,
        } => {
            let res = match kind {
                cdb_core::query::SelectionKind::Exist => snap.exist_line(relation, *a, *c),
                cdb_core::query::SelectionKind::All => snap.all_line(relation, *a, *c),
            };
            res.map(|r| Response::Query((&r).into()))
                .map_err(NetError::Db)
        }
        Request::Sql { text, mode } => snap
            .sql(text, *mode)
            .map(|o| Response::Sql((&o).into()))
            .map_err(NetError::Db),
        Request::FetchTuple { relation, id } => snap
            .fetch_tuple(relation, *id)
            .map(Response::Tuple)
            .map_err(NetError::Db),
        Request::ListRelations => Ok(Response::Relations(snap.relation_names())),
        other => Err(NetError::Malformed(format!(
            "'{}' is not a read operation",
            other.op_name()
        ))),
    }
}

/// The group-commit writer lane. Owns the engine: drains every queued job
/// into one batch, applies the batch in arrival order, makes it durable
/// with one [`ConstraintDb::wal_sync`], publishes the resulting state as
/// the readers' new snapshot, and only then sends the replies — so an
/// acknowledgement always names a mutation that both survives a crash and
/// is visible to every later read. Checkpoints every `checkpoint_every`
/// successful mutations (which also truncates the log). Returns the
/// engine when the lane disconnects.
fn writer_loop(
    mut db: ConstraintDb,
    shared: &Shared,
    jobs: &Receiver<WriteJob>,
    checkpoint_every: u64,
) -> ConstraintDb {
    let mut since_checkpoint = 0u64;
    while let Ok(first) = jobs.recv() {
        // Everything already queued behind this job joins its batch.
        let mut batch = vec![first];
        while let Ok(job) = jobs.try_recv() {
            batch.push(job);
        }
        let mut replies = Vec::with_capacity(batch.len());
        let mut mutated = false;
        for job in batch {
            // Re-check the deadline now that the job is being applied: it
            // can wait out its deadline behind a slow batch or
            // checkpoint, and must then be refused without mutating.
            let is_write = job.request.is_write();
            let outcome = if expired(job.deadline) {
                Err(NetError::DeadlineExceeded)
            } else {
                apply_engine(&mut db, job.request)
            };
            if is_write && outcome.is_ok() {
                mutated = true;
                since_checkpoint += 1;
            }
            replies.push((job.reply, outcome));
        }
        // One fsync covers the whole batch. If it fails, nothing in the
        // batch is durable — withdraw every success before anyone hears
        // about it.
        if let Err(e) = db.wal_sync() {
            for (_, outcome) in replies.iter_mut() {
                if outcome.is_ok() {
                    *outcome = Err(NetError::Db(CdbError::Io(format!(
                        "write-ahead log sync failed: {e}"
                    ))));
                }
            }
        }
        if since_checkpoint >= checkpoint_every {
            match db.checkpoint() {
                // Only success resets the counter: after a failure the
                // very next mutation retries instead of waiting out a
                // whole window, and the failure streak is surfaced by
                // stats_snapshot().
                Ok(()) => since_checkpoint = 0,
                Err(e) => eprintln!("cdb-server: periodic checkpoint failed: {e}"),
            }
        }
        // Publish before acknowledging: a client that hears its ack and
        // immediately reads must see its own write. Published even when
        // the sync failed — visibility tracks the in-memory engine, and
        // the withdrawn jobs were applied to it either way.
        if mutated {
            shared.publish(&mut db);
        }
        // The batch is durable and visible: acknowledge.
        for (reply, outcome) in replies {
            let _ = reply.send(outcome); // a vanished session is not an error
        }
    }
    // Queue disconnected: every session is gone. The final checkpoint
    // happens in Server::run after the writer joins.
    db
}

/// Applies one engine-lane job (a mutation, or a Stats/Fsck report that
/// must see the live engine). Engine preconditions that would panic
/// (`assert!`s guarding constructor contracts) are validated here first
/// and answered as errors — a wire peer must never be able to panic the
/// server.
fn apply_engine(db: &mut ConstraintDb, request: Request) -> Result<Response, NetError> {
    match request {
        Request::Stats => Ok(Response::Stats(db.stats_snapshot())),
        Request::Fsck => {
            let rep = db.verify_now();
            Ok(Response::Fsck(WireRecoveryReport {
                pager: rep.pager,
                wal: rep.wal,
                relations: rep.relations,
                quarantine: db.quarantine_clean(),
            }))
        }
        Request::CreateRelation { relation, dim } => {
            if dim == 0 {
                return Err(NetError::Malformed("dimension must be positive".into()));
            }
            db.create_relation(&relation, dim as usize)
                .map(|_| Response::Unit)
                .map_err(NetError::Db)
        }
        Request::DropRelation { relation } => db
            .drop_relation(&relation)
            .map(|_| Response::Unit)
            .map_err(NetError::Db),
        Request::Insert { relation, tuple } => db
            .insert(&relation, tuple)
            .map(Response::Inserted)
            .map_err(NetError::Db),
        Request::Delete { relation, id } => db
            .delete(&relation, id)
            .map(Response::Tuple)
            .map_err(NetError::Db),
        Request::BuildDual { relation, slopes } => {
            let mut distinct = slopes.clone();
            distinct.sort_by(|a, b| a.partial_cmp(b).expect("finite by decode"));
            distinct.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
            if distinct.len() < 2 {
                return Err(NetError::Malformed(
                    "a slope set needs at least 2 distinct slopes".into(),
                ));
            }
            db.build_dual_index(&relation, SlopeSet::new(slopes))
                .map(|_| Response::Unit)
                .map_err(NetError::Db)
        }
        Request::BuildDualD {
            relation,
            per_axis,
            range,
        } => {
            if per_axis < 2 {
                return Err(NetError::Malformed("grid needs per_axis >= 2".into()));
            }
            if range <= 0.0 {
                return Err(NetError::Malformed("grid range must be positive".into()));
            }
            let dim = db.relation(&relation).map_err(NetError::Db)?.dim();
            if dim < 2 {
                return Err(NetError::Db(CdbError::UnsupportedQuery(
                    "the d-dimensional dual index needs a relation of dimension >= 2".into(),
                )));
            }
            db.build_dual_index_d(
                &relation,
                cdb_core::ddim::SlopePoints::grid(dim, per_axis as usize, range),
            )
            .map(|_| Response::Unit)
            .map_err(NetError::Db)
        }
        Request::BuildRPlus { relation, fill } => {
            if !(0.5..=1.0).contains(&fill) {
                return Err(NetError::Malformed(
                    "fill factor must be in [0.5, 1.0]".into(),
                ));
            }
            db.build_rplus_index(&relation, fill)
                .map(|_| Response::Unit)
                .map_err(NetError::Db)
        }
        Request::Checkpoint => db
            .checkpoint()
            .map(|_| Response::Unit)
            .map_err(NetError::Db),
        other => Err(NetError::Malformed(format!(
            "'{}' is not an engine-lane operation",
            other.op_name()
        ))),
    }
}
